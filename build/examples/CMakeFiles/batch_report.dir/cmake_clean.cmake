file(REMOVE_RECURSE
  "CMakeFiles/batch_report.dir/batch_report.cpp.o"
  "CMakeFiles/batch_report.dir/batch_report.cpp.o.d"
  "batch_report"
  "batch_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
