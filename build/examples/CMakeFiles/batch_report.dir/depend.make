# Empty dependencies file for batch_report.
# This may be replaced when dependencies are built.
