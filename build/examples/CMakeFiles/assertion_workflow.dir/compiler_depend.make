# Empty compiler generated dependencies file for assertion_workflow.
# This may be replaced when dependencies are built.
