file(REMOVE_RECURSE
  "CMakeFiles/assertion_workflow.dir/assertion_workflow.cpp.o"
  "CMakeFiles/assertion_workflow.dir/assertion_workflow.cpp.o.d"
  "assertion_workflow"
  "assertion_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assertion_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
