# Empty dependencies file for interactive_arc3d.
# This may be replaced when dependencies are built.
