file(REMOVE_RECURSE
  "CMakeFiles/interactive_arc3d.dir/interactive_arc3d.cpp.o"
  "CMakeFiles/interactive_arc3d.dir/interactive_arc3d.cpp.o.d"
  "interactive_arc3d"
  "interactive_arc3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_arc3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
