file(REMOVE_RECURSE
  "libps_interp.a"
)
