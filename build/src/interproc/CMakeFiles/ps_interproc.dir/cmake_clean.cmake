file(REMOVE_RECURSE
  "CMakeFiles/ps_interproc.dir/array_kill.cpp.o"
  "CMakeFiles/ps_interproc.dir/array_kill.cpp.o.d"
  "CMakeFiles/ps_interproc.dir/callgraph.cpp.o"
  "CMakeFiles/ps_interproc.dir/callgraph.cpp.o.d"
  "CMakeFiles/ps_interproc.dir/summaries.cpp.o"
  "CMakeFiles/ps_interproc.dir/summaries.cpp.o.d"
  "libps_interproc.a"
  "libps_interproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_interproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
