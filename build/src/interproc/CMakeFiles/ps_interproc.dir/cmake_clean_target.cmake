file(REMOVE_RECURSE
  "libps_interproc.a"
)
