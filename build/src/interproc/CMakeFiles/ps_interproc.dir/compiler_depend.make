# Empty compiler generated dependencies file for ps_interproc.
# This may be replaced when dependencies are built.
