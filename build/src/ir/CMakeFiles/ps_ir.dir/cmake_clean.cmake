file(REMOVE_RECURSE
  "CMakeFiles/ps_ir.dir/model.cpp.o"
  "CMakeFiles/ps_ir.dir/model.cpp.o.d"
  "CMakeFiles/ps_ir.dir/refs.cpp.o"
  "CMakeFiles/ps_ir.dir/refs.cpp.o.d"
  "libps_ir.a"
  "libps_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
