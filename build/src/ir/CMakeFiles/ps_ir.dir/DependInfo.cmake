
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/model.cpp" "src/ir/CMakeFiles/ps_ir.dir/model.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/model.cpp.o.d"
  "/root/repo/src/ir/refs.cpp" "src/ir/CMakeFiles/ps_ir.dir/refs.cpp.o" "gcc" "src/ir/CMakeFiles/ps_ir.dir/refs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fortran/CMakeFiles/ps_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
