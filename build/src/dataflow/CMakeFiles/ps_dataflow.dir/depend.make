# Empty dependencies file for ps_dataflow.
# This may be replaced when dependencies are built.
