
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/constants.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/constants.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/constants.cpp.o.d"
  "/root/repo/src/dataflow/linear.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/linear.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/linear.cpp.o.d"
  "/root/repo/src/dataflow/liveness.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/liveness.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/liveness.cpp.o.d"
  "/root/repo/src/dataflow/privatize.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/privatize.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/privatize.cpp.o.d"
  "/root/repo/src/dataflow/reaching.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/reaching.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/reaching.cpp.o.d"
  "/root/repo/src/dataflow/symbolic.cpp" "src/dataflow/CMakeFiles/ps_dataflow.dir/symbolic.cpp.o" "gcc" "src/dataflow/CMakeFiles/ps_dataflow.dir/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/ps_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/ps_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
