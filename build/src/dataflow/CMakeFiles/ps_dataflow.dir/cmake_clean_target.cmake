file(REMOVE_RECURSE
  "libps_dataflow.a"
)
