file(REMOVE_RECURSE
  "CMakeFiles/ps_dataflow.dir/constants.cpp.o"
  "CMakeFiles/ps_dataflow.dir/constants.cpp.o.d"
  "CMakeFiles/ps_dataflow.dir/linear.cpp.o"
  "CMakeFiles/ps_dataflow.dir/linear.cpp.o.d"
  "CMakeFiles/ps_dataflow.dir/liveness.cpp.o"
  "CMakeFiles/ps_dataflow.dir/liveness.cpp.o.d"
  "CMakeFiles/ps_dataflow.dir/privatize.cpp.o"
  "CMakeFiles/ps_dataflow.dir/privatize.cpp.o.d"
  "CMakeFiles/ps_dataflow.dir/reaching.cpp.o"
  "CMakeFiles/ps_dataflow.dir/reaching.cpp.o.d"
  "CMakeFiles/ps_dataflow.dir/symbolic.cpp.o"
  "CMakeFiles/ps_dataflow.dir/symbolic.cpp.o.d"
  "libps_dataflow.a"
  "libps_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
