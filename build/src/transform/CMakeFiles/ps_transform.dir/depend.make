# Empty dependencies file for ps_transform.
# This may be replaced when dependencies are built.
