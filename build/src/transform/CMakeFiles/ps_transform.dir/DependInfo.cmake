
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/controlflow.cpp" "src/transform/CMakeFiles/ps_transform.dir/controlflow.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/controlflow.cpp.o.d"
  "/root/repo/src/transform/depbreaking.cpp" "src/transform/CMakeFiles/ps_transform.dir/depbreaking.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/depbreaking.cpp.o.d"
  "/root/repo/src/transform/interproc_motion.cpp" "src/transform/CMakeFiles/ps_transform.dir/interproc_motion.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/interproc_motion.cpp.o.d"
  "/root/repo/src/transform/memory.cpp" "src/transform/CMakeFiles/ps_transform.dir/memory.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/memory.cpp.o.d"
  "/root/repo/src/transform/misc.cpp" "src/transform/CMakeFiles/ps_transform.dir/misc.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/misc.cpp.o.d"
  "/root/repo/src/transform/reduction.cpp" "src/transform/CMakeFiles/ps_transform.dir/reduction.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/reduction.cpp.o.d"
  "/root/repo/src/transform/registry.cpp" "src/transform/CMakeFiles/ps_transform.dir/registry.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/registry.cpp.o.d"
  "/root/repo/src/transform/reordering.cpp" "src/transform/CMakeFiles/ps_transform.dir/reordering.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/reordering.cpp.o.d"
  "/root/repo/src/transform/transform.cpp" "src/transform/CMakeFiles/ps_transform.dir/transform.cpp.o" "gcc" "src/transform/CMakeFiles/ps_transform.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dependence/CMakeFiles/ps_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/ps_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ps_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/ps_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
