file(REMOVE_RECURSE
  "libps_transform.a"
)
