file(REMOVE_RECURSE
  "CMakeFiles/ps_transform.dir/controlflow.cpp.o"
  "CMakeFiles/ps_transform.dir/controlflow.cpp.o.d"
  "CMakeFiles/ps_transform.dir/depbreaking.cpp.o"
  "CMakeFiles/ps_transform.dir/depbreaking.cpp.o.d"
  "CMakeFiles/ps_transform.dir/interproc_motion.cpp.o"
  "CMakeFiles/ps_transform.dir/interproc_motion.cpp.o.d"
  "CMakeFiles/ps_transform.dir/memory.cpp.o"
  "CMakeFiles/ps_transform.dir/memory.cpp.o.d"
  "CMakeFiles/ps_transform.dir/misc.cpp.o"
  "CMakeFiles/ps_transform.dir/misc.cpp.o.d"
  "CMakeFiles/ps_transform.dir/reduction.cpp.o"
  "CMakeFiles/ps_transform.dir/reduction.cpp.o.d"
  "CMakeFiles/ps_transform.dir/registry.cpp.o"
  "CMakeFiles/ps_transform.dir/registry.cpp.o.d"
  "CMakeFiles/ps_transform.dir/reordering.cpp.o"
  "CMakeFiles/ps_transform.dir/reordering.cpp.o.d"
  "CMakeFiles/ps_transform.dir/transform.cpp.o"
  "CMakeFiles/ps_transform.dir/transform.cpp.o.d"
  "libps_transform.a"
  "libps_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
