file(REMOVE_RECURSE
  "libps_ped.a"
)
