file(REMOVE_RECURSE
  "CMakeFiles/ps_ped.dir/assertions.cpp.o"
  "CMakeFiles/ps_ped.dir/assertions.cpp.o.d"
  "CMakeFiles/ps_ped.dir/perfest.cpp.o"
  "CMakeFiles/ps_ped.dir/perfest.cpp.o.d"
  "CMakeFiles/ps_ped.dir/render.cpp.o"
  "CMakeFiles/ps_ped.dir/render.cpp.o.d"
  "CMakeFiles/ps_ped.dir/session.cpp.o"
  "CMakeFiles/ps_ped.dir/session.cpp.o.d"
  "libps_ped.a"
  "libps_ped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_ped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
