# Empty compiler generated dependencies file for ps_ped.
# This may be replaced when dependencies are built.
