# Empty dependencies file for ps_cfg.
# This may be replaced when dependencies are built.
