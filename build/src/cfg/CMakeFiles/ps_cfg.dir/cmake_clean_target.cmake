file(REMOVE_RECURSE
  "libps_cfg.a"
)
