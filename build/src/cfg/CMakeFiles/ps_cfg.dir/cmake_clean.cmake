file(REMOVE_RECURSE
  "CMakeFiles/ps_cfg.dir/control_dep.cpp.o"
  "CMakeFiles/ps_cfg.dir/control_dep.cpp.o.d"
  "CMakeFiles/ps_cfg.dir/dominators.cpp.o"
  "CMakeFiles/ps_cfg.dir/dominators.cpp.o.d"
  "CMakeFiles/ps_cfg.dir/flow_graph.cpp.o"
  "CMakeFiles/ps_cfg.dir/flow_graph.cpp.o.d"
  "libps_cfg.a"
  "libps_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
