file(REMOVE_RECURSE
  "CMakeFiles/ps_support.dir/diagnostics.cpp.o"
  "CMakeFiles/ps_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/ps_support.dir/text.cpp.o"
  "CMakeFiles/ps_support.dir/text.cpp.o.d"
  "libps_support.a"
  "libps_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
