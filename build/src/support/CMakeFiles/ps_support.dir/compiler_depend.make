# Empty compiler generated dependencies file for ps_support.
# This may be replaced when dependencies are built.
