
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fortran/ast.cpp" "src/fortran/CMakeFiles/ps_fortran.dir/ast.cpp.o" "gcc" "src/fortran/CMakeFiles/ps_fortran.dir/ast.cpp.o.d"
  "/root/repo/src/fortran/lexer.cpp" "src/fortran/CMakeFiles/ps_fortran.dir/lexer.cpp.o" "gcc" "src/fortran/CMakeFiles/ps_fortran.dir/lexer.cpp.o.d"
  "/root/repo/src/fortran/parser.cpp" "src/fortran/CMakeFiles/ps_fortran.dir/parser.cpp.o" "gcc" "src/fortran/CMakeFiles/ps_fortran.dir/parser.cpp.o.d"
  "/root/repo/src/fortran/pretty.cpp" "src/fortran/CMakeFiles/ps_fortran.dir/pretty.cpp.o" "gcc" "src/fortran/CMakeFiles/ps_fortran.dir/pretty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
