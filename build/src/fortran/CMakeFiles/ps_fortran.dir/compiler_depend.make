# Empty compiler generated dependencies file for ps_fortran.
# This may be replaced when dependencies are built.
