file(REMOVE_RECURSE
  "libps_fortran.a"
)
