file(REMOVE_RECURSE
  "CMakeFiles/ps_fortran.dir/ast.cpp.o"
  "CMakeFiles/ps_fortran.dir/ast.cpp.o.d"
  "CMakeFiles/ps_fortran.dir/lexer.cpp.o"
  "CMakeFiles/ps_fortran.dir/lexer.cpp.o.d"
  "CMakeFiles/ps_fortran.dir/parser.cpp.o"
  "CMakeFiles/ps_fortran.dir/parser.cpp.o.d"
  "CMakeFiles/ps_fortran.dir/pretty.cpp.o"
  "CMakeFiles/ps_fortran.dir/pretty.cpp.o.d"
  "libps_fortran.a"
  "libps_fortran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_fortran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
