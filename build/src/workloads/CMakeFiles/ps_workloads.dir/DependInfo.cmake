
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/w_arc3d.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_arc3d.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_arc3d.cpp.o.d"
  "/root/repo/src/workloads/w_dpmin.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_dpmin.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_dpmin.cpp.o.d"
  "/root/repo/src/workloads/w_neoss.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_neoss.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_neoss.cpp.o.d"
  "/root/repo/src/workloads/w_nxsns.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_nxsns.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_nxsns.cpp.o.d"
  "/root/repo/src/workloads/w_pueblo3d.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_pueblo3d.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_pueblo3d.cpp.o.d"
  "/root/repo/src/workloads/w_slab2d.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_slab2d.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_slab2d.cpp.o.d"
  "/root/repo/src/workloads/w_slalom.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_slalom.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_slalom.cpp.o.d"
  "/root/repo/src/workloads/w_spec77.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/w_spec77.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/w_spec77.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
