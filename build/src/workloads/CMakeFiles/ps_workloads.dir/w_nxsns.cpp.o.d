src/workloads/CMakeFiles/ps_workloads.dir/w_nxsns.cpp.o: \
 /root/repo/src/workloads/w_nxsns.cpp /usr/include/stdc-predef.h
