src/workloads/CMakeFiles/ps_workloads.dir/w_neoss.cpp.o: \
 /root/repo/src/workloads/w_neoss.cpp /usr/include/stdc-predef.h
