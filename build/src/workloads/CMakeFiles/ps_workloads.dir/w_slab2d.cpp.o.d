src/workloads/CMakeFiles/ps_workloads.dir/w_slab2d.cpp.o: \
 /root/repo/src/workloads/w_slab2d.cpp /usr/include/stdc-predef.h
