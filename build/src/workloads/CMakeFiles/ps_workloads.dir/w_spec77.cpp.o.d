src/workloads/CMakeFiles/ps_workloads.dir/w_spec77.cpp.o: \
 /root/repo/src/workloads/w_spec77.cpp /usr/include/stdc-predef.h
