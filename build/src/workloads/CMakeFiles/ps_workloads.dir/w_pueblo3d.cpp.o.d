src/workloads/CMakeFiles/ps_workloads.dir/w_pueblo3d.cpp.o: \
 /root/repo/src/workloads/w_pueblo3d.cpp /usr/include/stdc-predef.h
