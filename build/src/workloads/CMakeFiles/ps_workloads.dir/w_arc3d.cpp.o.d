src/workloads/CMakeFiles/ps_workloads.dir/w_arc3d.cpp.o: \
 /root/repo/src/workloads/w_arc3d.cpp /usr/include/stdc-predef.h
