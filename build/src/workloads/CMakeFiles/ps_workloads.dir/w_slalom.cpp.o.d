src/workloads/CMakeFiles/ps_workloads.dir/w_slalom.cpp.o: \
 /root/repo/src/workloads/w_slalom.cpp /usr/include/stdc-predef.h
