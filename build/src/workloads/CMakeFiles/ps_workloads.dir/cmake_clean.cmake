file(REMOVE_RECURSE
  "CMakeFiles/ps_workloads.dir/w_arc3d.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_arc3d.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_dpmin.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_dpmin.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_neoss.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_neoss.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_nxsns.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_nxsns.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_pueblo3d.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_pueblo3d.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_slab2d.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_slab2d.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_slalom.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_slalom.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/w_spec77.cpp.o"
  "CMakeFiles/ps_workloads.dir/w_spec77.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/workloads.cpp.o"
  "CMakeFiles/ps_workloads.dir/workloads.cpp.o.d"
  "libps_workloads.a"
  "libps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
