src/workloads/CMakeFiles/ps_workloads.dir/w_dpmin.cpp.o: \
 /root/repo/src/workloads/w_dpmin.cpp /usr/include/stdc-predef.h
