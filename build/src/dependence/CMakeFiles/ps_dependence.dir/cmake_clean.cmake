file(REMOVE_RECURSE
  "CMakeFiles/ps_dependence.dir/dep.cpp.o"
  "CMakeFiles/ps_dependence.dir/dep.cpp.o.d"
  "CMakeFiles/ps_dependence.dir/fm.cpp.o"
  "CMakeFiles/ps_dependence.dir/fm.cpp.o.d"
  "CMakeFiles/ps_dependence.dir/graph.cpp.o"
  "CMakeFiles/ps_dependence.dir/graph.cpp.o.d"
  "CMakeFiles/ps_dependence.dir/section.cpp.o"
  "CMakeFiles/ps_dependence.dir/section.cpp.o.d"
  "CMakeFiles/ps_dependence.dir/subscript.cpp.o"
  "CMakeFiles/ps_dependence.dir/subscript.cpp.o.d"
  "CMakeFiles/ps_dependence.dir/testsuite.cpp.o"
  "CMakeFiles/ps_dependence.dir/testsuite.cpp.o.d"
  "libps_dependence.a"
  "libps_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
