file(REMOVE_RECURSE
  "libps_dependence.a"
)
