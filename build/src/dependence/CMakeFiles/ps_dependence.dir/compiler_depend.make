# Empty compiler generated dependencies file for ps_dependence.
# This may be replaced when dependencies are built.
