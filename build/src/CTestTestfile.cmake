# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("fortran")
subdirs("ir")
subdirs("cfg")
subdirs("dataflow")
subdirs("dependence")
subdirs("interproc")
subdirs("interp")
subdirs("transform")
subdirs("ped")
subdirs("workloads")
