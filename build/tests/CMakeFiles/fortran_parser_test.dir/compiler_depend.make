# Empty compiler generated dependencies file for fortran_parser_test.
# This may be replaced when dependencies are built.
