file(REMOVE_RECURSE
  "CMakeFiles/fortran_parser_test.dir/fortran_parser_test.cpp.o"
  "CMakeFiles/fortran_parser_test.dir/fortran_parser_test.cpp.o.d"
  "fortran_parser_test"
  "fortran_parser_test.pdb"
  "fortran_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortran_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
