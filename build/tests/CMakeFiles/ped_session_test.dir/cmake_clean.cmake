file(REMOVE_RECURSE
  "CMakeFiles/ped_session_test.dir/ped_session_test.cpp.o"
  "CMakeFiles/ped_session_test.dir/ped_session_test.cpp.o.d"
  "ped_session_test"
  "ped_session_test.pdb"
  "ped_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ped_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
