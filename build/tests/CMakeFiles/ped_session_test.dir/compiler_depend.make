# Empty compiler generated dependencies file for ped_session_test.
# This may be replaced when dependencies are built.
