file(REMOVE_RECURSE
  "CMakeFiles/render_and_misc_test.dir/render_and_misc_test.cpp.o"
  "CMakeFiles/render_and_misc_test.dir/render_and_misc_test.cpp.o.d"
  "render_and_misc_test"
  "render_and_misc_test.pdb"
  "render_and_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_and_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
