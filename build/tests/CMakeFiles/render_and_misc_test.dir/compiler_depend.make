# Empty compiler generated dependencies file for render_and_misc_test.
# This may be replaced when dependencies are built.
