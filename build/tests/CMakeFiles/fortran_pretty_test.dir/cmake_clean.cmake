file(REMOVE_RECURSE
  "CMakeFiles/fortran_pretty_test.dir/fortran_pretty_test.cpp.o"
  "CMakeFiles/fortran_pretty_test.dir/fortran_pretty_test.cpp.o.d"
  "fortran_pretty_test"
  "fortran_pretty_test.pdb"
  "fortran_pretty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortran_pretty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
