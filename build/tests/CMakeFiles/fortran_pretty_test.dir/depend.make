# Empty dependencies file for fortran_pretty_test.
# This may be replaced when dependencies are built.
