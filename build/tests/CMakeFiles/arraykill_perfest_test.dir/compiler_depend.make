# Empty compiler generated dependencies file for arraykill_perfest_test.
# This may be replaced when dependencies are built.
