# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for arraykill_perfest_test.
