file(REMOVE_RECURSE
  "CMakeFiles/arraykill_perfest_test.dir/arraykill_perfest_test.cpp.o"
  "CMakeFiles/arraykill_perfest_test.dir/arraykill_perfest_test.cpp.o.d"
  "arraykill_perfest_test"
  "arraykill_perfest_test.pdb"
  "arraykill_perfest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arraykill_perfest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
