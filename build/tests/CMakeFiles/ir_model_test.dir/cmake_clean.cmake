file(REMOVE_RECURSE
  "CMakeFiles/ir_model_test.dir/ir_model_test.cpp.o"
  "CMakeFiles/ir_model_test.dir/ir_model_test.cpp.o.d"
  "ir_model_test"
  "ir_model_test.pdb"
  "ir_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
