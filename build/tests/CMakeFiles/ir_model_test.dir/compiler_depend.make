# Empty compiler generated dependencies file for ir_model_test.
# This may be replaced when dependencies are built.
