file(REMOVE_RECURSE
  "CMakeFiles/fortran_lexer_test.dir/fortran_lexer_test.cpp.o"
  "CMakeFiles/fortran_lexer_test.dir/fortran_lexer_test.cpp.o.d"
  "fortran_lexer_test"
  "fortran_lexer_test.pdb"
  "fortran_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortran_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
