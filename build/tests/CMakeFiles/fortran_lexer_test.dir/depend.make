# Empty dependencies file for fortran_lexer_test.
# This may be replaced when dependencies are built.
