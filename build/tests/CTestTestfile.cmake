# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fortran_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/fortran_parser_test[1]_include.cmake")
include("/root/repo/build/tests/fortran_pretty_test[1]_include.cmake")
include("/root/repo/build/tests/ir_model_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/dependence_test[1]_include.cmake")
include("/root/repo/build/tests/interproc_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/ped_session_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/arraykill_perfest_test[1]_include.cmake")
include("/root/repo/build/tests/render_and_misc_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
