file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_incremental.dir/bench_ablate_incremental.cpp.o"
  "CMakeFiles/bench_ablate_incremental.dir/bench_ablate_incremental.cpp.o.d"
  "bench_ablate_incremental"
  "bench_ablate_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
