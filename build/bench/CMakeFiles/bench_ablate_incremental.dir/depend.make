# Empty dependencies file for bench_ablate_incremental.
# This may be replaced when dependencies are built.
