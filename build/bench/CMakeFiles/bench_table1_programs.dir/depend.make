# Empty dependencies file for bench_table1_programs.
# This may be replaced when dependencies are built.
