
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_transforms.cpp" "bench/CMakeFiles/bench_table4_transforms.dir/bench_table4_transforms.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_transforms.dir/bench_table4_transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ped/CMakeFiles/ps_ped.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ps_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/interproc/CMakeFiles/ps_interproc.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/ps_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/ps_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ps_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/ps_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
