file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_transforms.dir/bench_table4_transforms.cpp.o"
  "CMakeFiles/bench_table4_transforms.dir/bench_table4_transforms.cpp.o.d"
  "bench_table4_transforms"
  "bench_table4_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
