# Empty dependencies file for bench_table4_transforms.
# This may be replaced when dependencies are built.
