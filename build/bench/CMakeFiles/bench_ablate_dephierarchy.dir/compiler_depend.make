# Empty compiler generated dependencies file for bench_ablate_dephierarchy.
# This may be replaced when dependencies are built.
