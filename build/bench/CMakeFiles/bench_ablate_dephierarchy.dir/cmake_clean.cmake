file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dephierarchy.dir/bench_ablate_dephierarchy.cpp.o"
  "CMakeFiles/bench_ablate_dephierarchy.dir/bench_ablate_dephierarchy.cpp.o.d"
  "bench_ablate_dephierarchy"
  "bench_ablate_dephierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dephierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
