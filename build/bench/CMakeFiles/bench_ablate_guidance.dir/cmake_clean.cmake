file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_guidance.dir/bench_ablate_guidance.cpp.o"
  "CMakeFiles/bench_ablate_guidance.dir/bench_ablate_guidance.cpp.o.d"
  "bench_ablate_guidance"
  "bench_ablate_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
