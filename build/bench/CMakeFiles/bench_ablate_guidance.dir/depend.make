# Empty dependencies file for bench_ablate_guidance.
# This may be replaced when dependencies are built.
