# Empty dependencies file for bench_table2_ui_usage.
# This may be replaced when dependencies are built.
