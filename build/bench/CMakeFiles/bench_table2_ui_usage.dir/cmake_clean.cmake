file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ui_usage.dir/bench_table2_ui_usage.cpp.o"
  "CMakeFiles/bench_table2_ui_usage.dir/bench_table2_ui_usage.cpp.o.d"
  "bench_table2_ui_usage"
  "bench_table2_ui_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ui_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
