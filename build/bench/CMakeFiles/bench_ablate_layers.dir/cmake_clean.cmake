file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_layers.dir/bench_ablate_layers.cpp.o"
  "CMakeFiles/bench_ablate_layers.dir/bench_ablate_layers.cpp.o.d"
  "bench_ablate_layers"
  "bench_ablate_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
