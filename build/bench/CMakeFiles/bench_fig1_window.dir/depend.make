# Empty dependencies file for bench_fig1_window.
# This may be replaced when dependencies are built.
