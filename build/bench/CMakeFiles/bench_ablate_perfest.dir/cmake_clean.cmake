file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_perfest.dir/bench_ablate_perfest.cpp.o"
  "CMakeFiles/bench_ablate_perfest.dir/bench_ablate_perfest.cpp.o.d"
  "bench_ablate_perfest"
  "bench_ablate_perfest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_perfest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
