# Empty dependencies file for bench_ablate_perfest.
# This may be replaced when dependencies are built.
