#ifndef PS_BENCH_COMMON_H
#define PS_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>

#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace ps::bench {

inline std::unique_ptr<ped::Session> loadWorkload(const std::string& name) {
  const workloads::Workload* w = workloads::byName(name);
  if (!w) {
    std::fprintf(stderr, "unknown workload %s\n", name.c_str());
    return nullptr;
  }
  DiagnosticEngine diags;
  auto s = ped::Session::load(w->source, diags);
  if (!s || diags.hasErrors()) {
    std::fprintf(stderr, "load failed for %s:\n%s", name.c_str(),
                 diags.dump().c_str());
    return nullptr;
  }
  return s;
}

/// Count the non-blank lines of a workload's Fortran source (Table 1's
/// "lines" column, measured on our synthetic equivalents).
inline int sourceLines(const workloads::Workload& w) {
  int lines = 0;
  bool nonBlank = false;
  for (const char* p = w.source; *p; ++p) {
    if (*p == '\n') {
      if (nonBlank) ++lines;
      nonBlank = false;
    } else if (*p != ' ' && *p != '\t') {
      nonBlank = true;
    }
  }
  return lines;
}

}  // namespace ps::bench

#endif  // PS_BENCH_COMMON_H
