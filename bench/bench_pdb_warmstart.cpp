// Persistent program database: cold session open (parse + full analysis)
// vs warm open (parse + rebind from the on-disk store) across all eight
// workshop decks. Reports, per deck:
//   cold and warm wall time, the warm/cold ratio, dependence tests
//   actually run on each path, store bytes on disk, and the record hit
//   rate the warm open achieved.
//
// The store is written once per deck (outside the timed region); each warm
// iteration re-reads it from disk, so the measurement includes I/O,
// checksum verification, and statement rebinding — everything a fresh
// editor session would pay.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace ps;

struct StoreFixture {
  std::string path;
  double coldSeconds = 0.0;
  long long coldTests = 0;
  std::uint64_t bytes = 0;
};

/// Analyze the deck cold once, persist its store, and remember the cold
/// numbers the warm path is compared against.
const StoreFixture& storeFor(const std::string& deck) {
  static std::map<std::string, StoreFixture> cache;
  auto it = cache.find(deck);
  if (it != cache.end()) return it->second;
  StoreFixture fx;
  fx.path = deck + ".bench.pspdb";
  auto s = bench::loadWorkload(deck);
  if (s) {
    benchmark::DoNotOptimize(s.get());
    auto begin = std::chrono::steady_clock::now();
    auto timed = bench::loadWorkload(deck);
    timed->analyzeParallel(1);
    fx.coldSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    fx.coldTests = timed->analysisStats().testsRequested;
    timed->savePdb(fx.path);
    fx.bytes = timed->pdbStats().bytesWritten;
  }
  return cache.emplace(deck, std::move(fx)).first->second;
}

void BM_ColdOpen(benchmark::State& state, const std::string& deck) {
  long long tests = 0;
  for (auto _ : state) {
    auto s = bench::loadWorkload(deck);
    if (!s) {
      state.SkipWithError("load failed");
      return;
    }
    s->analyzeParallel(1);
    tests = s->analysisStats().testsRequested;
    benchmark::DoNotOptimize(s.get());
  }
  state.counters["dep_tests"] = static_cast<double>(tests);
}

void BM_WarmOpen(benchmark::State& state, const std::string& deck) {
  const StoreFixture& fx = storeFor(deck);
  const workloads::Workload* w = workloads::byName(deck);
  if (!w || fx.path.empty()) {
    state.SkipWithError("fixture failed");
    return;
  }
  double warmSeconds = 0.0;
  ped::PdbStats ps;
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto begin = std::chrono::steady_clock::now();
    auto s = ped::Session::openWarm(w->source, fx.path, diags, 1);
    warmSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    if (!s || s->pdbStats().storeRejected) {
      state.SkipWithError("warm open failed");
      return;
    }
    ps = s->pdbStats();
    benchmark::DoNotOptimize(s.get());
  }
  const std::size_t hits = ps.summaryHits + ps.graphHits;
  const std::size_t probes =
      hits + ps.summaryMisses + ps.graphMisses;
  state.counters["warm_ms"] = warmSeconds * 1e3;
  state.counters["cold_ms"] = fx.coldSeconds * 1e3;
  state.counters["warm_over_cold"] =
      fx.coldSeconds > 0 ? warmSeconds / fx.coldSeconds : 0;
  state.counters["dep_tests_cold"] = static_cast<double>(fx.coldTests);
  state.counters["dep_tests_warm"] = static_cast<double>(ps.testsRunLive);
  state.counters["store_bytes"] = static_cast<double>(fx.bytes);
  state.counters["hit_rate"] =
      probes > 0 ? static_cast<double>(hits) / static_cast<double>(probes) : 0;
}

int registerAll() {
  for (const workloads::Workload& w : workloads::all()) {
    benchmark::RegisterBenchmark(("BM_ColdOpen/" + w.name).c_str(),
                                 BM_ColdOpen, w.name);
    benchmark::RegisterBenchmark(("BM_WarmOpen/" + w.name).c_str(),
                                 BM_WarmOpen, w.name);
  }
  return 0;
}

[[maybe_unused]] const int registered = registerAll();

}  // namespace

BENCHMARK_MAIN();
