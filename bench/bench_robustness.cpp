// Robustness bench: the cost of power steering. Measures the invariant
// auditor (Off / Cheap / Deep) on top of every transformation, the price of
// a transactional apply + rollback cycle, and — the safety claim itself —
// verifies that auditing never changes the analysis: the dependence graphs
// built with auditing enabled are identical to the unaudited ones for every
// workload.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fortran/pretty.h"
#include "transform/transform.h"

namespace {

using ps::bench::loadWorkload;

/// Stable rendering of every dependence edge of every workload procedure.
std::string graphsFingerprint(ps::ped::Session& s) {
  std::string out;
  for (const auto& name : s.procedureNames()) {
    s.selectProcedure(name);
    (void)s.loops();  // materialize the workspace
    for (const auto& r : s.dependencePane()) {
      out += name + "|" + r.type + "|" + r.source + "|" + r.sink + "|" +
             r.vector + "|" + std::to_string(r.level) + "\n";
    }
  }
  return out;
}

/// One full edit cycle under the given audit mode: insert a statement after
/// the first source row, then delete it again.
void editCycle(ps::ped::Session& s) {
  auto rows = s.sourcePane();
  if (rows.size() < 2) return;
  if (!s.insertStatementAfter(rows[1].stmt, "CONTINUE")) return;
  auto after = s.sourcePane();
  for (std::size_t i = 0; i + 1 < after.size(); ++i) {
    if (after[i].stmt == rows[1].stmt) {
      s.deleteStatement(after[i + 1].stmt);
      break;
    }
  }
}

void BM_EditCycleAuditMode(benchmark::State& state) {
  auto s = loadWorkload("slab2d");
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  const auto mode = static_cast<ps::ped::AuditMode>(state.range(0));
  s->setAuditMode(mode);
  (void)s->loops();
  for (auto _ : state) {
    editCycle(*s);
  }
  state.SetLabel(mode == ps::ped::AuditMode::Off     ? "audit=off"
                 : mode == ps::ped::AuditMode::Cheap ? "audit=cheap"
                                                     : "audit=deep");
}
BENCHMARK(BM_EditCycleAuditMode)
    ->Arg(static_cast<int>(ps::ped::AuditMode::Off))
    ->Arg(static_cast<int>(ps::ped::AuditMode::Cheap))
    ->Arg(static_cast<int>(ps::ped::AuditMode::Deep))
    ->Unit(benchmark::kMillisecond);

/// Transactional apply that always fails (injected mid-apply fault):
/// snapshot + attempted transform + rollback + full reanalysis.
void BM_ApplyRollbackCycle(benchmark::State& state) {
  auto s = loadWorkload("slab2d");
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  auto loops = s->loops();
  if (loops.empty()) {
    state.SkipWithError("no loops");
    return;
  }
  ps::transform::Target t;
  t.loop = loops[0].id;
  for (auto _ : state) {
    s->injectFaultOnce(ps::ped::Fault::MidApply);
    std::string error;
    bool ok = s->applyTransformation("Loop Reversal", t, &error);
    if (ok) {
      state.SkipWithError("fault-injected apply unexpectedly succeeded");
      return;
    }
    s->clearFailures();
  }
}
BENCHMARK(BM_ApplyRollbackCycle)->Unit(benchmark::kMillisecond);

/// The A1/A2 acceptance check: auditing is observation only. For every
/// workload the dependence graphs with Deep auditing must be identical to
/// the graphs with auditing off, and the deep audit itself must be clean.
void BM_AuditChangesNothing(benchmark::State& state) {
  int checked = 0;
  for (auto _ : state) {
    checked = 0;
    for (const auto& w : ps::workloads::all()) {
      auto plain = loadWorkload(w.name);
      auto audited = loadWorkload(w.name);
      if (!plain || !audited) {
        state.SkipWithError("load failed");
        return;
      }
      plain->setAuditMode(ps::ped::AuditMode::Off);
      audited->setAuditMode(ps::ped::AuditMode::Deep);
      std::string a = graphsFingerprint(*plain);
      std::string b = graphsFingerprint(*audited);
      if (a != b) {
        std::fprintf(stderr, "graph mismatch under auditing for %s\n",
                     w.name);
        state.SkipWithError("auditing changed the dependence graph");
        return;
      }
      if (!audited->auditNow(true).ok()) {
        state.SkipWithError("deep audit violation on a clean workload");
        return;
      }
      ++checked;
    }
  }
  state.counters["workloads_identical"] = checked;
}
BENCHMARK(BM_AuditChangesNothing)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
