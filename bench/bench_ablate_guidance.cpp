// Ablation A5: transformation guidance. "Several users want the
// transformation selection to include only those which are safe and
// profitable for the currently selected loop. This structure would save
// them from sifting through the entire list." We measure the menu the user
// faces per loop: the raw catalog, the applicable subset, and the
// safe-and-profitable subset.
#include <cstdio>

#include "bench_common.h"
#include "transform/transform.h"

int main() {
  std::printf("Ablation A5: transformation menu sizes per loop\n\n");
  std::printf("%-10s %8s %12s %18s\n", "program", "loops",
              "avg applicable", "avg safe+profitable");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::size_t catalog = ps::transform::Registry::instance().all().size();
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    if (!s) return 1;
    int loops = 0;
    long long applicable = 0, safeProf = 0;
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      for (const auto& l : s->loops()) {
        ++loops;
        applicable +=
            static_cast<long long>(s->guidance(l.id, false).size());
        safeProf += static_cast<long long>(s->guidance(l.id, true).size());
      }
    }
    std::printf("%-10s %8d %12.1f %18.1f\n", w.name.c_str(), loops,
                loops ? static_cast<double>(applicable) / loops : 0.0,
                loops ? static_cast<double>(safeProf) / loops : 0.0);
  }
  std::printf("\nraw catalog size every PED user had to sift through: %zu "
              "transformations.\nThe safe+profitable menu is the §5.3 "
              "request: a handful of suggestions per loop.\n", catalog);
  return 0;
}
