// Ablation A2: incremental update vs whole-program reanalysis. PED
// "provides ... incremental updates of dependence information to reflect
// the modified program"; we run an editing session (one variable
// classification per loop, across every procedure of all 8 workloads)
// under each policy and compare how many dependence tests each one runs.
//
// The incremental policy combines two mechanisms: per-nest edge splicing
// (pairs whose test inputs are unchanged copy their previous edges) and
// the session-wide dependence-test memo (structurally identical queries
// are answered from cache). The A2 baseline disables both and performs a
// full reanalysis of summaries + every procedure after each edit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"

namespace {

struct SessionResult {
  ps::dep::TestStats stats;
  double seconds = 0;
  int edits = 0;
  /// Per-procedure edge counts + per-loop parallel verdicts, to confirm
  /// the two policies produce identical analysis results.
  std::string digest;
};

/// One editing session: for every loop of every procedure, classify one
/// private scalar. `incremental` keeps splicing + memo on; otherwise each
/// edit is followed by a full reanalysis with both disabled.
SessionResult editSession(bool incremental) {
  SessionResult r;
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    s->setIncrementalUpdates(incremental);
    s->resetAnalysisStats();  // count only edit-driven analysis
    auto start = std::chrono::steady_clock::now();
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      for (const auto& loop : s->loops()) {
        s->selectLoop(loop.id);
        for (const auto& v : s->variablePane()) {
          if (v.kind == "private" && v.dim == 0) {
            s->classifyVariable(v.name, true, "edit");
            if (!incremental) s->fullReanalysis();
            ++r.edits;
            break;
          }
        }
      }
    }
    r.seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    r.stats.accumulate(s->analysisStats());
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      r.digest += name + ":" +
                  std::to_string(s->workspace().graph->all().size());
      for (const auto& loop : s->loops()) {
        r.digest += loop.parallelizable ? "P" : ".";
      }
      r.digest += ";";
    }
  }
  return r;
}

void BM_IncrementalEdits(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(editSession(true));
  }
}
BENCHMARK(BM_IncrementalEdits)->Unit(benchmark::kMillisecond);

void BM_FullReanalysisEdits(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(editSession(false));
  }
}
BENCHMARK(BM_FullReanalysisEdits)->Unit(benchmark::kMillisecond);

void row(const char* label, long long inc, long long full) {
  std::printf("%-28s %14lld %14lld\n", label, inc, full);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation A2: incremental update (splice + memo) vs "
              "whole-program reanalysis per edit\n\n");
  SessionResult inc = editSession(true);
  SessionResult full = editSession(false);

  std::printf("%-28s %14s %14s\n", "", "incremental", "rebuild-all");
  row("edits", inc.edits, full.edits);
  row("tests requested", inc.stats.testsRequested,
      full.stats.testsRequested);
  row("tests run", inc.stats.testsRun(), full.stats.testsRun());
  row("memo hits", inc.stats.memoHits, full.stats.memoHits);
  row("memo misses", inc.stats.memoMisses, full.stats.memoMisses);
  row("pairs tested", inc.stats.pairsTested, full.stats.pairsTested);
  row("pairs spliced", inc.stats.pairsSpliced, full.stats.pairsSpliced);
  row("edges spliced", inc.stats.edgesSpliced, full.stats.edgesSpliced);
  row("edges rebuilt", inc.stats.edgesRebuilt, full.stats.edgesRebuilt);
  std::printf("per tier:\n");
  row("  ZIV disproofs", inc.stats.zivDisproofs, full.stats.zivDisproofs);
  row("  ZIV exact matches", inc.stats.zivExact, full.stats.zivExact);
  row("  strong SIV tests", inc.stats.strongSiv, full.stats.strongSiv);
  row("  strong SIV disproofs", inc.stats.strongSivDisproofs,
      full.stats.strongSivDisproofs);
  row("  index-array disproofs", inc.stats.indexArrayDisproofs,
      full.stats.indexArrayDisproofs);
  row("  FM runs", inc.stats.fmRuns, full.stats.fmRuns);
  row("  FM disproofs", inc.stats.fmDisproofs, full.stats.fmDisproofs);
  row("  assumed (pending)", inc.stats.assumed, full.stats.assumed);
  std::printf("%-28s %13.1f%% %14s\n", "memo hit-rate",
              inc.stats.testsRequested > 0
                  ? 100.0 * static_cast<double>(inc.stats.memoHits) /
                        static_cast<double>(inc.stats.testsRequested)
                  : 0.0,
              "-");
  std::printf("%-28s %12.1fms %12.1fms\n", "edit wall time",
              inc.seconds * 1e3, full.seconds * 1e3);
  std::printf("%-28s %12.1fms %12.1fms\n", "  dependence pair phase",
              inc.stats.pairSeconds * 1e3, full.stats.pairSeconds * 1e3);
  std::printf("%-28s %12.1fms %12.1fms\n", "  dataflow phase",
              inc.stats.dataflowSeconds * 1e3,
              full.stats.dataflowSeconds * 1e3);
  double ratio = inc.stats.testsRun() > 0
                     ? static_cast<double>(full.stats.testsRun()) /
                           static_cast<double>(inc.stats.testsRun())
                     : 0.0;
  std::printf("\ntest reduction: %.1fx fewer dependence tests "
              "(target: >= 5x)\n",
              ratio);
  std::printf("wall-time speedup: %.1fx\n",
              full.seconds / (inc.seconds > 0 ? inc.seconds : 1e-9));
  std::printf("graphs agree: %s\n\n",
              inc.digest == full.digest ? "yes" : "NO (BUG)");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
