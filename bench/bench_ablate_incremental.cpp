// Ablation A2: incremental update vs whole-program reanalysis. PED
// "provides ... incremental updates of dependence information to reflect
// the modified program"; we run an editing session (one variable
// classification per loop, across every procedure of all 8 workloads)
// under each policy and compare how many dependence tests each one runs.
//
// The incremental policy combines two mechanisms: per-nest edge splicing
// (pairs whose test inputs are unchanged copy their previous edges) and
// the session-wide dependence-test memo (structurally identical queries
// are answered from cache). The A2 baseline disables both and performs a
// full reanalysis of summaries + every procedure after each edit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cctype>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "support/taskpool.h"

namespace {

struct SessionResult {
  ps::dep::TestStats stats;
  double seconds = 0;
  int edits = 0;
  /// Per-procedure edge counts + per-loop parallel verdicts, to confirm
  /// the two policies produce identical analysis results.
  std::string digest;
};

/// One editing session: for every loop of every procedure, classify one
/// private scalar. `incremental` keeps splicing + memo on; otherwise each
/// edit is followed by a full reanalysis with both disabled.
SessionResult editSession(bool incremental) {
  SessionResult r;
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    s->setIncrementalUpdates(incremental);
    s->resetAnalysisStats();  // count only edit-driven analysis
    auto start = std::chrono::steady_clock::now();
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      for (const auto& loop : s->loops()) {
        s->selectLoop(loop.id);
        for (const auto& v : s->variablePane()) {
          if (v.kind == "private" && v.dim == 0) {
            s->classifyVariable(v.name, true, "edit");
            if (!incremental) s->fullReanalysis();
            ++r.edits;
            break;
          }
        }
      }
    }
    r.seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    r.stats.accumulate(s->analysisStats());
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      r.digest += name + ":" +
                  std::to_string(s->workspace().graph->all().size());
      for (const auto& loop : s->loops()) {
        r.digest += loop.parallelizable ? "P" : ".";
      }
      r.digest += ";";
    }
  }
  return r;
}

void BM_IncrementalEdits(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(editSession(true));
  }
}
BENCHMARK(BM_IncrementalEdits)->Unit(benchmark::kMillisecond);

void BM_FullReanalysisEdits(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(editSession(false));
  }
}
BENCHMARK(BM_FullReanalysisEdits)->Unit(benchmark::kMillisecond);

void row(const char* label, long long inc, long long full) {
  std::printf("%-28s %14lld %14lld\n", label, inc, full);
}

// ---------------------------------------------------------------------------
// Parallel column: dirty-set-driven parallel incremental re-analysis.
//
// For every deck: warm the session, then time a burst of single-statement
// edits under each policy. seq-inc settles the dirty set inline on the
// session thread; par-inc(t) defers, then analyzeOn schedules ONLY the
// dirty procedures on a t-thread pool (clean nests splice, warm memo);
// par-full(t) defers with incremental updates off, so the same pool
// rebuilds summaries and every procedure after each edit. Pools live
// outside the timed region.
// ---------------------------------------------------------------------------

/// The edit probe: the first unlabeled assignment statement in the deck,
/// rewritten by wrapping its RHS (same subscripts, fresh statement id, so
/// the enclosing nest's pairs go dirty and everything else splices).
struct EditProbe {
  std::string proc;
  ps::fortran::StmtId stmt = ps::fortran::kInvalidStmt;
  int ordinal = 0;   // pane position; stable across in-place rewrites
  std::string even;  // rewritten text for even-numbered edits
  std::string odd;   // original text, restored on odd-numbered edits
};

bool findProbe(ps::ped::Session& s, EditProbe* probe) {
  for (const auto& name : s.procedureNames()) {
    if (!s.selectProcedure(name)) continue;
    for (const auto& r : s.sourcePane()) {
      if (r.loopStart) continue;
      if (!r.text.empty() && std::isdigit(static_cast<unsigned char>(r.text[0])))
        continue;
      std::size_t eq = r.text.find(" = ");
      if (eq == std::string::npos || r.text.rfind("IF", 0) == 0 ||
          r.text.rfind("CALL", 0) == 0) {
        continue;
      }
      probe->proc = name;
      probe->stmt = r.stmt;
      probe->ordinal = r.ordinal;
      probe->odd = r.text;
      probe->even = r.text.substr(0, eq) + " = (" + r.text.substr(eq + 3) + ")*2";
      return true;
    }
  }
  return false;
}

constexpr int kEditBurst = 8;

struct ParCell {
  double ms = 0;
  long long testsRun = 0;
};

/// Rewrites the probe statement kEditBurst times (alternating text so every
/// edit is a real change), settling per `mode`, and returns total wall time
/// and dependence tests actually run.
enum class ParMode { SeqInc, ParInc, ParFull };

ParCell editBurst(const std::string& deck, ParMode mode, int threads) {
  ParCell cell;
  auto s = ps::bench::loadWorkload(deck);
  if (!s) return cell;
  ps::support::TaskPool pool(threads);
  if (mode == ParMode::SeqInc) {
    s->fullReanalysis();  // warm graphs + memo
  } else {
    s->analyzeOn(pool);  // warm graphs + memo through the pool
    s->setDeferredAnalysis(true);
    if (mode == ParMode::ParFull) s->setIncrementalUpdates(false);
  }
  EditProbe probe;
  if (!findProbe(*s, &probe)) return cell;
  s->selectProcedure(probe.proc);
  s->resetAnalysisStats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kEditBurst; ++k) {
    if (!s->editStatement(probe.stmt, k % 2 == 0 ? probe.even : probe.odd))
      break;
    // Settle the dirty set through the pool BEFORE touching any pane:
    // panes settle on access, which would drain the dirty set sequentially
    // and leave analyzeOn with nothing to schedule.
    if (mode != ParMode::SeqInc) s->analyzeOn(pool);
    // The rewritten statement carries a fresh id; retarget by position.
    probe.stmt = ps::fortran::kInvalidStmt;
    for (const auto& r : s->sourcePane()) {
      if (r.ordinal == probe.ordinal) {
        probe.stmt = r.stmt;
        break;
      }
    }
    if (probe.stmt == ps::fortran::kInvalidStmt) break;
  }
  cell.ms = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() *
            1e3;
  cell.testsRun = s->analysisStats().testsRun();
  return cell;
}

void parallelIncrementalSection() {
  std::printf(
      "Parallel incremental re-analysis: %d-edit burst per deck "
      "(single-statement rewrite)\n",
      kEditBurst);
  std::printf("%-12s %-12s %-12s %-12s %-12s %-12s\n", "", "seq-inc",
              "par-inc(2)", "par-inc(4)", "par-inc(8)", "par-full(4)");
  std::string largest;
  long long largestTests = -1;
  ParCell largestCells[5];
  for (const auto& w : ps::workloads::all()) {
    ParCell cells[5] = {
        editBurst(w.name, ParMode::SeqInc, 1),
        editBurst(w.name, ParMode::ParInc, 2),
        editBurst(w.name, ParMode::ParInc, 4),
        editBurst(w.name, ParMode::ParInc, 8),
        editBurst(w.name, ParMode::ParFull, 4),
    };
    std::printf("%-12s", w.name.c_str());
    for (const ParCell& c : cells)
      std::printf(" %7.2fms/%-5lld", c.ms, c.testsRun);
    std::printf("\n");
    if (cells[4].testsRun > largestTests) {
      largestTests = cells[4].testsRun;
      largest = w.name;
      for (int i = 0; i < 5; ++i) largestCells[i] = cells[i];
    }
  }
  const ParCell& seq = largestCells[0];
  const ParCell& par4 = largestCells[2];
  const ParCell& full4 = largestCells[4];
  std::printf("\nlargest deck (%s):\n", largest.c_str());
  std::printf("  par-inc(4) tests %lld vs par-full(4) %lld (fewer: %s), "
              "vs seq-inc %lld (match: %s)\n",
              par4.testsRun, full4.testsRun,
              par4.testsRun < full4.testsRun ? "yes" : "NO",
              seq.testsRun, par4.testsRun == seq.testsRun ? "yes" : "NO");
  std::printf("  par-inc(4) %.2fms vs seq-inc %.2fms (%.2fx) "
              "vs par-full(4) %.2fms (%.2fx)\n",
              par4.ms, seq.ms, seq.ms / (par4.ms > 0 ? par4.ms : 1e-9),
              full4.ms, full4.ms / (par4.ms > 0 ? par4.ms : 1e-9));
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::printf("  (hardware_concurrency=%u: thread scaling vs seq-inc is "
                "not measurable on this host; the work-reduction column is "
                "the portable signal)\n",
                hw);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation A2: incremental update (splice + memo) vs "
              "whole-program reanalysis per edit\n\n");
  SessionResult inc = editSession(true);
  SessionResult full = editSession(false);

  std::printf("%-28s %14s %14s\n", "", "incremental", "rebuild-all");
  row("edits", inc.edits, full.edits);
  row("tests requested", inc.stats.testsRequested,
      full.stats.testsRequested);
  row("tests run", inc.stats.testsRun(), full.stats.testsRun());
  row("memo hits", inc.stats.memoHits, full.stats.memoHits);
  row("memo misses", inc.stats.memoMisses, full.stats.memoMisses);
  row("pairs tested", inc.stats.pairsTested, full.stats.pairsTested);
  row("pairs spliced", inc.stats.pairsSpliced, full.stats.pairsSpliced);
  row("edges spliced", inc.stats.edgesSpliced, full.stats.edgesSpliced);
  row("edges rebuilt", inc.stats.edgesRebuilt, full.stats.edgesRebuilt);
  std::printf("per tier:\n");
  row("  ZIV disproofs", inc.stats.zivDisproofs, full.stats.zivDisproofs);
  row("  ZIV exact matches", inc.stats.zivExact, full.stats.zivExact);
  row("  strong SIV tests", inc.stats.strongSiv, full.stats.strongSiv);
  row("  strong SIV disproofs", inc.stats.strongSivDisproofs,
      full.stats.strongSivDisproofs);
  row("  index-array disproofs", inc.stats.indexArrayDisproofs,
      full.stats.indexArrayDisproofs);
  row("  FM runs", inc.stats.fmRuns, full.stats.fmRuns);
  row("  FM disproofs", inc.stats.fmDisproofs, full.stats.fmDisproofs);
  row("  assumed (pending)", inc.stats.assumed, full.stats.assumed);
  std::printf("%-28s %13.1f%% %14s\n", "memo hit-rate",
              inc.stats.testsRequested > 0
                  ? 100.0 * static_cast<double>(inc.stats.memoHits) /
                        static_cast<double>(inc.stats.testsRequested)
                  : 0.0,
              "-");
  std::printf("%-28s %12.1fms %12.1fms\n", "edit wall time",
              inc.seconds * 1e3, full.seconds * 1e3);
  std::printf("%-28s %12.1fms %12.1fms\n", "  dependence pair phase",
              inc.stats.pairSeconds * 1e3, full.stats.pairSeconds * 1e3);
  std::printf("%-28s %12.1fms %12.1fms\n", "  dataflow phase",
              inc.stats.dataflowSeconds * 1e3,
              full.stats.dataflowSeconds * 1e3);
  double ratio = inc.stats.testsRun() > 0
                     ? static_cast<double>(full.stats.testsRun()) /
                           static_cast<double>(inc.stats.testsRun())
                     : 0.0;
  std::printf("\ntest reduction: %.1fx fewer dependence tests "
              "(target: >= 5x)\n",
              ratio);
  std::printf("wall-time speedup: %.1fx\n",
              full.seconds / (inc.seconds > 0 ? inc.seconds : 1e-9));
  std::printf("graphs agree: %s\n\n",
              inc.digest == full.digest ? "yes" : "NO (BUG)");

  parallelIncrementalSection();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
