// Ablation A2: incremental update vs whole-program reanalysis. PED
// "provides ... incremental updates of dependence information to reflect
// the modified program"; we time an editing session (a sequence of
// variable classifications across procedures) under each policy.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

namespace {

/// One editing session: for each procedure, classify one private scalar.
/// `incremental` uses the session's per-procedure update; otherwise every
/// edit is followed by a full reanalysis of summaries + all procedures.
double editSession(bool incremental, int* edits) {
  auto start = std::chrono::steady_clock::now();
  *edits = 0;
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    for (const auto& name : s->procedureNames()) {
      s->selectProcedure(name);
      for (const auto& loop : s->loops()) {
        s->selectLoop(loop.id);
        for (const auto& v : s->variablePane()) {
          if (v.kind == "private" && v.dim == 0) {
            s->classifyVariable(v.name, true, "edit");
            if (!incremental) s->fullReanalysis();
            ++*edits;
            break;
          }
        }
        break;  // one loop per procedure
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_IncrementalEdits(benchmark::State& state) {
  for (auto _ : state) {
    int edits;
    benchmark::DoNotOptimize(editSession(true, &edits));
  }
}
BENCHMARK(BM_IncrementalEdits)->Unit(benchmark::kMillisecond);

void BM_FullReanalysisEdits(benchmark::State& state) {
  for (auto _ : state) {
    int edits;
    benchmark::DoNotOptimize(editSession(false, &edits));
  }
}
BENCHMARK(BM_FullReanalysisEdits)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation A2: incremental per-procedure update vs "
              "whole-program reanalysis per edit\n\n");
  int editsInc = 0, editsFull = 0;
  double tInc = editSession(true, &editsInc);
  double tFull = editSession(false, &editsFull);
  std::printf("%-32s %8d edits  %10.1f ms\n", "incremental update",
              editsInc, tInc * 1e3);
  std::printf("%-32s %8d edits  %10.1f ms\n", "full reanalysis per edit",
              editsFull, tFull * 1e3);
  std::printf("speedup: %.1fx\n\n", tFull / (tInc > 0 ? tInc : 1e-9));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
