// Emission bench: what turning a marked session into a validated OpenMP
// deck costs. Three questions: how fast clause derivation + directive
// rendering alone runs (the interactive "show me the directive" number);
// what the full pipeline adds — relative validation under shuffled
// schedules plus the 1/2/4/8-thread round-trip re-analysis; and the whole
// corpus sweep with the per-stage split and the clause histogram, the
// numbers EXPERIMENTS.md reports.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "emit/emit.h"
#include "workloads/emission_driver.h"

namespace {

using ps::bench::loadWorkload;

const char* const kDecks[] = {"spec77", "neoss",  "nxsns",    "dpmin",
                              "slab2d", "slalom", "pueblo3d", "arc3d"};

/// Clause derivation + rendering only: no interpreter runs, no round-trip.
/// This is the latency a user feels asking PED "emit this deck".
void BM_EmitPlanOnly(benchmark::State& state) {
  auto s = loadWorkload(kDecks[state.range(0)]);
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  const ps::workloads::MarkCounts mc =
      ps::workloads::markParallelLoops(*s, /*forceAllLoops=*/true);
  ps::emit::EmitOptions opts;
  opts.relativeValidation = false;
  opts.roundTrip = false;
  int emitted = 0;
  int refused = 0;
  for (auto _ : state) {
    ps::emit::EmissionReport r = s->emitOpenMP(opts);
    if (!r.ran) {
      state.SkipWithError(("emission failed: " + r.error).c_str());
      return;
    }
    emitted = r.loopsEmitted;
    refused = r.loopsRefused;
    benchmark::DoNotOptimize(r.deckText);
  }
  state.SetLabel(std::string(kDecks[state.range(0)]) + " emitted=" +
                 std::to_string(emitted) + " refused=" +
                 std::to_string(refused) + " marks(safe=" +
                 std::to_string(mc.safe) + ",red=" +
                 std::to_string(mc.reduction) + ",forced=" +
                 std::to_string(mc.forced) + ")");
}
BENCHMARK(BM_EmitPlanOnly)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

/// The full validated pipeline on one deck: relative validation under
/// shuffled schedules, then round-trip re-analysis at 1/2/4/8 threads.
void BM_EmitValidated(benchmark::State& state) {
  auto s = loadWorkload(kDecks[state.range(0)]);
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  (void)ps::workloads::markParallelLoops(*s, /*forceAllLoops=*/true);
  double emitSec = 0.0;
  double validateSec = 0.0;
  double roundTripSec = 0.0;
  for (auto _ : state) {
    ps::emit::EmissionReport r = s->emitOpenMP({});
    if (!r.ran) {
      state.SkipWithError(("emission failed: " + r.error).c_str());
      return;
    }
    if (r.roundTripChecked && !r.roundTripOk) {
      state.SkipWithError(("round-trip failed: " + r.roundTripDetail).c_str());
      return;
    }
    emitSec = r.emitSeconds;
    validateSec = r.validateSeconds;
    roundTripSec = r.roundTripSeconds;
    benchmark::DoNotOptimize(r.deckText);
  }
  state.counters["emit_s"] = emitSec;
  state.counters["validate_s"] = validateSec;
  state.counters["roundtrip_s"] = roundTripSec;
  state.SetLabel(kDecks[state.range(0)]);
}
BENCHMARK(BM_EmitValidated)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

/// The whole-corpus sweep EXPERIMENTS.md reports: every deck loaded,
/// marked and emitted; the label carries the clause histogram and the
/// counters carry the per-stage wall-time split.
void BM_EmissionSweep(benchmark::State& state) {
  ps::workloads::EmissionSweep sw;
  for (auto _ : state) {
    ps::workloads::EmissionDriverOptions opts;
    opts.forceAllLoops = true;
    sw = ps::workloads::emitAllDecks(opts);
    if (!sw.allDecksRan || !sw.allRoundTripsOk || !sw.zeroSilentDrops) {
      state.SkipWithError("sweep invariants violated");
      return;
    }
    benchmark::DoNotOptimize(sw.loopsEmitted);
  }
  state.counters["emit_s"] = sw.emitSeconds;
  state.counters["validate_s"] = sw.validateSeconds;
  state.counters["roundtrip_s"] = sw.roundTripSeconds;
  std::string label = "emitted=" + std::to_string(sw.loopsEmitted) +
                      " refused=" + std::to_string(sw.loopsRefused) + " of " +
                      std::to_string(sw.loopsConsidered) + ";";
  for (const auto& [k, n] : sw.clauseHistogram) {
    label += " " + k + "=" + std::to_string(n);
  }
  state.SetLabel(label);
}
BENCHMARK(BM_EmissionSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
