// Table 3: Analysis Used or Needed During Workshop. For every program we
// measure, from the implementation itself:
//   dependence  U  — the system finds parallel loops automatically
//   scalar kills U — privatization analysis changed which loops are parallel
//   sections    U  — interprocedural section analysis changed the outcome
//   array kills N  — array kill analysis finds privatizable arrays that the
//                    plain dependence graph still serializes on
//   reductions  N  — unrecognized sum reductions inhibit parallel loops
//   index arrays N — pending dependences involve index-array subscripts
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "fortran/parser.h"
#include "dataflow/linear.h"
#include "interproc/array_kill.h"
#include "ir/refs.h"
#include "transform/transform.h"
#include "interproc/summaries.h"
#include "ped/assertions.h"

namespace {

struct Row {
  bool dependence = false;
  bool scalarKills = false;
  bool sections = false;
  bool arrayKills = false;
  bool reductions = false;
  bool indexArrays = false;
};

int countParallelLoops(ps::ped::Session& s) {
  int n = 0;
  for (const auto& name : s.procedureNames()) {
    s.selectProcedure(name);
    for (const auto& l : s.loops()) {
      if (l.parallelizable) ++n;
    }
  }
  return n;
}

/// Parallel-loop count over the program under a modified analysis context.
int countWith(const ps::workloads::Workload& w,
              void (*tweak)(ps::dep::AnalysisContext*)) {
  ps::DiagnosticEngine diags;
  auto prog = ps::fortran::parseSource(w.source, diags);
  ps::interproc::SummaryBuilder summaries(*prog);
  // Source-directive assertions apply in every configuration, so the
  // ablation isolates exactly one analysis.
  std::vector<ps::ped::Assertion> assertions;
  for (const auto& unit : prog->units) {
    unit->forEachStmt([&](const ps::fortran::Stmt& st) {
      if (st.kind == ps::fortran::StmtKind::Assertion) {
        auto a = ps::ped::parseAssertion(st.assertionText, diags);
        if (a) assertions.push_back(std::move(*a));
      }
    });
  }
  int n = 0;
  for (auto& unit : prog->units) {
    ps::ir::ProcedureModel model(*unit);
    ps::interproc::InterproceduralOracle oracle(summaries, *unit);
    ps::dep::AnalysisContext ctx;
    ctx.oracle = &oracle;
    ctx.inheritedConstants = summaries.inheritedConstantsFor(unit->name);
    ctx.inheritedRelations = summaries.inheritedRelationsFor(unit->name);
    ps::ped::applyAssertions(assertions, &ctx);
    tweak(&ctx);
    auto g = ps::dep::DependenceGraph::build(model, ctx);
    for (const auto& loopPtr : model.loops()) {
      if (g.parallelizable(*loopPtr)) ++n;
    }
  }
  return n;
}

Row analyze(const ps::workloads::Workload& w) {
  Row row;
  auto s = ps::bench::loadWorkload(w.name);

  int full = countParallelLoops(*s);
  row.dependence = full > 0;

  int noPriv = countWith(w, [](ps::dep::AnalysisContext* c) {
    c->usePrivatization = false;
  });
  row.scalarKills = noPriv < full;

  int noOracle = countWith(w, [](ps::dep::AnalysisContext* c) {
    c->oracle = nullptr;
  });
  row.sections = noOracle < full;

  // Needed analyses: measured WITHOUT user assertions (the paper's 'N'
  // marks what users had to supply by hand), on otherwise fully-analyzed
  // graphs.
  ps::DiagnosticEngine diags;
  auto prog = ps::fortran::parseSource(w.source, diags);
  ps::interproc::SummaryBuilder summaries(*prog);
  for (auto& unit : prog->units) {
    ps::ir::ProcedureModel model(*unit);
    ps::interproc::InterproceduralOracle oracle(summaries, *unit);
    ps::dep::AnalysisContext ctx;
    ctx.oracle = &oracle;
    ctx.inheritedConstants = summaries.inheritedConstantsFor(unit->name);
    ctx.inheritedRelations = summaries.inheritedRelationsFor(unit->name);
    ps::transform::Workspace ws(*prog, *unit, ctx);

    auto kills = ps::interproc::findArrayKills(*ws.model, *ws.graph,
                                               &ws.actx);
    if (!kills.empty()) row.arrayKills = true;

    const auto* red =
        ps::transform::Registry::instance().byName("Reduction Recognition");
    for (const auto& loopPtr : ws.model->loops()) {
      if (ws.graph->parallelizable(*loopPtr)) continue;
      ps::transform::Target t;
      t.loop = loopPtr->stmt->id;
      auto a = red->advise(ws, t);
      if (a.applicable && a.safe) row.reductions = true;
      // Index arrays: pending deps whose endpoints or whose loop bounds
      // contain array-valued subscripts.
      bool anyPending = false;
      for (const auto* d : ws.graph->parallelismInhibitors(*loopPtr)) {
        if (d->mark != ps::dep::DepMark::Pending) continue;
        anyPending = true;
        for (const auto* ref : {d->srcRef, d->dstRef}) {
          if (!ref) continue;
          for (const auto& sub : ref->args) {
            ps::dataflow::LinearExpr f = ps::dataflow::linearize(*sub);
            if (f.hasIndexArray) row.indexArrays = true;
            // An index array may hide behind a scalar copy (dpmin's
            // I3 = IT(N)): look through in-loop definitions of the
            // subscript's variables.
            sub->forEach([&](const ps::fortran::Expr& e) {
              if (e.kind != ps::fortran::ExprKind::VarRef) return;
              for (const ps::fortran::Stmt* bs : loopPtr->bodyStmts) {
                if (bs->kind != ps::fortran::StmtKind::Assign) continue;
                if (bs->lhs->kind != ps::fortran::ExprKind::VarRef ||
                    bs->lhs->name != e.name) {
                  continue;
                }
                ps::dataflow::LinearExpr rf =
                    ps::dataflow::linearize(*bs->rhs);
                if (rf.hasIndexArray) row.indexArrays = true;
              }
            });
          }
        }
      }
      if (anyPending) {
        ps::dataflow::LinearExpr lo =
            ps::dataflow::linearize(*loopPtr->stmt->doLo);
        ps::dataflow::LinearExpr hi =
            ps::dataflow::linearize(*loopPtr->stmt->doHi);
        if (lo.hasIndexArray || hi.hasIndexArray) row.indexArrays = true;
      }
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Table 3: Analysis Used or Needed (measured)\n");
  std::printf("U: existing analysis changed the outcome.  N: additional "
              "analysis/assertions would expose more parallelism.\n\n");
  std::printf("%-14s", "");
  for (const auto& w : ps::workloads::all()) {
    std::printf(" %-9s", w.name.c_str());
  }
  std::printf("\n%s\n", std::string(95, '-').c_str());

  std::vector<std::pair<std::string, std::vector<std::string>>> table;
  const char* rowNames[] = {"dependence", "scalar kills", "sections",
                            "array kills", "reductions", "index arrays"};
  std::vector<std::vector<std::string>> cells(
      6, std::vector<std::string>());
  for (const auto& w : ps::workloads::all()) {
    Row r = analyze(w);
    cells[0].push_back(r.dependence ? "U" : "");
    cells[1].push_back(r.scalarKills ? "U" : "");
    cells[2].push_back(r.sections ? "U" : "");
    cells[3].push_back(r.arrayKills ? "N" : "");
    cells[4].push_back(r.reductions ? "N" : "");
    cells[5].push_back(r.indexArrays ? "N" : "");
  }
  for (int i = 0; i < 6; ++i) {
    std::printf("%-14s", rowNames[i]);
    for (const auto& c : cells[i]) std::printf(" %-9s", c.c_str());
    std::printf("\n");
  }
  std::printf("\nPaper's shape: dependence U everywhere; scalar kills in "
              "nearly all; sections in most;\narray kills needed in ~7, "
              "reductions in ~5, index arrays in ~3 programs.\n");
  return 0;
}
