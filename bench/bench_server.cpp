// Multi-session analysis server: N concurrent scripted editing sessions
// (open warm over one shared store, then fixed-seed edit bursts settled on
// the shared pool) versus what the same N sessions would cost as solo cold
// editors. Reports, per deck:
//   sessions/sec for the whole storm, p50/p99 settle latency across every
//   burst of every session, aggregate dependence tests the N sessions ran
//   themselves vs N x the solo cold count (the sharing win), and the
//   shared-memo size at the end.
//
// Every iteration also verifies the acceptance bar: each session's final
// graphs must be byte-identical to the solo baseline replaying the same
// edit stream — sharing changes where answers come from, never what they
// are. A mismatch aborts the benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/server.h"
#include "workloads/server_driver.h"
#include "workloads/workloads.h"

namespace {

using namespace ps;

constexpr int kSessions = 8;

struct StormFixture {
  std::string storePath;
  workloads::StormScript script;
  std::vector<server::Edit> edits;
  std::string soloSnapshot;   // the byte-identity reference
  long long soloColdTests = 0;  // solo cold open + the same storm, live
};

const StormFixture& fixtureFor(const std::string& deck) {
  static std::map<std::string, StormFixture> cache;
  auto it = cache.find(deck);
  if (it != cache.end()) return it->second;
  StormFixture fx;
  fx.script = {deck, /*seed=*/7, /*bursts=*/3, /*editsPerBurst=*/4};
  fx.edits = workloads::stormEdits(fx.script);
  // The shared store: one settled cold session, saved once.
  auto cold = bench::loadWorkload(deck);
  if (cold && !fx.edits.empty()) {
    cold->analyzeParallel(1);
    fx.storePath = deck + ".server.bench.pspdb";
    if (!cold->savePdb(fx.storePath)) fx.storePath.clear();
    workloads::StormResult solo =
        workloads::runSoloBaseline(fx.script, &fx.edits);
    if (solo.ok) {
      fx.soloSnapshot = solo.snapshot;
      // What one solo editor costs end to end: the cold open's tests plus
      // the storm's live tests.
      fx.soloColdTests =
          cold->analysisStats().testsRun() + solo.liveTests;
    }
  }
  return cache.emplace(deck, std::move(fx)).first->second;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * (xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

void BM_ServerStorm(benchmark::State& state, const std::string& deck) {
  const StormFixture& fx = fixtureFor(deck);
  if (fx.storePath.empty() || fx.soloSnapshot.empty()) {
    state.SkipWithError("fixture failed");
    return;
  }
  double sessionsPerSec = 0.0;
  std::vector<double> settleMs;
  long long aggregateTests = 0;
  for (auto _ : state) {
    server::AnalysisServer srv({fx.storePath, /*analysisThreads=*/0});
    std::vector<workloads::StormResult> results(kSessions);
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    const auto begin = std::chrono::steady_clock::now();
    for (int c = 0; c < kSessions; ++c) {
      clients.emplace_back([&, c] {
        results[c] = workloads::runStormSession(
            srv, deck + ".bench" + std::to_string(c), fx.script, &fx.edits);
      });
    }
    for (auto& th : clients) th.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    sessionsPerSec = secs > 0 ? kSessions / secs : 0;
    settleMs.clear();
    aggregateTests = 0;
    for (const auto& r : results) {
      if (!r.ok) {
        state.SkipWithError("session failed");
        return;
      }
      if (r.snapshot != fx.soloSnapshot) {
        state.SkipWithError("snapshot mismatch vs solo baseline");
        return;
      }
      aggregateTests += r.liveTests;
      for (const auto& s : r.settles) settleMs.push_back(s.settleMillis);
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["sessions_per_sec"] = sessionsPerSec;
  state.counters["settle_p50_ms"] = percentile(settleMs, 0.50);
  state.counters["settle_p99_ms"] = percentile(settleMs, 0.99);
  state.counters["dep_tests_aggregate"] = static_cast<double>(aggregateTests);
  state.counters["dep_tests_n_x_solo"] =
      static_cast<double>(kSessions * fx.soloColdTests);
  state.counters["share_ratio"] =
      fx.soloColdTests > 0
          ? static_cast<double>(aggregateTests) /
                static_cast<double>(kSessions * fx.soloColdTests)
          : 0;
}

int registerAll() {
  for (const workloads::Workload& w : workloads::all()) {
    benchmark::RegisterBenchmark(("BM_ServerStorm/" + w.name).c_str(),
                                 BM_ServerStorm, w.name);
  }
  return 0;
}

[[maybe_unused]] const int registered = registerAll();

}  // namespace

BENCHMARK_MAIN();
