// Substrate A/B microbenchmarks: the mutex baseline vs the lock-free
// Chase–Lev + open-addressing substrate, in one process (both backends stay
// compiled; the DepMemo/TaskPool constructor overrides select per instance).
//
//   - DepMemo: N threads run a mixed lookup/insert/invalidateView workload
//     over a shared key universe; reported as ops/sec plus the lock-free
//     backend's CAS-retry count (slot-claim races + sealed-array respins).
//   - TaskPool: N external threads submit trivial tasks against a 4-worker
//     pool; reported as tasks/sec plus steals and steal-CAS aborts.
//
// Single-run wall-clock numbers, deliberately not google-benchmark: the
// interesting outputs are the contention counters next to the rates, and
// on contended multi-thread configs a fixed op count per thread is easier
// to reason about than iteration auto-scaling.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dependence/testsuite.h"
#include "support/taskpool.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Deterministic per-thread mix (no rand(): runs must be comparable).
std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// benchmark::DoNotOptimize without the benchmark dependency.
template <typename T>
void benchmarkDoNotOptimize(T&& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct MemoRun {
  double opsPerSec = 0.0;
  std::uint64_t retries = 0;
};

MemoRun runMemoMixed(bool lockfree, int threads, int opsPerThread) {
  ps::dep::DepMemo memo(lockfree);
  constexpr int kKeys = 256;
  std::vector<ps::dep::MemoKey> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    keys.emplace_back("bench|key" + std::to_string(i) + "|padpadpadpad");
  }
  ps::dep::LevelResult result;
  result.answer = ps::dep::DepAnswer::NoDependence;

  std::vector<ps::dep::DepMemo::ViewId> views(static_cast<std::size_t>(threads), 0);
  for (int t = 1; t < threads; ++t) views[static_cast<std::size_t>(t)] = memo.createView();

  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(t);
      const ps::dep::DepMemo::ViewId view = views[static_cast<std::size_t>(t)];
      std::uint64_t floor = memo.floorOf(view);
      std::uint64_t gen = memo.generation();
      for (int i = 0; i < opsPerThread; ++i) {
        const std::uint64_t r = xorshift(rng);
        const ps::dep::MemoKey& key = keys[r % kKeys];
        const std::uint64_t op = (r >> 32) % 100;
        if (op < 70) {
          benchmarkDoNotOptimize(memo.lookup(key, floor, gen).has_value());
        } else if (op < 95) {
          memo.insert(key, result, gen);
        } else {
          memo.invalidateView(view);
          floor = memo.floorOf(view);  // re-capture, like a rebuild would
          gen = memo.generation();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = secondsSince(t0);

  MemoRun out;
  out.opsPerSec = static_cast<double>(threads) * opsPerThread / secs;
  out.retries = memo.contentionRetries();
  return out;
}

struct PoolRun {
  double tasksPerSec = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t stealAborts = 0;
};

PoolRun runPoolSubmitSteal(bool lockfree, int submitters, int tasksEach) {
  ps::support::TaskPool pool(4, lockfree);
  std::atomic<long long> ran{0};
  ps::support::WaitGroup wg;
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&] {
      for (int i = 0; i < tasksEach; ++i) {
        pool.submit(wg, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  pool.wait(wg);
  const double secs = secondsSince(t0);

  PoolRun out;
  out.tasksPerSec = static_cast<double>(submitters) * tasksEach / secs;
  out.steals = pool.steals();
  out.stealAborts = pool.stealAborts();
  return out;
}

}  // namespace

int main() {
  constexpr int kMemoOps = 100000;  // per thread
  constexpr int kPoolTasksEach = 20000;

  std::printf("DepMemo mixed workload (70%% lookup / 25%% insert / 5%% "
              "invalidateView, %d ops/thread):\n", kMemoOps);
  std::printf("  %-9s %8s %14s %12s\n", "backend", "threads", "ops/sec",
              "cas-retries");
  for (int threads : {1, 8}) {
    for (bool lockfree : {false, true}) {
      const MemoRun r = runMemoMixed(lockfree, threads, kMemoOps);
      std::printf("  %-9s %8d %14.0f %12llu\n",
                  lockfree ? "lockfree" : "mutex", threads, r.opsPerSec,
                  static_cast<unsigned long long>(r.retries));
    }
  }

  std::printf("\nTaskPool submit/steal (4 workers, %d tasks/submitter):\n",
              kPoolTasksEach);
  std::printf("  %-9s %11s %14s %9s %8s\n", "backend", "submitters",
              "tasks/sec", "steals", "aborts");
  for (int submitters : {1, 8}) {
    for (bool lockfree : {false, true}) {
      const PoolRun r = runPoolSubmitSteal(lockfree, submitters, kPoolTasksEach);
      std::printf("  %-9s %11d %14.0f %9llu %8llu\n",
                  lockfree ? "lockfree" : "mutex", submitters, r.tasksPerSec,
                  static_cast<unsigned long long>(r.steals),
                  static_cast<unsigned long long>(r.stealAborts));
    }
  }
  return 0;
}
