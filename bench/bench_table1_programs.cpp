// Table 1: Analyzed and Parallelized Programs — name, description, lines,
// procedures. The paper lists the workshop codes; we list the synthetic
// equivalents bundled with this reproduction (see DESIGN.md for the
// substitution rationale; absolute sizes differ from the proprietary
// originals, the obstacle structure does not).
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("Table 1: Analyzed and Parallelized Programs (synthetic "
              "equivalents)\n");
  std::printf("%-10s | %-46s | %5s | %10s\n", "name", "description & origin",
              "lines", "procedures");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    if (!s) return 1;
    std::printf("%-10s | %-46s | %5d | %10zu\n", w.name.c_str(),
                w.description.c_str(), ps::bench::sourceLines(w),
                s->procedureNames().size());
    std::printf("%-10s |   %-44s |       |\n", "",
                w.contributorNote.c_str());
  }
  return 0;
}
