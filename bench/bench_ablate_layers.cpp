// Ablation A3: how each analysis layer earns its keep. Parallelizable-loop
// counts and pending-dependence totals as layers stack up:
//   L0  dependence tests only (no symbolics, no privatization, no interproc)
//   L1  + constants & symbolic relations
//   L2  + scalar privatization (kill analysis)
//   L3  + interprocedural MOD/REF/KILL/sections
//   L4  + user assertions (source directives)
// This regenerates, quantitatively, the story of the paper's Table 3.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "fortran/parser.h"
#include "ped/assertions.h"

namespace {

struct Counts {
  int parallel = 0;
  int pending = 0;
};

Counts measure(const ps::workloads::Workload& w, int layer) {
  ps::DiagnosticEngine diags;
  auto prog = ps::fortran::parseSource(w.source, diags);
  ps::interproc::SummaryBuilder summaries(*prog);

  // Assertions from source directives (layer 4 only).
  std::vector<ps::ped::Assertion> assertions;
  if (layer >= 4) {
    for (const auto& unit : prog->units) {
      unit->forEachStmt([&](const ps::fortran::Stmt& s) {
        if (s.kind == ps::fortran::StmtKind::Assertion) {
          auto a = ps::ped::parseAssertion(s.assertionText, diags);
          if (a) assertions.push_back(std::move(*a));
        }
      });
    }
  }

  Counts out;
  for (auto& unit : prog->units) {
    ps::ir::ProcedureModel model(*unit);
    ps::interproc::InterproceduralOracle oracle(summaries, *unit);
    ps::dep::AnalysisContext ctx;
    ctx.useSymbolicInfo = layer >= 1;
    ctx.usePrivatization = layer >= 2;
    ctx.oracle = layer >= 3 ? &oracle : nullptr;
    if (layer >= 3) {
      ctx.inheritedConstants = summaries.inheritedConstantsFor(unit->name);
      ctx.inheritedRelations = summaries.inheritedRelationsFor(unit->name);
    }
    if (layer >= 4) ps::ped::applyAssertions(assertions, &ctx);
    auto g = ps::dep::DependenceGraph::build(model, ctx);
    for (const auto& loopPtr : model.loops()) {
      if (g.parallelizable(*loopPtr)) ++out.parallel;
    }
    out.pending += g.summary().pendingDeps;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation A3: analysis layers vs parallel loops found / "
              "pending dependences remaining\n\n");
  const char* layers[] = {
      "L0 dependence tests only", "L1 + symbolics/constants",
      "L2 + scalar privatization", "L3 + interprocedural",
      "L4 + user assertions"};
  std::printf("%-28s", "");
  for (const auto& w : ps::workloads::all()) {
    std::printf(" %-10s", w.name.c_str());
  }
  std::printf("\n%s\n", std::string(116, '-').c_str());
  for (int layer = 0; layer <= 4; ++layer) {
    std::printf("%-28s", layers[layer]);
    for (const auto& w : ps::workloads::all()) {
      Counts c = measure(w, layer);
      char cell[24];
      std::snprintf(cell, sizeof cell, "%d par/%d pd", c.parallel,
                    c.pending);
      std::printf(" %-10s", cell);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: parallel-loop counts rise (and pending "
              "counts fall) monotonically as layers\nstack; assertions "
              "close the final gaps in pueblo3d and dpmin.\n");
  return 0;
}
