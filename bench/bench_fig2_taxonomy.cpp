// Figure 2: Transformation Taxonomy for PED, generated from the live
// registry (so it cannot drift from the implementation).
#include <cstdio>

#include "transform/transform.h"

int main() {
  std::printf("Figure 2: Transformation Taxonomy for PED\n\n%s",
              ps::transform::Registry::instance().taxonomy().c_str());
  return 0;
}
