// Parallel analysis engine: sequential vs task-DAG-scheduled whole-program
// analysis over the eight workshop decks. Reports, per thread count:
//   wall time of the batch analysis phase, speedup over the sequential
//   (nThreads = 1) reference, memo hit rate, and steal counts from the
//   work-stealing pool.
//
// NOTE: speedup is bounded by the cores actually present. On a one-core
// container every thread count collapses onto the same CPU and the parallel
// path can only show its scheduling overhead; run on real hardware to see
// the scaling the engine is built for.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "workloads/batch.h"

namespace {

/// One sequential reference measurement, shared across reports.
double sequentialSeconds() {
  static double seconds = [] {
    // Warm one run to fault in code and parse caches, then measure.
    (void)ps::workloads::analyzeAllDecks(1);
    ps::workloads::BatchResult r = ps::workloads::analyzeAllDecks(1);
    return r.seconds;
  }();
  return seconds;
}

void BM_BatchAnalysis(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  double seconds = 0.0;
  std::uint64_t steals = 0, tasks = 0;
  long long hits = 0, misses = 0;
  std::size_t deps = 0;
  for (auto _ : state) {
    ps::workloads::BatchResult r = ps::workloads::analyzeAllDecks(threads);
    seconds = r.seconds;
    steals = r.steals;
    tasks = r.tasksExecuted;
    hits = r.memoHits();
    misses = r.memoMisses();
    deps = 0;
    for (const auto& d : r.decks) deps += d.totalDeps;
    benchmark::DoNotOptimize(deps);
  }
  const double seq = sequentialSeconds();
  state.counters["analysis_ms"] = seconds * 1e3;
  state.counters["speedup_vs_seq"] = seconds > 0 ? seq / seconds : 0;
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["memo_hit_rate"] =
      (hits + misses) > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  state.counters["total_deps"] = static_cast<double>(deps);
}

void BM_HardwareConcurrency(benchmark::State& state) {
  // Records the core count alongside the numbers so a report read later
  // knows what ceiling the speedup column was up against.
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::thread::hardware_concurrency());
  }
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

BENCHMARK(BM_HardwareConcurrency)->Iterations(1);
BENCHMARK(BM_BatchAnalysis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Steal-latency telemetry: per-worker idle histograms for a batch run.
// Long bouts with few steals = tasks too coarse to keep the pool fed;
// many sub-millisecond bouts = tasks too fine (steal overhead dominates).
// ---------------------------------------------------------------------------

void printIdleHistograms(int threads) {
  ps::workloads::BatchResult r = ps::workloads::analyzeAllDecks(threads);
  std::printf("steal-latency histogram, %d threads (%llu tasks, %llu steals, "
              "%.1fms analysis):\n",
              r.threads, static_cast<unsigned long long>(r.tasksExecuted),
              static_cast<unsigned long long>(r.steals), r.seconds * 1e3);
  std::printf("  %-10s %7s %9s %9s %9s  %s\n", "", "bouts", "idle-ms",
              "attempts", "fails", "bout-length buckets <1us..>16ms (log2)");
  for (std::size_t i = 0; i < r.idle.size(); ++i) {
    const auto& row = r.idle[i];
    char label[16];
    if (i + 1 == r.idle.size()) {
      std::snprintf(label, sizeof label, "waiters");
    } else {
      std::snprintf(label, sizeof label, "worker %zu", i);
    }
    std::printf("  %-10s %7llu %9.2f %9llu %9llu  [", label,
                static_cast<unsigned long long>(row.bouts),
                static_cast<double>(row.idleNanos) / 1e6,
                static_cast<unsigned long long>(row.stealAttempts),
                static_cast<unsigned long long>(row.stealFails));
    for (std::size_t b = 0; b < row.histogram.size(); ++b) {
      std::printf("%s%llu", b ? " " : "",
                  static_cast<unsigned long long>(row.histogram[b]));
    }
    std::printf("]\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Parallel batch analysis: steal-latency telemetry\n\n");
  for (int threads : {2, 4, 8}) printIdleHistograms(threads);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
