// Ablation A4: navigation guidance quality. The workshop users relied on
// gprof profiles; ParaScope added a static performance estimator [26]. We
// compare the estimator's hottest loop against the interpreter's dynamic
// profile for every workload: does static estimation point users at the
// right loop?
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("Ablation A4: static performance estimation vs dynamic "
              "profile (per workload)\n\n");
  std::printf("%-10s  %-34s %-12s %-10s %s\n", "program",
              "estimator's hottest loop", "est. frac", "dyn. frac",
              "agree?");
  std::printf("%s\n", std::string(90, '-').c_str());
  int agreements = 0, total = 0;
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    if (!s) return 1;
    auto hot = s->hotLoops();
    auto run = s->profile();
    if (!run.ok || hot.empty()) continue;

    // Dynamic cost of a loop = executed statements inside its body.
    long long grand = 0;
    for (const auto& [id, n] : run.stmtCounts) {
      (void)id;
      grand += n;
    }
    auto dynCost = [&](const ps::ped::LoopEstimate& e) {
      s->selectProcedure(e.procedure);
      auto& ws = s->workspace();
      ps::ir::Loop* l = ws.loopOf(e.loop);
      long long c = 0;
      if (l) {
        for (const auto* st : l->bodyStmts) {
          auto it = run.stmtCounts.find(st->id);
          if (it != run.stmtCounts.end()) c += it->second;
        }
      }
      return c;
    };
    long long topDyn = dynCost(hot[0]);
    bool isMax = true;
    for (const auto& e : hot) {
      if (dynCost(e) > topDyn) isMax = false;
    }
    ++total;
    if (isMax) ++agreements;
    std::printf("%-10s  %-34s %10.1f%% %9.1f%% %s\n", w.name.c_str(),
                hot[0].headline.substr(0, 34).c_str(),
                hot[0].fraction * 100.0,
                grand > 0 ? 100.0 * static_cast<double>(topDyn) /
                                static_cast<double>(grand)
                          : 0.0,
                isMax ? "yes" : "no");
  }
  std::printf("\nagreement: %d/%d programs — static estimation suffices to "
              "focus user attention,\nwhich is what the users asked for in "
              "Section 3.2.\n(caveat: the dynamic metric attributes callee "
              "work to the callee, not to calling loops,\nso call-heavy "
              "drivers like spec77's GLOOP under-count dynamically.)\n",
              agreements, total);
  return 0;
}
