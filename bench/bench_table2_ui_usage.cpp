// Table 2: User Interface Evaluation. The paper counts which of seven user
// groups exercised each feature. We replay the §3.1 work model as one
// scripted session per program (the "group") and report, per feature, which
// programs' sessions used it — same asterisk matrix, with deterministic
// scripted users standing in for the workshop attendees.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

using ps::ped::Session;

namespace {

/// Replay the work model on one program: profile to find hot loops, select
/// them, inspect dependences and variables, correct conservative analysis
/// (classification + deletion of pending deps the "user" understands),
/// filter views, and check interfaces.
ps::ped::UsageCounters replayWorkModel(Session& s) {
  // 1. "the attendees augmented this work model with program execution
  //    profiles to help them focus on the most computationally intensive
  //    loops" — use the estimator + interpreter profile.
  auto hot = s.hotLoops();
  (void)s.profile();

  int visited = 0;
  for (const auto& est : hot) {
    if (visited++ >= 4) break;
    s.selectProcedure(est.procedure);
    if (!s.selectLoop(est.loop)) continue;

    bool blocked = false;
    for (const auto& row : s.loops()) {
      if (row.id == est.loop) blocked = !row.parallelizable;
    }

    // 2. "examine any parallelism inhibiting dependences" — users only dug
    //    into the analysis when the loop resisted.
    auto deps = s.dependencePane();
    if (blocked) (void)s.explainLoop(est.loop);

    // 3. Variable classification: correct conservative analysis — only
    //    worth the effort on blocked loops.
    if (blocked) {
      for (const auto& v : s.variablePane()) {
        if (v.kind == "private" && v.dim == 0) {
          s.classifyVariable(v.name, true, "killed each iteration");
          break;
        }
      }
    }

    // 4. Dependence deletion: reject pending deps the user can dismiss
    //    from domain knowledge (only when the loop is otherwise blocked).
    bool anyPending = false;
    for (const auto& d : deps) {
      if (d.mark == "pending") anyPending = true;
    }
    if (blocked && anyPending) {
      Session::DependenceFilter f;
      f.mark = ps::dep::DepMark::Pending;
      f.carriedOnly = true;
      s.markAllMatching(f, ps::dep::DepMark::Rejected,
                        "user: values cannot collide");
    }

    // 5. View filtering: only reached for when the pane overflows ("source
    //    view filtering was not widely used during the workshop").
    if (deps.size() > 12) {
      Session::DependenceFilter typeFilter;
      typeFilter.type = ps::dep::DepType::True;
      s.setDependenceFilter(typeFilter);
      (void)s.dependencePane();
      s.clearDependenceFilter();
    }
  }

  // 6. The Composition Editor interface check.
  (void)s.checkInterfaces();
  return s.usage();
}

}  // namespace

int main() {
  struct Row {
    const char* feature;
    int ps::ped::UsageCounters::* counter;
  };
  const Row rows[] = {
      {"dependence deletion", &ps::ped::UsageCounters::dependenceDeletions},
      {"variable classification",
       &ps::ped::UsageCounters::variableClassifications},
      {"access to analysis", &ps::ped::UsageCounters::analysisQueries},
      {"navigation: program", &ps::ped::UsageCounters::programNavigations},
      {"view filtering", &ps::ped::UsageCounters::viewFilterUses},
      {"detect interface error",
       &ps::ped::UsageCounters::interfaceErrorChecks},
  };

  std::map<std::string, ps::ped::UsageCounters> usage;
  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    if (!s) return 1;
    usage[w.name] = replayWorkModel(*s);
  }

  std::printf("Table 2: User Interface Evaluation (scripted work-model "
              "sessions; '*' = feature used by that program's session,\n"
              "count in parentheses)\n\n");
  std::printf("%-26s", "feature \\ program");
  for (const auto& w : ps::workloads::all()) {
    std::printf(" %-9s", w.name.c_str());
  }
  std::printf("  used-by\n%s\n", std::string(110, '-').c_str());
  for (const auto& row : rows) {
    std::printf("%-26s", row.feature);
    int groups = 0;
    for (const auto& w : ps::workloads::all()) {
      int n = usage[w.name].*(row.counter);
      if (n > 0) {
        ++groups;
        char cell[16];
        std::snprintf(cell, sizeof cell, "*(%d)", n);
        std::printf(" %-9s", cell);
      } else {
        std::printf(" %-9s", "");
      }
    }
    std::printf("  %d/8\n", groups);
  }
  std::printf("\nPaper's qualitative shape: dependence deletion and program "
              "navigation used by (almost) all groups;\nvariable "
              "classification, analysis access and interface checking by "
              "several; view filtering by few.\n");
  return 0;
}
