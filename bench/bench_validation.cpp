// Dynamic-validation bench: what trace-backed checking of dependence
// deletions costs. Three questions: how fast the interpreter records
// access events (events/sec, and the slowdown over an untraced run); what
// a full validateDeletions pass adds on top of analysis alone; and the
// refutation latency — the wall time from one unsound deletion to its
// auto-restore, the interactive number a PED user would feel.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "interp/machine.h"
#include "interp/trace.h"
#include "validate/validate.h"

namespace {

using ps::bench::loadWorkload;

const char* const kDecks[] = {"spec77", "neoss",  "nxsns",    "dpmin",
                              "slab2d", "slalom", "pueblo3d", "arc3d"};

/// Untraced serial run: the baseline the trace-recording overhead is
/// measured against.
void BM_InterpSerial(benchmark::State& state) {
  auto s = loadWorkload(kDecks[state.range(0)]);
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  long long steps = 0;
  for (auto _ : state) {
    ps::interp::Machine m(s->program());
    ps::interp::RunOptions opts;
    opts.checkParallel = false;
    ps::interp::RunResult r = m.run(opts);
    if (!r.ok) {
      state.SkipWithError(("run failed: " + r.error).c_str());
      return;
    }
    steps = r.steps;
    benchmark::DoNotOptimize(r.output);
  }
  state.SetLabel(std::string(kDecks[state.range(0)]) +
                 " steps=" + std::to_string(steps));
}
BENCHMARK(BM_InterpSerial)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

/// The same serial run with full trace recording: events/sec is the
/// recorder's throughput, and the ratio to BM_InterpSerial is the
/// recording slowdown.
void BM_TraceRecording(benchmark::State& state) {
  auto s = loadWorkload(kDecks[state.range(0)]);
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  long long events = 0;
  bool complete = true;
  for (auto _ : state) {
    ps::interp::Trace trace;
    trace.limits.maxEvents = 4'000'000;
    ps::interp::Machine m(s->program());
    ps::interp::RunOptions opts;
    opts.checkParallel = false;
    opts.trace = &trace;
    ps::interp::RunResult r = m.run(opts);
    if (!r.ok) {
      state.SkipWithError(("run failed: " + r.error).c_str());
      return;
    }
    events = static_cast<long long>(trace.events.size());
    complete = trace.complete();
    benchmark::DoNotOptimize(trace.events);
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(std::string(kDecks[state.range(0)]) +
                 (complete ? "" : " TRACE-INCOMPLETE"));
}
BENCHMARK(BM_TraceRecording)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

/// Analysis alone — the cost a session pays with validation off. The gap
/// to BM_AnalyzePlusValidate is the full price of a validation pass.
void BM_AnalyzeOnly(benchmark::State& state) {
  const char* deck = kDecks[state.range(0)];
  for (auto _ : state) {
    auto s = loadWorkload(deck);
    if (!s) {
      state.SkipWithError("load failed");
      return;
    }
    auto rep = s->analyzeParallel(1);
    benchmark::DoNotOptimize(rep.procedures);
  }
  state.SetLabel(deck);
}
BENCHMARK(BM_AnalyzeOnly)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

/// Analysis followed by a full validateDeletions pass (trace replay over
/// every pending edge; relative checks on). The extra time over
/// BM_AnalyzeOnly is the validation overhead the ISSUE budget bounds.
void BM_AnalyzePlusValidate(benchmark::State& state) {
  const char* deck = kDecks[state.range(0)];
  long long events = 0;
  int checked = 0;
  for (auto _ : state) {
    auto s = loadWorkload(deck);
    if (!s) {
      state.SkipWithError("load failed");
      return;
    }
    auto rep = s->analyzeParallel(1);
    benchmark::DoNotOptimize(rep.procedures);
    ps::validate::ValidationReport vr = s->validateDeletions();
    if (!vr.ran) {
      state.SkipWithError(("validation failed: " + vr.error).c_str());
      return;
    }
    events = vr.events;
    checked = vr.checked;
  }
  state.counters["trace_events"] = static_cast<double>(events);
  state.counters["edges_checked"] = static_cast<double>(checked);
  state.SetLabel(deck);
}
BENCHMARK(BM_AnalyzePlusValidate)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

/// Refutation latency: the session is analyzed and validated once; then
/// each iteration deletes one real (witnessed) dependence and times the
/// validateDeletions call that refutes and auto-restores it. This is the
/// interactive turnaround from "user deletes an unsound dependence" to
/// "PED has put it back with evidence".
void BM_RefutationLatency(benchmark::State& state) {
  const char* deck = kDecks[state.range(0)];
  auto s = loadWorkload(deck);
  if (!s) {
    state.SkipWithError("load failed");
    return;
  }
  s->analyzeParallel(1);
  // Baseline pass: find a pending edge the trace witnesses — deleting it
  // is a known-unsound edit the timed pass must catch.
  ps::ped::Session::ValidationOptions opts;
  opts.relativeChecks = false;
  ps::validate::ValidationReport base = s->validateDeletions(opts);
  std::uint32_t victim = 0;
  std::string victimProc;
  for (const auto& f : base.findings) {
    if (f.verdict == ps::validate::Verdict::WitnessFound &&
        f.edge.type != ps::dep::DepType::Input) {
      victim = f.edge.depId;
      victimProc = f.edge.procedure;
      break;
    }
  }
  if (victimProc.empty()) {
    // Deck with no witnessed pending edge (all-proven graph): nothing to
    // delete unsoundly, nothing to measure.
    for (auto _ : state) {
    }
    state.SetLabel(std::string(deck) + " (no witnessed pending edge)");
    return;
  }
  int restored = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (!s->selectProcedure(victimProc) ||
        !s->markDependence(victim, ps::dep::DepMark::Rejected,
                           "bench: believed independent")) {
      state.SkipWithError("deletion failed");
      return;
    }
    state.ResumeTiming();
    ps::validate::ValidationReport vr = s->validateDeletions(opts);
    restored = vr.restored;
    if (vr.restored < 1) {
      state.SkipWithError("unsound deletion was not restored");
      return;
    }
  }
  state.counters["restored"] = restored;
  state.SetLabel(std::string(deck) + " proc=" + victimProc);
}
BENCHMARK(BM_RefutationLatency)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
