// Table 4: Transformations Used and Needed During the Workshop. We ask the
// guidance engine, for every loop of every program, which transformations
// are applicable and safe; a 'U' cell means the catalog offers the
// transformation somewhere in that program, 'N' marks the two rows the
// paper reports as missing from PED (control-flow structuring and
// interprocedural motion — both implemented here, so they show as
// offerable too).
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "bench_common.h"

int main() {
  const char* rows[] = {
      "Loop Distribution", "Loop Interchange",        "Loop Fusion",
      "Scalar Expansion",  "Loop Unrolling",          "Arithmetic IF Removal",
      "Control Flow Structuring", "Loop Extraction",  "Loop Embedding",
  };
  std::map<std::string, std::set<std::string>> offered;  // row -> programs

  for (const auto& w : ps::workloads::all()) {
    auto s = ps::bench::loadWorkload(w.name);
    if (!s) return 1;
    for (const auto& procName : s->procedureNames()) {
      s->selectProcedure(procName);
      for (const auto& loop : s->loops()) {
        for (const auto& g : s->guidance(loop.id, /*safeOnly=*/false)) {
          if (g.advice.applicable && g.advice.safe) {
            offered[g.transformation].insert(w.name);
          }
        }
      }
    }
  }

  std::printf("Table 4: Transformations offerable per program (applicable "
              "AND safe, per the guidance engine)\n\n");
  std::printf("%-26s", "");
  for (const auto& w : ps::workloads::all()) {
    std::printf(" %-9s", w.name.c_str());
  }
  std::printf("\n%s\n", std::string(105, '-').c_str());
  for (const char* row : rows) {
    std::printf("%-26s", row);
    for (const auto& w : ps::workloads::all()) {
      bool u = offered[row].count(w.name) > 0;
      // The last four rows were the paper's "N" (needed, not in PED);
      // they are implemented in this reproduction.
      std::printf(" %-9s", u ? "U" : "");
    }
    std::printf("\n");
  }
  std::printf("\nPaper's shape: scalar expansion the most-used "
              "transformation; unrolling next; distribution /\ninterchange "
              "/ fusion each used once; control flow simplification needed "
              "by 3 programs\n(neoss, nxsns, dpmin era codes); "
              "interprocedural motion needed by spec77.\n");
  return 0;
}
