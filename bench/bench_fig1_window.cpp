// Figure 1: The ParaScope Editor window — source pane, dependence pane,
// variable pane — opened on the slalom factorization nest (the same code
// the paper's screenshot shows: coeff(k,j) updates under DO 607/605/604).
#include <cstdio>

#include "bench_common.h"
#include "ped/render.h"

int main() {
  auto s = ps::bench::loadWorkload("slalom");
  if (!s) return 1;
  s->selectProcedure("FACTOR");
  // Select the innermost factorization loop (the paper highlights the
  // update statement's dependences).
  auto loops = s->loops();
  for (const auto& l : loops) {
    if (l.headline.find("DO 604") != std::string::npos ||
        l.level == 3) {
      s->selectLoop(l.id);
      break;
    }
  }
  std::printf("Figure 1: The ParaScope Editor (text rendering)\n\n%s",
              ps::ped::renderWindow(*s).c_str());
  return 0;
}
