// Ablation A1: the hierarchical dependence test suite. "A hierarchical
// suite of tests is used, starting with inexpensive tests" — we measure
// whole-program dependence analysis with the cheap ZIV/SIV tiers enabled
// versus Fourier–Motzkin-only, and report how many pairs each tier settles.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "fortran/parser.h"

namespace {

ps::dep::TestStats analyzeAll(bool cheapFirst, double* seconds) {
  ps::dep::TestStats total;
  auto start = std::chrono::steady_clock::now();
  for (const auto& w : ps::workloads::all()) {
    ps::DiagnosticEngine diags;
    auto prog = ps::fortran::parseSource(w.source, diags);
    for (auto& unit : prog->units) {
      ps::ir::ProcedureModel model(*unit);
      ps::dep::AnalysisContext ctx;
      ctx.cheapTestsFirst = cheapFirst;
      auto g = ps::dep::DependenceGraph::build(model, ctx);
      total.accumulate(g.stats());
    }
  }
  *seconds = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  return total;
}

void BM_HierarchicalSuite(benchmark::State& state) {
  for (auto _ : state) {
    double secs;
    auto stats = analyzeAll(true, &secs);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_HierarchicalSuite)->Unit(benchmark::kMillisecond);

void BM_FourierMotzkinOnly(benchmark::State& state) {
  for (auto _ : state) {
    double secs;
    auto stats = analyzeAll(false, &secs);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_FourierMotzkinOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation A1: hierarchical dependence testing vs "
              "Fourier-Motzkin only (all 8 workloads)\n\n");
  double tCheap, tFm;
  auto cheap = analyzeAll(true, &tCheap);
  auto fmOnly = analyzeAll(false, &tFm);
  std::printf("%-28s %12s %12s\n", "", "hierarchical", "FM-only");
  std::printf("%-28s %12lld %12lld\n", "ZIV disproofs",
              cheap.zivDisproofs, fmOnly.zivDisproofs);
  std::printf("%-28s %12lld %12lld\n", "ZIV exact matches", cheap.zivExact,
              fmOnly.zivExact);
  std::printf("%-28s %12lld %12lld\n", "strong SIV tests", cheap.strongSiv,
              fmOnly.strongSiv);
  std::printf("%-28s %12lld %12lld\n", "strong SIV disproofs",
              cheap.strongSivDisproofs, fmOnly.strongSivDisproofs);
  std::printf("%-28s %12lld %12lld\n", "index-array disproofs",
              cheap.indexArrayDisproofs, fmOnly.indexArrayDisproofs);
  std::printf("%-28s %12lld %12lld\n", "FM runs", cheap.fmRuns,
              fmOnly.fmRuns);
  std::printf("%-28s %12lld %12lld\n", "FM disproofs", cheap.fmDisproofs,
              fmOnly.fmDisproofs);
  std::printf("%-28s %12lld %12lld\n", "assumed (pending)", cheap.assumed,
              fmOnly.assumed);
  std::printf("%-28s %12lld %12lld\n", "tests requested",
              cheap.testsRequested, fmOnly.testsRequested);
  std::printf("%-28s %12lld %12lld\n", "tests run (after memo)",
              cheap.testsRun(), fmOnly.testsRun());
  std::printf("%-28s %12lld %12lld\n", "memo hits", cheap.memoHits,
              fmOnly.memoHits);
  std::printf("%-28s %12lld %12lld\n", "memo misses", cheap.memoMisses,
              fmOnly.memoMisses);
  std::printf("%-28s %11.1fms %11.1fms\n", "analysis wall time",
              tCheap * 1e3, tFm * 1e3);
  std::printf("%-28s %11.1fms %11.1fms\n", "  dependence pair phase",
              cheap.pairSeconds * 1e3, fmOnly.pairSeconds * 1e3);
  std::printf("\nExpected shape: the cheap tiers settle most pairs, "
              "cutting FM invocations sharply\nwith no change in the "
              "resulting dependence graph.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
