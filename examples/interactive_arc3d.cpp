// The §3.1 work model, driven programmatically on the arc3d workload: find
// the hot loops, read the panes, let interprocedural symbolic propagation
// and array kill analysis explain the impediments, privatize the work
// array, and validate the parallelized loop with the race detector — the
// full arc3d story from §4.3.
#include <cstdio>

#include "ped/render.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

int main() {
  ps::DiagnosticEngine diags;
  auto session = ps::ped::Session::load(
      ps::workloads::byName("arc3d")->source, diags);
  if (!session) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  // Step 1: the performance estimator ranks the loops (the navigation the
  // workshop users wanted built in).
  std::printf("== hottest loops ==\n");
  auto hot = session->hotLoops();
  for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
    std::printf("  %5.1f%%  %-10s %s\n", hot[i].fraction * 100.0,
                hot[i].procedure.c_str(), hot[i].headline.c_str());
  }

  // Step 2: open FILT3D's outer loop; the interprocedural relation
  // JM = JMAX - 1 (established in the main program, propagated through
  // COMMON) already sharpened its dependences.
  session->selectProcedure("FILT3D");
  auto loops = session->loops();
  session->selectLoop(loops[0].id);
  std::printf("\n== PED window on FILT3D ==\n%s",
              ps::ped::renderWindow(*session, 14, 8, 6).c_str());

  std::printf("== impediments ==\n%s\n",
              session->explainLoop(loops[0].id).c_str());

  // Step 3: the explanation names WR1 as killed every iteration (array
  // kill analysis). Classify it private — PED's variable classification
  // edit — and watch the loop become parallel.
  bool wasParallel = loops[0].parallelizable;
  session->classifyVariable("WR1", true,
                            "killed every iteration (array kill analysis)");
  loops = session->loops();
  std::printf("WR1 privatized: parallelizable %s -> %s\n",
              wasParallel ? "yes" : "no",
              loops[0].parallelizable ? "yes" : "no");

  // Step 4: convert to PARALLEL DO and validate dynamically: the
  // interpreter runs parallel loops in shuffled iteration order with a
  // cross-iteration conflict detector.
  std::string error;
  ps::transform::Target t;
  t.loop = loops[0].id;
  if (!session->applyTransformation("Sequential to Parallel", t, &error)) {
    std::fprintf(stderr, "parallelize failed: %s\n", error.c_str());
    return 1;
  }
  auto run = session->profile();
  // Classification-based privatization leaves WR1 in shared storage, so
  // the detector may report write-write conflicts on it; those are benign
  // (every iteration fully overwrites before reading). Flow/anti races
  // would mean the classification was wrong.
  int realRaces = 0;
  for (const auto& race : run.races) {
    if (!race.outputOnly) {
      ++realRaces;
      std::printf("  RACE on %s (iterations %lld vs %lld)\n",
                  race.variable.c_str(), race.iterationA, race.iterationB);
    }
  }
  std::printf("\n== dynamic validation ==\nok=%d flow-races=%d checksum=%g\n",
              run.ok, realRaces,
              run.output.empty() ? 0.0 : run.output[0]);
  return (run.ok && realRaces == 0) ? 0 : 1;
}
