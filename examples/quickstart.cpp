// Quickstart: load a Fortran program, look at what the analyzer sees, let
// the advisor parallelize a loop, and print the transformed source.
//
//   $ ./quickstart
//
// This is the smallest end-to-end tour of the public API: ped::Session is
// the facade; everything below it (parser, dependence analysis,
// interprocedural summaries, transformations, interpreter) is reachable
// through it.
#include <cstdio>

#include "fortran/pretty.h"
#include "ped/session.h"
#include "support/diagnostics.h"

int main() {
  const char* source =
      "      PROGRAM DEMO\n"
      "      REAL A(100), B(100)\n"
      "      DO 10 I = 1, 100\n"
      "        B(I) = FLOAT(I)\n"
      "   10 CONTINUE\n"
      "      DO 20 I = 1, 100\n"
      "        T = B(I)*2.0\n"
      "        A(I) = T + 1.0\n"
      "   20 CONTINUE\n"
      "      S = 0.0\n"
      "      DO 30 I = 1, 100\n"
      "        S = S + A(I)\n"
      "   30 CONTINUE\n"
      "      WRITE(6, *) S\n"
      "      END\n";

  ps::DiagnosticEngine diags;
  auto session = ps::ped::Session::load(source, diags);
  if (!session) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  // 1. What does the analyzer think of each loop?
  std::printf("== loops ==\n");
  for (const auto& loop : session->loops()) {
    std::printf("  %-28s %s\n", loop.headline.c_str(),
                loop.parallelizable ? "parallelizable"
                                    : "serialized");
  }

  // 2. Ask why the reduction loop is serialized.
  auto loops = session->loops();
  std::printf("\n== explanation for '%s' ==\n%s",
              loops[2].headline.c_str(),
              session->explainLoop(loops[2].id).c_str());

  // 3. Take the advisor's safe suggestions for it.
  std::printf("== guidance (safe + profitable) ==\n");
  for (const auto& g : session->guidance(loops[2].id, /*safeOnly=*/true)) {
    std::printf("  %-24s %s\n", g.transformation.c_str(),
                g.advice.explanation.c_str());
  }

  // 4. Apply reduction recognition, then parallelize everything that is
  //    now safe.
  std::string error;
  ps::transform::Target t;
  t.loop = loops[2].id;
  if (!session->applyTransformation("Reduction Recognition", t, &error)) {
    std::fprintf(stderr, "transform failed: %s\n", error.c_str());
    return 1;
  }
  for (const auto& loop : session->loops()) {
    if (!loop.parallelizable) continue;
    ps::transform::Target pt;
    pt.loop = loop.id;
    session->applyTransformation("Sequential to Parallel", pt, &error);
  }

  // 5. Show the transformed program and prove it still runs (the
  //    interpreter executes PARALLEL DO loops in shuffled order with a
  //    race detector armed).
  std::printf("\n== transformed program ==\n%s",
              ps::fortran::printProgram(session->program()).c_str());
  auto run = session->profile();
  // Write-write conflicts on per-iteration temporaries (outputOnly) are
  // benign under classification-based privatization; flow races are not.
  int flowRaces = 0;
  for (const auto& race : run.races) {
    if (!race.outputOnly) ++flowRaces;
  }
  std::printf("== execution ==\nok=%d flow-races=%d output:", run.ok,
              flowRaces);
  for (double v : run.output) std::printf(" %g", v);
  std::printf("\n");
  return run.ok && flowRaces == 0 ? 0 : 1;
}
