// A batch "parallelization audit" across all eight bundled workloads — the
// kind of downstream tool the library supports beyond the interactive
// editor: for every procedure, report loop counts, parallel fractions, and
// the top remaining impediment.
#include <cstdio>

#include "ped/session.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

int main() {
  std::printf("%-10s %-10s %6s %9s  %s\n", "program", "procedure", "loops",
              "parallel", "top impediment");
  std::printf("%s\n", std::string(86, '-').c_str());
  for (const auto& w : ps::workloads::all()) {
    ps::DiagnosticEngine diags;
    auto s = ps::ped::Session::load(w.source, diags);
    if (!s) {
      std::fprintf(stderr, "%s: load failed\n", w.name.c_str());
      return 1;
    }
    for (const auto& proc : s->procedureNames()) {
      s->selectProcedure(proc);
      auto loops = s->loops();
      if (loops.empty()) continue;
      int parallel = 0;
      std::string impediment;
      for (const auto& l : loops) {
        if (l.parallelizable) {
          ++parallel;
        } else if (impediment.empty()) {
          // First line of the explanation after the header.
          std::string e = s->explainLoop(l.id);
          auto nl = e.find('\n');
          if (nl != std::string::npos) {
            auto second = e.find('\n', nl + 1);
            impediment = e.substr(nl + 1, second - nl - 1);
            // Trim leading spaces.
            auto b = impediment.find_first_not_of(' ');
            if (b != std::string::npos) impediment = impediment.substr(b);
          }
        }
      }
      std::printf("%-10s %-10s %6zu %8d/%zu  %s\n", w.name.c_str(),
                  proc.c_str(), loops.size(), parallel, loops.size(),
                  impediment.substr(0, 44).c_str());
    }
  }
  return 0;
}
