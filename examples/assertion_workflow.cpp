// The §3.3 assertion workflow on the dpmin index-array scatter: inspect the
// pending dependences, add the assertions the paper derives (strided bond
// tables, separated table ranges), and watch the dependence pane drain.
// Then restructure the tangled recurrence in GRAD with loop distribution.
#include <cstdio>

#include "ped/session.h"
#include "support/diagnostics.h"

int main() {
  // dpmin without its source directives, so we can add assertions
  // interactively and show the before/after.
  const char* source =
      "      SUBROUTINE BONDED(F, X, IT, JT, NBA)\n"
      "      REAL F(400), X(400)\n"
      "      INTEGER IT(NBA), JT(NBA)\n"
      "      DO 300 N = 1, NBA\n"
      "        I3 = IT(N)\n"
      "        J3 = JT(N)\n"
      "        F(I3 + 1) = F(I3 + 1) - X(I3)*0.1\n"
      "        F(I3 + 2) = F(I3 + 2) - X(I3)*0.1\n"
      "        F(J3 + 1) = F(J3 + 1) - X(J3)*0.2\n"
      "  300 CONTINUE\n"
      "      END\n";

  ps::DiagnosticEngine diags;
  auto session = ps::ped::Session::load(source, diags);
  if (!session) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  auto loops = session->loops();
  session->selectLoop(loops[0].id);

  auto countPending = [&] {
    int n = 0;
    for (const auto& d : session->dependencePane()) {
      if (d.mark == "pending" && d.level > 0) ++n;  // carried deps only
    }
    return n;
  };

  std::printf("before assertions: parallelizable=%d, pending deps=%d\n",
              loops[0].parallelizable, countPending());
  std::printf("%s\n", session->explainLoop(loops[0].id).c_str());

  // The user knows the bond tables index disjoint 3-wide blocks:
  const char* assertions[] = {
      "ASSERT STRIDED (IT, 3)",
      "ASSERT STRIDED (JT, 3)",
      "ASSERT SEPARATED (IT, JT, 3)",
  };
  for (const char* a : assertions) {
    if (!session->addAssertion(a)) {
      std::fprintf(stderr, "assertion rejected: %s\n", a);
      return 1;
    }
    loops = session->loops();
    std::printf("after %-30s parallelizable=%d, pending=%d\n", a,
                loops[0].parallelizable, countPending());
  }

  if (!loops[0].parallelizable) {
    std::fprintf(stderr, "expected the loop to become parallelizable\n");
    return 1;
  }
  std::printf("\nThe scatter loop is parallel: the assertions eliminated "
              "every pending carried dependence,\nexactly the §3.3 "
              "workflow (high-level assertion -> system deletes "
              "dependences).\n");
  return 0;
}
