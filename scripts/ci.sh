#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Exits non-zero on any configure/build/test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure
