#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Exits non-zero on any configure/build/test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure

# Fuzz smoke stage: a fixed-seed, elevated-iteration pass of the robustness
# harness (mutated decks, fault-injected transforms, starvation budgets).
# Deterministic — the seeds are baked into the tests; only the iteration
# count is raised beyond the ctest default.
PS_FUZZ_ITERS="${PS_FUZZ_ITERS:-1500}" ./build/tests/fuzz_robustness_test
