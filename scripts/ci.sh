#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Exits non-zero on any configure/build/test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Scrub persistent-program-database artifacts so every stage starts cold:
# a stale store must never leak analysis state across CI stages (or across
# reruns on a dirty tree).
scrub_pdb_cache() {
  rm -rf .pscache
  find . -name '*.pspdb' -not -path './build*' -delete 2>/dev/null || true
  find build build-tsan -name '*.pspdb' -delete 2>/dev/null || true
}
scrub_pdb_cache

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure
scrub_pdb_cache

# Warm-start stage: cold-analyze every deck and persist its store + cold
# snapshot, then reopen every store in a FRESH process and require pure
# reuse (zero live dependence tests, zero quarantines) with byte-identical
# snapshots. Two separate invocations so nothing warm survives in memory.
mkdir -p .pscache
./build/tools/pdb_check save .pscache
./build/tools/pdb_check open .pscache
scrub_pdb_cache

# Fuzz smoke stage: a fixed-seed, elevated-iteration pass of the robustness
# harness (mutated decks, fault-injected transforms, starvation budgets).
# Deterministic — the seeds are baked into the tests; only the iteration
# count is raised beyond the ctest default.
PS_FUZZ_ITERS="${PS_FUZZ_ITERS:-1500}" ./build/tests/fuzz_robustness_test

# Parallel-path fuzz smoke: the same fixed-seed corpus, but every
# whole-program analysis routed through the task-DAG engine at 4 threads.
PS_FUZZ_ITERS="${PS_FUZZ_ITERS:-1500}" PS_FUZZ_PARALLEL=4 \
  ./build/tests/fuzz_robustness_test

# Dynamic-validation stage: the trace-backed deletion checker. The suite
# injects known-unsound deletions on every deck and requires them refuted
# and auto-restored byte-identically at 1/2/4/8 threads; then the fuzz
# corpus reruns with periodic validateDeletions passes interleaved
# (PS_VALIDATE=1) so mutated programs exercise the failed-run and
# budget-overflow degradation paths.
./build/tests/validation_test
PS_FUZZ_ITERS="${PS_FUZZ_ITERS:-1500}" PS_VALIDATE=1 \
  ./build/tests/fuzz_robustness_test

# OpenMP-emission stage: the round-trip suite (emit -> re-lex to exact
# directive payloads -> directive-stripped re-analysis byte-identical at
# 1/2/4/8 threads, on every deck), then the corpus smoke: ps_emit --check
# marks every deck the way a workshop user would (plus refusal fodder),
# emits, and exits non-zero on any load failure, round-trip mismatch or
# silently dropped loop.
./build/tests/emission_test
./build/tools/ps_emit --check
scrub_pdb_cache

# ThreadSanitizer stage: rebuild the concurrency-sensitive targets with
# -fsanitize=thread and run the parallel determinism suites (whole-program
# batch + incremental edit storm) plus the DepMemo stress test. Any data
# race in the pool, the task DAG, the sharded memo, the pipelined summary
# nodes or the per-nest fan-out fails CI here. (Under TSan the lock-free
# substrate promotes its orderings to seq_cst — see support/lockfree.h —
# because TSan does not model standalone fences; the structures and their
# interleavings are otherwise the ones production runs.)
cmake -B build-tsan -S . -DPS_TSAN=ON
cmake --build build-tsan -j --target parallel_analysis_test edit_storm_test depmemo_concurrent_test warm_start_test pdb_persistence_test validation_test lockfree_test emission_test
# Lock-free substrate stress: Chase–Lev owner-vs-thieves and resize-under-
# steal, MPMC channel loss/dup, epoch-reclamation use-after-retire canaries,
# DepMemo invalidation storms on BOTH backends.
./build-tsan/tests/lockfree_test
./build-tsan/tests/depmemo_concurrent_test
./build-tsan/tests/parallel_analysis_test
./build-tsan/tests/edit_storm_test
# Validation under TSan: the deck suite re-analyzes through the task pool
# at 1/2/4/8 threads with trace replay and auto-restores interleaved — any
# race between the validator's graph writes and the analysis engine fails
# here.
./build-tsan/tests/validation_test
# Emission under TSan on the lock-free substrate: round-trip re-analysis
# fans the directive-stripped deck through the task pool at 1/2/4/8
# threads while relative validation replays traces — any race between the
# emitter's snapshotting and the analysis engine fails here.
PS_LOCKFREE=1 ./build-tsan/tests/emission_test
# Warm-open settle path (dirty-set re-analysis seeded from disk) and the
# corruption-recovery suite, both under TSan: rebinding and quarantine run
# concurrently with the task pool.
./build-tsan/tests/warm_start_test
./build-tsan/tests/pdb_persistence_test
scrub_pdb_cache

# Server-storm stage: the multi-session analysis server under TSan. N
# concurrent scripted sessions share one store image, one warm memo (with
# per-session views) and one task pool; every session's final graphs must
# be byte-identical to the solo baseline at 1/2/4/8 threads. The atomic-
# write suite hammers one store path from many threads (the torn-save
# regression) and requires every surviving store to open clean with zero
# quarantined frames.
cmake --build build-tsan -j --target server_storm_test io_atomic_test
./build-tsan/tests/io_atomic_test
./build-tsan/tests/server_storm_test
scrub_pdb_cache

# Substrate A/B stage: one pass of the storm suites pinned to each
# substrate. PS_LOCKFREE=1 is the default path (Chase–Lev deques +
# open-addressing memo); PS_LOCKFREE=0 is the mutex baseline that must stay
# green for bench_contention comparisons and substrate bisection.
for lf in 1 0; do
  PS_LOCKFREE=$lf ./build-tsan/tests/edit_storm_test
  PS_LOCKFREE=$lf ./build-tsan/tests/server_storm_test
  scrub_pdb_cache
done
