// pdb_check — CI driver for the persistent program database.
//
//   pdb_check save <dir>   Cold-analyze every workload deck, save its store
//                          to <dir>/<deck>.pspdb and its analysis snapshot
//                          to <dir>/<deck>.snap.
//   pdb_check open <dir>   In a FRESH process: warm-open every deck from
//                          <dir>, assert zero live dependence tests and zero
//                          quarantines, and diff the snapshot byte-for-byte
//                          against the cold one saved earlier.
//
// Exit code 0 on success, 1 on any mismatch — scripts/ci.sh runs `save`
// then `open` as separate processes so the warm path is exercised without
// any in-memory state carrying over.

#include <cstdio>
#include <string>

#include "ped/session.h"
#include "support/diagnostics.h"
#include "support/io.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace {

using namespace ps;

int saveAll(const std::string& dir) {
  for (const workloads::Workload& w : workloads::all()) {
    auto s = workloads::loadDeck(w.name);
    if (!s) {
      std::fprintf(stderr, "pdb_check: %s failed to load\n", w.name.c_str());
      return 1;
    }
    s->analyzeParallel(1);
    const std::string base = dir + "/" + w.name;
    if (!s->savePdb(base + ".pspdb")) {
      std::fprintf(stderr, "pdb_check: %s failed to save store\n",
                   w.name.c_str());
      return 1;
    }
    if (!support::writeFileAtomic(base + ".snap",
                                  workloads::analysisSnapshot(*s))) {
      std::fprintf(stderr, "pdb_check: %s failed to save snapshot\n",
                   w.name.c_str());
      return 1;
    }
    std::printf("pdb_check: saved %s (%s)\n", w.name.c_str(),
                s->pdbStats().str().c_str());
  }
  return 0;
}

int openAll(const std::string& dir) {
  int rc = 0;
  for (const workloads::Workload& w : workloads::all()) {
    const std::string base = dir + "/" + w.name;
    std::string want;
    if (!support::readFile(base + ".snap", &want)) {
      std::fprintf(stderr, "pdb_check: %s missing cold snapshot\n",
                   w.name.c_str());
      rc = 1;
      continue;
    }
    DiagnosticEngine diags;
    auto s = ped::Session::openWarm(w.source, base + ".pspdb", diags, 4);
    if (!s || diags.hasErrors()) {
      std::fprintf(stderr, "pdb_check: %s warm open failed\n",
                   w.name.c_str());
      rc = 1;
      continue;
    }
    const ped::PdbStats& ps = s->pdbStats();
    if (ps.storeRejected || ps.quarantined != 0 || ps.summaryMisses != 0 ||
        ps.graphMisses != 0 || ps.testsRunLive != 0) {
      std::fprintf(stderr, "pdb_check: %s warm open was not pure reuse: %s\n",
                   w.name.c_str(), ps.str().c_str());
      rc = 1;
    }
    if (workloads::analysisSnapshot(*s) != want) {
      std::fprintf(stderr, "pdb_check: %s warm snapshot != cold snapshot\n",
                   w.name.c_str());
      rc = 1;
    } else {
      std::printf("pdb_check: verified %s (%s)\n", w.name.c_str(),
                  ps.str().c_str());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: pdb_check save|open <dir>\n");
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "save") return saveAll(dir);
  if (mode == "open") return openAll(dir);
  std::fprintf(stderr, "pdb_check: unknown mode '%s'\n", mode.c_str());
  return 2;
}
