// ps_emit — OpenMP emission CLI over the workshop decks.
//
//   ps_emit --deck NAME [--out FILE] [--force] [--no-validate]
//       Load one deck, mark its parallel loops (safe transformations plus
//       the reduction workflow), emit the OpenMP-annotated deck, and print
//       the per-loop report. With --out the emitted deck text is written to
//       FILE; with --force refusal-fodder loops are marked too (see
//       workloads::EmissionDriverOptions); --no-validate skips the
//       relative-execution pass (round-trip checks always run).
//
//   ps_emit --check
//       CI smoke: sweep every deck (forced marks included) and verify the
//       zero-silent-drop invariant — each PARALLEL-marked loop either emits
//       a directive whose deck round-trips to a byte-identical dependence
//       graph, or is refused with blocking edges named.
//
// Exit 0 on success, 1 on an invariant violation or failed deck, 2 on
// usage errors.

#include <cstdio>
#include <cstring>
#include <string>

#include "support/io.h"
#include "workloads/emission_driver.h"
#include "workloads/harness.h"
#include "workloads/workloads.h"

namespace {

using namespace ps;

int usage() {
  std::fprintf(stderr,
               "usage: ps_emit --deck NAME [--out FILE] [--force] "
               "[--no-validate]\n"
               "       ps_emit --check\n");
  return 2;
}

int emitOne(const std::string& deck, const std::string& outPath, bool force,
            bool validate) {
  if (!workloads::byName(deck)) {
    std::fprintf(stderr, "ps_emit: unknown deck '%s'\n", deck.c_str());
    return 2;
  }
  auto session = workloads::loadDeck(deck);
  if (!session) {
    std::fprintf(stderr, "ps_emit: %s failed to load\n", deck.c_str());
    return 1;
  }
  const workloads::MarkCounts mc =
      workloads::markParallelLoops(*session, force);
  emit::EmitOptions opts;
  opts.relativeValidation = validate;
  const emit::EmissionReport rep = session->emitOpenMP(opts);
  if (!rep.ran) {
    std::fprintf(stderr, "ps_emit: emission failed: %s\n", rep.error.c_str());
    return 1;
  }
  std::printf("ps_emit: marked safe=%d reduction=%d forced=%d\n", mc.safe,
              mc.reduction, mc.forced);
  std::printf("%s\n", rep.str().c_str());
  if (!outPath.empty()) {
    if (!support::writeFileAtomic(outPath, rep.deckText)) {
      std::fprintf(stderr, "ps_emit: failed to write %s\n", outPath.c_str());
      return 1;
    }
    std::printf("ps_emit: wrote %s (%zu bytes)\n", outPath.c_str(),
                rep.deckText.size());
  }
  const bool ok = (!rep.roundTripChecked || rep.roundTripOk);
  return ok ? 0 : 1;
}

int checkAll() {
  workloads::EmissionDriverOptions opts;
  opts.forceAllLoops = true;  // exercise the refusal path on every deck
  const workloads::EmissionSweep sw = workloads::emitAllDecks(opts);
  std::printf("%s", sw.str().c_str());
  int rc = 0;
  if (!sw.allDecksRan) {
    std::fprintf(stderr, "ps_emit: a deck failed to load or emit\n");
    rc = 1;
  }
  if (!sw.allRoundTripsOk) {
    std::fprintf(stderr, "ps_emit: a round-trip check failed\n");
    rc = 1;
  }
  if (!sw.zeroSilentDrops) {
    std::fprintf(stderr,
                 "ps_emit: zero-silent-drop invariant violated — a "
                 "PARALLEL loop was neither emitted nor refused\n");
    rc = 1;
  }
  if (sw.loopsConsidered == 0) {
    std::fprintf(stderr, "ps_emit: sweep considered no loops (vacuous)\n");
    rc = 1;
  }
  std::printf("ps_emit: check %s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string deck;
  std::string out;
  bool force = false;
  bool validate = true;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--check") == 0) {
      check = true;
    } else if (std::strcmp(a, "--force") == 0) {
      force = true;
    } else if (std::strcmp(a, "--no-validate") == 0) {
      validate = false;
    } else if (std::strcmp(a, "--deck") == 0 && i + 1 < argc) {
      deck = argv[++i];
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }
  if (check) return checkAll();
  if (deck.empty()) return usage();
  return emitOne(deck, out, force, validate);
}
