#include "server/server.h"

#include <cerrno>
#include <chrono>
#include <set>
#include <utility>

#include "support/io.h"

namespace ps::server {

// ---------------------------------------------------------------------------
// ServerSession
// ---------------------------------------------------------------------------

std::vector<Edit> ServerSession::coalesce(SettleReport* r) const {
  // A rewrite replaces its statement under a FRESH id, so two queued edits
  // naming one id cannot both apply — the second would find its statement
  // gone. Coalescing per statement id is therefore semantics, not merely
  // thrift: the queue reads last-wins against the snapshot the client saw.
  // Edits naming different ids never disturb each other's statements, so
  // order is preserved and per-id reasoning suffices:
  //   Rewrite then Rewrite  -> keep the first slot, last text wins (what
  //                            the user's final keystroke state says).
  //   Rewrite then Delete   -> the rewrite is dead work; the slot becomes
  //                            the Delete.
  //   Delete then anything  -> the statement is gone; later edits on it
  //                            would be rejected no-ops, so drop them.
  //   Insert                -> never coalesced (each adds a statement), and
  //                            it pins the order for its anchor: an
  //                            insert-after(s) must still see s, so a later
  //                            Delete(s) may not collapse past it — we
  //                            forget the pending rewrite slot to force the
  //                            Delete to append in order.
  using Key = std::pair<std::string, fortran::StmtId>;
  std::vector<Edit> batch;
  std::map<Key, std::size_t> lastRewrite;
  std::set<Key> dead;
  for (const Edit& e : queue_) {
    const Key key{e.proc, e.stmt};
    if (dead.count(key)) {
      ++r->editsCoalesced;
      continue;
    }
    switch (e.kind) {
      case Edit::Kind::Rewrite: {
        auto it = lastRewrite.find(key);
        if (it != lastRewrite.end()) {
          batch[it->second].text = e.text;
          ++r->editsCoalesced;
        } else {
          lastRewrite[key] = batch.size();
          batch.push_back(e);
        }
        break;
      }
      case Edit::Kind::Delete: {
        auto it = lastRewrite.find(key);
        if (it != lastRewrite.end()) {
          batch[it->second] = e;
          lastRewrite.erase(it);
          ++r->editsCoalesced;
        } else {
          batch.push_back(e);
        }
        dead.insert(key);
        break;
      }
      case Edit::Kind::Insert:
        lastRewrite.erase(key);
        batch.push_back(e);
        break;
    }
  }
  return batch;
}

bool ServerSession::apply(const Edit& e) {
  if (!session_->selectProcedure(e.proc)) return false;
  switch (e.kind) {
    case Edit::Kind::Rewrite:
      return session_->editStatement(e.stmt, e.text);
    case Edit::Kind::Insert:
      return session_->insertStatementAfter(e.stmt, e.text);
    case Edit::Kind::Delete:
      return session_->deleteStatement(e.stmt);
  }
  return false;
}

ServerSession::SettleReport ServerSession::settle() {
  SettleReport r;
  r.editsQueued = queue_.size();
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Edit> batch = coalesce(&r);
  for (const Edit& e : batch) {
    if (apply(e)) {
      ++r.editsApplied;
    } else {
      ++r.editsRejected;
    }
  }
  queue_.clear();
  r.dirtyProcedures = session_->dirtyProcedures().size();
  if (r.dirtyProcedures > 0) {
    // Dirty-set parallel settle on the server's shared pool: only the
    // procedures the batch touched re-analyze, interleaved with whatever
    // neighbor sessions are settling right now.
    session_->analyzeOn(server_->pool());
  }
  r.settleMillis = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  {
    std::lock_guard<std::mutex> lock(server_->mu_);
    ++server_->stats_.settles;
  }
  history_.push_back(r);
  return r;
}

emit::EmissionReport ServerSession::emitOpenMP(const emit::EmitOptions& opts) {
  if (!queue_.empty()) (void)settle();
  return session_->emitOpenMP(opts);
}

// ---------------------------------------------------------------------------
// AnalysisServer
// ---------------------------------------------------------------------------

AnalysisServer::AnalysisServer(Config config) : config_(std::move(config)) {
  memo_ = std::make_shared<dep::DepMemo>();
  pool_ = std::make_unique<support::TaskPool>(config_.analysisThreads);
  if (config_.storePath.empty()) return;
  const support::IoStatus io =
      support::readFileEx(config_.storePath, &storeImage_);
  if (io.ok()) {
    haveImage_ = true;
  } else if (io.error != ENOENT) {
    // Missing file = normal first boot. Anything else (permissions, media
    // error) is reported, and the server runs cold rather than half-warm.
    stats_.ioFailures.push_back({"server open",
                                 io.str() + " (" + config_.storePath + ")",
                                 /*rolledBack=*/false});
  }
}

ServerSession* AnalysisServer::openSession(const std::string& name,
                                           std::string_view source) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(name)) return nullptr;
  }
  // Attach outside the lock: parsing and settling store misses is the
  // expensive part, and concurrent opens only touch thread-safe shared
  // state (memo, pool) and the immutable store image.
  ped::Session::SharedWarmState shared;
  if (haveImage_) shared.storeImage = &storeImage_;
  shared.memo = memo_;
  shared.memoView = memo_->createView();
  shared.pool = pool_.get();
  auto ss = std::unique_ptr<ServerSession>(
      new ServerSession(this, name, shared.memoView));
  ss->session_ = ped::Session::attach(source, shared, ss->diags_,
                                      config_.analysisThreads);
  if (!ss->session_) return nullptr;
  // Editor model: edits batch in the session queue and settle explicitly.
  ss->session_->setDeferredAnalysis(true);

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(name, std::move(ss));
  if (!inserted) return nullptr;  // lost a name race to a concurrent open
  ++stats_.sessionsOpened;
  return it->second.get();
}

ServerSession* AnalysisServer::findSession(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void AnalysisServer::closeSession(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(name);
}

bool AnalysisServer::saveSession(const std::string& name) {
  if (config_.storePath.empty()) return false;
  ServerSession* ss = findSession(name);
  if (!ss) return false;
  // One save at a time server-wide: savePdb walks the session's settled
  // workspaces and the shared memo, and the store file is a single image.
  // Cross-PROCESS writers are still safe without this lock — the atomic
  // writer gives last-writer-wins over complete images.
  std::lock_guard<std::mutex> lock(saveMu_);
  return ss->session().savePdb(config_.storePath);
}

AnalysisServer::Stats AnalysisServer::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.sessionsLive = sessions_.size();
  return s;
}

}  // namespace ps::server
