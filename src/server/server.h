#ifndef PS_SERVER_SERVER_H
#define PS_SERVER_SERVER_H

// Multi-session analysis server: one long-lived process hosting N
// concurrent editing sessions over ONE shared program-database image and
// ONE shared warm dependence-test memo. Where PR 5's warm start amortized
// analysis across runs of a single editor, the server amortizes it across
// editors: the store file is read once, every session verifies records out
// of the same immutable bytes, and a dependence test proven in any session
// is a memo hit in every other (the memo keys render the complete test
// input — facts, budget, loop contexts — so cross-session hits are sound
// by construction).
//
// Isolation is per-session views on the shared memo (DepMemo::createView):
// a session that adds an assertion invalidates its OWN view and re-derives
// against its new fact base, while neighbor sessions keep every entry they
// could already see. Program state is never shared — each session parses
// its own AST, owns its workspaces, and edits freely.
//
// Threading contract: one client thread drives a given ServerSession at a
// time (submit/settle/save are NOT self-synchronizing per session — they
// mirror an editor's single input loop). Different sessions may be driven
// fully concurrently: the memo, the task pool and the store image are
// thread-safe or immutable, and saves are serialized by the server on top
// of the atomic store writer.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dependence/testsuite.h"
#include "fortran/ast.h"
#include "ped/session.h"
#include "support/diagnostics.h"
#include "support/taskpool.h"

namespace ps::server {

/// One queued source edit, addressed by statement id as of the snapshot
/// the client last saw (its previous settle). Ids of untouched statements
/// never move, but a rewrite REPLACES its statement under a fresh id —
/// which is why the queue coalesces per statement before applying: the
/// batch reads last-wins, the only interpretation a one-by-one replay
/// could even express against the snapshot.
struct Edit {
  enum class Kind { Rewrite, Insert, Delete };
  Kind kind = Kind::Rewrite;
  std::string proc;
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::string text;  // Rewrite/Insert payload
};

class AnalysisServer;

/// One client's editing session: a snapshot-isolated ped::Session attached
/// to the server's shared state, plus an edit queue that batches keystrokes
/// between settles (the paper's model: analysis updates when the user
/// pauses, not per character).
class ServerSession {
 public:
  /// Queue an edit; nothing is applied until settle(). Cheap — no parsing,
  /// no analysis, no locks.
  void submit(const Edit& e) { queue_.push_back(e); }

  struct SettleReport {
    std::size_t editsQueued = 0;    // batch size before coalescing
    std::size_t editsCoalesced = 0; // dropped as redundant or dead
    std::size_t editsApplied = 0;
    std::size_t editsRejected = 0;  // session refused (diagnosed, no change)
    std::size_t dirtyProcedures = 0;
    double settleMillis = 0.0;      // apply + dirty-set parallel re-analysis
  };

  /// Coalesce the queued batch (consecutive rewrites of one statement
  /// collapse to the last; a rewrite made dead by a later delete of the
  /// same statement is dropped), apply it under deferred analysis, then
  /// settle the dirty set on the server's shared pool. The resulting
  /// analysis state is bit-identical to a solo session applying the
  /// surviving batch, and the resulting source text matches a keystroke-
  /// by-keystroke replay (one that re-reads the statement's current id
  /// after every rewrite, as an interactive editor does).
  SettleReport settle();

  /// Emit an OpenMP deck from this session's current PARALLEL markings:
  /// settles any queued edits first (emission must see the post-edit
  /// graphs), then runs Session::emitOpenMP. Per-session: emission reads
  /// only this session's program and graphs, so concurrent sessions can
  /// emit independently.
  emit::EmissionReport emitOpenMP(const emit::EmitOptions& opts = {});

  /// The underlying session (read panes, query dependences, transform).
  /// Call settle() first if edits are queued — readers see the pre-batch
  /// state until then.
  [[nodiscard]] ped::Session& session() { return *session_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] dep::DepMemo::ViewId memoView() const { return view_; }
  [[nodiscard]] std::size_t pendingEdits() const { return queue_.size(); }
  [[nodiscard]] const std::vector<SettleReport>& history() const {
    return history_;
  }

 private:
  friend class AnalysisServer;
  ServerSession(AnalysisServer* server, std::string name,
                dep::DepMemo::ViewId view)
      : server_(server), name_(std::move(name)), view_(view) {}

  [[nodiscard]] std::vector<Edit> coalesce(SettleReport* r) const;
  bool apply(const Edit& e);

  AnalysisServer* server_;
  std::string name_;
  dep::DepMemo::ViewId view_;
  DiagnosticEngine diags_;
  std::unique_ptr<ped::Session> session_;
  std::vector<Edit> queue_;
  std::vector<SettleReport> history_;
};

class AnalysisServer {
 public:
  struct Config {
    /// Store file backing warm opens and saveSession(). Empty = no
    /// persistence; every session opens cold.
    std::string storePath;
    /// Shared analysis pool width. 0 = hardware concurrency; 1 = the
    /// poolless deterministic reference path.
    int analysisThreads = 0;
  };

  explicit AnalysisServer(Config config);

  /// Open a session over `source`, warm-attached to the shared store image
  /// and memo. Null when the source fails to parse or the name is taken.
  /// Safe to call from multiple client threads concurrently.
  ServerSession* openSession(const std::string& name, std::string_view source);

  /// Null when unknown.
  [[nodiscard]] ServerSession* findSession(const std::string& name);

  /// Drop a session. Its memo view dies with it; entries it contributed
  /// stay warm for neighbors (content-complete keys keep them sound).
  void closeSession(const std::string& name);

  /// Persist one session's state to the configured store path. Saves are
  /// serialized across the server's sessions; the unique-temp atomic
  /// writer makes even cross-process concurrent saves safe (last writer
  /// wins with a complete, fsynced image — never a torn file).
  bool saveSession(const std::string& name);

  struct Stats {
    std::size_t sessionsOpened = 0;
    std::size_t sessionsLive = 0;
    std::size_t settles = 0;
    /// Store-read failures at construction (missing file excluded — that
    /// is the normal first-boot cold start).
    std::vector<ped::FailureReport> ioFailures;
  };
  [[nodiscard]] Stats stats();

  [[nodiscard]] const std::shared_ptr<dep::DepMemo>& memo() const {
    return memo_;
  }
  [[nodiscard]] support::TaskPool& pool() { return *pool_; }
  [[nodiscard]] bool warm() const { return haveImage_; }

 private:
  friend class ServerSession;

  Config config_;
  std::string storeImage_;
  bool haveImage_ = false;
  std::shared_ptr<dep::DepMemo> memo_;
  std::unique_ptr<support::TaskPool> pool_;
  std::mutex mu_;      // sessions_ + stats_
  std::mutex saveMu_;  // serializes saveSession across sessions
  std::map<std::string, std::unique_ptr<ServerSession>> sessions_;
  Stats stats_;
};

}  // namespace ps::server

#endif  // PS_SERVER_SERVER_H
