#ifndef PS_PED_PERFEST_H
#define PS_PED_PERFEST_H

#include <map>
#include <string>
#include <vector>

#include "dataflow/constants.h"
#include "ir/model.h"

namespace ps::ped {

/// One ranked loop from the static performance estimator — the navigation
/// aid every workshop user asked for ("similar profiling or static
/// performance estimation be integrated into PED to help focus user
/// attention on the loops where effective parallelization would have the
/// highest payoff"). ParaScope added exactly this [26].
struct LoopEstimate {
  fortran::StmtId loop = fortran::kInvalidStmt;
  std::string procedure;
  std::string headline;
  /// Estimated dynamic operation count for one entry of the loop.
  double cost = 0.0;
  /// Estimated trip count (constant-folded bound, or the default guess).
  double trips = 0.0;
  int level = 1;
  /// cost / total procedure cost.
  double fraction = 0.0;
};

struct EstimatorOptions {
  /// Trip count assumed when bounds are not compile-time constants.
  double defaultTripCount = 64.0;
  /// Cost charged for a call to an unknown (library) routine.
  double unknownCallCost = 25.0;
  /// Number of processors assumed when estimating parallel speedup.
  double processors = 8.0;
};

/// Static performance estimation over one procedure. Costs: one unit per
/// arithmetic operation / memory reference, loops multiply by estimated
/// trip counts, calls charge the callee's estimate (call graph supplied by
/// the caller via `procedureCosts`).
class PerformanceEstimator {
 public:
  PerformanceEstimator(ir::ProcedureModel& model,
                       const EstimatorOptions& opts = {},
                       const std::map<std::string, double>* procedureCosts =
                           nullptr);

  /// Total estimated cost of one execution of the procedure.
  [[nodiscard]] double procedureCost() const { return total_; }

  /// Per-loop estimates, sorted by descending cost — the pane ordering.
  [[nodiscard]] const std::vector<LoopEstimate>& loops() const {
    return loops_;
  }

  /// Estimated speedup from running this loop's iterations on P processors
  /// (Amdahl over the procedure; the paper's estimator predicts "the
  /// relative execution time of loops and subroutines in parallel
  /// programs").
  [[nodiscard]] double parallelSpeedup(fortran::StmtId loop) const;

 private:
  double stmtCost(const fortran::Stmt& s);
  double exprCost(const fortran::Expr& e) const;
  double tripCount(const fortran::Stmt& doStmt) const;

  ir::ProcedureModel& model_;
  EstimatorOptions opts_;
  const std::map<std::string, double>* procCosts_;
  std::unique_ptr<dataflow::ConstantAnalysis> constants_;
  double total_ = 0.0;
  std::vector<LoopEstimate> loops_;
  std::map<fortran::StmtId, double> loopCost_;
};

}  // namespace ps::ped

#endif  // PS_PED_PERFEST_H
