#include "ped/session.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <set>
#include <sstream>

#include "cfg/flow_graph.h"
#include "dataflow/liveness.h"
#include "dataflow/privatize.h"
#include "dependence/persist.h"
#include "fortran/lexer.h"
#include "fortran/parser.h"
#include "fortran/pretty.h"
#include "interproc/persist.h"
#include "ir/refs.h"
#include "ir/stable_id.h"
#include "pdb/pdb.h"
#include "support/hash.h"
#include "support/io.h"

namespace ps::ped {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Procedure;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using ir::Loop;

std::string DegradationReport::str() const {
  std::ostringstream out;
  out << "degradation report: " << edges.size() << " degraded edge(s), fm="
      << fmDegraded << " answers=" << degradedAnswers
      << " linearize=" << linearizeDegraded
      << " symbolic=" << symbolicTruncated << "\n";
  for (const auto& e : edges) {
    out << "  " << e.procedure << " dep#" << e.depId << " " << e.type
        << " on " << e.variable << " level " << e.level << "\n";
  }
  if (!unvalidated.empty()) {
    out << "  " << unvalidated.size()
        << " deletion(s) unvalidated by the last dynamic check:\n";
    for (const auto& e : unvalidated) {
      out << "    " << e.procedure << " dep#" << e.depId << " " << e.type
          << " on " << e.variable << " level " << e.level << "\n";
    }
  }
  return out.str();
}

std::unique_ptr<Session> Session::load(std::string_view source,
                                       DiagnosticEngine& diags) {
  auto session = std::unique_ptr<Session>(new Session());
  session->program_ = fortran::parseSource(source, session->diags_);
  for (const auto& d : session->diags_.all()) {
    if (d.severity == Severity::Error) diags.error(d.loc, d.message);
  }
  if (session->program_->units.empty()) {
    diags.error({}, "no program units");
    return nullptr;
  }
  session->summaries_ =
      std::make_unique<interproc::SummaryBuilder>(*session->program_);
  session->current_ = session->program_->units[0]->name;

  // Assertions embedded in the source as directives.
  std::vector<std::string> payloads;
  for (const auto& unit : session->program_->units) {
    unit->forEachStmt([&](const Stmt& s) {
      if (s.kind == StmtKind::Assertion) {
        payloads.push_back(s.assertionText);
      }
    });
  }
  for (const auto& p : payloads) session->addAssertion(p);
  return session;
}

// ---------------------------------------------------------------------------
// Persistent program database
// ---------------------------------------------------------------------------

std::string PdbStats::str() const {
  std::ostringstream out;
  out << "pdb: summaries " << summaryHits << "/" << (summaryHits +
      summaryMisses) << " hit, graphs " << graphHits << "/"
      << (graphHits + graphMisses) << " hit, memo " << memoPrewarmed
      << " prewarmed, quarantined " << quarantined
      << (storeRejected ? ", store REJECTED" : "") << ", read " << bytesRead
      << "B written " << bytesWritten << "B, live tests " << testsRunLive;
  for (const auto& f : ioFailures) out << "\n  io failure: " << f.str();
  return out.str();
}

std::string Session::pdbSummaryMaterial(const std::string& name) const {
  // Everything summarizeOne(name) reads: the procedure's normalized text
  // and, for each direct callee, either its (already final, bottom-up)
  // summary bytes, a recursion marker (recursive callees read as unknown
  // during summarization), or an external marker. Chaining callee summary
  // FINGERPRINTS makes the key Merkle-like: a change anywhere below the
  // procedure in the call graph flips its key.
  const Procedure* proc = program_->findUnit(name);
  std::string m = "SUM|";
  m += fortran::printProcedure(*proc);
  m += "|CALLEES|";
  const interproc::CallGraph& cg = summaries_->callGraph();
  const std::set<std::string> recSet(cg.recursive().begin(),
                                     cg.recursive().end());
  std::set<std::string> callees;
  for (const interproc::CallSite* s : cg.callsFrom(name)) {
    callees.insert(s->callee);
  }
  for (const auto& c : callees) {
    m += c;
    m += '=';
    if (recSet.count(c)) {
      m += "REC";
    } else if (const interproc::ProcSummary* cs = summaries_->summaryOf(c)) {
      m += std::to_string(interproc::summaryFingerprint(*cs));
    } else {
      m += "EXTERN";
    }
    m += ';';
  }
  return m;
}

namespace {

void appendBudgetKey(std::string& m, const dep::AnalysisBudget& b) {
  m += "|BUDGET|";
  m += std::to_string(b.fmMaxConstraints);
  m += ',';
  m += std::to_string(b.fmMaxEliminations);
  m += ',';
  m += std::to_string(b.maxSubscriptNodes);
  m += ',';
  m += std::to_string(b.maxSymbolicRelations);
}

}  // namespace

std::string Session::pdbGraphMaterial(const std::string& name) const {
  // Everything a from-scratch DependenceGraph::build of this procedure
  // reads under this session: normalized text, the session fact base
  // (assertions), inherited interprocedural facts, the analysis budget,
  // classification overrides (loop ids rendered as stable ordinals), the
  // persistent dependence marks (reapplyMarks mutates stored edges), and
  // the final summaries of every direct callee (the side-effect oracle's
  // inputs).
  const Procedure* proc = program_->findUnit(name);
  std::string m = "GRAPH|";
  m += fortran::printProcedure(*proc);
  m += "|ASSERT|";
  for (const auto& a : assertions_) {
    m += a.text;
    m += ';';
  }
  m += "|CONST|";
  for (const auto& [var, value] : summaries_->inheritedConstantsFor(name)) {
    m += var;
    m += '=';
    m += std::to_string(value);
    m += ';';
  }
  m += "|REL|";
  for (const auto& rel : summaries_->inheritedRelationsFor(name)) {
    m += rel.name;
    m += '=';
    dep::appendLinearKey(m, rel.value);
    m += ';';
  }
  appendBudgetKey(m, budget_);
  m += "|OVR|";
  auto itOv = overrides_.find(name);
  if (itOv != overrides_.end()) {
    const auto ordinals = ir::stableOrdinals(*proc);
    for (const auto& [stmtId, vars] : itOv->second) {
      auto io = ordinals.find(stmtId);
      m += io != ordinals.end() ? std::to_string(io->second) : "?";
      m += ':';
      for (const auto& [var, shared] : vars) {
        m += var;
        m += shared ? "=1," : "=0,";
      }
      m += ';';
    }
  }
  m += "|MARKS|";
  for (const auto& [sig, rec] : marks_) {
    m += sig;
    m += '=';
    m += std::to_string(static_cast<int>(rec.mark));
    m += ',';
    m += rec.reason;
    m += ',';
    m += rec.evidence;  // reapplyMarks writes it into stored edges
    m += ';';
  }
  m += "|SUMS|";
  const interproc::CallGraph& cg = summaries_->callGraph();
  std::set<std::string> callees;
  for (const interproc::CallSite* s : cg.callsFrom(name)) {
    callees.insert(s->callee);
  }
  for (const auto& c : callees) {
    m += c;
    m += '=';
    if (const interproc::ProcSummary* cs = summaries_->summaryOf(c)) {
      m += std::to_string(interproc::summaryFingerprint(*cs));
    } else {
      m += "EXTERN";
    }
    m += ';';
  }
  return m;
}

std::string Session::pdbMemoMaterial() const {
  // Memo entry keys already render the tested pair's full input (loop
  // bounds with inherited facts substituted, fact base, flags) — see
  // DependenceTester::keyPrefix_. What they do NOT render is the session
  // state that feeds those renderings wholesale: the assertion list and the
  // budget. Digesting both here means a prewarmed entry can only be looked
  // up in a session whose fact base matches the saving one.
  std::string m = "MEMO|ASSERT|";
  for (const auto& a : assertions_) {
    m += a.text;
    m += ';';
  }
  appendBudgetKey(m, budget_);
  return m;
}

std::string Session::pdbMarksMaterial() const {
  // Marks are keyed by statement-id signatures, which are only meaningful
  // against the exact program text that produced them (ids are assigned in
  // parse order). Digesting every unit's normalized text plus the fact
  // base means a stored mark set can only restore onto the same program.
  std::string m = "MARKS|";
  for (const auto& u : program_->units) {
    m += fortran::printProcedure(*u);
    m += '|';
  }
  m += "ASSERT|";
  for (const auto& a : assertions_) {
    m += a.text;
    m += ';';
  }
  return m;
}

std::string Session::pdbEmissionMaterial() const {
  // Emission eligibility is a function of the exact program text, the mark
  // table (a deletion flips eligibility), the classification overrides (they
  // steer clause derivation) and the analysis budget. Any drift must miss.
  // The program is printed WITHOUT parallel markers: the PARALLEL flags are
  // session state stored inside the Emission record itself (and reapplied on
  // restore), so the key must match between the marked saving session and a
  // fresh open of the same deck.
  std::string m = "EMIT|";
  {
    fortran::PrettyOptions popts;
    popts.emitParallelMarkers = false;
    for (const auto& u : program_->units) {
      m += fortran::printProcedure(*u, popts);
      m += '|';
    }
  }
  m += "ASSERT|";
  for (const auto& a : assertions_) {
    m += a.text;
    m += ';';
  }
  m += "|MARKTAB|";
  for (const auto& [sig, rec] : marks_) {
    m += sig;
    m += '=';
    m += std::to_string(static_cast<int>(rec.mark));
    m += ';';
  }
  m += "|OVR|";
  for (const auto& [proc, byLoop] : overrides_) {
    for (const auto& [loop, byName] : byLoop) {
      for (const auto& [name, asPrivate] : byName) {
        m += proc;
        m += ':';
        m += std::to_string(loop);
        m += ':';
        m += name;
        m += '=';
        m += asPrivate ? '1' : '0';
        m += ';';
      }
    }
  }
  appendBudgetKey(m, budget_);
  return m;
}

bool Session::savePdb(const std::string& path) {
  pdb::StoreWriter store;
  const interproc::CallGraph& cg = summaries_->callGraph();
  const std::set<std::string> recSet(cg.recursive().begin(),
                                     cg.recursive().end());
  for (const auto& u : program_->units) {
    const std::string& name = u->name;
    // Summaries: skip recursive procedures — their worst-case summaries
    // are cheap to recompute and read as unknown during summarization, so
    // caching them buys nothing and would complicate the key chain.
    const interproc::ProcSummary* summary = summaries_->summaryOf(name);
    if (summary && !recSet.count(name)) {
      const std::string material = pdbSummaryMaterial(name);
      pdb::Writer w;
      interproc::writeSummary(w, *summary);
      store.add(pdb::RecordType::Summary, pdb::contentKey(material),
                pdb::sealPayload(material, w.data()));
    }
    // Graph slices: only settled materialized workspaces (a dirty graph is
    // stale by definition).
    auto it = workspaces_.find(name);
    if (it == workspaces_.end() || !it->second->graph ||
        pendingDirty_.count(name)) {
      continue;
    }
    pdb::Writer w;
    if (!dep::writeGraphSlice(w, *u, *it->second->graph)) continue;
    const std::string material = pdbGraphMaterial(name);
    store.add(pdb::RecordType::Graph, pdb::contentKey(material),
              pdb::sealPayload(material, w.data()));
  }
  if (incrementalUpdates_) {
    const std::string material = pdbMemoMaterial();
    pdb::Writer w;
    // Export through this session's view: a shared server memo holds
    // neighbor sessions' entries too, but only the ones we can still see
    // (>= our floor) are proven fresh against OUR fact-base digest.
    dep::writeMemoEntries(w, memo_->exportEntries(memoView_));
    store.add(pdb::RecordType::Memo, pdb::contentKey(material),
              pdb::sealPayload(material, w.data()));
  }
  // User/validator dependence marks with their provenance and validation
  // evidence: without this record a warm open restores graph slices whose
  // edges carry marks, but loses the session-side mark table that keeps
  // them alive across re-analysis (and keys every graph record).
  if (!marks_.empty()) {
    const std::string material = pdbMarksMaterial();
    pdb::Writer w;
    w.u32(static_cast<std::uint32_t>(marks_.size()));
    for (const auto& [sig, rec] : marks_) {
      w.str(sig);
      w.u8(static_cast<std::uint8_t>(rec.mark));
      w.str(rec.reason);
      w.str(rec.origin);
      w.str(rec.deck);
      w.str(rec.evidence);
    }
    store.add(pdb::RecordType::Marks, pdb::contentKey(material),
              pdb::sealPayload(material, w.data()));
  }
  // Per-loop OpenMP emission eligibility + validation evidence, so a warm
  // open knows which loops already emitted validated directives (and which
  // were refused, and why) without re-running the interpreter.
  if (lastEmission_.ran) {
    const std::string material = pdbEmissionMaterial();
    pdb::Writer w;
    // The PARALLEL marks themselves: they are session state (user
    // assertions and applied transformations), invisible to the key above,
    // so the record carries them and attach reapplies them.
    std::vector<std::uint32_t> parallelLoops;
    for (const auto& u : program_->units) {
      u->forEachStmt([&](const Stmt& s) {
        if (s.kind == StmtKind::Do && s.isParallel) {
          parallelLoops.push_back(s.id);
        }
      });
    }
    w.u32(static_cast<std::uint32_t>(parallelLoops.size()));
    for (std::uint32_t id : parallelLoops) w.u32(id);
    w.u32(static_cast<std::uint32_t>(lastEmission_.loops.size()));
    for (const auto& le : lastEmission_.loops) {
      w.str(le.procedure);
      w.u32(le.loop);
      w.str(le.headline);
      w.u8(le.emitted ? 1 : 0);
      w.str(le.emitted ? le.payload : le.refusal);
      w.str(le.evidence);
      w.u8(le.relativeChecked ? 1 : 0);
      w.u8(le.relativeDiverged ? 1 : 0);
      w.u64(static_cast<std::uint64_t>(le.serialExecutions));
      w.u32(static_cast<std::uint32_t>(le.blocking.size()));
      for (const auto& be : le.blocking) {
        w.u32(be.depId);
        w.str(be.type);
        w.str(be.variable);
        w.u32(static_cast<std::uint32_t>(be.level));
        w.u32(be.srcStmt);
        w.u32(be.dstStmt);
        w.str(be.mark);
      }
    }
    store.add(pdb::RecordType::Emission, pdb::contentKey(material),
              pdb::sealPayload(material, w.data()));
  }
  const support::IoStatus io = support::writeFileAtomicEx(path, store.bytes());
  if (!io.ok()) {
    // The bool return keeps old callers honest; the structured report says
    // WHICH syscall failed and why ("write: No space left on device"), so
    // a server operator can tell a full disk from a permissions problem.
    pdbStats_.ioFailures.push_back(
        {"savePdb", io.str() + " (" + path + ")", /*rolledBack=*/false});
    return false;
  }
  pdbStats_.bytesWritten += store.bytes().size();
  return true;
}

std::unique_ptr<Session> Session::openWarm(std::string_view source,
                                           const std::string& pdbPath,
                                           DiagnosticEngine& diags,
                                           int nThreads) {
  std::string image;
  const support::IoStatus io = support::readFileEx(pdbPath, &image);
  SharedWarmState shared;
  if (io.ok()) shared.storeImage = &image;
  auto session = attach(source, shared, diags, nThreads);
  // A missing store file is the normal first-run cold start; any OTHER
  // read failure (permissions, I/O error) is worth a structured report —
  // the session still opens cold either way.
  if (session && !io.ok() && io.error != ENOENT) {
    session->pdbStats_.ioFailures.push_back(
        {"openWarm", io.str() + " (" + pdbPath + ")", /*rolledBack=*/false});
  }
  return session;
}

std::unique_ptr<Session> Session::attach(std::string_view source,
                                         const SharedWarmState& shared,
                                         DiagnosticEngine& diags,
                                         int nThreads) {
  auto session = std::unique_ptr<Session>(new Session());
  session->program_ = fortran::parseSource(source, session->diags_);
  for (const auto& d : session->diags_.all()) {
    if (d.severity == Severity::Error) diags.error(d.loc, d.message);
  }
  if (session->program_->units.empty()) {
    diags.error({}, "no program units");
    return nullptr;
  }
  session->current_ = session->program_->units[0]->name;
  session->program_->assignIds();
  // Adopt the server's shared memo (through this session's private view)
  // before anything touches memo state — the assertion replay below bumps
  // the view, and the pre-warm must land where lookups will read.
  if (shared.memo) {
    session->memo_ = shared.memo;
    session->memoView_ = shared.memoView;
  }
  PdbStats& ps = session->pdbStats_;

  // The store. Absent, unreadable or header-skewed (magic, format version,
  // endian, build stamp): run entirely cold — same result, no reuse. Each
  // session verifies records out of its own reader over the (possibly
  // server-shared) image bytes; readers never mutate the image.
  pdb::StoreReader store(shared.storeImage ? *shared.storeImage
                                           : std::string());
  if (!shared.storeImage || store.stats().rejected) {
    ps.storeRejected = true;
  } else {
    ps.bytesRead = store.byteSize();
  }
  const bool usable = !ps.storeRejected;

  // Interprocedural summaries, callee-before-caller: a verified store hit
  // installs the recorded summary; anything else (miss, quarantine,
  // rejected store) summarizes live. Recursive procedures always take the
  // live path — exactly mirroring the eager builder's phases.
  session->summaries_ = std::make_unique<interproc::SummaryBuilder>(
      *session->program_, interproc::SummaryBuilder::Deferred{});
  const interproc::CallGraph& cg = session->summaries_->callGraph();
  for (const std::string& name : cg.bottomUpOrder()) {
    bool installed = false;
    if (usable) {
      const std::string material = session->pdbSummaryMaterial(name);
      if (auto body =
              store.verifiedFind(pdb::RecordType::Summary, material)) {
        pdb::Reader r(*body);
        interproc::ProcSummary s;
        if (interproc::readSummary(r, &s) && r.atEnd() &&
            session->summaries_->installSummary(name, std::move(s))) {
          installed = true;
          ++ps.summaryHits;
        } else {
          ++ps.quarantined;
        }
      }
    }
    if (!installed) {
      ++ps.summaryMisses;
      session->summaries_->summarizeOne(name);
    }
  }
  for (const std::string& name : cg.recursive()) {
    session->summaries_->finalizeRecursiveOne(name);
  }
  session->summaries_->computeGlobalFacts();

  // Source assertion directives, as in load(). Each bumps the memo
  // generation, so the pre-warm below lands on the final generation.
  std::vector<std::string> payloads;
  for (const auto& unit : session->program_->units) {
    unit->forEachStmt([&](const Stmt& s) {
      if (s.kind == StmtKind::Assertion) {
        payloads.push_back(s.assertionText);
      }
    });
  }
  for (const auto& p : payloads) session->addAssertion(p);

  // Dependence marks (with provenance + validation evidence). Restored
  // BEFORE any graph-record lookup: the MARKS section is part of every
  // graph record's key material, so the table must hold its final contents
  // when pdbGraphMaterial renders. All-or-nothing: a record that fails any
  // structural check restores no marks and is quarantined.
  if (usable) {
    const std::string material = session->pdbMarksMaterial();
    if (auto body = store.verifiedFind(pdb::RecordType::Marks, material)) {
      pdb::Reader r(*body);
      const std::uint32_t n = r.u32();
      constexpr std::uint32_t kMaxMarks = 1U << 20;
      bool valid = r.ok() && n <= kMaxMarks;
      std::map<std::string, MarkRecord> restored;
      for (std::uint32_t i = 0; valid && i < n; ++i) {
        std::string sig = r.str();
        const std::uint8_t mark = r.u8();
        MarkRecord rec;
        rec.reason = r.str();
        rec.origin = r.str();
        rec.deck = r.str();
        rec.evidence = r.str();
        if (!r.ok() ||
            mark > static_cast<std::uint8_t>(dep::DepMark::Rejected)) {
          valid = false;
          break;
        }
        rec.mark = static_cast<dep::DepMark>(mark);
        restored[std::move(sig)] = std::move(rec);
      }
      if (valid && r.atEnd()) {
        session->marks_ = std::move(restored);
      } else {
        ++ps.quarantined;
      }
    }
  }

  // OpenMP emission evidence. Keyed on the program text + the just-restored
  // mark table (+ overrides, empty on a fresh open), so it only restores
  // when eligibility could not have drifted. All-or-nothing like marks.
  if (usable) {
    const std::string material = session->pdbEmissionMaterial();
    if (auto body = store.verifiedFind(pdb::RecordType::Emission, material)) {
      pdb::Reader r(*body);
      constexpr std::uint32_t kMaxLoops = 1U << 20;
      const std::uint32_t np = r.u32();
      bool valid = r.ok() && np <= kMaxLoops;
      std::vector<std::uint32_t> parallelLoops;
      for (std::uint32_t i = 0; valid && i < np; ++i) {
        parallelLoops.push_back(r.u32());
      }
      const std::uint32_t n = valid ? r.u32() : 0;
      valid = valid && r.ok() && n <= kMaxLoops;
      emit::EmissionReport rep;
      for (std::uint32_t i = 0; valid && i < n; ++i) {
        emit::LoopEmission le;
        le.procedure = r.str();
        le.loop = r.u32();
        le.headline = r.str();
        le.emitted = r.u8() != 0;
        std::string text = r.str();
        (le.emitted ? le.payload : le.refusal) = std::move(text);
        le.evidence = r.str();
        le.relativeChecked = r.u8() != 0;
        le.relativeDiverged = r.u8() != 0;
        le.serialExecutions = static_cast<long long>(r.u64());
        const std::uint32_t nb = r.u32();
        if (!r.ok() || nb > kMaxLoops) {
          valid = false;
          break;
        }
        for (std::uint32_t j = 0; j < nb; ++j) {
          emit::BlockingEdge be;
          be.depId = r.u32();
          be.type = r.str();
          be.variable = r.str();
          be.level = static_cast<int>(r.u32());
          be.srcStmt = r.u32();
          be.dstStmt = r.u32();
          be.mark = r.str();
          le.blocking.push_back(std::move(be));
        }
        if (!r.ok()) {
          valid = false;
          break;
        }
        if (le.emitted) {
          ++rep.loopsEmitted;
        } else {
          ++rep.loopsRefused;
        }
        rep.loops.push_back(std::move(le));
      }
      if (valid && r.atEnd()) {
        // Reapply the saved PARALLEL marks, then install the evidence —
        // the restored session matches the saving one's loop markings.
        std::set<std::uint32_t> ids(parallelLoops.begin(),
                                    parallelLoops.end());
        for (const auto& u : session->program_->units) {
          u->forEachStmtMutable([&](Stmt& s) {
            if (s.kind == StmtKind::Do && ids.count(s.id)) {
              s.isParallel = true;
            }
          });
        }
        rep.ran = true;
        rep.loopsConsidered = static_cast<int>(rep.loops.size());
        session->lastEmission_ = std::move(rep);
      } else {
        ++ps.quarantined;
      }
    }
  }

  // Memo pre-warm, guarded by the fact-base digest.
  if (usable && session->incrementalUpdates_) {
    const std::string material = session->pdbMemoMaterial();
    if (auto body = store.verifiedFind(pdb::RecordType::Memo, material)) {
      pdb::Reader r(*body);
      std::vector<std::pair<std::string, dep::LevelResult>> entries;
      if (dep::readMemoEntries(r, &entries) && r.atEnd()) {
        session->memo_->preWarm(entries);
        ps.memoPrewarmed = entries.size();
      } else {
        ++ps.quarantined;
      }
    }
  }

  // Dependence graphs: restore verified slices (statement ids re-bound via
  // stable ordinals, every index and enum validated); everything else goes
  // into the dirty set — warm start IS incremental re-analysis against
  // disk.
  const long long testsBefore = session->stats_.testsRun();
  for (const auto& u : session->program_->units) {
    const std::string& name = u->name;
    bool restored = false;
    if (usable) {
      const std::string material = session->pdbGraphMaterial(name);
      if (auto body = store.verifiedFind(pdb::RecordType::Graph, material)) {
        pdb::Reader r(*body);
        dep::RestoredSlice slice;
        if (dep::readGraphSlice(r, *u, &slice) && r.atEnd()) {
          auto model = std::make_unique<ir::ProcedureModel>(*u);
          auto graph = std::make_unique<dep::DependenceGraph>(
              dep::DependenceGraph::restore(*model, std::move(slice.deps),
                                            slice.nextEdgeId));
          auto ws = std::make_unique<transform::Workspace>(
              *session->program_, *u, session->contextFor(name),
              std::move(model), std::move(graph));
          session->reapplyMarks(*ws->graph);
          session->workspaces_.emplace(name, std::move(ws));
          restored = true;
          ++ps.graphHits;
        } else {
          ++ps.quarantined;
        }
      }
    }
    if (!restored) {
      ++ps.graphMisses;
      session->pendingDirty_.insert(name);
    }
  }

  // Settle every miss through the PR 4 dirty-set path (materializing the
  // missing workspaces), so the open returns a fully analyzed session. A
  // server-attached session settles on the server's shared pool — its
  // tasks interleave with neighbor sessions' without a dedicated worker
  // set per session.
  if (!session->pendingDirty_.empty()) {
    if (shared.pool) {
      session->incrementalAnalyzeOn(*shared.pool, /*materializeMissing=*/true);
    } else {
      support::TaskPool pool(nThreads);
      session->incrementalAnalyzeOn(pool, /*materializeMissing=*/true);
    }
  }
  ps.testsRunLive = session->stats_.testsRun() - testsBefore;
  // Framing- and verify-hash-level quarantines tallied by the reader.
  ps.quarantined += store.stats().quarantined;
  return session;
}

// ---------------------------------------------------------------------------
// Workspaces & analysis context
// ---------------------------------------------------------------------------

dep::AnalysisContext Session::makeContext(const std::string& name,
                                          const dep::SideEffectOracle* oracle,
                                          dep::TestStats* sink,
                                          support::TaskPool* pool) const {
  dep::AnalysisContext ctx;
  ctx.oracle = oracle;
  applyAssertions(assertions_, &ctx);
  auto itOv = overrides_.find(name);
  if (itOv != overrides_.end()) ctx.classificationOverrides = itOv->second;
  ctx.inheritedConstants = summaries_->inheritedConstantsFor(name);
  ctx.inheritedRelations = summaries_->inheritedRelationsFor(name);
  // Incremental machinery: the session-shared memo (warm across rebuilds
  // and procedures) and the splice path. Both off = the A2 baseline.
  ctx.incrementalUpdates = incrementalUpdates_;
  ctx.useMemo = incrementalUpdates_;
  ctx.memo = incrementalUpdates_ ? memo_ : nullptr;
  ctx.memoView = memoView_;
  ctx.statsSink = sink;
  ctx.budget = budget_;
  ctx.pool = pool;
  ctx.idsPreassigned = pool != nullptr;
  return ctx;
}

dep::AnalysisContext Session::contextFor(const std::string& name) {
  auto itOracle = oracles_.find(name);
  if (itOracle == oracles_.end()) {
    Procedure* proc = program_->findUnit(name);
    oracles_[name] = std::make_unique<interproc::InterproceduralOracle>(
        *summaries_, *proc);
  }
  return makeContext(name, oracles_[name].get(), &stats_, nullptr);
}

transform::Workspace& Session::wsFor(const std::string& name) {
  auto it = workspaces_.find(name);
  if (it != workspaces_.end()) {
    // Deferred edits leave materialized graphs stale; settle on access so
    // every reader sees analysis results consistent with the current AST.
    if (pendingDirty_.count(name)) settleOne(name, *it->second);
    return *it->second;
  }
  Procedure* proc = program_->findUnit(name);
  auto ws = std::make_unique<transform::Workspace>(*program_, *proc,
                                                   contextFor(name));
  reapplyMarks(*ws->graph);
  ++reanalyses_;
  pendingDirty_.erase(name);  // a fresh build is up to date by construction
  return *workspaces_.emplace(name, std::move(ws)).first->second;
}

transform::Workspace& Session::wsForEdit(const std::string& name) {
  auto it = workspaces_.find(name);
  // No settle: edits only need the statement model, which finishEdit keeps
  // fresh across deferred edits; settling here would serialize the graph
  // rebuild that deferral exists to postpone.
  if (it != workspaces_.end()) return *it->second;
  return wsFor(name);
}

void Session::settleOne(const std::string& name, transform::Workspace& ws) {
  ws.actx.inheritedConstants = summaries_->inheritedConstantsFor(name);
  ws.actx.inheritedRelations = summaries_->inheritedRelationsFor(name);
  ws.reanalyze();
  reapplyMarks(*ws.graph);
  pendingDirty_.erase(name);
}

void Session::settleEdits() {
  if (pendingDirty_.empty()) return;
  // Unit order — the deterministic reference order the parallel incremental
  // path reproduces. Unmaterialized dirty procedures have no stale state;
  // they rebuild fresh (with the already-updated summaries) on first access.
  for (const auto& u : program_->units) {
    if (!pendingDirty_.count(u->name)) continue;
    auto it = workspaces_.find(u->name);
    if (it != workspaces_.end()) {
      settleOne(u->name, *it->second);
    } else {
      pendingDirty_.erase(u->name);
    }
  }
}

void Session::setDeferredAnalysis(bool on) {
  deferredAnalysis_ = on;
  if (!on) settleEdits();
}

void Session::invalidate(const std::string& name) {
  workspaces_.erase(name);
  oracles_.erase(name);
}

transform::Workspace& Session::workspace() { return wsFor(current_); }

void Session::fullReanalysis() {
  workspaces_.clear();
  oracles_.clear();
  memo_->invalidateView(memoView_);
  pendingDirty_.clear();  // the rebuild below covers any pending edits
  program_->assignIds();
  summaries_ = std::make_unique<interproc::SummaryBuilder>(*program_);
  for (const auto& u : program_->units) {
    (void)wsFor(u->name);
  }
}

ParallelReport Session::analyzeParallel(int nThreads) {
  support::TaskPool pool(nThreads);
  return analyzeOn(pool);
}

ParallelReport Session::analyzeOn(support::TaskPool& pool) {
  // Deferred edits + incremental updates: schedule only the dirty set,
  // splicing clean nests and reusing the warm memo. With incremental
  // updates off (the A2 baseline) every analysis is rebuilt regardless of
  // how small the edit was — the full path below.
  if (incrementalUpdates_ && !pendingDirty_.empty()) {
    return incrementalAnalyzeOn(pool);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t tasks0 = pool.tasksExecuted();
  const std::uint64_t steals0 = pool.steals();
  const std::vector<support::TaskPool::IdleStats> idle0 = pool.idleStats();

  workspaces_.clear();
  oracles_.clear();
  memo_->invalidateView(memoView_);
  pendingDirty_.clear();  // the full rebuild covers any pending edits
  // Statement ids are assigned once, up front: the Program is shared by
  // every concurrent per-procedure task, so the lazy assignment inside
  // Workspace::reanalyze is disabled (ctx.idsPreassigned) for the tasks.
  program_->assignIds();

  summaries_ = std::make_unique<interproc::SummaryBuilder>(
      *program_, interproc::SummaryBuilder::Deferred{});
  const interproc::CallGraph& cg = summaries_->callGraph();

  // One DAG drives both phases, with the summary finalize split per
  // procedure instead of a global barrier. Summarize tasks are sequenced
  // callee-before-caller where the caller actually reads the callee's
  // summary; recursive procedures get independent worst-case tasks
  // (summarization reads them as worst-case either way — phaseSummaryOf);
  // the global-facts census waits on every summary; and each analysis task
  // is gated on its own callees' summaries plus the census only when the
  // procedure declares COMMON. A procedure whose callees are final starts
  // its array-pair phase while unrelated call-graph regions summarize.
  support::TaskGraph graph;
  std::map<std::string, std::size_t> summaryNode;
  const std::set<std::string> recursiveSet(cg.recursive().begin(),
                                           cg.recursive().end());
  for (const std::string& name : cg.bottomUpOrder()) {
    summaryNode[name] =
        graph.add([this, &name] { summaries_->summarizeOne(name); });
  }
  for (const std::string& name : cg.recursive()) {
    summaryNode[name] =
        graph.add([this, &name] { summaries_->finalizeRecursiveOne(name); });
  }
  for (const interproc::CallSite& site : cg.callSites()) {
    // A recursive caller's worst-case task reads only its own AST; a
    // recursive callee is read as worst-case during summarization. Neither
    // constrains the summarize phase.
    if (recursiveSet.count(site.caller) || recursiveSet.count(site.callee))
      continue;
    auto callee = summaryNode.find(site.callee);
    auto caller = summaryNode.find(site.caller);
    if (callee == summaryNode.end() || caller == summaryNode.end()) continue;
    if (callee->second == caller->second) continue;
    graph.addEdge(callee->second, caller->second);
  }
  std::size_t censusNode =
      graph.add([this] { summaries_->computeGlobalFacts(); });
  for (const auto& [name, node] : summaryNode) {
    (void)name;
    graph.addEdge(node, censusNode);
  }

  struct ProcResult {
    std::unique_ptr<interproc::InterproceduralOracle> oracle;
    std::unique_ptr<transform::Workspace> ws;
    dep::TestStats stats;
  };
  std::vector<ProcResult> results(program_->units.size());
  for (std::size_t i = 0; i < program_->units.size(); ++i) {
    std::size_t node = graph.add([this, i, &results, &pool] {
      Procedure* proc = program_->units[i].get();
      ProcResult& r = results[i];
      r.oracle = std::make_unique<interproc::InterproceduralOracle>(
          *summaries_, *proc);
      r.ws = std::make_unique<transform::Workspace>(
          *program_, *proc,
          makeContext(proc->name, r.oracle.get(), &r.stats, &pool));
    });
    // The oracle resolves this procedure's call sites through its direct
    // callees' (final) summaries; sections already fold in transitive
    // effects, so direct-callee edges are the whole input set.
    for (const interproc::CallSite* site :
         cg.callsFrom(program_->units[i]->name)) {
      auto callee = summaryNode.find(site->callee);
      if (callee != summaryNode.end()) graph.addEdge(callee->second, node);
    }
    // Inherited facts: formal constants are immutable after construction;
    // the COMMON census is only read by procedures that declare COMMON.
    if (summaries_->usesGlobalFacts(program_->units[i]->name)) {
      graph.addEdge(censusNode, node);
    }
  }
  graph.run(pool);

  // Deterministic merge, in unit order (the fullReanalysis order): fold
  // per-task stats into the session counters, adopt the oracles and
  // workspaces, and rebind each context to the sequential defaults so
  // later incremental edits behave exactly as in a sequential session.
  for (std::size_t i = 0; i < program_->units.size(); ++i) {
    ProcResult& r = results[i];
    const std::string& name = program_->units[i]->name;
    stats_.accumulate(r.stats);
    r.ws->actx.statsSink = &stats_;
    r.ws->actx.pool = nullptr;
    r.ws->actx.idsPreassigned = false;
    oracles_[name] = std::move(r.oracle);
    reapplyMarks(*r.ws->graph);
    ++reanalyses_;
    workspaces_.emplace(name, std::move(r.ws));
  }

  ParallelReport report;
  report.threads = pool.threadCount();
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  report.procedures = program_->units.size();
  report.summaryTasks = summaryNode.size();
  report.tasksExecuted = pool.tasksExecuted() - tasks0;
  report.steals = pool.steals() - steals0;
  const std::vector<support::TaskPool::IdleStats> idle1 = pool.idleStats();
  for (std::size_t i = 0; i < idle1.size(); ++i) {
    report.idle.push_back(i < idle0.size() ? idle1[i].since(idle0[i])
                                           : idle1[i]);
  }
  return report;
}

ParallelReport Session::incrementalAnalyzeOn(support::TaskPool& pool,
                                             bool materializeMissing) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t tasks0 = pool.tasksExecuted();
  const std::uint64_t steals0 = pool.steals();
  const std::vector<support::TaskPool::IdleStats> idle0 = pool.idleStats();

  // NO memo invalidation and NO summary rebuild here: applyEdit already
  // re-established the summaries in place at edit time, and the memo's
  // generation protocol keeps every still-valid test result warm. The only
  // work left is re-deriving the dirty procedures' dependence graphs —
  // each of which splices every loop nest whose splice signature survived
  // the edit from its existing graph.
  program_->assignIds();

  // The dirty set in unit order — the order settleEdits() uses, which the
  // 1-thread FIFO reproduces exactly. Unmaterialized procedures carry no
  // stale state; on the edit path they rebuild fresh (current summaries)
  // on first access, while the warm-open settle materializes them here so
  // the whole program is analyzed when the open returns.
  std::vector<std::string> dirty;
  std::vector<bool> fresh;
  for (const auto& u : program_->units) {
    if (!pendingDirty_.count(u->name)) continue;
    const bool have = workspaces_.count(u->name) != 0;
    if (!have && !materializeMissing) continue;
    dirty.push_back(u->name);
    fresh.push_back(!have);
  }
  pendingDirty_.clear();

  // Oracles are lazily created by contextFor, which mutates oracles_ —
  // materialize them up front so the concurrent tasks only read the map.
  std::vector<const interproc::InterproceduralOracle*> oracles;
  oracles.reserve(dirty.size());
  for (const std::string& name : dirty) {
    auto it = oracles_.find(name);
    if (it == oracles_.end()) {
      Procedure* proc = program_->findUnit(name);
      it = oracles_
               .emplace(name,
                        std::make_unique<interproc::InterproceduralOracle>(
                            *summaries_, *proc))
               .first;
    }
    oracles.push_back(it->second.get());
  }

  std::vector<dep::TestStats> taskStats(dirty.size());
  std::vector<std::unique_ptr<transform::Workspace>> built(dirty.size());
  std::vector<std::function<void()>> thunks;
  thunks.reserve(dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    thunks.push_back([this, i, &dirty, &fresh, &oracles, &taskStats, &built,
                      &pool] {
      const std::string& name = dirty[i];
      if (fresh[i]) {
        // Warm-open miss without a workspace: build one from scratch
        // inside the task (merged into workspaces_ on the main thread).
        Procedure* proc = program_->findUnit(name);
        built[i] = std::make_unique<transform::Workspace>(
            *program_, *proc,
            makeContext(name, oracles[i], &taskStats[i], &pool));
        return;
      }
      transform::Workspace& ws = *workspaces_.at(name);
      // Fresh context = fresh inherited facts. When the edit moved them,
      // the context signature changes and the splice path degrades to a
      // full rebuild for this procedure — same as the sequential settle.
      ws.actx = makeContext(name, oracles[i], &taskStats[i], &pool);
      ws.reanalyze();
    });
  }
  pool.runAll(std::move(thunks));

  // Deterministic merge in unit order — the same fold settleEdits performs.
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    if (fresh[i]) {
      workspaces_[dirty[i]] = std::move(built[i]);
      ++reanalyses_;
    }
    transform::Workspace& ws = *workspaces_.at(dirty[i]);
    stats_.accumulate(taskStats[i]);
    ws.actx.statsSink = &stats_;
    ws.actx.pool = nullptr;
    ws.actx.idsPreassigned = false;
    reapplyMarks(*ws.graph);
  }

  ParallelReport report;
  report.threads = pool.threadCount();
  report.incremental = true;
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  report.procedures = dirty.size();
  report.summaryTasks = 0;  // summaries were updated in place at edit time
  report.tasksExecuted = pool.tasksExecuted() - tasks0;
  report.steals = pool.steals() - steals0;
  const std::vector<support::TaskPool::IdleStats> idle1 = pool.idleStats();
  for (std::size_t i = 0; i < idle1.size(); ++i) {
    report.idle.push_back(i < idle0.size() ? idle1[i].since(idle0[i])
                                           : idle1[i]);
  }
  return report;
}

void Session::setIncrementalUpdates(bool on) {
  incrementalUpdates_ = on;
  for (auto& [name, ws] : workspaces_) {
    (void)name;
    ws->actx.incrementalUpdates = on;
    ws->actx.useMemo = on;
    ws->actx.memo = on ? memo_ : nullptr;
  }
}

int Session::reanalysisCount() const {
  int n = reanalyses_;
  for (const auto& [name, ws] : workspaces_) {
    (void)name;
    n += ws->reanalyses - 1;  // the constructor's build is counted above
  }
  return n;
}

// ---------------------------------------------------------------------------
// Dependence marks (survive reanalysis by signature)
// ---------------------------------------------------------------------------

std::string Session::depSignature(const dep::Dependence& d) const {
  return std::string(dep::depTypeName(d.type)) + "|" + d.variable + "|" +
         std::to_string(d.srcStmt) + "|" + std::to_string(d.dstStmt) + "|" +
         std::to_string(d.level);
}

void Session::reapplyMarks(dep::DependenceGraph& g) const {
  for (auto& d : g.allMutable()) {
    auto it = marks_.find(depSignature(d));
    if (it != marks_.end()) {
      d.mark = it->second.mark;
      d.reason = it->second.reason;
      d.evidence = it->second.evidence;
    }
  }
}

// ---------------------------------------------------------------------------
// Transactions & invariant auditing
// ---------------------------------------------------------------------------

Session::Snapshot Session::takeSnapshot() const {
  Snapshot snap;
  snap.nextStmtId = program_->nextStmtId;
  for (const auto& unit : program_->units) {
    auto copy = std::make_unique<Procedure>();
    copy->kind = unit->kind;
    copy->name = unit->name;
    copy->params = unit->params;
    copy->returnType = unit->returnType;
    copy->loc = unit->loc;
    for (const auto& d : unit->decls) copy->decls.push_back(d.clone());
    for (const auto& s : unit->body) copy->body.push_back(s->clone());
    // Stmt::clone() deliberately drops ids; restore them by parallel
    // pre-order traversal (clone preserves shape) so a rollback reproduces
    // the exact pre-operation id assignment.
    std::vector<StmtId> ids;
    unit->forEachStmt([&](const Stmt& s) { ids.push_back(s.id); });
    std::size_t i = 0;
    copy->forEachStmtMutable([&](Stmt& s) {
      if (i < ids.size()) s.id = ids[i];
      ++i;
    });
    snap.units.push_back(std::move(copy));
  }
  return snap;
}

void Session::restoreSnapshot(Snapshot&& snap) {
  // Restore pre-existing units *in place*: Workspaces hold references to
  // these Procedure objects, so their addresses must survive the rollback.
  for (std::size_t i = 0;
       i < snap.units.size() && i < program_->units.size(); ++i) {
    *program_->units[i] = std::move(*snap.units[i]);
  }
  // Units added since the snapshot (Loop Extraction creates one) are
  // dropped, together with any workspace built over them.
  while (program_->units.size() > snap.units.size()) {
    workspaces_.erase(program_->units.back()->name);
    oracles_.erase(program_->units.back()->name);
    program_->units.pop_back();
  }
  program_->nextStmtId = snap.nextStmtId;

  // Every derived structure may hold pointers into the replaced AST:
  // rebuild summaries, drop oracles, and force each materialized workspace
  // to a full (non-splice) reanalysis — the splice path would read the old
  // graph's dangling Expr pointers.
  summaries_ = std::make_unique<interproc::SummaryBuilder>(*program_);
  oracles_.clear();
  pendingDirty_.clear();  // every workspace is rebuilt right here
  for (auto& [name, ws] : workspaces_) {
    ws->actx = contextFor(name);
    ws->graph.reset();
    ws->reanalyze();
    reapplyMarks(*ws->graph);
  }
}

audit::Report Session::auditNow(bool deep) {
  audit::Report rep;
  audit::auditProgram(*program_, rep);
  for (auto& [name, ws] : workspaces_) {
    if (ws->model) audit::auditModel(*ws->model, rep);
    // A dirty workspace's graph predates the pending edit (deferred mode):
    // it may reference statements the edit replaced, which is exactly the
    // staleness the settle will repair — not an invariant violation.
    if (pendingDirty_.count(name)) continue;
    if (ws->model && ws->graph) {
      audit::auditGraph(*ws->graph, *ws->model, rep);
    }
  }
  if (deep) audit::auditRoundTrip(*program_, rep);
  return rep;
}

void Session::recordFailure(std::string operation, std::string detail,
                            bool rolledBack) {
  failures_.push_back(
      {std::move(operation), std::move(detail), rolledBack});
}

bool Session::auditAfter(const std::string& operation, Snapshot* snap,
                         std::string* error) {
  if (auditMode_ == AuditMode::Off) return true;
  audit::Report rep = auditNow(auditMode_ == AuditMode::Deep);
  if (rep.ok()) return true;
  if (snap) restoreSnapshot(std::move(*snap));
  recordFailure(operation, "audit violation: " + rep.str(),
                snap != nullptr);
  if (error) {
    *error = "invariant audit failed after " + operation +
             (snap ? " (rolled back): " : ": ") + rep.str();
  }
  return false;
}

void Session::setAnalysisBudget(const dep::AnalysisBudget& b) {
  if (budget_ == b) return;
  budget_ = b;
  // Memoized results carry their budget in the key, so stale cross-budget
  // hits are impossible — but the materialized graphs were derived under
  // the old budget and must be re-derived (full rebuild: the splice path
  // would keep old-budget edges).
  for (auto& [name, ws] : workspaces_) {
    ws->actx = contextFor(name);
    ws->graph.reset();
    ws->reanalyze();
    reapplyMarks(*ws->graph);
  }
}

DegradationReport Session::degradationReport() const {
  DegradationReport r;
  for (const auto& [name, ws] : workspaces_) {
    if (!ws->graph) continue;
    for (const auto& d : ws->graph->all()) {
      if (!d.degraded) continue;
      r.edges.push_back(
          {name, d.id, dep::depTypeName(d.type), d.variable, d.level});
    }
  }
  r.unvalidated = unvalidatedDeletions_;
  r.fmDegraded = stats_.fmDegraded;
  r.degradedAnswers = stats_.degradedAnswers;
  r.linearizeDegraded = stats_.linearizeDegraded;
  r.symbolicTruncated = stats_.symbolicTruncated;
  return r;
}

// ---------------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------------

std::vector<std::string> Session::procedureNames() const {
  std::vector<std::string> out;
  for (const auto& u : program_->units) out.push_back(u->name);
  return out;
}

bool Session::selectProcedure(const std::string& name) {
  if (!program_->findUnit(name)) return false;
  current_ = name;
  currentLoop_ = fortran::kInvalidStmt;
  ++counters_.programNavigations;
  return true;
}

std::vector<Session::LoopRow> Session::loops() {
  transform::Workspace& ws = wsFor(current_);
  std::vector<LoopRow> out;
  for (const auto& l : ws.model->loops()) {
    LoopRow row;
    row.id = l->stmt->id;
    row.headline = fortran::stmtHeadline(*l->stmt);
    row.level = l->level;
    row.parallelizable = ws.graph->parallelizable(*l);
    row.parallel = l->stmt->isParallel;
    for (const auto* d : ws.graph->forLoop(*l)) {
      if (d->mark == dep::DepMark::Pending) ++row.pendingDeps;
    }
    out.push_back(std::move(row));
  }
  return out;
}

bool Session::selectLoop(StmtId loop) {
  transform::Workspace& ws = wsFor(current_);
  if (!ws.loopOf(loop)) return false;
  currentLoop_ = loop;
  ++counters_.programNavigations;
  return true;
}

// ---------------------------------------------------------------------------
// Panes
// ---------------------------------------------------------------------------

std::vector<Session::SourceRow> Session::sourcePane() {
  transform::Workspace& ws = wsFor(current_);
  Loop* cur = currentLoop_ != fortran::kInvalidStmt
                  ? ws.loopOf(currentLoop_)
                  : nullptr;
  std::vector<SourceRow> rows;
  int ordinal = 0;
  for (const Stmt* s : ws.model->allStmts()) {
    SourceRow row;
    row.ordinal = ++ordinal;
    row.stmt = s->id;
    row.text = fortran::stmtHeadline(*s);
    if (s->label != 0) {
      row.text = std::to_string(s->label) + " " + row.text;
    }
    row.loopStart = (s->kind == StmtKind::Do);
    const Loop* encl = ws.model->enclosingLoop(s->id);
    row.depth = encl ? encl->level : 0;
    row.inCurrentLoop = cur && (cur->contains(s->id));
    if (srcFilter_) {
      if (srcFilter_->loopHeadersOnly && !row.loopStart) continue;
      if (!srcFilter_->contains.empty() &&
          row.text.find(srcFilter_->contains) == std::string::npos) {
        continue;
      }
      if (srcFilter_->withLabel != 0 && s->label != srcFilter_->withLabel) {
        continue;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {
std::string refDisplay(const dep::Dependence& d, bool src,
                       const ir::ProcedureModel& model) {
  const Expr* e = src ? d.srcRef : d.dstRef;
  if (e) return fortran::printExpr(*e);
  const Stmt* s = model.stmt(src ? d.srcStmt : d.dstStmt);
  if (!s) return "?";
  if (d.type == dep::DepType::Control) {
    return "line " + std::to_string(s->loc.line);
  }
  return "call@" + std::to_string(s->loc.line);
}
}  // namespace

std::vector<Session::DependenceRow> Session::dependencePane() {
  transform::Workspace& ws = wsFor(current_);
  std::vector<DependenceRow> rows;
  Loop* cur = currentLoop_ != fortran::kInvalidStmt
                  ? ws.loopOf(currentLoop_)
                  : nullptr;
  for (const auto& d : ws.graph->all()) {
    if (cur &&
        !(cur->contains(d.srcStmt) && cur->contains(d.dstStmt))) {
      continue;  // progressive disclosure: current loop only
    }
    if (depFilter_) {
      if (depFilter_->type && d.type != *depFilter_->type) continue;
      if (!depFilter_->variable.empty() &&
          d.variable != depFilter_->variable) {
        continue;
      }
      if (depFilter_->mark && d.mark != *depFilter_->mark) continue;
      if (depFilter_->carriedOnly &&
          d.loopCarried() != *depFilter_->carriedOnly) {
        continue;
      }
    }
    DependenceRow row;
    row.id = d.id;
    row.type = dep::depTypeName(d.type);
    row.source = refDisplay(d, true, *ws.model);
    row.sink = refDisplay(d, false, *ws.model);
    row.vector = d.vector.str();
    row.level = d.level;
    const fortran::VarDecl* decl =
        ws.proc.findDecl(d.variable);
    row.block = decl ? decl->commonBlock : "";
    row.mark = dep::depMarkName(d.mark);
    row.reason = d.reason;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Session::VariableRow> Session::variablePane() {
  transform::Workspace& ws = wsFor(current_);
  Loop* cur = currentLoop_ != fortran::kInvalidStmt
                  ? ws.loopOf(currentLoop_)
                  : nullptr;
  std::vector<VariableRow> rows;
  if (!cur) return rows;

  cfg::FlowGraph fg = cfg::FlowGraph::build(*ws.model);
  auto lv = dataflow::Liveness::build(fg, *ws.model);
  auto priv = dataflow::PrivatizationAnalysis::build(*ws.model, fg, lv);

  // All variables referenced in the loop.
  std::set<std::string> names;
  for (const Stmt* s : cur->bodyStmts) {
    for (const ir::Ref& r : ir::collectRefs(*s)) names.insert(r.name);
  }
  for (const std::string& name : names) {
    VariableRow row;
    row.name = name;
    const fortran::VarDecl* decl = ws.proc.findDecl(name);
    row.dim = decl ? static_cast<int>(decl->dims.size()) : 0;
    row.block = decl ? decl->commonBlock : "";
    // Defs and uses outside the current loop (line numbers).
    std::set<int> defLines, useLines;
    ws.proc.forEachStmt([&](const Stmt& s) {
      if (cur->contains(s.id)) return;
      for (const ir::Ref& r : ir::collectRefs(s)) {
        if (r.name != name) continue;
        if (r.isWrite()) defLines.insert(s.loc.line);
        if (r.isRead()) useLines.insert(s.loc.line);
      }
    });
    auto fmtLines = [](const std::set<int>& lines) {
      std::string out;
      int count = 0;
      for (int l : lines) {
        if (count++) out += ",";
        if (count > 3) {
          out += "...";
          break;
        }
        out += std::to_string(l);
      }
      return out;
    };
    row.defs = fmtLines(defLines);
    row.uses = fmtLines(useLines);

    // Classification: overrides first, then analysis; arrays default
    // shared.
    std::string kind;
    auto itOv = overrides_.find(current_);
    if (itOv != overrides_.end()) {
      auto itL = itOv->second.find(cur->stmt->id);
      if (itL != itOv->second.end()) {
        auto itV = itL->second.find(name);
        if (itV != itL->second.end()) {
          kind = itV->second ? "private" : "shared";
        }
      }
    }
    if (kind.empty()) {
      if (decl && decl->isArray()) {
        kind = "shared";
      } else if (name == cur->inductionVar()) {
        kind = "private";
      } else {
        kind = dataflow::privatizationStatusName(
            priv.statusOf(*cur, name));
        if (kind == "unused") kind = "shared";
      }
    }
    row.kind = kind;
    auto itR = classificationReasons_.find(current_);
    if (itR != classificationReasons_.end()) {
      auto itN = itR->second.find(name);
      if (itN != itR->second.end()) row.reason = itN->second;
    }
    if (varFilter_) {
      if (!varFilter_->kind.empty() &&
          row.kind.find(varFilter_->kind) == std::string::npos) {
        continue;
      }
      if (varFilter_->arraysOnly && row.dim == 0) continue;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

void Session::setDependenceFilter(DependenceFilter f) {
  depFilter_ = std::move(f);
  ++counters_.viewFilterUses;
}
void Session::clearDependenceFilter() { depFilter_.reset(); }
void Session::setSourceFilter(SourceFilter f) {
  srcFilter_ = std::move(f);
  ++counters_.viewFilterUses;
}
void Session::clearSourceFilter() { srcFilter_.reset(); }
void Session::setVariableFilter(VariableFilter f) {
  varFilter_ = std::move(f);
  ++counters_.viewFilterUses;
}
void Session::clearVariableFilter() { varFilter_.reset(); }

// ---------------------------------------------------------------------------
// Marking & classification
// ---------------------------------------------------------------------------

bool Session::markDependence(std::uint32_t id, dep::DepMark mark,
                             const std::string& reason,
                             const std::string& origin) {
  transform::Workspace& ws = wsFor(current_);
  dep::Dependence* d = ws.graph->byId(id);
  if (!d) return false;
  if (d->mark == dep::DepMark::Proven && mark == dep::DepMark::Rejected) {
    // PED only lets users reject *pending* dependences; proven ones exist.
    return false;
  }
  d->mark = mark;
  d->reason = reason;
  // A re-mark supersedes any validation evidence attached to the old mark.
  d->evidence.clear();
  marks_[depSignature(*d)] = {mark, reason, origin, deckName_, ""};
  if (mark == dep::DepMark::Rejected) ++counters_.dependenceDeletions;
  return true;
}

int Session::markAllMatching(const DependenceFilter& f, dep::DepMark mark,
                             const std::string& reason,
                             const std::string& origin) {
  transform::Workspace& ws = wsFor(current_);
  Loop* cur = currentLoop_ != fortran::kInvalidStmt
                  ? ws.loopOf(currentLoop_)
                  : nullptr;
  int n = 0;
  for (auto& d : ws.graph->allMutable()) {
    if (cur && !(cur->contains(d.srcStmt) && cur->contains(d.dstStmt))) {
      continue;
    }
    if (f.type && d.type != *f.type) continue;
    if (!f.variable.empty() && d.variable != f.variable) continue;
    if (f.mark && d.mark != *f.mark) continue;
    if (f.carriedOnly && d.loopCarried() != *f.carriedOnly) continue;
    if (d.mark == dep::DepMark::Proven && mark == dep::DepMark::Rejected) {
      continue;
    }
    d.mark = mark;
    d.reason = reason;
    d.evidence.clear();
    marks_[depSignature(d)] = {mark, reason, origin, deckName_, ""};
    ++n;
    if (mark == dep::DepMark::Rejected) ++counters_.dependenceDeletions;
  }
  return n;
}

bool Session::classifyVariable(const std::string& name, bool asPrivate,
                               const std::string& reason) {
  if (currentLoop_ == fortran::kInvalidStmt) return false;
  transform::Workspace& ws = wsFor(current_);
  if (!ws.loopOf(currentLoop_)) return false;
  overrides_[current_][currentLoop_][name] = asPrivate;
  classificationReasons_[current_][name] = reason;
  ws.actx.classificationOverrides = overrides_[current_];
  ws.reanalyze();
  reapplyMarks(*ws.graph);
  ++counters_.variableClassifications;
  return true;
}

// ---------------------------------------------------------------------------
// Assertions
// ---------------------------------------------------------------------------

bool Session::addAssertion(const std::string& payload) {
  auto a = parseAssertion(payload, diags_);
  if (!a) return false;
  assertions_.push_back(std::move(*a));
  // The fact base changed: every memoized test result may now be stale for
  // THIS session. One epoch bump against our view lazily evicts everything
  // we could previously see — without touching what neighbor sessions on a
  // shared server memo can still see (the memo never keys on mutable
  // context state, so this is the only hook needed).
  memo_->invalidateView(memoView_);
  // Incremental: rebuild only materialized workspaces with the new facts.
  for (auto& [name, ws] : workspaces_) {
    ws->actx = contextFor(name);
    ws->reanalyze();
    reapplyMarks(*ws->graph);
  }
  ++counters_.assertionsAdded;
  return true;
}

// ---------------------------------------------------------------------------
// Access to analysis & guidance
// ---------------------------------------------------------------------------

std::string Session::explainLoop(StmtId loopId) {
  transform::Workspace& ws = wsFor(current_);
  Loop* loop = ws.loopOf(loopId);
  if (!loop) return "not a loop";
  ++counters_.analysisQueries;
  std::ostringstream out;
  out << "loop " << fortran::stmtHeadline(*loop->stmt) << ":\n";
  auto inhibitors = ws.graph->parallelismInhibitors(*loop);
  if (inhibitors.empty()) {
    out << "  parallelizable (no active loop-carried dependences)\n";
  } else {
    for (const auto* d : inhibitors) {
      out << "  " << dep::depTypeName(d->type) << " dependence on "
          << d->variable << " " << d->vector.str() << " ["
          << dep::depMarkName(d->mark) << "]";
      if (d->interprocedural) out << " (interprocedural)";
      out << "\n";
    }
  }
  // Which of Table 3's "needed" analyses would help here?
  auto kills = interproc::findArrayKills(*ws.model, *ws.graph, &ws.actx);
  for (const auto& k : kills) {
    if (k.loop == loopId) {
      out << "  array kill analysis: " << k.array
          << " is killed every iteration (privatizable"
          << (k.interprocedural ? ", interprocedural" : "") << ")\n";
    }
  }
  const auto* red =
      transform::Registry::instance().byName("Reduction Recognition");
  transform::Target t;
  t.loop = loopId;
  auto ra = red->advise(ws, t);
  if (ra.applicable && ra.safe) {
    out << "  reduction: " << ra.explanation << "\n";
  }
  for (const auto* d : inhibitors) {
    if (!d->srcRef && !d->dstRef) continue;
    auto hasIndexArray = [](const Expr* e) {
      if (!e) return false;
      bool found = false;
      for (const auto& sub : e->args) {
        sub->forEach([&](const Expr& inner) {
          if (inner.kind == ExprKind::ArrayRef) found = true;
        });
      }
      return found;
    };
    if (hasIndexArray(d->srcRef) || hasIndexArray(d->dstRef)) {
      out << "  index array in subscripts of " << d->variable
          << ": consider ASSERT PERMUTATION / STRIDED / SEPARATED\n";
      break;
    }
  }
  return out.str();
}

std::string Session::showSummary(const std::string& procName) {
  ++counters_.analysisQueries;
  const interproc::ProcSummary* s = summaries_->summaryOf(procName);
  if (!s) return "no summary for " + procName;
  std::ostringstream out;
  out << "summary of " << procName << ":\n";
  for (const auto& [var, eff] : s->effects) {
    out << "  " << var << ":";
    if (eff.mayRead) out << " REF";
    if (eff.mayWrite) out << " MOD";
    if (eff.kills) out << " KILL";
    if (eff.readSection) out << " read " << eff.readSection->str();
    if (eff.writeSection) out << " write " << eff.writeSection->str();
    out << "\n";
  }
  return out.str();
}

std::vector<Session::GuidanceEntry> Session::guidance(StmtId loopId,
                                                      bool safeOnly) {
  transform::Workspace& ws = wsFor(current_);
  Loop* loop = ws.loopOf(loopId);
  std::vector<GuidanceEntry> out;
  if (!loop) return out;

  // Candidate targets per transformation shape.
  std::set<std::string> scalars, arrays;
  for (const Stmt* s : loop->bodyStmts) {
    for (const ir::Ref& r : ir::collectRefs(*s)) {
      const fortran::VarDecl* d = ws.proc.findDecl(r.name);
      if (d && d->isArray()) {
        arrays.insert(r.name);
      } else if (r.name != loop->inductionVar()) {
        scalars.insert(r.name);
      }
    }
  }
  // Adjacent sibling loop (fusion candidate).
  StmtId sibling = fortran::kInvalidStmt;
  {
    std::size_t idx = 0;
    auto* container = ws.model->containerOf(loopId, &idx);
    if (container && idx + 1 < container->size() &&
        (*container)[idx + 1]->kind == StmtKind::Do) {
      sibling = (*container)[idx + 1]->id;
    }
  }

  auto consider = [&](const std::string& name, transform::Target t) {
    const auto* tr = transform::Registry::instance().byName(name);
    if (!tr) return;
    transform::Advice a = tr->advise(ws, t);
    if (!a.applicable) return;
    if (safeOnly && !(a.safe && a.profitable)) return;
    out.push_back({name, std::move(t), std::move(a)});
  };

  for (const auto* tr : transform::Registry::instance().all()) {
    const std::string name = tr->name();
    if (name == "Loop Fusion") {
      if (sibling != fortran::kInvalidStmt) {
        transform::Target t;
        t.loop = loopId;
        t.secondLoop = sibling;
        consider(name, std::move(t));
      }
      continue;
    }
    if (name == "Privatization" || name == "Scalar Expansion") {
      for (const auto& v : scalars) {
        transform::Target t;
        t.loop = loopId;
        t.variable = v;
        consider(name, std::move(t));
      }
      continue;
    }
    if (name == "Array Renaming" || name == "Scalar Replacement") {
      for (const auto& v : arrays) {
        transform::Target t;
        t.loop = loopId;
        t.variable = v;
        consider(name, std::move(t));
      }
      continue;
    }
    if (name == "Arithmetic IF Removal" ||
        name == "Control Flow Structuring") {
      for (const Stmt* s : loop->bodyStmts) {
        if (s->kind == StmtKind::ArithmeticIf ||
            (s->kind == StmtKind::If && s->isLogicalIf)) {
          transform::Target t;
          t.stmt = s->id;
          consider(name, std::move(t));
        }
      }
      continue;
    }
    if (name == "Loop Extraction") {
      for (const Stmt* s : loop->bodyStmts) {
        if (s->kind == StmtKind::Call) {
          transform::Target t;
          t.stmt = s->id;
          consider(name, std::move(t));
        }
      }
      continue;
    }
    if (name == "Statement Deletion" || name == "Statement Addition" ||
        name == "Statement Interchange" ||
        name == "Loop Bounds Adjusting") {
      continue;  // editor-level; not part of loop guidance
    }
    transform::Target t;
    t.loop = loopId;
    consider(name, std::move(t));
  }

  // Profitable and safe first.
  std::stable_sort(out.begin(), out.end(),
                   [](const GuidanceEntry& a, const GuidanceEntry& b) {
                     auto rank = [](const transform::Advice& ad) {
                       return (ad.safe ? 2 : 0) + (ad.profitable ? 1 : 0);
                     };
                     return rank(a.advice) > rank(b.advice);
                   });
  return out;
}

bool Session::applyTransformation(const std::string& name,
                                  const transform::Target& target,
                                  std::string* error) {
  transform::Workspace& ws = wsFor(current_);
  const auto* tr = transform::Registry::instance().byName(name);
  if (!tr) {
    if (error) *error = "unknown transformation " + name;
    recordFailure(name, "unknown transformation", false);
    return false;
  }

  // Transactional apply: snapshot the whole program (statements, ids,
  // labels, id counter) so any failure — the transformation's own, an
  // injected fault, or a post-apply audit violation — restores the exact
  // pre-apply state. Power steering must never leave a broken program.
  Snapshot snap = takeSnapshot();
  std::string localError;
  if (!error) error = &localError;

  bool ok = tr->apply(ws, target, error);

  if (fault_ == Fault::MidApply) {
    // Simulate a transformation that mutated the program and then died
    // mid-flight: leave garbage behind (duplicate-id statement) and fail.
    fault_ = Fault::None;
    auto junk = fortran::makeStmt(StmtKind::Continue, {});
    junk->id = ws.proc.body.empty() ? 1 : ws.proc.body.front()->id;
    ws.proc.body.push_back(std::move(junk));
    *error = "injected fault: apply aborted mid-flight";
    ok = false;
  }

  if (!ok) {
    // The mechanics may have partially mutated before failing; restore
    // unconditionally so the graph and source are byte-identical to the
    // pre-apply state.
    restoreSnapshot(std::move(snap));
    recordFailure(name, *error, true);
    return false;
  }

  reapplyMarks(*ws.graph);
  // Interprocedural transformations add units: refresh summaries so other
  // procedures see them.
  if (name == "Loop Extraction" || name == "Loop Embedding") {
    summaries_ = std::make_unique<interproc::SummaryBuilder>(*program_);
    oracles_.clear();
    for (auto& [n, w] : workspaces_) {
      w->actx = contextFor(n);
    }
  }

  if (fault_ == Fault::CorruptState) {
    // Corrupt the program after a successful apply: the post-apply audit
    // must catch it and roll back.
    fault_ = Fault::None;
    if (ws.proc.body.size() >= 2) {
      ws.proc.body.back()->id = ws.proc.body.front()->id;
    }
  }

  if (!auditAfter(name, &snap, error)) return false;

  ++counters_.transformationsApplied;
  return true;
}

// ---------------------------------------------------------------------------
// Editing
// ---------------------------------------------------------------------------

namespace {

/// Parse one statement in the declaration context of `proc`: the incremental
/// parser of the source pane. Synthesizes a scratch unit carrying the
/// procedure's declarations so array references parse as ArrayRefs.
fortran::StmtPtr parseStatementInContext(const Procedure& proc,
                                         const std::string& text,
                                         DiagnosticEngine& diags) {
  std::string src = "      SUBROUTINE EDITCTX\n";
  fortran::PrettyOptions opts;
  // Reuse the pretty-printer's declaration section.
  std::string full = fortran::printProcedure(proc, opts);
  // Extract declaration lines (between the header and the first executable
  // statement) — simpler: rebuild decls directly.
  for (const auto& d : proc.decls) {
    if (d.isParameter) continue;
    src += "      ";
    src += fortran::typeName(d.type);
    src += ' ' + d.name;
    if (d.isArray()) {
      src += '(';
      for (std::size_t i = 0; i < d.dims.size(); ++i) {
        if (i) src += ", ";
        src += d.dims[i].upper ? fortran::printExpr(*d.dims[i].upper) : "*";
      }
      src += ')';
    }
    src += '\n';
  }
  (void)full;
  src += "      " + text + "\n      END\n";
  DiagnosticEngine local;
  auto prog = fortran::parseSource(src, local);
  if (local.hasErrors() || prog->units.empty() ||
      prog->units[0]->body.empty()) {
    diags.error({}, "statement does not parse: " + text + "\n" +
                        local.dump());
    return nullptr;
  }
  fortran::StmtPtr out = std::move(prog->units[0]->body.front());
  // The scratch program minted its own ids; clear them so the real
  // program's assignIds() issues fresh, non-colliding ones.
  out->forEachMutable(
      [](fortran::Stmt& s) { s.id = fortran::kInvalidStmt; });
  return out;
}

}  // namespace

bool Session::finishEdit(const std::string& operation,
                         transform::Workspace& ws, Snapshot& snap) {
  // Fresh statements were minted with invalid ids; assign program-wide
  // before anything derives state from the AST.
  program_->assignIds();

  // Update the interprocedural summaries in place (oracles hold references
  // into the builder, so they stay valid) and compute the invalidated set:
  // the edited procedure, every procedure with a call site whose callee
  // summary actually changed, and — below — every materialized workspace
  // whose inherited facts moved (the census can shift without any summary
  // changing, e.g. a COMMON variable losing its single-assignment status).
  interproc::SummaryBuilder::Update up = summaries_->applyEdit({current_});
  if (up.structureChanged) {
    for (const auto& u : program_->units) pendingDirty_.insert(u->name);
  } else {
    pendingDirty_.insert(up.staleAnalyses.begin(), up.staleAnalyses.end());
    for (const auto& [name, w] : workspaces_) {
      if (pendingDirty_.count(name)) continue;
      bool same = w->actx.inheritedConstants ==
                  summaries_->inheritedConstantsFor(name);
      if (same) {
        std::vector<dataflow::Relation> rels =
            summaries_->inheritedRelationsFor(name);
        same = rels.size() == w->actx.inheritedRelations.size();
        for (std::size_t i = 0; same && i < rels.size(); ++i) {
          same = rels[i].name == w->actx.inheritedRelations[i].name &&
                 rels[i].value == w->actx.inheritedRelations[i].value;
        }
      }
      if (!same) pendingDirty_.insert(name);
    }
  }

  if (deferredAnalysis_) {
    // Panes, containerOf and the auditor need a statement model over the
    // post-edit AST; the expensive part — the dependence graphs — is what
    // stays pending until settleEdits()/analyzeParallel().
    ws.model = std::make_unique<ir::ProcedureModel>(ws.proc);
  } else {
    settleEdits();
  }
  return auditAfter(operation, &snap, nullptr);
}

bool Session::editStatement(StmtId id, const std::string& newText) {
  transform::Workspace& ws = wsForEdit(current_);
  std::size_t index = 0;
  auto* container = ws.model->containerOf(id, &index);
  if (!container) {
    recordFailure("editStatement", "no statement " + std::to_string(id),
                  false);
    return false;
  }
  fortran::StmtPtr fresh =
      parseStatementInContext(ws.proc, newText, diags_);
  if (!fresh) {
    // Parse failed before any mutation: diagnostics-only failure.
    recordFailure("editStatement", "does not parse: " + newText, false);
    return false;
  }
  Snapshot snap = takeSnapshot();
  fresh->label = (*container)[index]->label;  // labels survive edits
  (*container)[index] = std::move(fresh);
  return finishEdit("editStatement", ws, snap);
}

bool Session::insertStatementAfter(StmtId id, const std::string& text) {
  transform::Workspace& ws = wsForEdit(current_);
  std::size_t index = 0;
  auto* container = ws.model->containerOf(id, &index);
  if (!container) {
    recordFailure("insertStatementAfter",
                  "no statement " + std::to_string(id), false);
    return false;
  }
  fortran::StmtPtr fresh = parseStatementInContext(ws.proc, text, diags_);
  if (!fresh) {
    recordFailure("insertStatementAfter", "does not parse: " + text, false);
    return false;
  }
  Snapshot snap = takeSnapshot();
  container->insert(container->begin() + static_cast<long>(index + 1),
                    std::move(fresh));
  return finishEdit("insertStatementAfter", ws, snap);
}

bool Session::deleteStatement(StmtId id) {
  transform::Workspace& ws = wsForEdit(current_);
  std::size_t index = 0;
  auto* container = ws.model->containerOf(id, &index);
  if (!container) {
    recordFailure("deleteStatement", "no statement " + std::to_string(id),
                  false);
    return false;
  }
  Snapshot snap = takeSnapshot();
  container->erase(container->begin() + static_cast<long>(index));
  return finishEdit("deleteStatement", ws, snap);
}

// ---------------------------------------------------------------------------
// Performance
// ---------------------------------------------------------------------------

std::vector<LoopEstimate> Session::hotLoops() {
  ++counters_.programNavigations;
  // Bottom-up procedure costs so call sites charge realistic amounts.
  std::map<std::string, double> procCosts;
  for (const std::string& name : summaries_->callGraph().bottomUpOrder()) {
    transform::Workspace& ws = wsFor(name);
    PerformanceEstimator est(*ws.model, {}, &procCosts);
    procCosts[name] = est.procedureCost();
  }
  std::vector<LoopEstimate> all;
  double grand = 0.0;
  for (const auto& u : program_->units) {
    transform::Workspace& ws = wsFor(u->name);
    PerformanceEstimator est(*ws.model, {}, &procCosts);
    grand += est.procedureCost();
    for (const auto& e : est.loops()) all.push_back(e);
  }
  for (auto& e : all) e.fraction = grand > 0 ? e.cost / grand : 0;
  std::sort(all.begin(), all.end(),
            [](const LoopEstimate& a, const LoopEstimate& b) {
              return a.cost > b.cost;
            });
  return all;
}

interp::RunResult Session::profile(const interp::RunOptions& opts) {
  interp::Machine m(*program_);
  return m.run(opts);
}

// ---------------------------------------------------------------------------
// Dynamic dependence validation
// ---------------------------------------------------------------------------

validate::ValidationReport Session::validateDeletions(
    const ValidationOptions& opts) {
  using Clock = std::chrono::steady_clock;
  // Validation judges the CURRENT graphs: settle deferred edits first so a
  // stale graph cannot mislabel an edge.
  settleEdits();
  validate::ValidationReport rep;
  unvalidatedDeletions_.clear();

  interp::Trace trace;
  trace.limits.maxEvents = opts.budget.maxEvents;
  trace.limits.maxElements = opts.budget.maxElements;
  interp::RunOptions ro = opts.run;
  ro.checkParallel = false;  // the serial reference semantics
  ro.maxSteps = opts.budget.maxSteps;
  ro.trace = &trace;

  const auto t0 = Clock::now();
  interp::RunResult serial;
  {
    interp::Machine m(*program_);
    serial = m.run(ro);
  }
  rep.traceSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
  rep.events = static_cast<long long>(trace.events.size());
  rep.traceComplete = trace.complete();
  rep.uninitReads = trace.uninitReadCount;

  // Tag one deleted edge as explicitly unchecked: evidence on the edge and
  // its mark record, plus a DegradationReport::unvalidated row.
  auto tagUnvalidated = [&](const std::string& proc, dep::Dependence& d,
                            const std::string& why) {
    d.evidence = "unvalidated: " + why;
    auto it = marks_.find(depSignature(d));
    if (it != marks_.end()) it->second.evidence = d.evidence;
    unvalidatedDeletions_.push_back(
        {proc, d.id, dep::depTypeName(d.type), d.variable, d.level});
    ++rep.unvalidated;
  };

  // Auto-restore one refuted deletion, naming the deletion's provenance
  // (who deleted it, in which deck, and their stated reason) in the
  // structured failure report.
  auto restoreDeletion = [&](const std::string& proc, dep::Dependence& d,
                             const std::string& evidence,
                             const std::string& how) {
    const std::string sig = depSignature(d);
    std::string origin = "user";
    std::string deck = deckName_;
    std::string why = d.reason;
    auto it = marks_.find(sig);
    if (it != marks_.end()) {
      if (!it->second.origin.empty()) origin = it->second.origin;
      if (!it->second.deck.empty()) deck = it->second.deck;
      if (!it->second.reason.empty()) why = it->second.reason;
    }
    std::ostringstream os;
    os << "unsound deletion auto-restored: " << proc << " dep#" << d.id
       << ' ' << dep::depTypeName(d.type) << " on " << d.variable << " stmt"
       << d.srcStmt << "->stmt" << d.dstStmt << " level " << d.level
       << " (deleted by " << origin;
    if (!deck.empty()) os << " in deck '" << deck << '\'';
    if (!why.empty()) os << ", reason: " << why;
    os << "); " << evidence;
    recordFailure("validateDeletions", os.str(), /*rolledBack=*/true);
    d.mark = dep::DepMark::Pending;
    d.reason = "auto-restored: " + how;
    d.evidence = evidence;
    // The mark record must flip too, or the next reapplyMarks would
    // re-reject the edge this pass just restored.
    marks_[sig] = {dep::DepMark::Pending, d.reason, "validator", deckName_,
                   evidence};
    // No longer an unchecked deletion, whatever an earlier phase recorded.
    unvalidatedDeletions_.erase(
        std::remove_if(unvalidatedDeletions_.begin(),
                       unvalidatedDeletions_.end(),
                       [&](const DegradationReport::Edge& e) {
                         return e.procedure == proc && e.depId == d.id;
                       }),
        unvalidatedDeletions_.end());
  };

  if (!serial.ok) {
    rep.error = serial.error;
    rep.errorStmt = serial.errorStmt;
    // The input never ran to completion, so nothing dynamic can be
    // concluded: every deletion degrades to an explicit unvalidated tag.
    for (const auto& u : program_->units) {
      transform::Workspace& ws = wsFor(u->name);
      for (auto& d : ws.graph->allMutable()) {
        if (d.mark != dep::DepMark::Rejected) continue;
        ++rep.checked;
        tagUnvalidated(u->name, d, "trace run failed: " + serial.error);
      }
    }
    lastValidation_ = rep;
    return rep;
  }
  rep.ran = true;

  const auto t1 = Clock::now();
  validate::TraceIndex index(trace);

  // (procedure, dep id) pairs the trace pass confirmed safe — the relative
  // phase never blanket-restores those.
  std::set<std::pair<std::string, std::uint32_t>> safe;

  for (const auto& u : program_->units) {
    const std::string& name = u->name;
    transform::Workspace& ws = wsFor(name);
    for (auto& d : ws.graph->allMutable()) {
      const bool rejected = d.mark == dep::DepMark::Rejected;
      if (!rejected && d.mark != dep::DepMark::Pending) continue;
      // Pending control edges are structural; the dynamic checks have
      // nothing to say about them, and reporting every one as unvalidated
      // would drown the findings. A *deleted* control edge is still tagged.
      if (d.type == dep::DepType::Control && !rejected) continue;

      validate::EdgeQuery q;
      q.procedure = name;
      q.depId = d.id;
      q.type = d.type;
      q.srcStmt = d.srcStmt;
      q.dstStmt = d.dstStmt;
      q.variable = d.variable;
      q.level = d.level;
      q.carrierLoop = d.carrierLoop;
      q.mark = d.mark;
      q.supported = !d.interprocedural && d.type != dep::DepType::Control &&
                    (d.origin == dep::DepOrigin::ArrayPair ||
                     d.origin == dep::DepOrigin::Scalar);
      if (d.commonLoop != fortran::kInvalidStmt) {
        if (ir::Loop* common = ws.model->loopByDoStmt(d.commonLoop)) {
          for (const ir::Loop* l : common->nestPath()) {
            q.commonLoops.push_back(l->stmt->id);
          }
        } else {
          q.supported = false;  // graph/model disagree: do not guess
        }
      }

      ++rep.checked;
      validate::Finding f;
      f.edge = q;
      std::string witness;
      if (q.supported && index.findWitness(q, &witness)) {
        f.evidence = "trace witness: " + witness;
        if (rejected) {
          f.verdict = validate::Verdict::RefutedDeletion;
          ++rep.refuted;
          restoreDeletion(name, d, f.evidence,
                          "trace witness refutes deletion");
          ++rep.restored;
        } else {
          f.verdict = validate::Verdict::WitnessFound;
          d.evidence = f.evidence;
          ++rep.witnessedPending;
        }
      } else if (!q.supported) {
        f.verdict = validate::Verdict::Unvalidated;
        f.evidence = "edge shape unsupported by the trace matcher";
        if (rejected) {
          tagUnvalidated(name, d, f.evidence);
        } else {
          ++rep.unvalidated;
        }
      } else if (!trace.complete()) {
        f.verdict = validate::Verdict::Unvalidated;
        f.evidence = "trace incomplete (budget overflow)";
        if (rejected) {
          tagUnvalidated(name, d, f.evidence);
        } else {
          ++rep.unvalidated;
        }
      } else if (rejected) {
        f.verdict = validate::Verdict::ConfirmedSafe;
        f.evidence = "trace: no witness in " + std::to_string(rep.events) +
                     " events (complete trace)";
        d.evidence = f.evidence;
        auto it = marks_.find(depSignature(d));
        if (it != marks_.end()) it->second.evidence = d.evidence;
        safe.insert({name, d.id});
        ++rep.confirmedSafe;
      } else {
        f.verdict = validate::Verdict::NoWitness;
        f.evidence = "trace: unobserved on this input";
        d.evidence = f.evidence;
        ++rep.noWitness;
      }
      rep.findings.push_back(std::move(f));
    }
  }

  // Relative execution: loops whose surviving deletions claim parallelism
  // get run under shuffled schedules and diffed against the serial output.
  // This catches unsound deletions the trace matcher could not attribute
  // (interprocedural summary edges, overflowed traces).
  if (opts.relativeChecks && opts.budget.maxRelativeChecks > 0) {
    struct Candidate {
      std::string proc;
      fortran::StmtId loop;
    };
    std::vector<Candidate> cands;
    for (const auto& u : program_->units) {
      transform::Workspace& ws = wsFor(u->name);
      for (const auto& l : ws.model->loops()) {
        bool hasDeleted = false;
        for (const auto& d : ws.graph->all()) {
          if (d.mark == dep::DepMark::Rejected && d.loopCarried() &&
              d.carrierLoop == l->stmt->id) {
            hasDeleted = true;
            break;
          }
        }
        // Only loops whose deletions actually claim parallelism: anywhere
        // else a deleted edge changes nothing the run could observe.
        if (hasDeleted && ws.graph->parallelizable(*l)) {
          cands.push_back({u->name, l->stmt->id});
        }
      }
    }
    for (const Candidate& c : cands) {
      if (rep.relativeChecks >= opts.budget.maxRelativeChecks) break;
      interp::RunOptions base = opts.run;
      base.maxSteps = opts.budget.maxSteps;
      validate::RelativeResult rr = validate::relativeCheck(
          *program_, c.loop, base, serial, opts.budget.schedules);
      ++rep.relativeChecks;
      if (rr.diverged) {
        ++rep.relativeDivergences;
        transform::Workspace& ws = wsFor(c.proc);
        std::vector<dep::Dependence*> carried;
        for (auto& d : ws.graph->allMutable()) {
          if (d.mark == dep::DepMark::Rejected && d.loopCarried() &&
              d.carrierLoop == c.loop) {
            carried.push_back(&d);
          }
        }
        // Restore the deletions the divergence implicates: by race
        // variable when the detector named one, otherwise every deleted
        // edge on this loop the trace did not confirm safe (the divergence
        // proves at least one of them real but cannot say which).
        std::vector<dep::Dependence*> toRestore;
        if (!rr.raceVariables.empty()) {
          for (dep::Dependence* d : carried) {
            if (std::find(rr.raceVariables.begin(), rr.raceVariables.end(),
                          d->variable) != rr.raceVariables.end()) {
              toRestore.push_back(d);
            }
          }
        }
        if (toRestore.empty()) {
          for (dep::Dependence* d : carried) {
            if (!safe.count({c.proc, d->id})) toRestore.push_back(d);
          }
        }
        if (toRestore.empty()) toRestore = carried;
        for (dep::Dependence* d : toRestore) {
          validate::Finding f;
          f.edge.procedure = c.proc;
          f.edge.depId = d->id;
          f.edge.type = d->type;
          f.edge.srcStmt = d->srcStmt;
          f.edge.dstStmt = d->dstStmt;
          f.edge.variable = d->variable;
          f.edge.level = d->level;
          f.edge.carrierLoop = d->carrierLoop;
          f.edge.mark = d->mark;
          f.verdict = validate::Verdict::RefutedDeletion;
          f.evidence = "relative execution: " + rr.detail;
          ++rep.refuted;
          restoreDeletion(c.proc, *d, f.evidence,
                          "relative execution diverged");
          ++rep.restored;
          safe.erase({c.proc, d->id});
          rep.findings.push_back(std::move(f));
        }
      }
      rep.relative.push_back(std::move(rr));
    }
  }

  rep.validateSeconds =
      std::chrono::duration<double>(Clock::now() - t1).count();
  lastValidation_ = rep;
  return rep;
}

// ---------------------------------------------------------------------------
// OpenMP emission
// ---------------------------------------------------------------------------

std::string Session::dependenceSnapshot() {
  settleEdits();
  std::ostringstream os;
  for (const auto& u : program_->units) {
    transform::Workspace& ws = wsFor(u->name);
    os << "== " << u->name << "\n";
    for (const dep::Dependence& d : ws.graph->all()) {
      os << d.id << " " << dep::depTypeName(d.type) << " "
         << (d.variable.empty() ? "<control>" : d.variable) << " stmt"
         << d.srcStmt << "->stmt" << d.dstStmt << " level=" << d.level
         << " carrier=" << d.carrierLoop << " common=" << d.commonLoop
         << " vec=" << d.vector.str() << " mark=" << dep::depMarkName(d.mark)
         << " origin=" << static_cast<int>(d.origin)
         << " interproc=" << d.interprocedural << " degraded=" << d.degraded
         << "\n";
    }
  }
  return os.str();
}

emit::EmissionReport Session::emitOpenMP(const emit::EmitOptions& opts) {
  using Clock = std::chrono::steady_clock;
  // Emission reads the CURRENT graphs and markings.
  settleEdits();
  emit::EmissionReport rep;
  rep.ran = true;
  rep.deck = deckName_;

  const auto t0 = Clock::now();
  for (const auto& u : program_->units) {
    transform::Workspace& ws = wsFor(u->name);
    emit::ProcedureContext pc;
    pc.proc = u.get();
    pc.model = ws.model.get();
    pc.graph = ws.graph.get();
    auto ovIt = overrides_.find(u->name);
    if (ovIt != overrides_.end()) pc.overrides = &ovIt->second;
    for (auto& le : emit::planProcedure(pc)) {
      rep.loops.push_back(std::move(le));
    }
  }
  rep.emitSeconds = std::chrono::duration<double>(Clock::now() - t0).count();

  // Relative validation: the serial run is the reference semantics; every
  // eligible loop must agree with it under shuffled schedules WITH the
  // directive's data-sharing clauses applied.
  bool anyEligible = false;
  for (const auto& le : rep.loops) anyEligible |= le.emitted;
  if (opts.relativeValidation && anyEligible) {
    const auto t1 = Clock::now();
    interp::RunOptions so = opts.run;
    so.checkParallel = false;
    so.trace = nullptr;
    so.maxSteps = opts.maxSteps;
    so.parallelClauses.clear();
    interp::RunResult serial;
    {
      interp::Machine m(*program_);
      serial = m.run(so);
    }
    for (auto& le : rep.loops) {
      if (!le.emitted) continue;
      if (!serial.ok) {
        // No reference run, no validated emission: explicit refusal, never
        // an unvalidated directive.
        le.emitted = false;
        le.refusal = "serial baseline failed: " + serial.error;
        continue;
      }
      interp::RunOptions base = opts.run;
      base.trace = nullptr;
      base.maxSteps = opts.maxSteps;
      base.parallelClauses.clear();
      base.parallelClauses[le.loop] = le.interpClauses;
      validate::RelativeResult rr = validate::relativeCheck(
          *program_, le.loop, base, serial, opts.schedules);
      le.relativeChecked = rr.ran;
      le.serialExecutions = rr.serialExecutions;
      if (rr.diverged) {
        le.relativeDiverged = true;
        le.emitted = false;
        le.evidence = rr.detail;
        le.refusal = "relative validation diverged: " + rr.detail;
      } else if (rr.ran) {
        std::ostringstream ev;
        ev << "relative-ok: " << opts.schedules
           << " shuffled schedule(s) agree with the serial run"
           << " (loop executed " << rr.serialExecutions << "x serially)";
        le.evidence = ev.str();
      }
    }
    rep.validateSeconds =
        std::chrono::duration<double>(Clock::now() - t1).count();
  }

  // Tally + structured refusal reports. Zero silent drops: every refused
  // loop lands in failures() with its blocking edges or divergence.
  rep.loopsConsidered = static_cast<int>(rep.loops.size());
  for (const auto& le : rep.loops) {
    if (le.emitted) {
      ++rep.loopsEmitted;
      for (const emit::Clause& c : le.clauses) {
        ++rep.clauseHistogram[emit::clauseKindName(c.kind)];
      }
    } else {
      ++rep.loopsRefused;
      std::ostringstream os;
      os << le.procedure << " stmt" << le.loop << " [" << le.headline
         << "] refused: " << le.refusal;
      recordFailure("emitOpenMP", os.str(), /*rolledBack=*/false);
    }
  }

  // Render the deck: plain DO loops (no PARALLEL markers — the directives
  // carry the parallelism) with the surviving directives ahead of their
  // loops, wrapped at the fixed-form 72-column limit.
  std::map<StmtId, std::string> directives;
  for (const auto& le : rep.loops) {
    if (le.emitted) directives[le.loop] = le.payload;
  }
  fortran::PrettyOptions deckOpts;
  deckOpts.emitParallelMarkers = false;
  deckOpts.ompDirectives = &directives;
  rep.deckText = fortran::printProgram(*program_, deckOpts);

  if (opts.roundTrip) {
    const auto t2 = Clock::now();
    rep.roundTripChecked = true;
    rep.roundTripOk = true;
    rep.roundTripThreads = opts.roundTripThreads;
    auto fail = [&](const std::string& why) {
      rep.roundTripOk = false;
      if (!rep.roundTripDetail.empty()) rep.roundTripDetail += "; ";
      rep.roundTripDetail += why;
    };

    // 1. Re-lex: the deck's "!$OMP" lines (continuations rejoined) must
    // reassemble to exactly the payloads that were emitted.
    {
      DiagnosticEngine ld;
      fortran::Lexer lx(rep.deckText, ld);
      (void)lx.run();
      if (ld.hasErrors()) fail("emitted deck does not re-lex cleanly");
      std::vector<std::string> got;
      for (const auto& d : lx.ompDirectives()) got.push_back(d.text);
      std::vector<std::string> want;
      for (const auto& [id, payload] : directives) want.push_back(payload);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        fail("re-lexed directives differ from emitted payloads (" +
             std::to_string(got.size()) + " lexed vs " +
             std::to_string(want.size()) + " emitted)");
      }
    }

    // 2. Stripping the directive lines from the deck must yield the plain
    // print byte-for-byte (directives are whole inserted lines, nothing
    // else may differ).
    fortran::PrettyOptions plain;
    plain.emitParallelMarkers = false;
    const std::string stripped = fortran::printProgram(*program_, plain);
    {
      std::string manual;
      std::istringstream in(rep.deckText);
      std::string lineText;
      while (std::getline(in, lineText)) {
        std::string_view t = lineText;
        while (!t.empty() && (t.front() == ' ' || t.front() == '\t')) {
          t.remove_prefix(1);
        }
        if (t.size() >= 5 && (t.substr(0, 5) == "!$OMP")) continue;
        manual += lineText;
        manual += '\n';
      }
      if (manual != stripped) {
        fail("directive-stripped deck is not byte-identical to the plain "
             "print");
      }
    }

    // 3. Fresh re-analysis: the deck (directives re-lex as comments) must
    // produce a dependence graph byte-identical to the stripped source, at
    // every requested thread count.
    std::string baseline;
    {
      DiagnosticEngine bd;
      auto base = Session::load(stripped, bd);
      if (!base) {
        fail("stripped source failed to re-parse");
      } else {
        (void)base->analyzeParallel(1);
        baseline = base->dependenceSnapshot();
      }
    }
    if (!baseline.empty()) {
      for (int n : opts.roundTripThreads) {
        DiagnosticEngine dd;
        auto fresh = Session::load(rep.deckText, dd);
        if (!fresh) {
          fail("emitted deck failed to re-parse");
          break;
        }
        (void)fresh->analyzeParallel(n);
        if (fresh->dependenceSnapshot() != baseline) {
          fail("dependence graph of the re-analyzed deck differs from the "
               "stripped source at " +
               std::to_string(n) + " thread(s)");
          break;
        }
      }
    }
    if (!rep.roundTripOk) {
      recordFailure("emitOpenMP", "round-trip failed: " + rep.roundTripDetail,
                    /*rolledBack=*/false);
    }
    rep.roundTripSeconds =
        std::chrono::duration<double>(Clock::now() - t2).count();
  }

  lastEmission_ = rep;
  return rep;
}

// ---------------------------------------------------------------------------
// Interface checking (Composition Editor)
// ---------------------------------------------------------------------------

std::vector<std::string> Session::checkInterfaces() {
  ++counters_.interfaceErrorChecks;
  std::vector<std::string> problems;
  // Call-site vs declaration.
  for (const auto& site : summaries_->callGraph().callSites()) {
    const Procedure* callee = program_->findUnit(site.callee);
    if (!callee) continue;  // library routine
    const Stmt* s = site.stmt;
    if (s->kind != StmtKind::Call) continue;
    if (s->args.size() != callee->params.size()) {
      problems.push_back(site.caller + " line " +
                         std::to_string(s->loc.line) + ": call to " +
                         site.callee + " passes " +
                         std::to_string(s->args.size()) + " args, " +
                         site.callee + " declares " +
                         std::to_string(callee->params.size()));
      continue;
    }
    const Procedure* caller = program_->findUnit(site.caller);
    for (std::size_t i = 0; i < s->args.size(); ++i) {
      const Expr& a = *s->args[i];
      const fortran::VarDecl* formal = callee->findDecl(callee->params[i]);
      if (!formal) continue;
      fortran::TypeKind actualType = fortran::TypeKind::Unknown;
      if (a.kind == ExprKind::VarRef || a.kind == ExprKind::ArrayRef) {
        const fortran::VarDecl* d =
            caller ? caller->findDecl(a.name) : nullptr;
        actualType = d ? d->type : fortran::implicitType(a.name);
      } else if (a.kind == ExprKind::IntConst) {
        actualType = fortran::TypeKind::Integer;
      } else if (a.kind == ExprKind::RealConst) {
        actualType = fortran::TypeKind::Real;
      }
      auto norm = [](fortran::TypeKind t) {
        return t == fortran::TypeKind::DoublePrecision
                   ? fortran::TypeKind::Real
                   : t;
      };
      if (actualType != fortran::TypeKind::Unknown &&
          norm(actualType) != norm(formal->type)) {
        problems.push_back(
            site.caller + " line " + std::to_string(s->loc.line) +
            ": argument " + std::to_string(i + 1) + " of " + site.callee +
            " is " + fortran::typeName(actualType) + ", formal " +
            callee->params[i] + " is " + fortran::typeName(formal->type));
      }
    }
  }
  // COMMON shape agreement across units.
  std::map<std::string, std::pair<std::string, std::vector<std::string>>>
      firstSeen;  // block -> (unit, member names)
  for (const auto& u : program_->units) {
    std::map<std::string, std::vector<std::string>> blocks;
    for (const auto& d : u->decls) {
      if (!d.commonBlock.empty()) blocks[d.commonBlock].push_back(d.name);
    }
    for (const auto& [block, members] : blocks) {
      auto it = firstSeen.find(block);
      if (it == firstSeen.end()) {
        firstSeen[block] = {u->name, members};
      } else if (it->second.second.size() != members.size()) {
        problems.push_back("COMMON /" + block + "/ has " +
                           std::to_string(it->second.second.size()) +
                           " members in " + it->second.first + " but " +
                           std::to_string(members.size()) + " in " +
                           u->name);
      }
    }
  }
  return problems;
}

}  // namespace ps::ped
