#include "ped/render.h"

#include "support/text.h"

namespace ps::ped {

using ps::text::padLeft;
using ps::text::padRight;

std::string renderWindow(Session& session, int sourceRows, int depRows,
                         int varRows) {
  constexpr int kWidth = 96;
  std::string out;
  auto rule = [&] { out += std::string(kWidth, '-') + "\n"; };

  rule();
  out += padRight("  ParaScope Editor — " + session.currentProcedure(),
                  kWidth) +
         "\n";
  out += padRight(
             "  file  edit  view  search  dependence  variable  transform",
             kWidth) +
         "\n";
  rule();

  // ---- source pane ----
  auto src = session.sourcePane();
  int shown = 0;
  // Center the window on the current loop when one is selected.
  std::size_t begin = 0;
  if (session.currentLoop() != fortran::kInvalidStmt) {
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (src[i].stmt == session.currentLoop()) {
        begin = i > 2 ? i - 2 : 0;
        break;
      }
    }
  }
  for (std::size_t i = begin; i < src.size() && shown < sourceRows;
       ++i, ++shown) {
    const auto& row = src[i];
    std::string line;
    line += row.loopStart ? "*" : " ";
    line += row.inCurrentLoop ? ">" : " ";
    line += padLeft(std::to_string(row.ordinal), 4) + "  ";
    line += std::string(static_cast<std::size_t>(row.depth) * 2, ' ');
    line += row.text;
    out += padRight(line, kWidth).substr(0, kWidth) + "\n";
  }
  while (shown++ < sourceRows) out += "\n";
  rule();

  // ---- dependence pane ----
  out += padRight(std::string("  TYPE    SOURCE") +
                      std::string(14, ' ') + "SINK" + std::string(16, ' ') +
                      "VECTOR    LVL  BLOCK  MARK      REASON",
                  kWidth) +
         "\n";
  auto deps = session.dependencePane();
  int dshown = 0;
  for (const auto& d : deps) {
    if (dshown >= depRows) break;
    std::string line = "  ";
    line += padRight(d.type, 8);
    line += padRight(d.source, 20);
    line += padRight(d.sink, 20);
    line += padRight(d.vector, 10);
    line += padLeft(std::to_string(d.level), 3) + "  ";
    line += padRight(d.block, 7);
    line += padRight(d.mark, 10);
    line += d.reason;
    out += padRight(line, kWidth).substr(0, kWidth) + "\n";
    ++dshown;
  }
  while (dshown++ < depRows) out += "\n";
  rule();

  // ---- variable pane ----
  out += padRight("  NAME      DIM  BLOCK   DEF<      USE>      KIND"
                  "            REASON",
                  kWidth) +
         "\n";
  auto vars = session.variablePane();
  int vshown = 0;
  for (const auto& v : vars) {
    if (vshown >= varRows) break;
    std::string line = "  ";
    line += padRight(v.name, 10);
    line += padLeft(std::to_string(v.dim), 3) + "  ";
    line += padRight(v.block, 8);
    line += padRight(v.defs, 10);
    line += padRight(v.uses, 10);
    line += padRight(v.kind, 16);
    line += v.reason;
    out += padRight(line, kWidth).substr(0, kWidth) + "\n";
    ++vshown;
  }
  while (vshown++ < varRows) out += "\n";
  rule();
  return out;
}

}  // namespace ps::ped
