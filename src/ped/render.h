#ifndef PS_PED_RENDER_H
#define PS_PED_RENDER_H

#include <string>

#include "ped/session.h"

namespace ps::ped {

/// Render the PED window (Figure 1): menu bar, source pane with ordinal
/// line numbers and '*' loop markers, the dependence pane footnote and the
/// variable pane footnote, all reflecting the session's current loop
/// selection and filters.
[[nodiscard]] std::string renderWindow(Session& session, int sourceRows = 18,
                                       int depRows = 10, int varRows = 6);

}  // namespace ps::ped

#endif  // PS_PED_RENDER_H
