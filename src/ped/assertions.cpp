#include "ped/assertions.h"

#include "fortran/parser.h"
#include "support/text.h"

namespace ps::ped {

using dataflow::LinearExpr;
using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;

namespace {

/// Parse a Fortran expression from a text fragment by wrapping it in a tiny
/// subroutine and reusing the real parser.
fortran::ExprPtr parseExprText(const std::string& text,
                               DiagnosticEngine& diags) {
  std::string src = "      SUBROUTINE ASRTWRAP\n      ASRTLHS = " + text +
                    "\n      END\n";
  DiagnosticEngine local;
  auto prog = fortran::parseSource(src, local);
  if (local.hasErrors() || prog->units.empty() ||
      prog->units[0]->body.empty() ||
      prog->units[0]->body[0]->kind != fortran::StmtKind::Assign) {
    diags.error({}, "cannot parse assertion expression: " + text);
    return nullptr;
  }
  return std::move(prog->units[0]->body[0]->rhs);
}

/// Split a parenthesized argument list at top-level commas.
std::vector<std::string> splitArgs(std::string_view inner) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : inner) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(std::string(ps::text::trim(cur)));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!ps::text::trim(cur).empty()) {
    parts.push_back(std::string(ps::text::trim(cur)));
  }
  return parts;
}

/// Turn a relational expression into facts (lhs - rhs with the right
/// strictness), using the subscript linearizer so symbol names match what
/// the dependence tester sees.
bool relationToFacts(const Expr& rel, std::vector<dep::Fact>* facts) {
  if (rel.kind != ExprKind::Binary) return false;
  dep::OpaqueTable opaques;
  LinearExpr l = dep::linearizeSubscript(*rel.lhs, {}, opaques);
  LinearExpr r = dep::linearizeSubscript(*rel.rhs, {}, opaques);
  LinearExpr diff;  // lhs - rhs
  diff.add(l, 1);
  diff.add(r, -1);
  switch (rel.binOp) {
    case BinOp::Gt:
      facts->push_back({diff, /*strict=*/true});
      return true;
    case BinOp::Ge:
      facts->push_back({diff, false});
      return true;
    case BinOp::Lt: {
      LinearExpr neg;
      neg.add(diff, -1);
      facts->push_back({neg, true});
      return true;
    }
    case BinOp::Le: {
      LinearExpr neg;
      neg.add(diff, -1);
      facts->push_back({neg, false});
      return true;
    }
    case BinOp::Eq: {
      facts->push_back({diff, false});
      LinearExpr neg;
      neg.add(diff, -1);
      facts->push_back({neg, false});
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::optional<Assertion> parseAssertion(const std::string& payload,
                                        DiagnosticEngine& diags) {
  std::string up = ps::text::upper(ps::text::trim(payload));
  if (!ps::text::startsWith(up, "ASSERT")) {
    diags.error({}, "directive is not an ASSERT: " + payload);
    return std::nullopt;
  }
  std::string rest(ps::text::trim(std::string_view(up).substr(6)));
  auto open = rest.find('(');
  auto close = rest.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    diags.error({}, "malformed ASSERT: " + payload);
    return std::nullopt;
  }
  std::string keyword(ps::text::trim(rest.substr(0, open)));
  std::string inner = rest.substr(open + 1, close - open - 1);

  Assertion a;
  a.text = up;

  if (keyword == "RELATION") {
    a.kind = AssertionKind::Relation;
    a.relationExpr = parseExprText(inner, diags);
    if (!a.relationExpr) return std::nullopt;
    if (!relationToFacts(*a.relationExpr, &a.facts)) {
      diags.error({}, "RELATION must be a linear comparison: " + payload);
      return std::nullopt;
    }
    return a;
  }
  if (keyword == "RANGE") {
    a.kind = AssertionKind::Range;
    auto parts = splitArgs(inner);
    if (parts.size() != 3) {
      diags.error({}, "RANGE needs (var, lo, hi): " + payload);
      return std::nullopt;
    }
    auto var = parseExprText(parts[0], diags);
    auto lo = parseExprText(parts[1], diags);
    auto hi = parseExprText(parts[2], diags);
    if (!var || !lo || !hi) return std::nullopt;
    dep::OpaqueTable opaques;
    LinearExpr v = dep::linearizeSubscript(*var, {}, opaques);
    LinearExpr lf = dep::linearizeSubscript(*lo, {}, opaques);
    LinearExpr hf = dep::linearizeSubscript(*hi, {}, opaques);
    LinearExpr lower = v;   // v - lo >= 0
    lower.add(lf, -1);
    a.facts.push_back({lower, false});
    LinearExpr upper = hf;  // hi - v >= 0
    upper.add(v, -1);
    a.facts.push_back({upper, false});
    return a;
  }
  if (keyword == "PERMUTATION") {
    a.kind = AssertionKind::Permutation;
    a.array = std::string(ps::text::trim(inner));
    if (a.array.empty()) {
      diags.error({}, "PERMUTATION needs an array name: " + payload);
      return std::nullopt;
    }
    return a;
  }
  if (keyword == "STRIDED") {
    a.kind = AssertionKind::Strided;
    auto parts = splitArgs(inner);
    if (parts.size() != 2) {
      diags.error({}, "STRIDED needs (array, gap): " + payload);
      return std::nullopt;
    }
    a.array = parts[0];
    a.gap = std::atoll(parts[1].c_str());
    if (a.gap <= 0) {
      diags.error({}, "STRIDED gap must be positive: " + payload);
      return std::nullopt;
    }
    return a;
  }
  if (keyword == "SEPARATED") {
    a.kind = AssertionKind::Separated;
    auto parts = splitArgs(inner);
    if (parts.size() != 3) {
      diags.error({}, "SEPARATED needs (A, B, gap): " + payload);
      return std::nullopt;
    }
    a.array = parts[0];
    a.array2 = parts[1];
    a.gap = std::atoll(parts[2].c_str());
    return a;
  }
  diags.error({}, "unknown assertion keyword: " + keyword);
  return std::nullopt;
}

void applyAssertions(const std::vector<Assertion>& assertions,
                     dep::AnalysisContext* ctx) {
  for (const auto& a : assertions) {
    switch (a.kind) {
      case AssertionKind::Relation:
      case AssertionKind::Range:
        for (const auto& f : a.facts) ctx->facts.push_back(f);
        break;
      case AssertionKind::Permutation:
        ctx->indexFacts.permutation.insert(a.array);
        break;
      case AssertionKind::Strided:
        ctx->indexFacts.strided[a.array] = a.gap;
        break;
      case AssertionKind::Separated:
        ctx->indexFacts.separated[{a.array, a.array2}] = a.gap;
        break;
    }
  }
}

}  // namespace ps::ped
