#ifndef PS_PED_ASSERTIONS_H
#define PS_PED_ASSERTIONS_H

#include <optional>
#include <string>
#include <vector>

#include "dependence/graph.h"
#include "dependence/testsuite.h"
#include "support/diagnostics.h"

namespace ps::ped {

/// The user assertion language of §3.3, designed around the paper's three
/// requirements: assertions express properties natural to the user, they
/// feed dependence elimination, and they are run-time checkable (the
/// interpreter validates them — see Session::checkAssertions).
///
/// Grammar (directive text after "CPED$" / "!PED$", case-insensitive):
///   ASSERT RELATION (expr relop expr)      e.g. (MCN .GT. IENDV(IR) - ISTRT(IR))
///   ASSERT RANGE (var, lo, hi)             lo <= var <= hi
///   ASSERT PERMUTATION (A)                 A maps distinct args to distinct values
///   ASSERT STRIDED (A, k)                  A(i+1) >= A(i) + k (monotone)
///   ASSERT SEPARATED (A, B, k)             min(B) - max(A) >= k
enum class AssertionKind { Relation, Range, Permutation, Strided, Separated };

struct Assertion {
  AssertionKind kind = AssertionKind::Relation;
  std::string text;  // original directive payload

  // Relation / Range.
  std::vector<dep::Fact> facts;
  // Permutation / Strided / Separated.
  std::string array;
  std::string array2;
  long long gap = 0;

  /// The original relation expression (Relation kind), kept for run-time
  /// verification.
  fortran::ExprPtr relationExpr;
};

/// Parse one directive payload ("ASSERT ..."). Returns nullopt and reports
/// a diagnostic on malformed input.
[[nodiscard]] std::optional<Assertion> parseAssertion(
    const std::string& payload, DiagnosticEngine& diags);

/// Fold a batch of assertions into the dependence analysis context.
void applyAssertions(const std::vector<Assertion>& assertions,
                     dep::AnalysisContext* ctx);

}  // namespace ps::ped

#endif  // PS_PED_ASSERTIONS_H
