#include "ped/perfest.h"

#include <algorithm>

#include "cfg/flow_graph.h"
#include "fortran/pretty.h"
#include "ir/refs.h"

namespace ps::ped {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

PerformanceEstimator::PerformanceEstimator(
    ir::ProcedureModel& model, const EstimatorOptions& opts,
    const std::map<std::string, double>* procedureCosts)
    : model_(model), opts_(opts), procCosts_(procedureCosts) {
  cfg::FlowGraph fg = cfg::FlowGraph::build(model_);
  constants_ = std::make_unique<dataflow::ConstantAnalysis>(
      dataflow::ConstantAnalysis::build(fg, model_));

  for (const auto& s : model_.procedure().body) total_ += stmtCost(*s);

  for (const auto& loopPtr : model_.loops()) {
    LoopEstimate e;
    e.loop = loopPtr->stmt->id;
    e.procedure = model_.procedure().name;
    e.headline = fortran::stmtHeadline(*loopPtr->stmt);
    e.cost = loopCost_[loopPtr->stmt->id];
    e.trips = tripCount(*loopPtr->stmt);
    e.level = loopPtr->level;
    e.fraction = total_ > 0 ? e.cost / total_ : 0.0;
    loops_.push_back(std::move(e));
  }
  std::sort(loops_.begin(), loops_.end(),
            [](const LoopEstimate& a, const LoopEstimate& b) {
              return a.cost > b.cost;
            });
}

double PerformanceEstimator::exprCost(const Expr& e) const {
  double cost = 0.0;
  e.forEach([&](const Expr& sub) {
    switch (sub.kind) {
      case ExprKind::Binary:
        cost += (sub.binOp == fortran::BinOp::Div ||
                 sub.binOp == fortran::BinOp::Pow)
                    ? 4.0
                    : 1.0;
        break;
      case ExprKind::ArrayRef:
        cost += 1.0;  // address arithmetic + memory reference
        break;
      case ExprKind::FuncCall:
        if (ir::isIntrinsic(sub.name)) {
          cost += 8.0;
        } else if (procCosts_ && procCosts_->count(sub.name)) {
          cost += procCosts_->at(sub.name);
        } else {
          cost += opts_.unknownCallCost;
        }
        break;
      default:
        break;
    }
  });
  return cost;
}

double PerformanceEstimator::tripCount(const Stmt& doStmt) const {
  auto lo = constants_->evaluateAt(doStmt.id, *doStmt.doLo);
  auto hi = constants_->evaluateAt(doStmt.id, *doStmt.doHi);
  double step = 1.0;
  if (doStmt.doStep) {
    auto st = constants_->evaluateAt(doStmt.id, *doStmt.doStep);
    if (st && st->kind == dataflow::ConstVal::Kind::IntConst && st->i != 0) {
      step = static_cast<double>(st->i);
    } else {
      return opts_.defaultTripCount;
    }
  }
  if (lo && hi && lo->kind == dataflow::ConstVal::Kind::IntConst &&
      hi->kind == dataflow::ConstVal::Kind::IntConst) {
    double t = (static_cast<double>(hi->i) - static_cast<double>(lo->i) +
                step) /
               step;
    return t < 0 ? 0 : t;
  }
  return opts_.defaultTripCount;
}

double PerformanceEstimator::stmtCost(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Do: {
      double body = 2.0;  // loop control overhead per iteration
      for (const auto& b : s.body) body += stmtCost(*b);
      body += exprCost(*s.doLo) + exprCost(*s.doHi);
      double cost = tripCount(s) * body;
      loopCost_[s.id] = cost;
      return cost;
    }
    case StmtKind::If: {
      double cost = 0.0;
      double arms = 0.0;
      for (const auto& arm : s.arms) {
        if (arm.condition) cost += exprCost(*arm.condition);
        double armCost = 0.0;
        for (const auto& b : arm.body) armCost += stmtCost(*b);
        arms = std::max(arms, armCost);
      }
      return cost + arms;  // worst-case arm
    }
    case StmtKind::Assign:
      return 1.0 + exprCost(*s.lhs) + exprCost(*s.rhs);
    case StmtKind::Call: {
      double cost = 2.0;
      for (const auto& a : s.args) cost += exprCost(*a);
      if (procCosts_ && procCosts_->count(s.callee)) {
        cost += procCosts_->at(s.callee);
      } else {
        cost += opts_.unknownCallCost;
      }
      return cost;
    }
    case StmtKind::ArithmeticIf:
      return 1.0 + exprCost(*s.condExpr);
    case StmtKind::Read:
    case StmtKind::Write:
      return 4.0 * static_cast<double>(s.args.size() + 1);
    default:
      return 0.5;
  }
}

double PerformanceEstimator::parallelSpeedup(fortran::StmtId loop) const {
  auto it = loopCost_.find(loop);
  if (it == loopCost_.end() || total_ <= 0) return 1.0;
  double parallelPart = it->second / total_;
  double serialPart = 1.0 - parallelPart;
  return 1.0 / (serialPart + parallelPart / opts_.processors);
}

}  // namespace ps::ped
