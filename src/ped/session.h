#ifndef PS_PED_SESSION_H
#define PS_PED_SESSION_H

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dependence/graph.h"
#include "emit/emit.h"
#include "interp/machine.h"
#include "interproc/array_kill.h"
#include "interproc/summaries.h"
#include "ped/assertions.h"
#include "ped/perfest.h"
#include "support/audit.h"
#include "support/diagnostics.h"
#include "support/taskpool.h"
#include "transform/transform.h"
#include "validate/validate.h"

namespace ps::ped {

/// How much invariant auditing runs after each edit / transformation /
/// reanalysis. Cheap validates structural invariants (id uniqueness,
/// loop-tree/AST agreement, dependence edges referencing live statements);
/// Deep adds the pretty-print -> re-parse round trip.
enum class AuditMode { Off, Cheap, Deep };

/// Fault injection points for robustness tests. The fault fires once at the
/// next matching operation, then disarms itself.
enum class Fault {
  None,
  /// The transformation mutates the program, then reports failure — the
  /// partial mutation must be rolled back.
  MidApply,
  /// State is corrupted (duplicate statement id) after a successful apply —
  /// the post-apply audit must catch it and roll back.
  CorruptState,
};

/// Structured record of a failed or rolled-back operation: PED's power
/// steering promises the user a diagnosed failure, never a broken program.
struct FailureReport {
  std::string operation;  // "Loop Interchange", "editStatement", ...
  std::string detail;     // transformation error text or audit violations
  bool rolledBack = false;

  [[nodiscard]] std::string str() const {
    return operation + ": " + detail +
           (rolledBack ? " [rolled back]" : "");
  }
};

/// Every place the bounded analyses gave up this session: the degraded
/// dependence edges still in the graphs plus the budget-exhaustion counters.
struct DegradationReport {
  struct Edge {
    std::string procedure;
    std::uint32_t depId = 0;
    std::string type;
    std::string variable;
    int level = 0;
  };
  std::vector<Edge> edges;
  /// Rejected (user-deleted) edges the last validation pass could not
  /// check — trace overflow, unsupported edge shape, or a failed trace
  /// run. These deletions are still trusted, but explicitly untrusted-by-
  /// evidence rather than silently passed.
  std::vector<Edge> unvalidated;
  long long fmDegraded = 0;
  long long degradedAnswers = 0;
  long long linearizeDegraded = 0;
  long long symbolicTruncated = 0;

  [[nodiscard]] bool empty() const {
    return edges.empty() && unvalidated.empty() && fmDegraded == 0 &&
           degradedAnswers == 0 && linearizeDegraded == 0 &&
           symbolicTruncated == 0;
  }
  [[nodiscard]] std::string str() const;
};

/// What one parallel analysis did: thread count, wall time, and scheduler
/// counters (tasks include the per-nest fan-out inside each per-procedure
/// build). `incremental` is set when the run consumed a pending dirty set
/// instead of rebuilding the whole program; `procedures` then counts only
/// the re-analyzed ones.
struct ParallelReport {
  int threads = 1;
  bool incremental = false;
  double seconds = 0.0;
  std::size_t procedures = 0;
  std::size_t summaryTasks = 0;
  std::uint64_t tasksExecuted = 0;
  std::uint64_t steals = 0;
  /// Steal-latency telemetry for this run: per-worker idle-bout histograms
  /// (rows 0..threads-1) plus one row for external waiters, diffed against
  /// the pool's counters at the start of the run.
  std::vector<support::TaskPool::IdleStats> idle;
};

/// Feature-usage counters, mirroring the rows of the paper's Table 2 so the
/// scripted work-model sessions can report what they exercised.
struct UsageCounters {
  int dependenceDeletions = 0;       // "dependence deletion"
  int variableClassifications = 0;   // "variable classification"
  int analysisQueries = 0;           // "access to analysis"
  int programNavigations = 0;        // "navigation: program"
  int dependenceNavigations = 0;     // "navigation: dependence"
  int viewFilterUses = 0;            // "view filtering"
  int interfaceErrorChecks = 0;      // "detect interface error"
  int transformationsApplied = 0;
  int assertionsAdded = 0;
};

/// What the persistent program database contributed to a session: per-kind
/// hit/miss tallies, the damage report, and the live work that remained.
struct PdbStats {
  bool storeRejected = false;  // unreadable file or header mismatch
  /// Structured I/O failures from savePdb/openWarm: which stage failed
  /// ("create", "write", "fsync", "rename", "read", ...) and the errno
  /// text, instead of the bare bool the callers also get. A missing store
  /// file on open is a normal cold start and is NOT recorded here.
  std::vector<FailureReport> ioFailures;
  std::size_t summaryHits = 0;
  std::size_t summaryMisses = 0;
  std::size_t graphHits = 0;
  std::size_t graphMisses = 0;
  /// Records dropped by any verification layer: framing/checksum damage,
  /// verify-hash (collision) mismatch, or structural rebind failure.
  std::size_t quarantined = 0;
  std::size_t memoPrewarmed = 0;  // dependence-test results seeded warm
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  /// Dependence tests actually executed while settling warm-open misses
  /// (zero when every procedure hit).
  long long testsRunLive = 0;

  [[nodiscard]] std::string str() const;
};

/// The ParaScope Editor session: an electronic book over one Fortran
/// program with three panes, progressive disclosure by loop selection,
/// user-editable dependence marks and variable classifications, assertions,
/// power-steered transformations and navigation guidance.
class Session {
 public:
  /// Parse and fully analyze a program. Assertion directives (CPED$/!PED$)
  /// found in the source are applied immediately.
  static std::unique_ptr<Session> load(std::string_view source,
                                       DiagnosticEngine& diags);

  /// Open `source` against a persistent program database written by
  /// savePdb(): every procedure whose content key (normalized source text
  /// + inherited interprocedural facts + analysis budget) hits a verified
  /// store record adopts the stored summary and dependence graph; only the
  /// mismatches are scheduled — through the same dirty-set path edits use —
  /// on `nThreads` workers (0 = hardware_concurrency). A missing,
  /// truncated, corrupted or version-skewed store never fails the open: it
  /// degrades, record by record, to cold recomputation, with the damage
  /// tallied in pdbStats(). Results are bit-identical to load() +
  /// analyzeParallel() at any thread count.
  static std::unique_ptr<Session> openWarm(std::string_view source,
                                           const std::string& pdbPath,
                                           DiagnosticEngine& diags,
                                           int nThreads = 0);

  /// Resources an analysis server shares across the sessions it hosts; see
  /// server::AnalysisServer. Every field is optional — attach() with a
  /// default-constructed SharedWarmState is a cold load() + analyze.
  struct SharedWarmState {
    /// Store image already read from disk (the server reads the file once
    /// and every session verifies records out of the same bytes). Null =
    /// no store; the session runs cold.
    const std::string* storeImage = nullptr;
    /// Dependence-test memo shared with other sessions. Null = private
    /// memo. When set, memoView must be a view created on that memo for
    /// this session (DepMemo::createView), so this session's invalidations
    /// evict only its own view.
    std::shared_ptr<dep::DepMemo> memo;
    dep::DepMemo::ViewId memoView = 0;
    /// Pool the warm-open settle is scheduled on; null = a private pool of
    /// `nThreads` workers.
    support::TaskPool* pool = nullptr;
  };

  /// Open `source` against shared server state: verified records restore
  /// from the shared store image, dependence tests flow through the shared
  /// memo (via this session's view), and the settle of store misses runs
  /// on the shared pool. Results are bit-identical to a solo cold load()
  /// + analyzeParallel() at any thread count — sharing changes where
  /// answers come from, never what they are.
  static std::unique_ptr<Session> attach(std::string_view source,
                                         const SharedWarmState& shared,
                                         DiagnosticEngine& diags,
                                         int nThreads = 0);

  /// Write the persistent program database: one summary record per
  /// non-recursive procedure, one graph-slice record per procedure with a
  /// settled materialized workspace, and the current-generation memo
  /// snapshot. Atomic (temp file + rename); false on I/O failure.
  bool savePdb(const std::string& path);

  [[nodiscard]] const PdbStats& pdbStats() const { return pdbStats_; }

  [[nodiscard]] fortran::Program& program() { return *program_; }
  [[nodiscard]] const DiagnosticEngine& diagnostics() const { return diags_; }

  // ---------------------------------------------------------------------
  // Book navigation (progressive disclosure)
  // ---------------------------------------------------------------------

  [[nodiscard]] std::vector<std::string> procedureNames() const;
  bool selectProcedure(const std::string& name);
  [[nodiscard]] const std::string& currentProcedure() const {
    return current_;
  }

  struct LoopRow {
    fortran::StmtId id = fortran::kInvalidStmt;
    std::string headline;
    int level = 1;
    bool parallelizable = false;
    bool parallel = false;  // currently marked PARALLEL DO
    int pendingDeps = 0;
  };
  /// The loops of the current procedure, pre-order (the source pane's '*'
  /// markers).
  [[nodiscard]] std::vector<LoopRow> loops();

  bool selectLoop(fortran::StmtId loop);
  [[nodiscard]] fortran::StmtId currentLoop() const { return currentLoop_; }

  // ---------------------------------------------------------------------
  // Panes
  // ---------------------------------------------------------------------

  struct SourceRow {
    int ordinal = 0;
    fortran::StmtId stmt = fortran::kInvalidStmt;
    std::string text;
    bool loopStart = false;
    int depth = 0;
    bool inCurrentLoop = false;
  };
  [[nodiscard]] std::vector<SourceRow> sourcePane();

  struct DependenceRow {
    std::uint32_t id = 0;
    std::string type;
    std::string source;
    std::string sink;
    std::string vector;
    int level = 0;
    std::string block;   // COMMON block of the variable, if any
    std::string mark;
    std::string reason;
  };
  [[nodiscard]] std::vector<DependenceRow> dependencePane();

  struct VariableRow {
    std::string name;
    int dim = 0;
    std::string block;
    std::string defs;  // line numbers of defs outside the loop
    std::string uses;  // line numbers of uses outside the loop
    std::string kind;  // shared / private / private(last)
    std::string reason;
  };
  [[nodiscard]] std::vector<VariableRow> variablePane();

  // ---------------------------------------------------------------------
  // View filtering
  // ---------------------------------------------------------------------

  struct DependenceFilter {
    std::optional<dep::DepType> type;
    std::string variable;               // empty = any
    std::optional<dep::DepMark> mark;
    std::optional<bool> carriedOnly;
  };
  void setDependenceFilter(DependenceFilter f);
  void clearDependenceFilter();

  struct SourceFilter {
    std::string contains;        // substring of the pretty-printed text
    bool loopHeadersOnly = false;
    int withLabel = 0;           // non-zero: only statements with this label
  };
  void setSourceFilter(SourceFilter f);
  void clearSourceFilter();

  struct VariableFilter {
    std::string kind;      // "shared"/"private"/"" = any
    bool arraysOnly = false;
  };
  void setVariableFilter(VariableFilter f);
  void clearVariableFilter();

  // ---------------------------------------------------------------------
  // Dependence marking (and the Mark Dependences power-steering dialog)
  // ---------------------------------------------------------------------

  /// `origin` records WHO made the mark ("user", a tool name, or
  /// "validator" for auto-restores) — provenance that mismatch reports
  /// name when a deletion turns out unsound.
  bool markDependence(std::uint32_t id, dep::DepMark mark,
                      const std::string& reason,
                      const std::string& origin = "user");
  /// Classify every dependence matching the filter in one step; returns the
  /// number marked.
  int markAllMatching(const DependenceFilter& f, dep::DepMark mark,
                      const std::string& reason,
                      const std::string& origin = "user");

  // ---------------------------------------------------------------------
  // Variable classification (and Classify Variables dialog)
  // ---------------------------------------------------------------------

  bool classifyVariable(const std::string& name, bool asPrivate,
                        const std::string& reason);

  // ---------------------------------------------------------------------
  // Assertions
  // ---------------------------------------------------------------------

  bool addAssertion(const std::string& payload);
  [[nodiscard]] const std::vector<Assertion>& assertions() const {
    return assertions_;
  }

  // ---------------------------------------------------------------------
  // Access to analysis (§3.2) and guidance (§5.3)
  // ---------------------------------------------------------------------

  /// Human-readable impediment report for a loop: which dependences block
  /// parallelization and why, plus what additional analysis would help
  /// (array kills, reductions, index arrays — the Table 3 "needed" rows).
  [[nodiscard]] std::string explainLoop(fortran::StmtId loop);

  /// The interprocedural summary of a procedure (MOD/REF/KILL/sections).
  [[nodiscard]] std::string showSummary(const std::string& procName);

  struct GuidanceEntry {
    std::string transformation;
    transform::Target target;
    transform::Advice advice;
  };
  /// Evaluate the whole catalog against a loop; with `safeOnly` the menu
  /// shows "only those which are safe and profitable for the currently
  /// selected loop" — the §5.3 request. The A5 ablation compares menu
  /// sizes.
  [[nodiscard]] std::vector<GuidanceEntry> guidance(fortran::StmtId loop,
                                                    bool safeOnly);

  bool applyTransformation(const std::string& name,
                           const transform::Target& target,
                           std::string* error);

  // ---------------------------------------------------------------------
  // Editing (the source pane "allows arbitrary editing of the program
  // using mixed text and structure editing techniques"; edits trigger
  // incremental re-parse + reanalysis of the enclosing procedure)
  // ---------------------------------------------------------------------

  /// Replace one simple statement with new Fortran text (parsed in the
  /// current procedure's declaration context). Returns false with a
  /// diagnostic recorded when the text does not parse.
  bool editStatement(fortran::StmtId id, const std::string& newText);
  /// Insert a new statement (parsed from text) after the given statement.
  bool insertStatementAfter(fortran::StmtId id, const std::string& text);
  /// Delete a statement outright (the unchecked editor operation; the
  /// checked one is the "Statement Deletion" transformation).
  bool deleteStatement(fortran::StmtId id);

  // ---------------------------------------------------------------------
  // Performance estimation & dynamic profile
  // ---------------------------------------------------------------------

  /// Static estimates for every loop in the program, hottest first.
  [[nodiscard]] std::vector<LoopEstimate> hotLoops();
  /// Execute the program with the interpreter, yielding the profile the
  /// workshop users got from gprof.
  [[nodiscard]] interp::RunResult profile(const interp::RunOptions& opts = {});

  // ---------------------------------------------------------------------
  // Dynamic dependence validation (trace-backed deletion checking)
  // ---------------------------------------------------------------------

  struct ValidationOptions {
    validate::ValidationBudget budget;
    /// Base interpreter options for the traced serial run and the relative
    /// executions (input values, step limit overridden by the budget).
    interp::RunOptions run;
    /// Also relative-execute loops whose deletions make them parallel.
    bool relativeChecks = true;
  };

  /// Replay the program serially under the trace recorder and check every
  /// Rejected (user-deleted) and Pending dependence edge against the
  /// observed memory accesses. A deletion refuted by a trace witness is
  /// UNSOUND: the edge is auto-restored to Pending, the restore is recorded
  /// as a FailureReport naming the deletion's provenance (origin, deck,
  /// statements), and the witness is attached as evidence. Deletions with a
  /// complete trace and no witness are tagged confirmed-safe (evidence
  /// persists through savePdb/openWarm). Edges the pass cannot check —
  /// budget overflow, unsupported shape, failed run — degrade to an
  /// explicit `unvalidated` tag surfaced via degradationReport(), never a
  /// silent pass. Never throws; a crashing program yields ran=false with
  /// the faulting statement id.
  validate::ValidationReport validateDeletions(const ValidationOptions& opts);
  validate::ValidationReport validateDeletions() {
    return validateDeletions(ValidationOptions());
  }

  /// Result of the most recent validateDeletions() pass.
  [[nodiscard]] const validate::ValidationReport& lastValidation() const {
    return lastValidation_;
  }

  /// Deck name used for mark provenance and reports (set by loaders).
  void setDeckName(std::string name) { deckName_ = std::move(name); }
  [[nodiscard]] const std::string& deckName() const { return deckName_; }

  // ---------------------------------------------------------------------
  // OpenMP emission (validated parallel output)
  // ---------------------------------------------------------------------

  /// Emit an OpenMP-annotated deck from the current PARALLEL markings.
  /// Every marked loop either emits a "!$OMP PARALLEL DO" directive with
  /// clauses derived from the dependence graph, privatization analysis and
  /// user classifications, or is refused with a FailureReport naming the
  /// blocking dependence edges — never silently dropped. Emitted loops are
  /// relative-executed under shuffled schedules with the directive's
  /// data-sharing clauses applied (a divergence demotes the loop to
  /// refused), and the emitted deck is round-tripped: re-lexed to the
  /// exact directives written, and re-analyzed at the requested thread
  /// counts to a dependence graph byte-identical to the directive-stripped
  /// source. Settles deferred edits first.
  emit::EmissionReport emitOpenMP(const emit::EmitOptions& opts);
  emit::EmissionReport emitOpenMP() {
    return emitOpenMP(emit::EmitOptions());
  }

  /// Result of the most recent emitOpenMP() pass (restored from the PDB on
  /// warm open when the program, marks and overrides still match).
  [[nodiscard]] const emit::EmissionReport& lastEmission() const {
    return lastEmission_;
  }

  /// Deterministic serialization of every procedure's dependence graph
  /// (edge fields, marks, degradation flags) — the byte-comparison
  /// substrate for emission round-trip checks. Settles deferred edits.
  [[nodiscard]] std::string dependenceSnapshot();

  // ---------------------------------------------------------------------
  // Interface checking (the Composition Editor)
  // ---------------------------------------------------------------------

  [[nodiscard]] std::vector<std::string> checkInterfaces();

  // ---------------------------------------------------------------------
  // Internals exposed for benches/tests
  // ---------------------------------------------------------------------

  [[nodiscard]] transform::Workspace& workspace();
  [[nodiscard]] const UsageCounters& usage() const { return counters_; }
  [[nodiscard]] const interproc::SummaryBuilder& summaries() const {
    return *summaries_;
  }
  /// Rebuild summaries + all workspaces (the non-incremental A2 baseline);
  /// incremental updates only touch the edited procedure. Also empties the
  /// cross-build dependence-test memo.
  void fullReanalysis();

  /// Whole-program analysis as a task DAG on a thread pool. The full path
  /// pipelines the interprocedural summary phase per procedure: summary
  /// tasks are sequenced callee-before-caller by the call graph, recursive
  /// procedures get independent worst-case tasks, and each per-procedure
  /// analysis task (CFG, dominators, dataflow, dependence testing, with
  /// per-nest dependence batteries fanned out as subtasks) is gated only on
  /// its own callees' summaries — plus the global-facts census when the
  /// procedure declares COMMON — so analysis of one call-graph region
  /// starts while unrelated regions are still summarizing.
  ///
  /// Interaction with setIncrementalUpdates: when incremental updates are
  /// on and deferred edits left a dirty set pending, only the dirty
  /// procedures are scheduled, splicing every unchanged loop nest from the
  /// existing graphs and reusing the warm dependence-test memo (the
  /// summaries were already updated in place at edit time). With
  /// incremental updates off the parallel path always rebuilds everything,
  /// exactly like the sequential A2 baseline.
  ///
  /// Per-task TestStats merge into the session counters in fixed unit
  /// order. Semantics match fullReanalysis() (full path) or a sequential
  /// settleEdits() (incremental path); nThreads == 1 (a poolless FIFO) is
  /// bit-identical to the sequential path — graphs, edge ids and stats.
  /// nThreads == 0 uses hardware_concurrency().
  ParallelReport analyzeParallel(int nThreads = 0);
  /// Same, scheduling onto a caller-owned pool (the eight-deck batch driver
  /// runs several sessions' analyses concurrently on one pool).
  ParallelReport analyzeOn(support::TaskPool& pool);

  // ---------------------------------------------------------------------
  // Deferred re-analysis (dirty-set accumulation across edits)
  // ---------------------------------------------------------------------

  /// With deferred analysis on, source edits still re-parse, update the
  /// interprocedural summaries in place and refresh the edited procedure's
  /// statement model (so panes and audits stay live), but the dependence
  /// re-analysis is postponed: invalidated procedures accumulate in a dirty
  /// set until settleEdits() or an analyzeParallel()/analyzeOn() run —
  /// which, with incremental updates on, schedules exactly the dirty set.
  /// Turning deferral off settles any pending edits immediately.
  void setDeferredAnalysis(bool on);
  [[nodiscard]] bool deferredAnalysis() const { return deferredAnalysis_; }
  /// Settle all pending deferred edits sequentially (unit order): refresh
  /// each dirty materialized workspace's inherited facts and reanalyze it.
  /// The reference semantics for the parallel incremental path.
  void settleEdits();
  /// Procedures whose dependence analysis is invalidated by edits not yet
  /// settled (deferred mode only; empty otherwise).
  [[nodiscard]] const std::set<std::string>& dirtyProcedures() const {
    return pendingDirty_;
  }

  [[nodiscard]] int reanalysisCount() const;

  /// Toggle the incremental machinery as a whole: per-nest edge splicing in
  /// Workspace::reanalyze AND the session-shared dependence-test memo. Off =
  /// the A2 rebuild-all baseline (every edit re-runs every test). The
  /// parallel path respects this flag too: with it off, analyzeParallel/
  /// analyzeOn always take the full-rebuild route (no memo, no splicing)
  /// even when deferred edits left a dirty set pending.
  void setIncrementalUpdates(bool on);
  [[nodiscard]] bool incrementalUpdates() const {
    return incrementalUpdates_;
  }

  /// Cumulative dependence-analysis counters across every (re)build this
  /// session performed: per-tier test counts, memo hits/misses, edges
  /// spliced vs rebuilt, and per-phase wall time.
  [[nodiscard]] const dep::TestStats& analysisStats() const {
    return stats_;
  }
  void resetAnalysisStats() { stats_ = {}; }
  [[nodiscard]] const dep::DepMemo& memo() const { return *memo_; }

  // ---------------------------------------------------------------------
  // Robustness: transactions, invariant auditing, bounded analysis
  // ---------------------------------------------------------------------

  /// Auditing level applied after every transformation and edit. Default
  /// Cheap: structural invariants always hold or the operation rolls back.
  void setAuditMode(AuditMode m) { auditMode_ = m; }
  [[nodiscard]] AuditMode auditMode() const { return auditMode_; }

  /// Run the invariant auditor immediately over the program and every
  /// materialized workspace (model + graph). `deep` adds the pretty-print ->
  /// re-parse round trip.
  [[nodiscard]] audit::Report auditNow(bool deep);

  /// Failed or rolled-back operations, oldest first.
  [[nodiscard]] const std::vector<FailureReport>& failures() const {
    return failures_;
  }
  void clearFailures() { failures_.clear(); }

  /// Arm a one-shot injected fault (tests only).
  void injectFaultOnce(Fault f) { fault_ = f; }

  /// Set the analysis work limits and rebuild every materialized workspace
  /// under them (memoized results cannot leak across budgets — the budget is
  /// part of the memo key — but the graphs must be re-derived).
  void setAnalysisBudget(const dep::AnalysisBudget& b);
  [[nodiscard]] const dep::AnalysisBudget& analysisBudget() const {
    return budget_;
  }

  /// Everywhere the bounded analyses gave up: degraded edges per procedure
  /// plus session-wide exhaustion counters.
  [[nodiscard]] DegradationReport degradationReport() const;

 private:
  Session() = default;
  transform::Workspace& wsFor(const std::string& name);
  /// wsFor without the settle-on-access: edits only need a live statement
  /// model (kept fresh across deferred edits), not a settled graph.
  transform::Workspace& wsForEdit(const std::string& name);
  void invalidate(const std::string& name);
  /// Settle one dirty materialized workspace: refresh its inherited facts
  /// (a change flips the context signature, so the splice path degrades to
  /// a full rebuild for that procedure automatically) and reanalyze.
  void settleOne(const std::string& name, transform::Workspace& ws);
  /// Incremental parallel path: schedule exactly the dirty procedures on
  /// the pool, keeping the warm memo and splicing clean nests per graph.
  /// With `materializeMissing`, dirty procedures without a workspace are
  /// built fresh inside tasks too (the warm-open settle needs this; the
  /// edit path leaves them to build lazily, preserving its semantics).
  ParallelReport incrementalAnalyzeOn(support::TaskPool& pool,
                                      bool materializeMissing = false);

  // Persistent-program-database content-key materials. Each renders every
  // input the corresponding computation reads, so key equality implies the
  // stored record equals what recomputation would produce.
  [[nodiscard]] std::string pdbSummaryMaterial(const std::string& name) const;
  [[nodiscard]] std::string pdbGraphMaterial(const std::string& name) const;
  [[nodiscard]] std::string pdbMemoMaterial() const;
  [[nodiscard]] std::string pdbMarksMaterial() const;
  [[nodiscard]] std::string pdbEmissionMaterial() const;
  dep::AnalysisContext contextFor(const std::string& name);
  /// Pure variant of contextFor for parallel per-procedure tasks: the
  /// oracle and stats sink are supplied by the caller, so nothing in the
  /// session is mutated (contextFor lazily populates oracles_, which is
  /// not safe under concurrency).
  dep::AnalysisContext makeContext(const std::string& name,
                                   const dep::SideEffectOracle* oracle,
                                   dep::TestStats* sink,
                                   support::TaskPool* pool) const;

  /// Id-preserving deep copy of the whole program (all units, statement ids,
  /// labels, nextStmtId) taken before any mutating operation.
  struct Snapshot {
    std::vector<fortran::ProcedurePtr> units;
    fortran::StmtId nextStmtId = 1;
  };
  [[nodiscard]] Snapshot takeSnapshot() const;
  /// Restore the program from a snapshot *in place* — pre-existing Procedure
  /// objects keep their addresses (Workspaces hold references to them) and
  /// units added since the snapshot are dropped. Every materialized
  /// workspace is rebuilt from scratch (its graph held pointers into the
  /// replaced AST).
  void restoreSnapshot(Snapshot&& snap);
  /// Post-operation audit hook: runs the auditor per auditMode_; on a
  /// violation rolls back to `snap` (when given), records a FailureReport
  /// and returns false.
  bool auditAfter(const std::string& operation, Snapshot* snap,
                  std::string* error);
  void recordFailure(std::string operation, std::string detail,
                     bool rolledBack);
  /// Shared tail of the three edit operations: re-assign statement ids,
  /// update the interprocedural summaries in place, fold the resulting
  /// invalidation set (stale analyses + materialized workspaces whose
  /// inherited facts moved) into pendingDirty_, then either settle now or
  /// leave the set pending (deferred mode). Ends with the post-edit audit.
  bool finishEdit(const std::string& operation, transform::Workspace& ws,
                  Snapshot& snap);

  std::unique_ptr<fortran::Program> program_;
  DiagnosticEngine diags_;
  std::unique_ptr<interproc::SummaryBuilder> summaries_;
  std::map<std::string, std::unique_ptr<interproc::InterproceduralOracle>>
      oracles_;
  std::map<std::string, std::unique_ptr<transform::Workspace>> workspaces_;
  /// User classification overrides per procedure.
  std::map<std::string,
           std::map<fortran::StmtId, std::map<std::string, bool>>>
      overrides_;
  std::map<std::string, std::map<std::string, std::string>>
      classificationReasons_;
  std::vector<Assertion> assertions_;
  /// Dependence marks survive reanalysis keyed by a stable signature.
  struct MarkRecord {
    dep::DepMark mark = dep::DepMark::Pending;
    std::string reason;
    /// Provenance: who set the mark ("user", tool name, "validator"),
    /// in which deck, and any validation evidence attached since.
    std::string origin = "user";
    std::string deck;
    std::string evidence;
  };
  std::map<std::string, MarkRecord> marks_;  // key: dep signature

  /// Dependence-test memo shared by every workspace (and trial sandbox) of
  /// this session, across procedures and rebuilds — and, when the session
  /// is server-attached, with every other session on the server.
  /// Invalidated through memoView_ whenever this session's fact base
  /// changes (assertions, full reanalysis): only this session's view is
  /// evicted, never a neighbor session's valid entries.
  std::shared_ptr<dep::DepMemo> memo_ = std::make_shared<dep::DepMemo>();
  dep::DepMemo::ViewId memoView_ = 0;
  dep::TestStats stats_;
  bool incrementalUpdates_ = true;

  /// Deferred-edit state: when deferredAnalysis_ is on, edits accumulate
  /// the procedures whose dependence graphs are stale here instead of
  /// settling them inline. Materialized workspaces named in this set have a
  /// live model but a stale graph (audits skip the graph); unmaterialized
  /// names simply rebuild fresh on first access.
  bool deferredAnalysis_ = false;
  std::set<std::string> pendingDirty_;

  AuditMode auditMode_ = AuditMode::Cheap;
  Fault fault_ = Fault::None;
  std::vector<FailureReport> failures_;
  dep::AnalysisBudget budget_;

  std::string deckName_;
  validate::ValidationReport lastValidation_;
  emit::EmissionReport lastEmission_;
  /// Rejected edges the last validation pass left unchecked (feeds
  /// DegradationReport::unvalidated).
  std::vector<DegradationReport::Edge> unvalidatedDeletions_;

  std::string current_;
  fortran::StmtId currentLoop_ = fortran::kInvalidStmt;
  std::optional<DependenceFilter> depFilter_;
  std::optional<SourceFilter> srcFilter_;
  std::optional<VariableFilter> varFilter_;
  UsageCounters counters_;
  int reanalyses_ = 0;
  PdbStats pdbStats_;

  [[nodiscard]] std::string depSignature(const dep::Dependence& d) const;
  void reapplyMarks(dep::DependenceGraph& g) const;
};

}  // namespace ps::ped

#endif  // PS_PED_SESSION_H
