#ifndef PS_CFG_FLOW_GRAPH_H
#define PS_CFG_FLOW_GRAPH_H

#include <map>
#include <vector>

#include "fortran/ast.h"
#include "ir/model.h"

namespace ps::cfg {

/// A statement-level control-flow graph for one procedure. Statement-level
/// granularity (rather than basic blocks) keeps the mapping to PED's pane
/// rows one-to-one; procedures in the workshop study are a few hundred
/// statements, so the constant factor is irrelevant.
///
/// Node 0 is the synthetic entry, node 1 the synthetic exit; every other
/// node corresponds to one statement.
class FlowGraph {
 public:
  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;

  /// Build the CFG for a procedure. Handles structured constructs (DO, block
  /// IF) and unstructured ones (GOTO, arithmetic IF) uniformly: labels may
  /// be targeted from anywhere in the procedure.
  static FlowGraph build(const ir::ProcedureModel& model);

  [[nodiscard]] int numNodes() const { return static_cast<int>(succ_.size()); }
  [[nodiscard]] const std::vector<int>& successors(int node) const {
    return succ_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<int>& predecessors(int node) const {
    return pred_[static_cast<std::size_t>(node)];
  }

  /// The statement a node represents (null for entry/exit).
  [[nodiscard]] const fortran::Stmt* stmtOf(int node) const;
  /// The node for a statement id, or -1.
  [[nodiscard]] int nodeOf(fortran::StmtId id) const;

  /// True when a node has more than one successor (a branch point).
  [[nodiscard]] bool isBranch(int node) const {
    return successors(node).size() > 1;
  }

  /// Nodes in reverse post-order from the entry (for fast data-flow).
  [[nodiscard]] std::vector<int> reversePostOrder() const;
  /// Reverse post-order of the reverse graph, from the exit.
  [[nodiscard]] std::vector<int> reversePostOrderOfReverse() const;

 private:
  void addEdge(int from, int to);

  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
  std::vector<const fortran::Stmt*> stmts_;  // index = node
  std::map<fortran::StmtId, int> nodeOf_;
};

}  // namespace ps::cfg

#endif  // PS_CFG_FLOW_GRAPH_H
