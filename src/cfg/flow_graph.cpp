#include "cfg/flow_graph.h"

#include <algorithm>

namespace ps::cfg {

using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using fortran::StmtPtr;

namespace {

/// Recursive CFG construction over the structured statement tree. `follow`
/// is the node control reaches after the current statement list completes
/// normally.
class Builder {
 public:
  Builder(FlowGraph& g, const ir::ProcedureModel& model,
          std::vector<std::vector<int>>& succ,
          std::map<StmtId, int>& nodeOf)
      : g_(g), model_(model), succ_(succ), nodeOf_(nodeOf) {}

  void addEdge(int from, int to) {
    auto& s = succ_[static_cast<std::size_t>(from)];
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }

  int labelNode(int label) const {
    const Stmt* t = model_.labelTarget(label);
    if (!t) return FlowGraph::kExit;  // jump to a missing label: treat as exit
    auto it = nodeOf_.find(t->id);
    return it == nodeOf_.end() ? FlowGraph::kExit : it->second;
  }

  /// First node executed when entering this statement list; `follow` when
  /// the list is empty.
  int headOf(const std::vector<StmtPtr>& stmts, int follow) const {
    if (stmts.empty()) return follow;
    return nodeOf_.at(stmts.front()->id);
  }

  void buildList(const std::vector<StmtPtr>& stmts, int follow) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      int next = (i + 1 < stmts.size()) ? nodeOf_.at(stmts[i + 1]->id)
                                        : follow;
      buildStmt(*stmts[i], next);
    }
  }

  void buildStmt(const Stmt& s, int next) {
    int node = nodeOf_.at(s.id);
    switch (s.kind) {
      case StmtKind::Goto:
        addEdge(node, labelNode(s.gotoTarget));
        return;
      case StmtKind::Return:
      case StmtKind::Stop:
        addEdge(node, FlowGraph::kExit);
        return;
      case StmtKind::ArithmeticIf:
        for (int l : s.aifLabels) addEdge(node, labelNode(l));
        return;
      case StmtKind::Do: {
        // Loop entry and zero-trip exit; back edge comes from the body's
        // normal flow returning to the DO node.
        addEdge(node, headOf(s.body, node));
        addEdge(node, next);
        buildList(s.body, node);
        return;
      }
      case StmtKind::If: {
        bool hasElse = false;
        for (const auto& arm : s.arms) {
          if (!arm.condition) hasElse = true;
          addEdge(node, headOf(arm.body, next));
          buildList(arm.body, next);
        }
        if (!hasElse) addEdge(node, next);
        return;
      }
      default:
        addEdge(node, next);
        return;
    }
  }

 private:
  FlowGraph& g_;
  const ir::ProcedureModel& model_;
  std::vector<std::vector<int>>& succ_;
  std::map<StmtId, int>& nodeOf_;
};

}  // namespace

FlowGraph FlowGraph::build(const ir::ProcedureModel& model) {
  FlowGraph g;
  const auto& all = model.allStmts();
  g.stmts_.assign(all.size() + 2, nullptr);
  g.succ_.assign(all.size() + 2, {});
  g.pred_.assign(all.size() + 2, {});
  for (std::size_t i = 0; i < all.size(); ++i) {
    int node = static_cast<int>(i) + 2;
    g.stmts_[static_cast<std::size_t>(node)] = all[i];
    g.nodeOf_[all[i]->id] = node;
  }

  Builder b(g, model, g.succ_, g.nodeOf_);
  auto& body = model.procedure().body;
  b.addEdge(kEntry, b.headOf(body, kExit));
  b.buildList(body, kExit);

  // Derive predecessor lists.
  for (int from = 0; from < g.numNodes(); ++from) {
    for (int to : g.succ_[static_cast<std::size_t>(from)]) {
      g.pred_[static_cast<std::size_t>(to)].push_back(from);
    }
  }
  return g;
}

const fortran::Stmt* FlowGraph::stmtOf(int node) const {
  return stmts_[static_cast<std::size_t>(node)];
}

int FlowGraph::nodeOf(StmtId id) const {
  auto it = nodeOf_.find(id);
  return it == nodeOf_.end() ? -1 : it->second;
}

void FlowGraph::addEdge(int from, int to) {
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
}

namespace {
void dfs(const FlowGraph& g, int node, bool forward,
         std::vector<bool>& seen, std::vector<int>& post) {
  seen[static_cast<std::size_t>(node)] = true;
  const auto& next = forward ? g.successors(node) : g.predecessors(node);
  for (int n : next) {
    if (!seen[static_cast<std::size_t>(n)]) dfs(g, n, forward, seen, post);
  }
  post.push_back(node);
}
}  // namespace

std::vector<int> FlowGraph::reversePostOrder() const {
  std::vector<bool> seen(static_cast<std::size_t>(numNodes()), false);
  std::vector<int> post;
  dfs(*this, kEntry, /*forward=*/true, seen, post);
  std::reverse(post.begin(), post.end());
  return post;
}

std::vector<int> FlowGraph::reversePostOrderOfReverse() const {
  std::vector<bool> seen(static_cast<std::size_t>(numNodes()), false);
  std::vector<int> post;
  dfs(*this, kExit, /*forward=*/false, seen, post);
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace ps::cfg
