#include "cfg/control_dep.h"

#include <algorithm>

namespace ps::cfg {

using fortran::StmtId;
using fortran::StmtKind;

ControlDependence ControlDependence::build(const FlowGraph& g) {
  ControlDependence cd;
  DominatorTree pdom = DominatorTree::postDominators(g);

  // For each edge (a -> b) where b does not post-dominate a, every node on
  // the post-dominator-tree path from b up to (but not including) pdom(a)
  // is control dependent on a.
  for (int a = 0; a < g.numNodes(); ++a) {
    if (!g.isBranch(a)) continue;
    const fortran::Stmt* branchStmt = g.stmtOf(a);
    if (!branchStmt) continue;
    for (int b : g.successors(a)) {
      if (pdom.dominates(b, a)) continue;
      if (!pdom.reachable(b) || !pdom.reachable(a)) continue;
      int stop = pdom.idom(a);
      for (int runner = b; runner != stop;) {
        const fortran::Stmt* s = g.stmtOf(runner);
        if (s && s->id != branchStmt->id) {
          cd.deps_.push_back({branchStmt->id, s->id});
        }
        int up = pdom.idom(runner);
        if (up == runner) break;  // hit the root
        runner = up;
      }
    }
  }
  // Dedup (a node can be reached along several branch edges of `a`).
  std::sort(cd.deps_.begin(), cd.deps_.end(),
            [](const ControlDep& x, const ControlDep& y) {
              return std::tie(x.branch, x.dependent) <
                     std::tie(y.branch, y.dependent);
            });
  cd.deps_.erase(std::unique(cd.deps_.begin(), cd.deps_.end(),
                             [](const ControlDep& x, const ControlDep& y) {
                               return x.branch == y.branch &&
                                      x.dependent == y.dependent;
                             }),
                 cd.deps_.end());
  return cd;
}

std::vector<StmtId> ControlDependence::controllersOf(StmtId id) const {
  std::vector<StmtId> out;
  for (const auto& d : deps_) {
    if (d.dependent == id) out.push_back(d.branch);
  }
  return out;
}

std::vector<StmtId> ControlDependence::controlledBy(StmtId branch) const {
  std::vector<StmtId> out;
  for (const auto& d : deps_) {
    if (d.branch == branch) out.push_back(d.dependent);
  }
  return out;
}

bool ControlDependence::hasNonLoopController(
    StmtId id, const ir::ProcedureModel& model) const {
  for (StmtId c : controllersOf(id)) {
    const fortran::Stmt* s = model.stmt(c);
    if (s && s->kind != StmtKind::Do) return true;
  }
  return false;
}

}  // namespace ps::cfg
