#include "cfg/dominators.h"

#include <algorithm>

namespace ps::cfg {

DominatorTree DominatorTree::dominators(const FlowGraph& g) {
  return compute(g, /*reverse=*/false);
}

DominatorTree DominatorTree::postDominators(const FlowGraph& g) {
  return compute(g, /*reverse=*/true);
}

DominatorTree DominatorTree::compute(const FlowGraph& g, bool reverse) {
  DominatorTree t;
  const int n = g.numNodes();
  t.idom_.assign(static_cast<std::size_t>(n), -1);
  t.root_ = reverse ? FlowGraph::kExit : FlowGraph::kEntry;

  std::vector<int> order =
      reverse ? g.reversePostOrderOfReverse() : g.reversePostOrder();
  // Position of each node in the order, for the intersect walk.
  std::vector<int> pos(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }

  auto preds = [&](int node) -> const std::vector<int>& {
    return reverse ? g.successors(node) : g.predecessors(node);
  };

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (pos[static_cast<std::size_t>(a)] >
             pos[static_cast<std::size_t>(b)]) {
        a = t.idom_[static_cast<std::size_t>(a)];
      }
      while (pos[static_cast<std::size_t>(b)] >
             pos[static_cast<std::size_t>(a)]) {
        b = t.idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  t.idom_[static_cast<std::size_t>(t.root_)] = t.root_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      if (node == t.root_) continue;
      int newIdom = -1;
      for (int p : preds(node)) {
        if (t.idom_[static_cast<std::size_t>(p)] < 0) continue;  // unprocessed
        newIdom = (newIdom < 0) ? p : intersect(newIdom, p);
      }
      if (newIdom >= 0 && t.idom_[static_cast<std::size_t>(node)] != newIdom) {
        t.idom_[static_cast<std::size_t>(node)] = newIdom;
        changed = true;
      }
    }
  }
  return t;
}

bool DominatorTree::dominates(int a, int b) const {
  if (!reachable(b)) return false;
  int cur = b;
  while (true) {
    if (cur == a) return true;
    int up = idom(cur);
    if (up == cur) return false;  // reached the root
    cur = up;
  }
}

}  // namespace ps::cfg
