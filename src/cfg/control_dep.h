#ifndef PS_CFG_CONTROL_DEP_H
#define PS_CFG_CONTROL_DEP_H

#include <map>
#include <vector>

#include "cfg/dominators.h"
#include "cfg/flow_graph.h"
#include "fortran/ast.h"

namespace ps::cfg {

/// One control dependence: `dependent` executes (or not) according to the
/// branch decision at `branch` (Ferrante–Ottenstein–Warren construction via
/// the post-dominance frontier).
struct ControlDep {
  fortran::StmtId branch;
  fortran::StmtId dependent;
};

class ControlDependence {
 public:
  static ControlDependence build(const FlowGraph& g);

  [[nodiscard]] const std::vector<ControlDep>& all() const { return deps_; }

  /// Branch statements this statement is control dependent on.
  [[nodiscard]] std::vector<fortran::StmtId> controllersOf(
      fortran::StmtId id) const;
  /// Statements controlled by this branch.
  [[nodiscard]] std::vector<fortran::StmtId> controlledBy(
      fortran::StmtId branch) const;

  /// True if the statement's execution is conditional on something other
  /// than its enclosing loop headers (used by transformation safety checks:
  /// e.g. scalar expansion of a conditionally-assigned scalar).
  [[nodiscard]] bool hasNonLoopController(
      fortran::StmtId id, const ir::ProcedureModel& model) const;

 private:
  std::vector<ControlDep> deps_;
};

}  // namespace ps::cfg

#endif  // PS_CFG_CONTROL_DEP_H
