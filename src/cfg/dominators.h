#ifndef PS_CFG_DOMINATORS_H
#define PS_CFG_DOMINATORS_H

#include <vector>

#include "cfg/flow_graph.h"

namespace ps::cfg {

/// Immediate-dominator trees computed by the classic iterative algorithm
/// (Cooper–Harvey–Kennedy — fittingly, a Rice algorithm). Works on the
/// forward graph for dominators and on the reverse graph for
/// post-dominators.
class DominatorTree {
 public:
  /// Dominators rooted at the entry node.
  static DominatorTree dominators(const FlowGraph& g);
  /// Post-dominators rooted at the exit node.
  static DominatorTree postDominators(const FlowGraph& g);

  /// Immediate dominator of a node; the root's idom is itself; unreachable
  /// nodes report -1.
  [[nodiscard]] int idom(int node) const {
    return idom_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] bool reachable(int node) const { return idom(node) >= 0; }

  /// True when `a` dominates (or post-dominates) `b`, reflexively.
  [[nodiscard]] bool dominates(int a, int b) const;

 private:
  static DominatorTree compute(const FlowGraph& g, bool reverse);

  std::vector<int> idom_;
  int root_ = 0;
};

}  // namespace ps::cfg

#endif  // PS_CFG_DOMINATORS_H
