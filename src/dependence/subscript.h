#ifndef PS_DEPENDENCE_SUBSCRIPT_H
#define PS_DEPENDENCE_SUBSCRIPT_H

#include <map>
#include <set>
#include <string>

#include "dataflow/linear.h"
#include "fortran/ast.h"

namespace ps::dep {

/// Information about one opaque term created while linearizing a subscript:
/// a subtree the linear model cannot express (index-array reference,
/// non-intrinsic call, nonlinear product). Opaque terms are named
/// "@<printed-expr>", so structurally identical subtrees map to the same
/// symbol and cancel when both references see the same value.
struct OpaqueTerm {
  std::string symbol;        // "@IT(N)"
  std::string array;         // "IT" when the term is an array reference
  std::string innerPrinted;  // printed first subscript, e.g. "N"
  std::set<std::string> vars;  // variables occurring inside the term
};

/// Registry of opaque terms seen while linearizing a procedure's subscripts.
class OpaqueTable {
 public:
  /// Intern an opaque subtree; returns its symbol.
  std::string intern(const fortran::Expr& e);

  [[nodiscard]] const OpaqueTerm* find(const std::string& symbol) const;
  [[nodiscard]] const std::map<std::string, OpaqueTerm>& all() const {
    return terms_;
  }

 private:
  std::map<std::string, OpaqueTerm> terms_;
};

/// Linearize a subscript expression into an affine form over induction
/// variables, symbolic scalars, and opaque terms. Unlike
/// dataflow::linearize, the result is *always* affine — inexpressible
/// subtrees become opaque symbols — which lets the dependence tester reason
/// uniformly and cancel identical unknowns, the practical treatment of
/// symbolics from Goff–Kennedy–Tseng.
/// `maxNodes` bounds the work: a subscript tree larger than the budget is
/// not walked at all — the whole expression is interned as one opaque term
/// and the result is flagged `degraded` (still sound: an opaque term can
/// only make the tester more conservative). 0 means unlimited.
[[nodiscard]] dataflow::LinearExpr linearizeSubscript(
    const fortran::Expr& e,
    const std::map<std::string, dataflow::LinearExpr>& substitute,
    OpaqueTable& opaques, std::size_t maxNodes = 0);

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_SUBSCRIPT_H
