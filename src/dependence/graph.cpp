#include "dependence/graph.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "support/taskpool.h"

#include "dataflow/constants.h"
#include "dataflow/liveness.h"
#include "dataflow/reaching.h"
#include "fortran/pretty.h"
#include "ir/refs.h"

namespace ps::dep {

using dataflow::ConstantAnalysis;
using dataflow::LinearExpr;
using dataflow::Liveness;
using dataflow::PrivatizationAnalysis;
using dataflow::PrivatizationStatus;
using dataflow::ReachingDefs;
using dataflow::SymbolicAnalysis;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using ir::Loop;
using ir::Ref;
using ir::RefKind;

namespace {

struct ARef {
  const Stmt* stmt = nullptr;
  const Expr* expr = nullptr;
  bool write = false;
};

DepType typeOf(bool srcWrite, bool dstWrite) {
  if (srcWrite && dstWrite) return DepType::Output;
  if (srcWrite) return DepType::True;
  if (dstWrite) return DepType::Anti;
  return DepType::Input;
}

/// The chain of loops containing a statement, outermost first.
std::vector<const Loop*> loopChain(const ir::ProcedureModel& model,
                                   StmtId id) {
  const Loop* l = model.enclosingLoop(id);
  if (!l) return {};
  auto path = l->nestPath();
  return path;
}

/// Longest common prefix of two loop chains.
std::vector<const Loop*> commonNest(const std::vector<const Loop*>& a,
                                    const std::vector<const Loop*>& b) {
  std::vector<const Loop*> out;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) break;
    out.push_back(a[i]);
  }
  return out;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Construct an array-pair/scalar/call-site edge. The id is NOT assigned
/// here: parallel per-nest tasks build edges into private vectors and the
/// deterministic merge numbers them in enumeration order.
Dependence makeDep(DepType type, const ARef& src, const ARef& dst,
                   const std::vector<const Loop*>& nest, int level,
                   const LevelResult& res, bool interproc, DepOrigin origin) {
  Dependence d;
  d.type = type;
  d.srcStmt = src.stmt->id;
  d.dstStmt = dst.stmt->id;
  d.srcRef = src.expr;
  d.dstRef = dst.expr;
  d.variable = src.expr   ? src.expr->name
               : dst.expr ? dst.expr->name
                          : "";
  d.level = level;
  d.commonLoop = nest.empty() ? fortran::kInvalidStmt
                              : nest.back()->stmt->id;
  if (level > 0) {
    d.carrierLoop = nest[static_cast<std::size_t>(level - 1)]->stmt->id;
  }
  d.vector.dirs.resize(nest.size(), Direction::Star);
  d.vector.dists.resize(nest.size());
  for (std::size_t k = 0; k < nest.size(); ++k) {
    if (level == 0 || static_cast<int>(k) < level - 1) {
      d.vector.dirs[k] = Direction::Eq;
      d.vector.dists[k] = 0;
    } else if (static_cast<int>(k) == level - 1) {
      d.vector.dirs[k] = Direction::Lt;
      if (res.distance) d.vector.dists[k] = res.distance;
    }
  }
  d.mark = (res.answer == DepAnswer::DependenceExact) ? DepMark::Proven
                                                      : DepMark::Pending;
  d.origin = origin;
  d.interprocedural = interproc;
  d.degraded = res.degraded;
  return d;
}

std::string serializeSubMap(
    const std::map<std::string, LinearExpr>& sub) {
  std::string out;
  for (const auto& [name, e] : sub) {
    out += name;
    out += '=';
    appendLinearKey(out, e);
  }
  return out;
}

}  // namespace

DependenceGraph DependenceGraph::build(ir::ProcedureModel& model,
                                       const AnalysisContext& ctx) {
  return buildImpl(model, ctx, nullptr);
}

DependenceGraph DependenceGraph::restore(ir::ProcedureModel& model,
                                         std::vector<Dependence> deps,
                                         std::uint32_t nextEdgeId) {
  DependenceGraph g;
  g.model_ = &model;
  g.deps_ = std::move(deps);
  g.nextId_ = nextEdgeId;
  return g;
}

DependenceGraph DependenceGraph::update(ir::ProcedureModel& model,
                                        const AnalysisContext& ctx,
                                        const DependenceGraph& previous) {
  return buildImpl(model, ctx, &previous);
}

DependenceGraph DependenceGraph::buildImpl(ir::ProcedureModel& model,
                                           const AnalysisContext& ctx,
                                           const DependenceGraph* previous) {
  const auto tBuild = std::chrono::steady_clock::now();
  DependenceGraph g;
  g.model_ = &model;

  cfg::FlowGraph fg = cfg::FlowGraph::build(model);
  ReachingDefs reaching = ReachingDefs::build(fg, model);
  Liveness liveness = Liveness::build(fg, model);
  dataflow::ConstEnv entryEnv;
  for (const auto& [name, v] : ctx.inheritedConstants) {
    entryEnv[name] = dataflow::ConstVal::ofInt(v);
  }
  ConstantAnalysis constants = ConstantAnalysis::build(fg, model, entryEnv);
  cfg::ControlDependence cdeps = cfg::ControlDependence::build(fg);
  SymbolicAnalysis sym = SymbolicAnalysis::build(
      model, fg, reaching, constants, cdeps,
      ctx.useSymbolicInfo ? ctx.inheritedRelations
                          : std::vector<dataflow::Relation>{},
      ctx.budget.maxSymbolicRelations);
  g.stats_.symbolicTruncated += sym.truncated();
  PrivatizationAnalysis priv =
      PrivatizationAnalysis::build(model, fg, liveness);
  g.stats_.dataflowSeconds = secondsSince(tBuild);

  const fortran::Procedure& proc = model.procedure();
  OpaqueTable opaques;

  // Memoization: prefer the session-shared table (warm across rebuilds and
  // procedures); fall back to a transient per-build table so structurally
  // repeated pairs within one build still hit cache. Null disables (A2).
  DepMemo localMemo;
  DepMemo* memo = nullptr;
  if (ctx.useMemo) memo = ctx.memo ? ctx.memo.get() : &localMemo;

  // -------------------------------------------------------------------
  // Per-statement substitution maps for subscript linearization, with
  // forward substitution of unique same-loop scalar assignments (this is
  // how "I3 = IT(N)" flows into "F(I3 + 1)").
  // -------------------------------------------------------------------
  std::map<StmtId, std::map<std::string, LinearExpr>> subCache;
  auto subFor = [&](const Stmt* s) -> const std::map<std::string, LinearExpr>& {
    auto it = subCache.find(s->id);
    if (it != subCache.end()) return it->second;
    std::map<std::string, LinearExpr> sub;
    const Loop* loop = model.enclosingLoop(s->id);
    if (ctx.useSymbolicInfo) {
      if (loop) {
        sub = sym.substitutionFor(*loop, *s);
      } else {
        for (const auto& [name, val] : constants.envAt(s->id)) {
          if (val.kind == dataflow::ConstVal::Kind::IntConst) {
            LinearExpr c;
            c.constant = val.i;
            sub[name] = c;
          }
        }
      }
      // Forward substitution: scalar vars read in this statement's
      // subscripts whose unique reaching definition is an assignment inside
      // the same loop (so the value is this iteration's).
      if (loop) {
        std::set<std::string> wanted;
        s->forEachExpr([&](const Expr& e) {
          if (e.kind == ExprKind::VarRef) wanted.insert(e.name);
        });
        for (const std::string& v : wanted) {
          if (sub.count(v)) continue;
          const Stmt* def = nullptr;
          if (!reaching.uniqueReachingAssignment(s->id, v, &def)) continue;
          if (def == s) continue;
          const Loop* defLoop = model.enclosingLoop(def->id);
          bool defInNest = false;
          for (const Loop* l = defLoop; l; l = l->parent) {
            if (l == loop ||
                std::find(loop->nestPath().begin(), loop->nestPath().end(),
                          l) != loop->nestPath().end()) {
              defInNest = true;
              break;
            }
          }
          if (!defInNest && defLoop != nullptr) continue;
          // Operands must be stable between the def and the use: every
          // variable in the rhs is either loop-invariant or an enclosing
          // induction variable (constant within an iteration).
          bool stable = true;
          def->rhs->forEach([&](const Expr& e) {
            if (e.kind != ExprKind::VarRef) return;
            bool isIv = false;
            for (const Loop* l = loop; l; l = l->parent) {
              if (l->inductionVar() == e.name) isIv = true;
            }
            if (!isIv && sym.definedIn(*loop).count(e.name)) stable = false;
          });
          if (!stable) continue;
          sub[v] = linearizeSubscript(*def->rhs, sub, opaques);
        }
      }
    }
    return subCache.emplace(s->id, std::move(sub)).first->second;
  };

  // -------------------------------------------------------------------
  // LoopContext per loop, and one DependenceTester per common nest. A nest
  // is uniquely identified by its innermost loop; every pair sharing that
  // nest shares the tester (and through it the memo key prefix).
  // -------------------------------------------------------------------
  std::map<StmtId, LoopContext> lcCache;
  auto contextOf = [&](const Loop* loop) -> const LoopContext& {
    auto it = lcCache.find(loop->stmt->id);
    if (it != lcCache.end()) return it->second;
    LoopContext lc;
    lc.iv = loop->inductionVar();
    lc.doStmt = loop->stmt->id;
    const auto& sub = subFor(loop->stmt);
    lc.lo = linearizeSubscript(*loop->stmt->doLo, sub, opaques);
    lc.hi = linearizeSubscript(*loop->stmt->doHi, sub, opaques);
    lc.step = 1;
    if (loop->stmt->doStep) {
      LinearExpr st = linearizeSubscript(*loop->stmt->doStep, sub, opaques);
      lc.step = st.isConstant() ? st.constant : 0;
    }
    return lcCache.emplace(loop->stmt->id, std::move(lc)).first->second;
  };

  std::map<StmtId, std::unique_ptr<DependenceTester>> testerCache;
  auto testerFor =
      [&](const std::vector<const Loop*>& nest) -> DependenceTester& {
    auto& slot = testerCache[nest.back()->stmt->id];
    if (!slot) {
      std::vector<LoopContext> lctxs;
      for (const Loop* l : nest) lctxs.push_back(contextOf(l));
      slot = std::make_unique<DependenceTester>(
          std::move(lctxs), ctx.facts, ctx.indexFacts, opaques,
          sym.definedIn(*nest.front()), ctx.cheapTestsFirst, memo,
          ctx.budget, ctx.memoView);
    }
    return *slot;
  };

  auto effectiveStatus = [&](const Loop* loop,
                             const std::string& name) -> PrivatizationStatus {
    auto itL = ctx.classificationOverrides.find(loop->stmt->id);
    if (itL != ctx.classificationOverrides.end()) {
      auto itV = itL->second.find(name);
      if (itV != itL->second.end()) {
        return itV->second ? PrivatizationStatus::Private
                           : PrivatizationStatus::Shared;
      }
    }
    if (!ctx.usePrivatization) {
      // Ablation: act as if kill analysis were unavailable.
      for (const auto& vc : priv.classesFor(*loop)) {
        if (vc.name == name) {
          return (vc.writtenInLoop || vc.readInLoop)
                     ? PrivatizationStatus::Shared
                     : PrivatizationStatus::Unused;
        }
      }
      return PrivatizationStatus::Unused;
    }
    return priv.statusOf(*loop, name);
  };

  auto addDep = [&](DepType type, const ARef& src, const ARef& dst,
                    const std::vector<const Loop*>& nest, int level,
                    const LevelResult& res, bool interproc,
                    DepOrigin origin) {
    Dependence d = makeDep(type, src, dst, nest, level, res, interproc, origin);
    d.id = g.nextId_++;
    g.deps_.push_back(std::move(d));
  };

  // -------------------------------------------------------------------
  // Array-reference pairs.
  // -------------------------------------------------------------------
  std::map<std::string, std::vector<ARef>> refsByArray;
  std::vector<const Stmt*> callStmts;
  for (const Stmt* s : model.allStmts()) {
    for (const Ref& r : ir::collectRefs(*s)) {
      if (!r.isArrayRef()) continue;
      if (r.kind == RefKind::CallActual) continue;  // handled via effects
      const fortran::VarDecl* d = proc.findDecl(r.name);
      if (!d || !d->isArray()) continue;
      refsByArray[r.name].push_back({s, r.expr, r.isWrite()});
    }
    if (!ir::calledFunctions(*s).empty()) callStmts.push_back(s);
  }

  // Position of each statement in pre-order (intra-iteration execution
  // order proxy for loop-independent dependence orientation).
  std::map<StmtId, int> position;
  {
    int idx = 0;
    for (const Stmt* s : model.allStmts()) position[s->id] = idx++;
  }

  // -------------------------------------------------------------------
  // Incremental-update fingerprints. A reference pair's test battery is a
  // pure function of: the context-wide inputs (facts, index-array facts,
  // tester flags), the two statements (printed text, enclosing nest,
  // substitution map), the nest's loops (bounds, step, iv, classification
  // overrides, iteration-variant set) and — for loop-independent
  // orientation — the endpoints' relative order. We record those inputs per
  // build; the next update() splices the previous edges of every pair
  // whose inputs are byte-identical.
  // -------------------------------------------------------------------
  std::string ctxSig = "C:";
  {
    ctxSig += ctx.includeInputDeps ? '1' : '0';
    ctxSig += ctx.cheapTestsFirst ? '1' : '0';
    ctxSig += ctx.useSymbolicInfo ? '1' : '0';
    ctxSig += ctx.usePrivatization ? '1' : '0';
    ctxSig += "|F:";
    for (const Fact& f : ctx.facts) {
      ctxSig += f.strict ? '!' : '.';
      appendLinearKey(ctxSig, f.expr);
    }
    ctxSig += "|P:";
    for (const auto& p : ctx.indexFacts.permutation) {
      ctxSig += p;
      ctxSig += ',';
    }
    ctxSig += "|S:";
    for (const auto& [a, k] : ctx.indexFacts.strided) {
      ctxSig += a + ':' + std::to_string(k) + ',';
    }
    ctxSig += "|X:";
    for (const auto& [ab, k] : ctx.indexFacts.separated) {
      ctxSig += ab.first + '/' + ab.second + ':' + std::to_string(k) + ',';
    }
    ctxSig += "|K:";
    for (const auto& [name, v] : ctx.inheritedConstants) {
      ctxSig += name + '=' + std::to_string(v) + ',';
    }
    ctxSig += "|R:";
    for (const auto& r : ctx.inheritedRelations) {
      ctxSig += r.name;
      ctxSig += '=';
      appendLinearKey(ctxSig, r.value);
    }
    // Budgets change answers, so a splice across budget configurations
    // would carry stale edges.
    ctxSig += "|B:";
    ctxSig += std::to_string(ctx.budget.fmMaxConstraints) + ',' +
              std::to_string(ctx.budget.fmMaxEliminations) + ',' +
              std::to_string(ctx.budget.maxSubscriptNodes) + ',' +
              std::to_string(ctx.budget.maxSymbolicRelations);
  }

  std::map<StmtId, std::string> stmtSigCache;
  auto stmtSigOf = [&](const Stmt* s) -> const std::string& {
    auto it = stmtSigCache.find(s->id);
    if (it != stmtSigCache.end()) return it->second;
    std::string sig = fortran::printStmt(*s);
    sig += '#';
    for (const Loop* l : loopChain(model, s->id)) {
      sig += std::to_string(l->stmt->id);
      sig += ',';
    }
    sig += '#';
    sig += serializeSubMap(subFor(s));
    return stmtSigCache.emplace(s->id, std::move(sig)).first->second;
  };

  auto loopSigOf = [&](const Loop* l) {
    const LoopContext& lc = contextOf(l);
    std::string sig = lc.iv;
    sig += '@';
    appendLinearKey(sig, lc.lo);
    appendLinearKey(sig, lc.hi);
    sig += std::to_string(lc.step);
    sig += "|O:";
    auto itL = ctx.classificationOverrides.find(l->stmt->id);
    if (itL != ctx.classificationOverrides.end()) {
      for (const auto& [name, isPriv] : itL->second) {
        sig += name;
        sig += isPriv ? '+' : '-';
      }
    }
    sig += "|V:";
    for (const auto& v : sym.definedIn(*l)) {
      sig += v;
      sig += ',';
    }
    return sig;
  };

  if (ctx.incrementalUpdates) {
    g.incr_.ctxSig = ctxSig;
    g.incr_.position = position;
    for (const auto& loopPtr : model.loops()) {
      g.incr_.loopSig[loopPtr->stmt->id] = loopSigOf(loopPtr.get());
    }
    for (const auto& [array, refs] : refsByArray) {
      (void)array;
      for (const ARef& r : refs) {
        g.incr_.stmtSig[r.stmt->id] = stmtSigOf(r.stmt);
      }
    }
  }

  // Can we splice edges from the previous build at all?
  const IncrementalState* prev = nullptr;
  if (ctx.incrementalUpdates && previous &&
      !previous->incr_.ctxSig.empty() &&
      previous->incr_.ctxSig == ctxSig) {
    prev = &previous->incr_;
  }

  // Previous array-pair edges indexed by endpoint expressions. Statement
  // ids are only reused by the very same AST node (edits always mint fresh
  // ids), so a signature match means the old Expr pointers are alive and
  // identical to the ones the current enumeration sees.
  std::map<std::pair<const Expr*, const Expr*>,
           std::vector<const Dependence*>>
      prevEdges;
  if (prev) {
    for (const Dependence& d : previous->deps_) {
      if (d.origin != DepOrigin::ArrayPair) continue;
      prevEdges[{d.srcRef, d.dstRef}].push_back(&d);
    }
  }

  auto pairClean = [&](const ARef& r1, const ARef& r2,
                       const std::vector<const Loop*>& nest) {
    if (!prev) return false;
    auto s1 = prev->stmtSig.find(r1.stmt->id);
    if (s1 == prev->stmtSig.end() || s1->second != stmtSigOf(r1.stmt)) {
      return false;
    }
    auto s2 = prev->stmtSig.find(r2.stmt->id);
    if (s2 == prev->stmtSig.end() || s2->second != stmtSigOf(r2.stmt)) {
      return false;
    }
    for (const Loop* l : nest) {
      auto ls = prev->loopSig.find(l->stmt->id);
      if (ls == prev->loopSig.end() ||
          ls->second != g.incr_.loopSig[l->stmt->id]) {
        return false;
      }
    }
    // Loop-independent orientation depends on which endpoint executes
    // first; statement reordering (e.g. Statement Interchange) changes it
    // without changing any statement's text.
    auto p1 = prev->position.find(r1.stmt->id);
    auto p2 = prev->position.find(r2.stmt->id);
    if (p1 == prev->position.end() || p2 == prev->position.end()) {
      return false;
    }
    return (p1->second <= p2->second) ==
           (position[r1.stmt->id] <= position[r2.stmt->id]);
  };

  auto splicePair = [&](const ARef& r1, const ARef& r2,
                        std::vector<Dependence>& out) {
    std::vector<const Dependence*> olds;
    auto itF = prevEdges.find({r1.expr, r2.expr});
    if (itF != prevEdges.end()) {
      olds.insert(olds.end(), itF->second.begin(), itF->second.end());
    }
    if (r1.expr != r2.expr) {
      auto itR = prevEdges.find({r2.expr, r1.expr});
      if (itR != prevEdges.end()) {
        olds.insert(olds.end(), itR->second.begin(), itR->second.end());
      }
    }
    // Previous ids are creation-ordered; sorting restores the original
    // interleaving of forward/reverse/loop-independent edges. The copies
    // keep the old ids only until the merge renumbers them.
    std::sort(olds.begin(), olds.end(),
              [](const Dependence* a, const Dependence* b) {
                return a->id < b->id;
              });
    for (const Dependence* old : olds) out.push_back(*old);
    ++g.stats_.pairsSpliced;
    g.stats_.edgesSpliced += static_cast<long long>(olds.size());
  };

  // -------------------------------------------------------------------
  // Pair enumeration, in the exact sequential order (array -> i -> j).
  // Clean pairs splice immediately; dirty pairs become jobs grouped by
  // common nest and then cut into fixed-size batches. Each batch is an
  // independent unit of work — its own tester, its own copy of the
  // opaque-term table (symbols are a pure function of printed expression
  // text, so copies intern identically), its own output slots and stats
  // block — and may run on a TaskPool worker. Edge ids are assigned at the
  // deterministic merge below, so the resulting graph is bit-identical for
  // ANY thread count, including the fully sequential path.
  // -------------------------------------------------------------------
  struct PairJob {
    ARef r1, r2;
    bool self = false;
    const std::string* array = nullptr;
    std::vector<const Loop*> nest;
    const std::map<std::string, LinearExpr>* sub1 = nullptr;
    const std::map<std::string, LinearExpr>* sub2 = nullptr;
  };
  std::vector<PairJob> jobs;
  std::vector<std::vector<Dependence>> jobEdges;
  std::map<StmtId, std::vector<std::size_t>> nestGroups;

  const auto tPairs = std::chrono::steady_clock::now();
  for (auto& [array, refs] : refsByArray) {
    for (std::size_t i = 0; i < refs.size(); ++i) {
      for (std::size_t j = i; j < refs.size(); ++j) {
        const ARef& r1 = refs[i];
        const ARef& r2 = refs[j];
        if (!r1.write && !r2.write && !ctx.includeInputDeps) continue;
        if (i == j && !r1.write) continue;
        auto nest = commonNest(loopChain(model, r1.stmt->id),
                               loopChain(model, r2.stmt->id));
        if (nest.empty()) continue;

        if (pairClean(r1, r2, nest)) {
          jobs.emplace_back();
          jobEdges.emplace_back();
          splicePair(r1, r2, jobEdges.back());
          continue;
        }
        ++g.stats_.pairsTested;

        PairJob jb;
        jb.r1 = r1;
        jb.r2 = r2;
        jb.self = (i == j);
        jb.array = &array;
        // Resolve every shared lazy cache NOW, while still sequential:
        // tasks must only read. The std::map nodes stay put under later
        // insertions, so the pointers are stable.
        jb.sub1 = &subFor(r1.stmt);
        jb.sub2 = &subFor(r2.stmt);
        for (const Loop* l : nest) contextOf(l);
        jb.nest = std::move(nest);
        nestGroups[jb.nest.back()->stmt->id].push_back(jobs.size());
        jobs.push_back(std::move(jb));
        jobEdges.emplace_back();
      }
    }
  }

  // The per-pair test battery, writing edges (ids unassigned) to `out`.
  auto processJob = [&](const PairJob& jb, DependenceTester& tester,
                        std::vector<Dependence>& out) {
    const ARef& r1 = jb.r1;
    const ARef& r2 = jb.r2;
    const std::vector<const Loop*>& nest = jb.nest;
    const auto& sub1 = *jb.sub1;
    const auto& sub2 = *jb.sub2;

    // Refine the direction at the level below the carrier (what loop
    // interchange legality needs) by constrained re-tests. nullopt
    // means all three inner directions were disproved: the plain
    // level test was inexact and the edge does not actually exist.
    auto refineInner =
        [&](const RefPair& pair, int level) -> std::optional<Direction> {
      if (level >= static_cast<int>(nest.size())) return Direction::Star;
      bool lt = tester.test(pair, level, Direction::Lt).answer !=
                DepAnswer::NoDependence;
      bool eq = tester.test(pair, level, Direction::Eq).answer !=
                DepAnswer::NoDependence;
      bool gt = tester.test(pair, level, Direction::Gt).answer !=
                DepAnswer::NoDependence;
      int count = (lt ? 1 : 0) + (eq ? 1 : 0) + (gt ? 1 : 0);
      if (count == 0) return std::nullopt;
      if (count != 1) {
        if (lt && eq && !gt) return Direction::Le;
        if (!lt && eq && gt) return Direction::Ge;
        return Direction::Star;
      }
      if (lt) return Direction::Lt;
      if (eq) return Direction::Eq;
      return Direction::Gt;
    };

    // Attach the refined inner direction to the edge just added, or
    // retract the edge when the constrained re-tests disproved every
    // inner direction.
    auto refineOrRetract = [&](const RefPair& pair, int level) {
      if (static_cast<std::size_t>(level) >= nest.size()) return;
      std::optional<Direction> dir = refineInner(pair, level);
      if (!dir) {
        out.pop_back();
        return;
      }
      out.back().vector.dirs[static_cast<std::size_t>(level)] = *dir;
    };

    // A user classification of the array as private w.r.t. a loop
    // removes the dependences that loop carries (each iteration gets
    // its own copy); loop-independent deps and inner-carried deps
    // remain.
    auto carrierPrivatized = [&](int level) {
      const Loop* carrier = nest[static_cast<std::size_t>(level - 1)];
      auto itL = ctx.classificationOverrides.find(carrier->stmt->id);
      if (itL == ctx.classificationOverrides.end()) return false;
      auto itV = itL->second.find(*jb.array);
      return itV != itL->second.end() && itV->second;
    };

    for (int level = 1; level <= static_cast<int>(nest.size()); ++level) {
      if (carrierPrivatized(level)) continue;
      RefPair fwd{r1.expr, r2.expr, &sub1, &sub2};
      LevelResult res = tester.test(fwd, level);
      if (res.answer != DepAnswer::NoDependence) {
        out.push_back(makeDep(typeOf(r1.write, r2.write), r1, r2, nest,
                              level, res, false, DepOrigin::ArrayPair));
        refineOrRetract(fwd, level);
      }
      if (!jb.self) {
        RefPair rev{r2.expr, r1.expr, &sub2, &sub1};
        LevelResult rres = tester.test(rev, level);
        if (rres.answer != DepAnswer::NoDependence) {
          out.push_back(makeDep(typeOf(r2.write, r1.write), r2, r1, nest,
                                level, rres, false, DepOrigin::ArrayPair));
          refineOrRetract(rev, level);
        }
      }
    }
    if (!jb.self) {
      // Loop-independent: source is the statement executed first.
      const ARef& first = position.at(r1.stmt->id) <= position.at(r2.stmt->id)
                              ? r1
                              : r2;
      const ARef& second = (&first == &r1) ? r2 : r1;
      if (first.stmt != second.stmt) {
        const auto* firstSub = (&first == &r1) ? &sub1 : &sub2;
        const auto* secondSub = (&first == &r1) ? &sub2 : &sub1;
        LevelResult res =
            tester.test({first.expr, second.expr, firstSub, secondSub}, 0);
        if (res.answer != DepAnswer::NoDependence) {
          out.push_back(makeDep(typeOf(first.write, second.write), first,
                                second, nest, 0, res, false,
                                DepOrigin::ArrayPair));
        }
      }
    }
  };

  // One unit of work per batch: private tester + opaque table + stats. A
  // nest group is further split into fixed-size batches so that an
  // incremental update whose dirty pairs all land in ONE nest (the common
  // single-statement-edit case) still exposes parallelism. Batching is a
  // pure function of the enumeration order — never of the pool or thread
  // count — and every batch clones the same pre-phase opaque table (symbols
  // intern identically from printed text), so the merged graph is the same
  // for any batch schedule, including the fully sequential one.
  static constexpr std::size_t kPairBatch = 8;
  std::vector<std::vector<std::size_t>> batches;
  for (auto& [nid, idxs] : nestGroups) {
    (void)nid;
    for (std::size_t b = 0; b < idxs.size(); b += kPairBatch) {
      const std::size_t e = std::min(idxs.size(), b + kPairBatch);
      batches.emplace_back(idxs.begin() + static_cast<std::ptrdiff_t>(b),
                           idxs.begin() + static_cast<std::ptrdiff_t>(e));
    }
  }
  g.stats_.pairBatches = static_cast<long long>(batches.size());

  auto runBatch = [&](const std::vector<std::size_t>& idxs, TestStats& gs) {
    const std::vector<const Loop*>& nest = jobs[idxs.front()].nest;
    OpaqueTable groupOpaques = opaques;
    std::vector<LoopContext> lctxs;
    lctxs.reserve(nest.size());
    for (const Loop* l : nest) lctxs.push_back(lcCache.at(l->stmt->id));
    DependenceTester tester(std::move(lctxs), ctx.facts, ctx.indexFacts,
                            groupOpaques, sym.definedIn(*nest.front()),
                            ctx.cheapTestsFirst, memo, ctx.budget,
                            ctx.memoView);
    for (std::size_t idx : idxs) processJob(jobs[idx], tester, jobEdges[idx]);
    gs.accumulate(tester.stats());
  };

  std::vector<TestStats> batchStats(batches.size());
  {
    if (ctx.pool && batches.size() > 1) {
      std::vector<std::function<void()>> thunks;
      thunks.reserve(batches.size());
      for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        const std::vector<std::size_t>* ix = &batches[bi];
        TestStats* gs = &batchStats[bi];
        thunks.push_back([&runBatch, ix, gs] { runBatch(*ix, *gs); });
      }
      ctx.pool->runAll(std::move(thunks));
    } else {
      for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        runBatch(batches[bi], batchStats[bi]);
      }
    }
  }

  // Deterministic merge: edges in enumeration order get consecutive ids
  // (exactly what the sequential interleaved build produced); per-group
  // tester stats fold in fixed nest order.
  for (auto& edges : jobEdges) {
    for (Dependence& d : edges) {
      d.id = g.nextId_++;
      g.deps_.push_back(std::move(d));
    }
  }
  for (const TestStats& gs : batchStats) g.stats_.accumulate(gs);
  // Only array-pair edges exist so far; everything not spliced was rebuilt.
  g.stats_.edgesRebuilt =
      static_cast<long long>(g.deps_.size()) - g.stats_.edgesSpliced;
  g.stats_.pairSeconds = secondsSince(tPairs);

  const auto tOther = std::chrono::steady_clock::now();
  // -------------------------------------------------------------------
  // Scalar dependences, gated by privatization status per loop.
  // -------------------------------------------------------------------
  for (const auto& loopPtr : model.loops()) {
    const Loop* loop = loopPtr.get();
    for (const auto& vc : priv.classesFor(*loop)) {
      PrivatizationStatus status = effectiveStatus(loop, vc.name);
      if (status != PrivatizationStatus::Shared) continue;
      if (!vc.writtenInLoop) continue;  // read-only shared: no dependence

      // Did the user force this variable shared (or is the privatization
      // ablation active)? Then honor it literally — no oracle refinement.
      bool forcedShared = !ctx.usePrivatization;
      {
        auto itL = ctx.classificationOverrides.find(loop->stmt->id);
        if (itL != ctx.classificationOverrides.end()) {
          auto itV = itL->second.find(vc.name);
          if (itV != itL->second.end() && !itV->second) forcedShared = true;
        }
      }

      // Gather the scalar's access sites directly in this loop. A call
      // actual counts as read+write only when no interprocedural summary
      // says otherwise — this is where MOD/REF analysis pays off for
      // scalars.
      std::vector<ARef> writes, reads;
      for (const Stmt* s : loop->bodyStmts) {
        for (const Ref& r : ir::collectRefs(*s)) {
          if (r.name != vc.name) continue;
          if (r.kind == RefKind::DoVarDef) continue;
          bool mayRead = r.isRead();
          bool mayWrite = r.isWrite();
          if (r.kind == RefKind::CallActual && ctx.oracle) {
            auto callees = ir::calledFunctions(*s);
            bool allKnown = !callees.empty();
            for (const auto& c : callees) {
              if (!ctx.oracle->knowsCallee(c)) allKnown = false;
            }
            if (allKnown) {
              mayRead = mayWrite = false;
              for (const auto& c : callees) {
                for (const auto& e : ctx.oracle->effectsOfCall(*s, c)) {
                  if (e.var != r.name) continue;
                  // Only entry-exposed reads matter for cross-iteration
                  // dependences: a read after the callee's kill sees this
                  // iteration's value (interprocedural scalar KILL).
                  mayRead = mayRead || e.exposedRead;
                  mayWrite = mayWrite || e.mayWrite;
                }
              }
            }
          }
          if (mayWrite) writes.push_back({s, r.expr, true});
          if (mayRead) reads.push_back({s, r.expr, false});
        }
      }
      // A scalar with no (exposed) reads whose value dies with the loop is
      // effectively private even when classified shared: no dependence can
      // be observed.
      if (!forcedShared && reads.empty() &&
          !liveness.liveAfterLoop(*loop, vc.name)) {
        continue;
      }
      auto nestOf = [&](const Stmt* s1, const Stmt* s2) {
        return commonNest(loopChain(model, s1->id),
                          loopChain(model, s2->id));
      };
      auto levelOf = [&](const std::vector<const Loop*>& nest) {
        for (std::size_t k = 0; k < nest.size(); ++k) {
          if (nest[k] == loop) return static_cast<int>(k) + 1;
        }
        return 0;
      };
      LevelResult assumed;
      assumed.answer = DepAnswer::DependenceExact;  // same address: certain

      // Recompute upward exposure with oracle-refined call semantics: a
      // call that kills the scalar without reading its incoming value ends
      // the search path instead of exposing it (interprocedural scalar
      // KILL, the nxsns case).
      bool exposed = vc.upwardExposedRead;
      if (exposed && ctx.oracle && !forcedShared) {
        int doNode = fg.nodeOf(loop->stmt->id);
        std::set<int> bodyNodes;
        for (const Stmt* s : loop->bodyStmts) {
          int n = fg.nodeOf(s->id);
          if (n >= 0) bodyNodes.insert(n);
        }
        std::vector<int> work;
        for (int succ : fg.successors(doNode)) {
          if (bodyNodes.count(succ)) work.push_back(succ);
        }
        std::set<int> seen;
        bool refined = false;
        bool decidable = true;
        while (!work.empty() && !refined && decidable) {
          int node = work.back();
          work.pop_back();
          if (seen.count(node)) continue;
          seen.insert(node);
          const Stmt* s = fg.stmtOf(node);
          if (!s) continue;
          bool killsHere = false;
          for (const Ref& r : ir::collectRefs(*s)) {
            if (r.name != vc.name) continue;
            if (r.kind == RefKind::Read) {
              refined = true;
              break;
            }
            if (r.kind == RefKind::CallActual) {
              bool known = true;
              bool calleeExposed = false, calleeKills = false;
              for (const auto& c : ir::calledFunctions(*s)) {
                if (!ctx.oracle->knowsCallee(c)) {
                  known = false;
                  break;
                }
                for (const auto& eff : ctx.oracle->effectsOfCall(*s, c)) {
                  if (eff.var != r.name) continue;
                  calleeExposed = calleeExposed || eff.exposedRead;
                  calleeKills = calleeKills || eff.kills;
                }
              }
              if (!known) {
                decidable = false;
                break;
              }
              if (calleeExposed) {
                refined = true;
                break;
              }
              if (calleeKills) killsHere = true;
            }
            if (r.kind == RefKind::Write || r.kind == RefKind::DoVarDef) {
              killsHere = true;
            }
          }
          if (refined || !decidable) break;
          if (killsHere) continue;
          for (int succ : fg.successors(node)) {
            if (succ == doNode) continue;
            if (bodyNodes.count(succ) && !seen.count(succ)) {
              work.push_back(succ);
            }
          }
        }
        if (decidable) exposed = refined;
      }
      for (const ARef& w : writes) {
        for (const ARef& r : reads) {
          if (!exposed) continue;
          auto nest = nestOf(w.stmt, r.stmt);
          int level = levelOf(nest);
          if (level == 0) continue;
          addDep(DepType::True, w, r, nest, level, assumed, false,
                 DepOrigin::Scalar);
          addDep(DepType::Anti, r, w, nest, level, assumed, false,
                 DepOrigin::Scalar);
        }
        // Output dependences only matter when the scalar's value can be
        // observed across iterations (exposed read) or after the loop —
        // unless the user insists the variable is shared.
        if (!forcedShared && !exposed &&
            !liveness.liveAfterLoop(*loop, vc.name)) {
          continue;
        }
        for (const ARef& w2 : writes) {
          auto nest = nestOf(w.stmt, w2.stmt);
          int level = levelOf(nest);
          if (level == 0) continue;
          addDep(DepType::Output, w, w2, nest, level, assumed, false,
                 DepOrigin::Scalar);
          break;  // one representative output edge per source write
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // Control dependences.
  // -------------------------------------------------------------------
  for (const auto& cdep : cdeps.all()) {
    const Stmt* branch = model.stmt(cdep.branch);
    const Stmt* dependent = model.stmt(cdep.dependent);
    if (!branch || !dependent) continue;
    if (branch->kind == StmtKind::Do) continue;  // loop control is implicit
    Dependence d;
    d.id = g.nextId_++;
    d.type = DepType::Control;
    d.srcStmt = branch->id;
    d.dstStmt = dependent->id;
    d.level = 0;
    auto nest = commonNest(loopChain(model, branch->id),
                           loopChain(model, dependent->id));
    d.commonLoop =
        nest.empty() ? fortran::kInvalidStmt : nest.back()->stmt->id;
    d.vector.dirs.resize(nest.size(), Direction::Eq);
    d.vector.dists.resize(nest.size(), 0);
    d.mark = DepMark::Proven;
    d.origin = DepOrigin::Control;
    g.deps_.push_back(std::move(d));
  }

  // -------------------------------------------------------------------
  // Call-site dependences (interprocedural side effects).
  // -------------------------------------------------------------------
  auto conservativeEffects = [&](const Stmt* s) {
    std::vector<CallEffect> effects;
    for (const Ref& r : ir::collectRefs(*s)) {
      if (r.kind != RefKind::CallActual) continue;
      CallEffect e;
      e.var = r.name;
      const fortran::VarDecl* d = proc.findDecl(r.name);
      e.isArray = d && d->isArray();
      e.mayRead = true;
      e.mayWrite = true;
      effects.push_back(std::move(e));
    }
    for (const auto& d : proc.decls) {
      if (d.commonBlock.empty()) continue;
      CallEffect e;
      e.var = d.name;
      e.isArray = d.isArray();
      e.mayRead = true;
      e.mayWrite = true;
      effects.push_back(std::move(e));
    }
    return effects;
  };

  for (const Stmt* call : callStmts) {
    const Loop* callLoop = model.enclosingLoop(call->id);
    if (!callLoop) continue;  // calls outside loops cannot carry

    std::vector<CallEffect> effects;
    bool summarized = false;
    for (const std::string& callee : ir::calledFunctions(*call)) {
      if (ctx.oracle && ctx.oracle->knowsCallee(callee)) {
        auto es = ctx.oracle->effectsOfCall(*call, callee);
        for (auto& e : es) effects.push_back(std::move(e));
        summarized = true;
      } else {
        auto es = conservativeEffects(call);
        for (auto& e : es) effects.push_back(std::move(e));
        summarized = false;
        break;  // one unknown callee poisons the call site
      }
    }

    // Aggregate per-variable kill/exposure info across the split effects.
    std::map<std::string, std::pair<bool, bool>> scalarInfo;  // kills, exposed
    for (const CallEffect& e : effects) {
      if (e.isArray) continue;
      auto& info = scalarInfo[e.var];
      info.first = info.first || e.kills;
      info.second = info.second || e.exposedRead;
    }

    for (const CallEffect& e : effects) {
      if (!e.mayRead && !e.mayWrite) continue;
      const fortran::VarDecl* d = proc.findDecl(e.var);
      bool isArray = d && d->isArray();

      // Interprocedural scalar KILL: a scalar the callee overwrites on
      // every path, never reading its incoming value, whose value dies with
      // the loop, cannot carry a dependence — provided nothing in the loop
      // reads it before the call each iteration.
      if (!isArray && summarized) {
        auto info = scalarInfo[e.var];
        if (info.first && !info.second &&
            !liveness.liveAfterLoop(*callLoop, e.var)) {
          bool readBeforeCall = false;
          for (const Stmt* s : callLoop->bodyStmts) {
            if (position[s->id] >= position[call->id]) continue;
            for (const Ref& r : ir::collectRefs(*s)) {
              if (r.name == e.var && r.isRead()) readBeforeCall = true;
            }
          }
          if (!readBeforeCall) continue;
        }
      }

      // Dependences against explicit references of the same variable.
      auto itRefs = refsByArray.find(e.var);
      std::vector<ARef> others;
      if (isArray && itRefs != refsByArray.end()) others = itRefs->second;
      if (!isArray) {
        for (const Stmt* s : callLoop->bodyStmts) {
          if (s == call) continue;
          for (const Ref& r : ir::collectRefs(*s)) {
            if (r.name == e.var && r.kind != RefKind::CallActual &&
                r.kind != RefKind::DoVarDef) {
              others.push_back({s, r.expr, r.isWrite()});
            }
          }
        }
      }

      ARef callRef{call, nullptr, e.mayWrite};
      for (const ARef& o : others) {
        auto nest = commonNest(loopChain(model, call->id),
                               loopChain(model, o.stmt->id));
        if (nest.empty()) continue;
        DependenceTester& tester = testerFor(nest);
        auto carrierPrivatized = [&](int level) {
          const Loop* carrier = nest[static_cast<std::size_t>(level - 1)];
          auto itL = ctx.classificationOverrides.find(carrier->stmt->id);
          if (itL == ctx.classificationOverrides.end()) return false;
          auto itV = itL->second.find(e.var);
          return itV != itL->second.end() && itV->second;
        };
        for (int level = 1; level <= static_cast<int>(nest.size());
             ++level) {
          if (carrierPrivatized(level)) continue;
          LevelResult res;
          if (summarized && e.section && o.expr) {
            res = tester.testSection(*o.expr, subFor(o.stmt), *e.section,
                                     subFor(call), level,
                                     /*callIsSrc=*/true);
          } else {
            res.answer = DepAnswer::DependenceAssumed;
          }
          if (res.answer != DepAnswer::NoDependence &&
              (e.mayWrite || o.write)) {
            addDep(typeOf(e.mayWrite, o.write), callRef, o, nest, level, res,
                   true, DepOrigin::CallSite);
          }
        }
      }

      // Call-to-itself across iterations: the write effect against every
      // effect on the same variable (write-write and write-read pairs).
      if (e.mayWrite) {
        auto nest = loopChain(model, call->id);
        if (!nest.empty()) {
          DependenceTester& tester = testerFor(nest);
          auto selfCarrierPrivatized = [&](int level) {
            const Loop* carrier =
                nest[static_cast<std::size_t>(level - 1)];
            auto itL = ctx.classificationOverrides.find(carrier->stmt->id);
            if (itL == ctx.classificationOverrides.end()) return false;
            auto itV = itL->second.find(e.var);
            return itV != itL->second.end() && itV->second;
          };
          for (const CallEffect& e2 : effects) {
            if (e2.var != e.var) continue;
            for (int level = 1; level <= static_cast<int>(nest.size());
                 ++level) {
              if (selfCarrierPrivatized(level)) continue;
              LevelResult res;
              if (summarized && e.section && e2.section) {
                res = tester.testSections(*e.section, subFor(call),
                                          *e2.section, subFor(call), level);
              } else {
                res.answer = DepAnswer::DependenceAssumed;
              }
              if (res.answer != DepAnswer::NoDependence) {
                addDep(e2.mayWrite ? DepType::Output : DepType::True,
                       callRef, callRef, nest, level, res, true,
                       DepOrigin::CallSite);
              }
            }
          }
        }
      }
    }
  }
  g.stats_.otherSeconds = secondsSince(tOther);

  // Tester tier/memo counters, once per tester (testers are shared by
  // every pair in their nest, so per-pair accumulation would double
  // count).
  for (const auto& [doId, tester] : testerCache) {
    (void)doId;
    g.stats_.accumulate(tester->stats());
  }
  g.stats_.totalSeconds = secondsSince(tBuild);
  if (ctx.statsSink) ctx.statsSink->accumulate(g.stats_);

  return g;
}

std::vector<const Dependence*> DependenceGraph::forLoop(
    const Loop& loop) const {
  std::vector<const Dependence*> out;
  for (const auto& d : deps_) {
    bool srcIn = loop.contains(d.srcStmt);
    bool dstIn = loop.contains(d.dstStmt);
    if (srcIn && dstIn) out.push_back(&d);
  }
  return out;
}

std::vector<const Dependence*> DependenceGraph::parallelismInhibitors(
    const Loop& loop) const {
  std::vector<const Dependence*> out;
  for (const auto& d : deps_) {
    if (d.carrierLoop == loop.stmt->id && d.inhibitsParallelism()) {
      out.push_back(&d);
    }
  }
  return out;
}

bool DependenceGraph::parallelizable(const Loop& loop) const {
  return parallelismInhibitors(loop).empty();
}

Dependence* DependenceGraph::byId(std::uint32_t id) {
  for (auto& d : deps_) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

DependenceGraph::Summary DependenceGraph::summary() const {
  Summary s;
  for (const auto& d : deps_) {
    ++s.totalDeps;
    if (d.mark == DepMark::Proven) ++s.provenDeps;
    if (d.mark == DepMark::Pending) ++s.pendingDeps;
    if (d.loopCarried()) ++s.carriedDeps;
    if (d.type == DepType::Control) ++s.controlDeps;
    if (d.interprocedural) ++s.interprocDeps;
    if (d.degraded) ++s.degradedDeps;
  }
  return s;
}

}  // namespace ps::dep
