#include "dependence/persist.h"

#include <map>

#include "ir/stable_id.h"

namespace ps::dep {

namespace {

// The statement-ordinal sentinel for kInvalidStmt endpoints.
constexpr std::uint32_t kNoStmt = 0xFFFFFFFFU;
// Hard caps on deserialized structure sizes: far above anything a real
// deck produces, low enough that a corrupt count cannot balloon memory.
constexpr std::uint32_t kMaxEdges = 1U << 22;
constexpr std::uint32_t kMaxVectorLen = 64;
constexpr std::uint32_t kMaxMemoEntries = 1U << 24;
constexpr int kMaxExprDepth = 200;

struct ExprBudget {
  int nodes = 1 << 20;
};

fortran::ExprPtr readExprImpl(pdb::Reader& r, int depth, ExprBudget& budget) {
  if (depth > kMaxExprDepth || --budget.nodes < 0) {
    r.markFail();
    return nullptr;
  }
  const std::uint8_t rawKind = r.u8();
  if (!r.ok() || rawKind > static_cast<std::uint8_t>(
                               fortran::ExprKind::FuncCall)) {
    r.markFail();
    return nullptr;
  }
  auto e = std::make_unique<fortran::Expr>();
  e->kind = static_cast<fortran::ExprKind>(rawKind);
  switch (e->kind) {
    case fortran::ExprKind::IntConst:
      e->intValue = r.i64();
      break;
    case fortran::ExprKind::RealConst:
      e->realValue = r.f64();
      break;
    case fortran::ExprKind::LogicalConst:
      e->logicalValue = r.u8() != 0;
      break;
    case fortran::ExprKind::StringConst:
      e->stringValue = r.str();
      break;
    case fortran::ExprKind::VarRef:
      e->name = r.str();
      break;
    case fortran::ExprKind::ArrayRef:
    case fortran::ExprKind::FuncCall: {
      e->name = r.str();
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > static_cast<std::uint32_t>(budget.nodes)) {
        r.markFail();
        return nullptr;
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        auto arg = readExprImpl(r, depth + 1, budget);
        if (!arg) return nullptr;
        e->args.push_back(std::move(arg));
      }
      break;
    }
    case fortran::ExprKind::Binary: {
      const std::uint8_t op = r.u8();
      if (op > static_cast<std::uint8_t>(fortran::BinOp::Neqv)) {
        r.markFail();
        return nullptr;
      }
      e->binOp = static_cast<fortran::BinOp>(op);
      e->lhs = readExprImpl(r, depth + 1, budget);
      e->rhs = readExprImpl(r, depth + 1, budget);
      if (!e->lhs || !e->rhs) return nullptr;
      break;
    }
    case fortran::ExprKind::Unary: {
      const std::uint8_t op = r.u8();
      if (op > static_cast<std::uint8_t>(fortran::UnOp::Not)) {
        r.markFail();
        return nullptr;
      }
      e->unOp = static_cast<fortran::UnOp>(op);
      e->lhs = readExprImpl(r, depth + 1, budget);
      if (!e->lhs) return nullptr;
      break;
    }
  }
  if (!r.ok()) return nullptr;
  return e;
}

void writeOptExpr(pdb::Writer& w, const fortran::ExprPtr& e) {
  w.u8(e ? 1 : 0);
  if (e) writeExpr(w, e.get());
}

bool readOptExpr(pdb::Reader& r, fortran::ExprPtr* out) {
  const std::uint8_t has = r.u8();
  if (!r.ok() || has > 1) return false;
  if (has) {
    *out = readExpr(r);
    if (!*out) return false;
  } else {
    out->reset();
  }
  return true;
}

}  // namespace

void writeExpr(pdb::Writer& w, const fortran::Expr* e) {
  w.u8(static_cast<std::uint8_t>(e->kind));
  switch (e->kind) {
    case fortran::ExprKind::IntConst:
      w.i64(e->intValue);
      break;
    case fortran::ExprKind::RealConst:
      w.f64(e->realValue);
      break;
    case fortran::ExprKind::LogicalConst:
      w.u8(e->logicalValue ? 1 : 0);
      break;
    case fortran::ExprKind::StringConst:
      w.str(e->stringValue);
      break;
    case fortran::ExprKind::VarRef:
      w.str(e->name);
      break;
    case fortran::ExprKind::ArrayRef:
    case fortran::ExprKind::FuncCall:
      w.str(e->name);
      w.u32(static_cast<std::uint32_t>(e->args.size()));
      for (const auto& a : e->args) writeExpr(w, a.get());
      break;
    case fortran::ExprKind::Binary:
      w.u8(static_cast<std::uint8_t>(e->binOp));
      writeExpr(w, e->lhs.get());
      writeExpr(w, e->rhs.get());
      break;
    case fortran::ExprKind::Unary:
      w.u8(static_cast<std::uint8_t>(e->unOp));
      writeExpr(w, e->lhs.get());
      break;
  }
}

fortran::ExprPtr readExpr(pdb::Reader& r) {
  ExprBudget budget;
  return readExprImpl(r, 0, budget);
}

void writeSection(pdb::Writer& w, const Section& s) {
  w.str(s.array);
  w.u32(static_cast<std::uint32_t>(s.dims.size()));
  for (const auto& d : s.dims) {
    w.u8(d.has_value() ? 1 : 0);
    if (d) {
      writeOptExpr(w, d->lo);
      writeOptExpr(w, d->hi);
    }
  }
}

bool readSection(pdb::Reader& r, Section* out) {
  out->array = r.str();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 32) return false;
  out->dims.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t has = r.u8();
    if (!r.ok() || has > 1) return false;
    if (!has) {
      out->dims.emplace_back();
      continue;
    }
    SectionDim d;
    if (!readOptExpr(r, &d.lo) || !readOptExpr(r, &d.hi)) return false;
    out->dims.emplace_back(std::move(d));
  }
  return r.ok();
}

bool writeGraphSlice(pdb::Writer& w, const fortran::Procedure& proc,
                     const DependenceGraph& g) {
  const auto ordinals = ir::stableOrdinals(proc);
  const auto stmts = ir::preorderStatements(proc);

  auto ordinalOf = [&](fortran::StmtId id, std::uint32_t* out) {
    if (id == fortran::kInvalidStmt) {
      *out = kNoStmt;
      return true;
    }
    auto it = ordinals.find(id);
    if (it == ordinals.end()) return false;
    *out = it->second;
    return true;
  };

  const auto& deps = g.all();
  w.u32(g.nextEdgeId());
  w.u32(static_cast<std::uint32_t>(deps.size()));
  for (const Dependence& d : deps) {
    std::uint32_t src, dst, carrier, common;
    if (!ordinalOf(d.srcStmt, &src) || !ordinalOf(d.dstStmt, &dst) ||
        !ordinalOf(d.carrierLoop, &carrier) ||
        !ordinalOf(d.commonLoop, &common)) {
      return false;
    }
    int srcRefIdx = -1, dstRefIdx = -1;
    if (d.srcRef) {
      if (src == kNoStmt) return false;
      srcRefIdx = ir::exprIndexIn(*stmts[src], *d.srcRef);
      if (srcRefIdx < 0) return false;
    }
    if (d.dstRef) {
      if (dst == kNoStmt) return false;
      dstRefIdx = ir::exprIndexIn(*stmts[dst], *d.dstRef);
      if (dstRefIdx < 0) return false;
    }

    w.u32(d.id);
    w.u8(static_cast<std::uint8_t>(d.type));
    w.u32(src);
    w.u32(dst);
    w.u8(d.srcRef ? 1 : 0);
    w.u32(d.srcRef ? static_cast<std::uint32_t>(srcRefIdx) : 0);
    w.u8(d.dstRef ? 1 : 0);
    w.u32(d.dstRef ? static_cast<std::uint32_t>(dstRefIdx) : 0);
    w.str(d.variable);
    w.u32(static_cast<std::uint32_t>(d.level));
    w.u32(carrier);
    w.u32(common);
    w.u32(static_cast<std::uint32_t>(d.vector.dirs.size()));
    for (Direction dir : d.vector.dirs) {
      w.u8(static_cast<std::uint8_t>(dir));
    }
    w.u32(static_cast<std::uint32_t>(d.vector.dists.size()));
    for (const auto& dist : d.vector.dists) {
      w.u8(dist.has_value() ? 1 : 0);
      w.i64(dist.value_or(0));
    }
    w.u8(static_cast<std::uint8_t>(d.mark));
    w.u8(static_cast<std::uint8_t>(d.origin));
    w.str(d.reason);
    w.u8(d.interprocedural ? 1 : 0);
    w.u8(d.degraded ? 1 : 0);
    w.str(d.evidence);
  }
  return true;
}

bool readGraphSlice(pdb::Reader& r, const fortran::Procedure& proc,
                    RestoredSlice* out) {
  const auto stmts = ir::preorderStatements(proc);

  auto stmtOf = [&](std::uint32_t ordinal, fortran::StmtId* id,
                    const fortran::Stmt** stmt) {
    if (ordinal == kNoStmt) {
      *id = fortran::kInvalidStmt;
      if (stmt) *stmt = nullptr;
      return true;
    }
    if (ordinal >= stmts.size()) return false;
    *id = stmts[ordinal]->id;
    if (stmt) *stmt = stmts[ordinal];
    return true;
  };

  out->nextEdgeId = r.u32();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxEdges) return false;
  out->deps.clear();
  out->deps.reserve(n);

  for (std::uint32_t i = 0; i < n; ++i) {
    Dependence d;
    d.id = r.u32();
    if (d.id == 0 || d.id >= out->nextEdgeId) return false;

    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(DepType::Control)) return false;
    d.type = static_cast<DepType>(type);

    const std::uint32_t srcOrd = r.u32();
    const std::uint32_t dstOrd = r.u32();
    const fortran::Stmt* srcStmt = nullptr;
    const fortran::Stmt* dstStmt = nullptr;
    if (!stmtOf(srcOrd, &d.srcStmt, &srcStmt) ||
        !stmtOf(dstOrd, &d.dstStmt, &dstStmt)) {
      return false;
    }

    const std::uint8_t hasSrcRef = r.u8();
    const std::uint32_t srcRefIdx = r.u32();
    const std::uint8_t hasDstRef = r.u8();
    const std::uint32_t dstRefIdx = r.u32();
    if (hasSrcRef > 1 || hasDstRef > 1) return false;
    if (hasSrcRef) {
      if (!srcStmt) return false;
      d.srcRef = ir::exprAtIndex(*srcStmt, srcRefIdx);
      if (!d.srcRef) return false;
    }
    if (hasDstRef) {
      if (!dstStmt) return false;
      d.dstRef = ir::exprAtIndex(*dstStmt, dstRefIdx);
      if (!d.dstRef) return false;
    }

    d.variable = r.str();
    const std::uint32_t level = r.u32();
    if (level > kMaxVectorLen) return false;
    d.level = static_cast<int>(level);

    std::uint32_t carrierOrd = r.u32();
    std::uint32_t commonOrd = r.u32();
    const fortran::Stmt* carrierStmt = nullptr;
    const fortran::Stmt* commonStmt = nullptr;
    if (!stmtOf(carrierOrd, &d.carrierLoop, &carrierStmt) ||
        !stmtOf(commonOrd, &d.commonLoop, &commonStmt)) {
      return false;
    }
    if (carrierStmt && carrierStmt->kind != fortran::StmtKind::Do) {
      return false;
    }
    if (commonStmt && commonStmt->kind != fortran::StmtKind::Do) {
      return false;
    }

    const std::uint32_t nDirs = r.u32();
    if (!r.ok() || nDirs > kMaxVectorLen) return false;
    for (std::uint32_t k = 0; k < nDirs; ++k) {
      const std::uint8_t dir = r.u8();
      if (dir > static_cast<std::uint8_t>(Direction::Star)) return false;
      d.vector.dirs.push_back(static_cast<Direction>(dir));
    }
    const std::uint32_t nDists = r.u32();
    if (!r.ok() || nDists > kMaxVectorLen) return false;
    for (std::uint32_t k = 0; k < nDists; ++k) {
      const std::uint8_t has = r.u8();
      const long long v = r.i64();
      if (has > 1) return false;
      d.vector.dists.push_back(has ? std::optional<long long>(v)
                                   : std::nullopt);
    }
    if (static_cast<std::size_t>(d.level) > d.vector.dirs.size()) {
      return false;
    }

    const std::uint8_t mark = r.u8();
    if (mark > static_cast<std::uint8_t>(DepMark::Rejected)) return false;
    d.mark = static_cast<DepMark>(mark);
    const std::uint8_t origin = r.u8();
    if (origin > static_cast<std::uint8_t>(DepOrigin::CallSite)) return false;
    d.origin = static_cast<DepOrigin>(origin);
    d.reason = r.str();
    const std::uint8_t interproc = r.u8();
    const std::uint8_t degraded = r.u8();
    if (!r.ok() || interproc > 1 || degraded > 1) return false;
    d.interprocedural = interproc != 0;
    d.degraded = degraded != 0;
    d.evidence = r.str();

    out->deps.push_back(std::move(d));
  }
  return r.ok();
}

void writeMemoEntries(
    pdb::Writer& w,
    const std::vector<std::pair<std::string, LevelResult>>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, result] : entries) {
    w.str(key);
    w.u8(static_cast<std::uint8_t>(result.answer));
    w.u8(result.distance.has_value() ? 1 : 0);
    w.i64(result.distance.value_or(0));
    w.u8(result.degraded ? 1 : 0);
  }
}

bool readMemoEntries(pdb::Reader& r,
                     std::vector<std::pair<std::string, LevelResult>>* out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxMemoEntries) return false;
  out->clear();
  out->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    LevelResult result;
    const std::uint8_t answer = r.u8();
    if (answer > static_cast<std::uint8_t>(DepAnswer::DependenceAssumed)) {
      return false;
    }
    result.answer = static_cast<DepAnswer>(answer);
    const std::uint8_t hasDist = r.u8();
    const long long dist = r.i64();
    const std::uint8_t degraded = r.u8();
    if (!r.ok() || hasDist > 1 || degraded > 1) return false;
    if (hasDist) result.distance = dist;
    result.degraded = degraded != 0;
    out->emplace_back(std::move(key), result);
  }
  return r.ok();
}

}  // namespace ps::dep
