#include "dependence/subscript.h"

#include "fortran/pretty.h"
#include "ir/refs.h"

namespace ps::dep {

using dataflow::LinearExpr;
using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::UnOp;

std::string OpaqueTable::intern(const Expr& e) {
  std::string symbol = "@" + fortran::printExpr(e);
  auto it = terms_.find(symbol);
  if (it != terms_.end()) return symbol;
  OpaqueTerm term;
  term.symbol = symbol;
  if (e.kind == ExprKind::ArrayRef ||
      (e.kind == ExprKind::FuncCall && !ir::isIntrinsic(e.name))) {
    term.array = e.name;
    if (!e.args.empty()) term.innerPrinted = fortran::printExpr(*e.args[0]);
  }
  e.forEach([&](const Expr& sub) {
    if (sub.kind == ExprKind::VarRef) term.vars.insert(sub.name);
    if (sub.kind == ExprKind::ArrayRef || sub.kind == ExprKind::FuncCall) {
      for (const auto& a : sub.args) {
        a->forEach([&](const Expr& inner) {
          if (inner.kind == ExprKind::VarRef) term.vars.insert(inner.name);
        });
      }
    }
  });
  terms_.emplace(symbol, std::move(term));
  return symbol;
}

const OpaqueTerm* OpaqueTable::find(const std::string& symbol) const {
  auto it = terms_.find(symbol);
  return it == terms_.end() ? nullptr : &it->second;
}

namespace {

LinearExpr opaque(const Expr& e, OpaqueTable& t) {
  LinearExpr out;
  out.coef[t.intern(e)] = 1;
  if (e.kind == ExprKind::ArrayRef) out.hasIndexArray = true;
  if (e.kind == ExprKind::FuncCall) {
    out.hasCall = true;
    if (!ir::isIntrinsic(e.name)) out.hasIndexArray = true;
  }
  return out;
}

LinearExpr linearizeSubscriptImpl(
    const Expr& e, const std::map<std::string, LinearExpr>& substitute,
    OpaqueTable& opaques) {
  switch (e.kind) {
    case ExprKind::IntConst: {
      LinearExpr out;
      out.constant = e.intValue;
      return out;
    }
    case ExprKind::VarRef: {
      auto it = substitute.find(e.name);
      if (it != substitute.end() && it->second.affine) return it->second;
      LinearExpr out;
      out.coef[e.name] = 1;
      return out;
    }
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall:
      return opaque(e, opaques);
    case ExprKind::Unary: {
      if (e.unOp == UnOp::Neg) {
        LinearExpr v = linearizeSubscriptImpl(*e.lhs, substitute, opaques);
        LinearExpr out;
        out.add(v, -1);
        return out;
      }
      if (e.unOp == UnOp::Plus) {
        return linearizeSubscriptImpl(*e.lhs, substitute, opaques);
      }
      return opaque(e, opaques);
    }
    case ExprKind::Binary: {
      switch (e.binOp) {
        case BinOp::Add: {
          LinearExpr l = linearizeSubscriptImpl(*e.lhs, substitute, opaques);
          return l.add(linearizeSubscriptImpl(*e.rhs, substitute, opaques), 1);
        }
        case BinOp::Sub: {
          LinearExpr l = linearizeSubscriptImpl(*e.lhs, substitute, opaques);
          return l.add(linearizeSubscriptImpl(*e.rhs, substitute, opaques), -1);
        }
        case BinOp::Mul: {
          LinearExpr l = linearizeSubscriptImpl(*e.lhs, substitute, opaques);
          LinearExpr r = linearizeSubscriptImpl(*e.rhs, substitute, opaques);
          if (l.isConstant()) {
            LinearExpr out;
            out.add(r, l.constant);
            return out;
          }
          if (r.isConstant()) {
            LinearExpr out;
            out.add(l, r.constant);
            return out;
          }
          return opaque(e, opaques);
        }
        default:
          return opaque(e, opaques);
      }
    }
    default:
      return opaque(e, opaques);
  }
}

std::size_t nodeCount(const Expr& e) {
  std::size_t n = 0;
  e.forEach([&](const Expr&) { ++n; });
  return n;
}

}  // namespace

LinearExpr linearizeSubscript(
    const Expr& e, const std::map<std::string, LinearExpr>& substitute,
    OpaqueTable& opaques, std::size_t maxNodes) {
  if (maxNodes != 0 && nodeCount(e) > maxNodes) {
    // Over budget: do not walk the tree. One opaque term stands in for the
    // whole subscript — sound, but coarser than the source warranted.
    LinearExpr out = opaque(e, opaques);
    out.degraded = true;
    return out;
  }
  return linearizeSubscriptImpl(e, substitute, opaques);
}

}  // namespace ps::dep
