#include "dependence/testsuite.h"

#include <algorithm>
#include <thread>

#include "dependence/fm.h"
#include "support/ebr.h"
#include "support/hash.h"
#include "support/lockfree.h"

namespace ps::dep {

using dataflow::LinearExpr;
using fortran::Expr;
using fortran::ExprKind;

namespace {

/// Name of the normalized iteration variable for loop k on one side.
std::string tvar(int k, bool shared, bool isSrc) {
  std::string name = "t" + std::to_string(k);
  if (!shared) name += isSrc ? "#s" : "#d";
  return name;
}

std::string sideTag(const std::string& base, bool isSrc) {
  return base + (isSrc ? "#s" : "#d");
}

}  // namespace

void TestStats::accumulate(const TestStats& o) {
  zivDisproofs += o.zivDisproofs;
  zivExact += o.zivExact;
  strongSiv += o.strongSiv;
  strongSivDisproofs += o.strongSivDisproofs;
  indexArrayDisproofs += o.indexArrayDisproofs;
  fmRuns += o.fmRuns;
  fmDisproofs += o.fmDisproofs;
  assumed += o.assumed;
  fmDegraded += o.fmDegraded;
  degradedAnswers += o.degradedAnswers;
  linearizeDegraded += o.linearizeDegraded;
  symbolicTruncated += o.symbolicTruncated;
  testsRequested += o.testsRequested;
  memoHits += o.memoHits;
  memoMisses += o.memoMisses;
  pairsTested += o.pairsTested;
  pairBatches += o.pairBatches;
  pairsSpliced += o.pairsSpliced;
  edgesSpliced += o.edgesSpliced;
  edgesRebuilt += o.edgesRebuilt;
  dataflowSeconds += o.dataflowSeconds;
  pairSeconds += o.pairSeconds;
  otherSeconds += o.otherSeconds;
  totalSeconds += o.totalSeconds;
}

void appendLinearKey(std::string& out, const LinearExpr& e) {
  out += e.affine ? 'a' : 'n';
  out += std::to_string(e.constant);
  for (const auto& [v, c] : e.coef) {  // std::map: deterministic order
    out += ',';
    out += v;
    out += ':';
    out += std::to_string(c);
  }
  out += ';';
}

MemoKey::MemoKey(std::string t)
    : text(std::move(t)), hash(support::xxh64(text)) {}

namespace {

/// Sentinel a grower CASes into every empty slot of a superseded array so
/// no new claim can land there. For a reader probing the frozen array it
/// marks exactly where a null did — the legitimate end of a probe chain.
inline void* sealedSlot() {
  return reinterpret_cast<void*>(std::uintptr_t{1});
}

/// Probe start: the shard index consumed the low 4 bits of the hash, so
/// slot selection uses the bits above them.
inline std::size_t probeStart(std::uint64_t hash, std::size_t mask) {
  return static_cast<std::size_t>(hash >> 4) & mask;
}

}  // namespace

DepMemo::DepMemo(std::optional<bool> lockfree)
    : lockfree_(lockfree.value_or(support::lockfreeDefault())),
      floors_(1, 0) {}

DepMemo::~DepMemo() {
  // Records and their current boxes are owned by the live tables. Boxes
  // and arrays retired earlier sit in the epoch domain's limbo as opaque
  // heap blocks — they reference no memo state and are freed when their
  // grace period lapses, independent of this object's lifetime.
  for (LfShard& sh : lfShards_) {
    LfTable* t = sh.table.load(std::memory_order_acquire);
    if (t == nullptr) continue;
    for (std::size_t i = 0; i <= t->mask; ++i) {
      LfRecord* rec = t->slots[i].load(std::memory_order_acquire);
      if (rec == nullptr || rec == sealedSlot()) continue;
      delete rec->box.load(std::memory_order_acquire);
      delete rec;
    }
    delete t;
  }
}

std::optional<LevelResult> DepMemo::lookupLf(const MemoKey& key,
                                             std::uint64_t floor,
                                             std::uint64_t cap) const {
  const LfShard& sh = lfShards_[key.hash % kShards];
  support::EpochGuard guard;
  const LfTable* t = sh.table.load(std::memory_order_acquire);
  if (t == nullptr) return std::nullopt;
  std::size_t i = probeStart(key.hash, t->mask);
  for (std::size_t probes = 0; probes <= t->mask;
       ++probes, i = (i + 1) & t->mask) {
    LfRecord* rec = t->slots[i].load(std::memory_order_acquire);
    // A null (or sealed — "was null when this array was frozen") slot ends
    // the probe chain: the key was never inserted under this hash run.
    if (rec == nullptr || rec == sealedSlot()) return std::nullopt;
    if (rec->hash != key.hash || rec->key != key.text) continue;
    const LfBox* box = rec->box.load(std::memory_order_acquire);
    if (box == nullptr || box->gen < floor || box->gen > cap) {
      return std::nullopt;
    }
    return box->result;  // copied out while the epoch pin protects the box
  }
  return std::nullopt;
}

void DepMemo::insertLf(const MemoKey& key, const LevelResult& result,
                       std::uint64_t gen) {
  LfShard& sh = lfShards_[key.hash % kShards];
  support::EpochGuard guard;
  LfRecord* fresh = nullptr;  // built lazily, reused across retries
  const auto cleanup = [&fresh] {
    if (fresh != nullptr) {
      delete fresh->box.load(std::memory_order_relaxed);
      delete fresh;
    }
  };
  for (;;) {
    LfTable* t = sh.table.load(std::memory_order_acquire);
    if (t == nullptr) {
      growShard(sh, nullptr);
      continue;
    }
    bool tableSuperseded = false;
    std::size_t i = probeStart(key.hash, t->mask);
    for (std::size_t probes = 0; probes <= t->mask;
         ++probes, i = (i + 1) & t->mask) {
      LfRecord* rec = t->slots[i].load(std::memory_order_acquire);
      if (rec == nullptr) {
        if (fresh == nullptr) {
          fresh = new LfRecord;
          fresh->hash = key.hash;
          fresh->key = key.text;
          fresh->box.store(new LfBox{result, gen}, std::memory_order_relaxed);
        }
        LfRecord* expected = nullptr;
        if (t->slots[i].compare_exchange_strong(expected, fresh,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          fresh = nullptr;
          const std::size_t count =
              sh.count.fetch_add(1, std::memory_order_relaxed) + 1;
          // Grow at ~70% load so probe chains stay short.
          if (count * 10 > (t->mask + 1) * 7) growShard(sh, t);
          return;
        }
        casRetries_.fetch_add(1, std::memory_order_relaxed);
        rec = expected;  // examine whoever claimed the slot first
      }
      if (rec == sealedSlot()) {
        tableSuperseded = true;
        break;
      }
      if (rec->hash == key.hash && rec->key == key.text) {
        // Same key: swap in a new box (last writer wins, matching the
        // mutex backend's table[key] = entry) and retire the old one —
        // a concurrent reader may be mid-copy on it.
        auto* box = new LfBox{result, gen};
        LfBox* old = rec->box.exchange(box, std::memory_order_acq_rel);
        if (old != nullptr) {
          support::EpochDomain::global().retire(old, [](void* p) {
            delete static_cast<LfBox*>(p);
          });
        }
        cleanup();
        return;
      }
    }
    if (tableSuperseded) {
      // A grower sealed this array mid-probe; wait for the doubled array
      // (published promptly — migration is pointer copies) and retry.
      casRetries_.fetch_add(1, std::memory_order_relaxed);
      while (sh.table.load(std::memory_order_acquire) == t) {
        std::this_thread::yield();
      }
      continue;
    }
    // Probed every slot without a claim: the array is full of other keys.
    growShard(sh, t);
  }
}

void DepMemo::growShard(LfShard& sh, const LfTable* from) {
  std::lock_guard<std::mutex> lk(sh.growMu);
  LfTable* cur = sh.table.load(std::memory_order_acquire);
  if (cur != from) return;  // another writer already created/doubled it
  auto* bigger = new LfTable;
  const std::size_t newCap = cur == nullptr ? kInitialSlots : (cur->mask + 1) * 2;
  bigger->mask = newCap - 1;
  bigger->slots = std::make_unique<std::atomic<LfRecord*>[]>(newCap);
  if (cur != nullptr) {
    // Seal: claim every empty slot so no insert can land in the old array
    // after migration reads it. Post-seal each slot is a record or the
    // sentinel, permanently.
    for (std::size_t i = 0; i <= cur->mask; ++i) {
      LfRecord* p = cur->slots[i].load(std::memory_order_acquire);
      while (p == nullptr &&
             !cur->slots[i].compare_exchange_weak(
                 p, static_cast<LfRecord*>(sealedSlot()),
                 std::memory_order_acq_rel, std::memory_order_acquire)) {
      }
    }
    // Migrate the stable record pointers. Plain stores: the new array is
    // unpublished, nobody else can see it yet.
    for (std::size_t i = 0; i <= cur->mask; ++i) {
      LfRecord* rec = cur->slots[i].load(std::memory_order_relaxed);
      if (rec == sealedSlot()) continue;
      std::size_t j = probeStart(rec->hash, bigger->mask);
      while (bigger->slots[j].load(std::memory_order_relaxed) != nullptr) {
        j = (j + 1) & bigger->mask;
      }
      bigger->slots[j].store(rec, std::memory_order_relaxed);
    }
  }
  sh.table.store(bigger, std::memory_order_release);
  if (cur != nullptr) {
    // Readers that loaded the superseded array are still probing it; the
    // epoch domain frees it only after every pinned reader is gone.
    support::EpochDomain::global().retire(
        cur, [](void* p) { delete static_cast<LfTable*>(p); });
  }
}

DepMemo::ViewId DepMemo::createView() {
  std::lock_guard<std::mutex> lk(viewMu_);
  floors_.push_back(0);
  return static_cast<ViewId>(floors_.size() - 1);
}

void DepMemo::invalidateView(ViewId v) {
  std::lock_guard<std::mutex> lk(viewMu_);
  const std::uint64_t e =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (v < floors_.size() && floors_[v] < e) floors_[v] = e;
}

void DepMemo::invalidateAll() {
  std::lock_guard<std::mutex> lk(viewMu_);
  const std::uint64_t e =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (std::uint64_t& f : floors_) f = e;
}

std::uint64_t DepMemo::floorOf(ViewId v) const {
  std::lock_guard<std::mutex> lk(viewMu_);
  return v < floors_.size() ? floors_[v] : 0;
}

std::optional<LevelResult> DepMemo::lookup(const MemoKey& key,
                                           std::uint64_t floor,
                                           std::uint64_t cap) const {
  if (lockfree_) return lookupLf(key, floor, cap);
  Shard& s = shardFor(key);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.table.find(key.text);
  if (it == s.table.end() || it->second.gen < floor || it->second.gen > cap) {
    return std::nullopt;
  }
  return it->second.result;
}

void DepMemo::insert(const MemoKey& key, const LevelResult& result,
                     std::uint64_t gen) {
  if (lockfree_) {
    insertLf(key, result, gen);
    return;
  }
  Shard& s = shardFor(key);
  std::lock_guard<std::mutex> lk(s.mu);
  s.table[key.text] = Entry{result, gen};
}

std::size_t DepMemo::size() const {
  if (lockfree_) {
    std::size_t total = 0;
    for (const LfShard& s : lfShards_) {
      total += s.count.load(std::memory_order_acquire);
    }
    return total;
  }
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.table.size();
  }
  return total;
}

std::vector<std::pair<std::string, LevelResult>> DepMemo::exportEntries(
    ViewId view) const {
  const std::uint64_t floor = floorOf(view);
  std::vector<std::pair<std::string, LevelResult>> out;
  if (lockfree_) {
    support::EpochGuard guard(support::EpochDomain::global());
    for (const LfShard& s : lfShards_) {
      const LfTable* t = s.table.load(std::memory_order_acquire);
      if (t == nullptr) continue;
      for (std::size_t i = 0; i <= t->mask; ++i) {
        const LfRecord* rec = t->slots[i].load(std::memory_order_acquire);
        if (rec == nullptr || rec == sealedSlot()) continue;
        const LfBox* box = rec->box.load(std::memory_order_acquire);
        if (box != nullptr && box->gen >= floor) {
          out.emplace_back(rec->key, box->result);
        }
      }
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [key, entry] : s.table) {
      if (entry.gen >= floor) out.emplace_back(key, entry.result);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void DepMemo::preWarm(
    const std::vector<std::pair<std::string, LevelResult>>& entries) {
  const std::uint64_t gen = generation();
  for (const auto& [key, result] : entries) insert(key, result, gen);
}

DependenceTester::DependenceTester(std::vector<LoopContext> commonLoops,
                                   std::vector<Fact> facts,
                                   IndexArrayFacts indexFacts,
                                   OpaqueTable& opaques,
                                   std::set<std::string> variantVars,
                                   bool cheapFirst, DepMemo* memo,
                                   AnalysisBudget budget,
                                   DepMemo::ViewId memoView)
    : loops_(std::move(commonLoops)),
      facts_(std::move(facts)),
      indexFacts_(std::move(indexFacts)),
      opaques_(opaques),
      variantVars_(std::move(variantVars)),
      cheapFirst_(cheapFirst),
      memo_(memo),
      budget_(budget) {
  if (!memo_) return;
  // Capture the view floor and epoch under which our facts were snapshot:
  // inserts are stamped with the epoch and lookups accept only [floor,
  // epoch], so an invalidation of our view landing mid-flight can never
  // leak a pre-bump result to a post-bump tester or vice versa — while
  // entries other views inserted since our floor stay shared.
  memoFloor_ = memo_->floorOf(memoView);
  memoGen_ = memo_->generation();
  // Canonical prefix: every per-nest/per-context input that influences a
  // test result but is not part of the per-query subscript forms. Mutable
  // user state (classification overrides) deliberately does NOT appear: it
  // never changes a test outcome, only whether a test is issued.
  keyPrefix_ += cheapFirst_ ? "c" : "f";
  // Budgets change answers (a tighter budget degrades more queries), so a
  // memo shared across budget configurations must key on them.
  keyPrefix_ += "B" + std::to_string(budget_.fmMaxConstraints) + "," +
                std::to_string(budget_.fmMaxEliminations) + "," +
                std::to_string(budget_.maxSubscriptNodes) + ";";
  for (const LoopContext& lc : loops_) {
    keyPrefix_ += "L";
    keyPrefix_ += std::to_string(lc.step);
    keyPrefix_ += '~';
    appendLinearKey(keyPrefix_, lc.lo);
    appendLinearKey(keyPrefix_, lc.hi);
  }
  keyPrefix_ += "F";
  for (const Fact& f : facts_) {
    keyPrefix_ += f.strict ? '>' : '!';
    appendLinearKey(keyPrefix_, f.expr);
  }
  keyPrefix_ += "I";
  for (const auto& a : indexFacts_.permutation) keyPrefix_ += "p" + a + ";";
  for (const auto& [a, k] : indexFacts_.strided) {
    keyPrefix_ += "s" + a + ":" + std::to_string(k) + ";";
  }
  for (const auto& [ab, k] : indexFacts_.separated) {
    keyPrefix_ +=
        "x" + ab.first + "," + ab.second + ":" + std::to_string(k) + ";";
  }
  // Iteration-variant scalars alter side-tagging of symbolic terms; the
  // tags land in the diff forms, but a variable may also *stop* being
  // variant, which changes nothing in the key — so pin the set here.
  keyPrefix_ += "V";
  for (const auto& v : variantVars_) keyPrefix_ += v + ",";
}

MemoKey DependenceTester::makeKey(
    char tag, int level, int variant,
    const std::vector<LinearExpr>& forms) const {
  std::string key = keyPrefix_;
  key += '|';
  key += tag;
  key += std::to_string(level);
  key += '.';
  key += std::to_string(variant);
  key += '|';
  for (const LinearExpr& f : forms) appendLinearKey(key, f);
  return MemoKey(std::move(key));
}

bool DependenceTester::variantAtOrBelow(const std::string& var,
                                        int level) const {
  // Is `var` an induction variable whose value differs between the two
  // iterations being compared? For level 0 every common IV agrees; for a
  // carried test at L, loops L..n differ (1-based).
  for (std::size_t k = 0; k < loops_.size(); ++k) {
    if (loops_[k].iv == var) {
      if (level == 0) return false;
      return static_cast<int>(k) >= level - 1;
    }
  }
  // Not a common IV: a scalar defined somewhere in the nest may hold
  // different values at the two references even in the same iteration.
  return variantVars_.count(var) > 0;
}

LinearExpr DependenceTester::tagForm(const LinearExpr& f, int level,
                                     bool isSrc) const {
  LinearExpr out;
  out.constant = f.constant;
  out.affine = f.affine;
  out.hasIndexArray = f.hasIndexArray;
  out.hasCall = f.hasCall;
  out.degraded = f.degraded;
  for (const auto& [v, c] : f.coef) {
    // Induction variable of a common loop: normalize to lo + step*t.
    bool handled = false;
    for (std::size_t k = 0; k < loops_.size(); ++k) {
      if (loops_[k].iv != v) continue;
      handled = true;
      const LoopContext& lc = loops_[k];
      bool shared = (level == 0) || (static_cast<int>(k) < level - 1);
      if (lc.step != 0) {
        out.add(lc.lo, c);
        std::string t = tvar(static_cast<int>(k), shared, isSrc);
        out.coef[t] += c * lc.step;
        if (out.coef[t] == 0) out.coef.erase(t);
      } else {
        std::string name = shared ? v : sideTag(v, isSrc);
        out.coef[name] += c;
        if (out.coef[name] == 0) out.coef.erase(name);
      }
      break;
    }
    if (handled) continue;
    if (!v.empty() && v[0] == '@') {
      // Opaque term: shared unless it mentions an iteration-variant
      // variable.
      const OpaqueTerm* term = opaques_.find(v);
      bool variant = false;
      if (term) {
        for (const auto& w : term->vars) {
          if (variantAtOrBelow(w, level)) variant = true;
        }
      } else {
        variant = true;  // unknown term: be conservative
      }
      std::string name = variant ? sideTag(v, isSrc) : v;
      out.coef[name] += c;
      if (out.coef[name] == 0) out.coef.erase(name);
      continue;
    }
    // Plain symbolic scalar.
    bool variant = variantVars_.count(v) > 0;
    std::string name = variant ? sideTag(v, isSrc) : v;
    out.coef[name] += c;
    if (out.coef[name] == 0) out.coef.erase(name);
  }
  return out;
}

LinearExpr DependenceTester::tagged(
    const Expr& e, const std::map<std::string, LinearExpr>& sub, int level,
    bool isSrc) {
  LinearExpr raw =
      linearizeSubscript(e, sub, opaques_, budget_.maxSubscriptNodes);
  if (raw.degraded) ++stats_.linearizeDegraded;
  return tagForm(raw, level, isSrc);
}

bool DependenceTester::indexArrayDisproof(const LinearExpr& diff,
                                          int level) const {
  if (indexFacts_.empty() || level == 0) return false;
  // Pattern: diff = (+1)*@A(...)#d + (-1)*@B(...)#s + constant, with no
  // other variables.
  std::string pos, neg;
  for (const auto& [v, c] : diff.coef) {
    if (v.size() > 1 && v[0] == '@' && (c == 1 || c == -1)) {
      std::string base = v.substr(0, v.find('#'));
      if (c == 1 && pos.empty()) {
        pos = base;
        continue;
      }
      if (c == -1 && neg.empty()) {
        neg = base;
        continue;
      }
    }
    return false;  // anything else: pattern not matched
  }
  if (pos.empty() || neg.empty()) return false;
  const OpaqueTerm* posT = opaques_.find(pos);
  const OpaqueTerm* negT = opaques_.find(neg);
  if (!posT || !negT || posT->array.empty() || negT->array.empty()) {
    return false;
  }
  const long long c = diff.constant;
  const std::string& carrier = loops_[static_cast<std::size_t>(level - 1)].iv;

  if (posT->array == negT->array && posT->innerPrinted == negT->innerPrinted) {
    // Same A(inner) on both sides, different iterations. The inner
    // subscript must be driven by the carrier so different iterations give
    // different arguments.
    if (posT->innerPrinted != carrier &&
        !posT->vars.count(carrier)) {
      return false;
    }
    // PERMUTATION: distinct args -> distinct values, so diff = (Ad - As) + c
    // with Ad != As; only disproves when c == 0 would force Ad == As.
    if (c == 0 && indexFacts_.permutation.count(posT->array) &&
        posT->innerPrinted == carrier) {
      return true;
    }
    // STRIDED(A, k): with the '<' direction the destination iteration is
    // later, so Ad - As >= k; diff >= k + c > 0 disproves.
    auto it = indexFacts_.strided.find(posT->array);
    if (it != indexFacts_.strided.end() && posT->innerPrinted == carrier &&
        it->second + c >= 1) {
      return true;
    }
    return false;
  }

  // Different arrays: SEPARATED(A, B, k) gives B(y) - A(x) >= k for all
  // arguments.
  auto sep = indexFacts_.separated.find({negT->array, posT->array});
  if (sep != indexFacts_.separated.end()) {
    // diff = pos - neg + c where pos is B-like, neg is A-like:
    // diff >= k + c.
    if (sep->second + c >= 1) return true;
  }
  auto sep2 = indexFacts_.separated.find({posT->array, negT->array});
  if (sep2 != indexFacts_.separated.end()) {
    // neg - pos >= k, so diff = pos - neg + c <= -k + c.
    if (-sep2->second + c <= -1) return true;
  }
  return false;
}

LevelResult DependenceTester::test(const RefPair& pair, int level,
                                   Direction innerDir) {
  ++stats_.testsRequested;

  // Dimension count: treat the common prefix.
  std::size_t dims = std::min(pair.src->args.size(), pair.dst->args.size());
  std::vector<LinearExpr> diffs;
  diffs.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    LinearExpr s = tagged(*pair.src->args[d], *pair.srcSub, level, true);
    LinearExpr t = tagged(*pair.dst->args[d], *pair.dstSub, level, false);
    LinearExpr diff = t;
    diff.add(s, -1);
    diffs.push_back(std::move(diff));
  }

  MemoKey key;
  if (memo_) {
    key = makeKey('t', level, static_cast<int>(innerDir), diffs);
    if (std::optional<LevelResult> hit = memo_->lookup(key, memoFloor_, memoGen_)) {
      ++stats_.memoHits;
      return *hit;
    }
    ++stats_.memoMisses;
  }
  LevelResult result = runSuite(diffs, level, innerDir);
  if (memo_) memo_->insert(key, result, memoGen_);
  return result;
}

LevelResult DependenceTester::runSuite(const std::vector<LinearExpr>& diffs,
                                       int level, Direction innerDir) {
  LevelResult result;
  bool allExact = true;
  bool anyDegraded = false;
  for (const LinearExpr& diff : diffs) anyDegraded |= diff.degraded;
  std::optional<long long> distance;

  // With an inner-direction constraint, the cheap tiers may still disprove,
  // but an exact-dependence answer must come from the constrained FM run.
  const bool constrained =
      innerDir != Direction::Star && level > 0 &&
      static_cast<std::size_t>(level) < loops_.size();

  if (cheapFirst_) {
    for (const LinearExpr& diff : diffs) {
      // --- ZIV tier ---
      if (diff.coef.empty()) {
        if (diff.constant != 0) {
          ++stats_.zivDisproofs;
          result.answer = DepAnswer::NoDependence;
          return result;
        }
        ++stats_.zivExact;
        continue;
      }
      // --- strong SIV tier ---
      if (level > 0 && diff.coef.size() == 2) {
        std::string ts = tvar(level - 1, false, true);
        std::string td = tvar(level - 1, false, false);
        long long cs = diff.coefOf(ts);
        long long cd = diff.coefOf(td);
        if (cs != 0 && cd == -cs) {
          ++stats_.strongSiv;
          // cd*(td - ts) + constant == 0  =>  td - ts = -constant/cd.
          if (diff.constant % cd != 0) {
            ++stats_.strongSivDisproofs;
            result.answer = DepAnswer::NoDependence;
            return result;
          }
          long long dist = -diff.constant / cd;
          if (dist < 1) {  // '<' direction requires td > ts
            ++stats_.strongSivDisproofs;
            result.answer = DepAnswer::NoDependence;
            return result;
          }
          // Trip-count bound when constant.
          const LoopContext& lc =
              loops_[static_cast<std::size_t>(level - 1)];
          if (lc.step != 0 && lc.lo.isConstant() && lc.hi.isConstant()) {
            long long span = (lc.step > 0)
                                 ? (lc.hi.constant - lc.lo.constant) / lc.step
                                 : (lc.lo.constant - lc.hi.constant) /
                                       (-lc.step);
            if (span < 0) span = -1;  // zero-trip loop
            if (dist > span) {
              ++stats_.strongSivDisproofs;
              result.answer = DepAnswer::NoDependence;
              return result;
            }
          }
          if (distance && *distance != dist) {
            // Two dimensions demand different distances: impossible.
            ++stats_.strongSivDisproofs;
            result.answer = DepAnswer::NoDependence;
            return result;
          }
          distance = dist;
          continue;
        }
      }
      // --- index-array assertion tier ---
      if (indexArrayDisproof(diff, level)) {
        ++stats_.indexArrayDisproofs;
        result.answer = DepAnswer::NoDependence;
        return result;
      }
      allExact = false;
    }
    if (allExact && !constrained) {
      result.answer = DepAnswer::DependenceExact;
      result.distance = distance;
      return result;
    }
  } else {
    allExact = false;
  }

  // --- Fourier–Motzkin tier: joint system over all dimensions ---
  std::vector<Constraint> cs;
  for (const LinearExpr& diff : diffs) {
    cs.push_back(Constraint::eq0(diff));
  }
  if (constrained) {
    const LoopContext& lc = loops_[static_cast<std::size_t>(level)];
    if (lc.step != 0) {
      LinearExpr delta;
      delta.coef[tvar(level, false, false)] = 1;
      delta.coef[tvar(level, false, true)] = -1;
      switch (innerDir) {
        case Direction::Lt:
          cs.push_back(Constraint::gt0(delta));
          break;
        case Direction::Eq:
          cs.push_back(Constraint::eq0(delta));
          break;
        case Direction::Gt: {
          LinearExpr neg;
          neg.add(delta, -1);
          cs.push_back(Constraint::gt0(neg));
          break;
        }
        default:
          break;
      }
    }
  }
  if (finishFm(std::move(cs), level, &anyDegraded)) {
    result.answer = DepAnswer::NoDependence;
    return result;
  }

  ++stats_.assumed;
  result.answer = DepAnswer::DependenceAssumed;
  result.distance = distance;
  // A budget ran out somewhere on the way to "assumed": the edge might have
  // been disproved with more work. Tag it so the session can report it.
  if (anyDegraded) {
    result.degraded = true;
    ++stats_.degradedAnswers;
  }
  return result;
}

bool DependenceTester::finishFm(std::vector<Constraint> cs, int level,
                                bool* degraded) {
  std::set<std::string> seenTVars;
  auto addBounds = [&](const std::string& tv, int k) {
    if (seenTVars.count(tv)) return;
    seenTVars.insert(tv);
    const LoopContext& lc = loops_[static_cast<std::size_t>(k)];
    if (lc.step == 0) return;
    LinearExpr tNonNeg;
    tNonNeg.coef[tv] = 1;
    cs.push_back(Constraint::ge0(tNonNeg));
    // Value stays within [lo, hi]:  s>0: hi - lo - s*t >= 0;
    //                               s<0: lo + s*t - hi >= 0.
    LinearExpr bound;
    if (lc.step > 0) {
      bound = lc.hi;
      bound.add(lc.lo, -1);
      bound.coef[tv] -= lc.step;
      if (bound.coef[tv] == 0) bound.coef.erase(tv);
    } else {
      bound = lc.lo;
      bound.add(lc.hi, -1);
      bound.coef[tv] += lc.step;
      if (bound.coef[tv] == 0) bound.coef.erase(tv);
    }
    if (bound.affine) cs.push_back(Constraint::ge0(bound));
  };

  for (std::size_t k = 0; k < loops_.size(); ++k) {
    bool shared = (level == 0) || (static_cast<int>(k) < level - 1);
    if (shared) {
      addBounds(tvar(static_cast<int>(k), true, true), static_cast<int>(k));
    } else {
      addBounds(tvar(static_cast<int>(k), false, true), static_cast<int>(k));
      addBounds(tvar(static_cast<int>(k), false, false),
                static_cast<int>(k));
    }
  }
  // Carrier direction: destination iteration strictly later.
  if (level > 0) {
    const LoopContext& lc = loops_[static_cast<std::size_t>(level - 1)];
    if (lc.step != 0) {
      LinearExpr dir;
      dir.coef[tvar(level - 1, false, false)] = 1;
      dir.coef[tvar(level - 1, false, true)] = -1;
      cs.push_back(Constraint::gt0(dir));
    }
  }
  for (const Fact& f : facts_) {
    cs.push_back(f.strict ? Constraint::gt0(f.expr)
                          : Constraint::ge0(f.expr));
  }

  ++stats_.fmRuns;
  FourierMotzkin fm(std::move(cs),
                    FmBudget{budget_.fmMaxConstraints,
                             budget_.fmMaxEliminations});
  if (fm.degraded()) {
    ++stats_.fmDegraded;
    if (degraded) *degraded = true;
  }
  if (fm.infeasible()) {
    ++stats_.fmDisproofs;
    return true;
  }
  return false;
}

LevelResult DependenceTester::testSection(
    const Expr& ref, const std::map<std::string, LinearExpr>& refSub,
    const Section& section, const std::map<std::string, LinearExpr>& callSub,
    int level, bool callIsSrc) {
  ++stats_.testsRequested;
  LevelResult result;
  std::vector<Constraint> cs;
  std::size_t dims = std::min(ref.args.size(), section.dims.size());
  bool anyConstraint = false;
  for (std::size_t d = 0; d < dims; ++d) {
    if (!section.dims[d]) continue;  // whole extent: no constraint
    const SectionDim& sd = *section.dims[d];
    if (!sd.lo || !sd.hi) continue;
    LinearExpr fr = tagged(*ref.args[d], refSub, level, !callIsSrc);
    LinearExpr lo =
        tagForm(linearizeSubscript(*sd.lo, callSub, opaques_,
                                   budget_.maxSubscriptNodes),
                level, callIsSrc);
    LinearExpr hi =
        tagForm(linearizeSubscript(*sd.hi, callSub, opaques_,
                                   budget_.maxSubscriptNodes),
                level, callIsSrc);
    // Overlap requires lo <= ref-subscript <= hi.
    LinearExpr above = fr;
    above.add(lo, -1);
    cs.push_back(Constraint::ge0(std::move(above)));
    LinearExpr below = hi;
    below.add(fr, -1);
    cs.push_back(Constraint::ge0(std::move(below)));
    anyConstraint = true;
  }
  if (!anyConstraint) {
    ++stats_.assumed;
    return result;  // nothing to disprove with
  }
  MemoKey key;
  if (memo_) {
    std::vector<LinearExpr> forms;
    forms.reserve(cs.size());
    for (const Constraint& c : cs) forms.push_back(c.expr);
    key = makeKey('s', level, callIsSrc ? 1 : 0, forms);
    if (std::optional<LevelResult> hit = memo_->lookup(key, memoFloor_, memoGen_)) {
      ++stats_.memoHits;
      return *hit;
    }
    ++stats_.memoMisses;
  }
  bool fmDegraded = false;
  for (const Constraint& c : cs) fmDegraded |= c.expr.degraded;
  if (finishFm(std::move(cs), level, &fmDegraded)) {
    result.answer = DepAnswer::NoDependence;
  } else {
    ++stats_.assumed;
    if (fmDegraded) {
      result.degraded = true;
      ++stats_.degradedAnswers;
    }
  }
  if (memo_) memo_->insert(key, result, memoGen_);
  return result;
}

LevelResult DependenceTester::testSections(
    const Section& a, const std::map<std::string, LinearExpr>& aSub,
    const Section& b, const std::map<std::string, LinearExpr>& bSub,
    int level) {
  ++stats_.testsRequested;
  LevelResult result;
  std::vector<Constraint> cs;
  std::size_t dims = std::min(a.dims.size(), b.dims.size());
  bool anyConstraint = false;
  for (std::size_t d = 0; d < dims; ++d) {
    if (!a.dims[d] || !b.dims[d]) continue;
    const SectionDim& da = *a.dims[d];
    const SectionDim& db = *b.dims[d];
    if (!da.lo || !da.hi || !db.lo || !db.hi) continue;
    // Overlap in this dimension: a.lo <= x <= a.hi and b.lo <= x <= b.hi
    // for some x — i.e. a.lo <= b.hi and b.lo <= a.hi.
    const std::size_t cap = budget_.maxSubscriptNodes;
    LinearExpr alo = tagForm(linearizeSubscript(*da.lo, aSub, opaques_, cap),
                             level, true);
    LinearExpr ahi = tagForm(linearizeSubscript(*da.hi, aSub, opaques_, cap),
                             level, true);
    LinearExpr blo = tagForm(linearizeSubscript(*db.lo, bSub, opaques_, cap),
                             level, false);
    LinearExpr bhi = tagForm(linearizeSubscript(*db.hi, bSub, opaques_, cap),
                             level, false);
    LinearExpr c1 = bhi;
    c1.add(alo, -1);
    cs.push_back(Constraint::ge0(std::move(c1)));
    LinearExpr c2 = ahi;
    c2.add(blo, -1);
    cs.push_back(Constraint::ge0(std::move(c2)));
    anyConstraint = true;
  }
  if (!anyConstraint) {
    ++stats_.assumed;
    return result;
  }
  MemoKey key;
  if (memo_) {
    std::vector<LinearExpr> forms;
    forms.reserve(cs.size());
    for (const Constraint& c : cs) forms.push_back(c.expr);
    key = makeKey('b', level, 0, forms);
    if (std::optional<LevelResult> hit = memo_->lookup(key, memoFloor_, memoGen_)) {
      ++stats_.memoHits;
      return *hit;
    }
    ++stats_.memoMisses;
  }
  bool fmDegraded = false;
  for (const Constraint& c : cs) fmDegraded |= c.expr.degraded;
  if (finishFm(std::move(cs), level, &fmDegraded)) {
    result.answer = DepAnswer::NoDependence;
  } else {
    ++stats_.assumed;
    if (fmDegraded) {
      result.degraded = true;
      ++stats_.degradedAnswers;
    }
  }
  if (memo_) memo_->insert(key, result, memoGen_);
  return result;
}

}  // namespace ps::dep
