#include "dependence/dep.h"

namespace ps::dep {

const char* depTypeName(DepType t) {
  switch (t) {
    case DepType::True: return "True";
    case DepType::Anti: return "Anti";
    case DepType::Output: return "Output";
    case DepType::Input: return "Input";
    case DepType::Control: return "Control";
  }
  return "?";
}

const char* directionName(Direction d) {
  switch (d) {
    case Direction::Lt: return "<";
    case Direction::Eq: return "=";
    case Direction::Gt: return ">";
    case Direction::Le: return "<=";
    case Direction::Ge: return ">=";
    case Direction::Star: return "*";
  }
  return "?";
}

const char* depMarkName(DepMark m) {
  switch (m) {
    case DepMark::Proven: return "proven";
    case DepMark::Pending: return "pending";
    case DepMark::Accepted: return "accepted";
    case DepMark::Rejected: return "rejected";
  }
  return "?";
}

std::string DependenceVector::str() const {
  std::string out = "(";
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    if (i) out += ",";
    if (dirs[i] == Direction::Eq) {
      out += "=";  // equal levels print '=' (the paper's notation)
    } else if (dists.size() > i && dists[i].has_value()) {
      out += std::to_string(*dists[i]);
    } else {
      out += directionName(dirs[i]);
    }
  }
  out += ")";
  return out;
}

}  // namespace ps::dep
