#ifndef PS_DEPENDENCE_FM_H
#define PS_DEPENDENCE_FM_H

#include <string>
#include <vector>

#include "dataflow/linear.h"

namespace ps::dep {

/// A linear constraint over named integer variables: expr >= 0, expr > 0
/// (i.e. expr >= 1 for integers), or expr == 0.
struct Constraint {
  enum class Kind { Ge0, Gt0, Eq0 };
  dataflow::LinearExpr expr;
  Kind kind = Kind::Ge0;

  static Constraint ge0(dataflow::LinearExpr e) {
    return {std::move(e), Kind::Ge0};
  }
  static Constraint gt0(dataflow::LinearExpr e) {
    return {std::move(e), Kind::Gt0};
  }
  static Constraint eq0(dataflow::LinearExpr e) {
    return {std::move(e), Kind::Eq0};
  }

  [[nodiscard]] std::string str() const;
};

/// Explicit work limits for one elimination run. Pathological subscript
/// systems can square the constraint count per eliminated variable; rather
/// than timing out silently, the solver stops at the budget and reports the
/// run as degraded (callers must then assume a dependence — conservative).
struct FmBudget {
  std::size_t maxConstraints = 4000;
  int maxEliminations = 64;
};

/// Fourier–Motzkin elimination over rationals, with an integer GCD
/// refinement on equalities — the "exact" tier of the hierarchical
/// dependence test suite [Goff–Kennedy–Tseng 1991], in the spirit of the
/// Omega test the paper cites for deriving breaking conditions.
///
/// Soundness contract: `infeasible() == true` means there is definitely no
/// solution (hence no dependence); `false` means a solution may exist.
/// `degraded() == true` means the budget ran out before the system was
/// decided: the answer is "feasible" by fiat, never a wrong disproof.
class FourierMotzkin {
 public:
  explicit FourierMotzkin(std::vector<Constraint> constraints,
                          FmBudget budget = {});

  /// True when the system provably has no integer solution.
  [[nodiscard]] bool infeasible() const { return infeasible_; }

  /// True when the solver gave up at its budget (answer is conservative).
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Number of eliminations performed (ablation metric).
  [[nodiscard]] int eliminations() const { return eliminations_; }

 private:
  void solve(std::vector<Constraint> cs);

  FmBudget budget_;
  bool infeasible_ = false;
  bool degraded_ = false;
  int eliminations_ = 0;
};

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_FM_H
