#ifndef PS_DEPENDENCE_GRAPH_H
#define PS_DEPENDENCE_GRAPH_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cfg/control_dep.h"
#include "cfg/flow_graph.h"
#include "dataflow/privatize.h"
#include "dataflow/symbolic.h"
#include "dependence/dep.h"
#include "dependence/section.h"
#include "dependence/subscript.h"
#include "dependence/testsuite.h"
#include "ir/model.h"

namespace ps::support {
class TaskPool;
}

namespace ps::dep {

/// User-editable analysis context: assertions and variable classification
/// overrides sharpen the graph; PED rebuilds incrementally after each edit.
struct AnalysisContext {
  /// Linear facts from assertions and relations (shared symbol namespace
  /// with the subscript linearizer).
  std::vector<Fact> facts;
  IndexArrayFacts indexFacts;
  /// Per-loop variable classification overrides: loop DO-stmt id -> name ->
  /// force-private? (true = treat as private, false = force shared).
  std::map<fortran::StmtId, std::map<std::string, bool>> classificationOverrides;
  /// Interprocedural side-effect oracle; may be null.
  const SideEffectOracle* oracle = nullptr;
  /// Constants inherited from callers (interprocedural constant
  /// propagation).
  std::map<std::string, long long> inheritedConstants;
  /// Symbolic relations valid on entry (interprocedural symbolic
  /// propagation, e.g. arc3d's JM = JMAX - 1 established in an init
  /// routine).
  std::vector<dataflow::Relation> inheritedRelations;
  /// Track Input (read-read) dependences too.
  bool includeInputDeps = false;
  /// Ablation: disable the cheap-test tiers (A1).
  bool cheapTestsFirst = true;
  /// Ablation: pretend no symbolic relations/constants are available (A3).
  bool useSymbolicInfo = true;
  /// Ablation: disable scalar privatization (A3) — every scalar is shared.
  bool usePrivatization = true;

  /// Work limits for the dependence tiers, linearizer and symbolic analysis.
  /// Exhaustion degrades answers conservatively and is reported through
  /// TestStats / Dependence::degraded — never a silent timeout.
  AnalysisBudget budget;

  /// Cross-build memo table for dependence-test results, shared by the
  /// session across procedures and rebuilds — and, under the analysis
  /// server, across SESSIONS. Null = a transient per-build table
  /// (intra-build memoization only).
  std::shared_ptr<DepMemo> memo;
  /// Which DepMemo view this session reads through (0 = the default view a
  /// private memo registers at construction). Testers capture the view's
  /// floor, so one session's invalidation never evicts a neighbor's.
  DepMemo::ViewId memoView = 0;
  /// Ablation: disable memoization entirely (A2 baseline).
  bool useMemo = true;
  /// Use the per-nest incremental splice path in Workspace::reanalyze;
  /// false = rebuild the whole procedure graph on every edit (A2 baseline).
  bool incrementalUpdates = true;
  /// Optional sink accumulating per-tier/memo/splice counters across every
  /// build this context participates in (session-wide observability).
  TestStats* statsSink = nullptr;
  /// When set, the per-nest dependence-test batteries of a build fan out as
  /// tasks on this pool (each nest gets a private tester, opaque-term table
  /// and stats block; edges merge back in deterministic enumeration order,
  /// so the resulting graph is identical for any thread count). Null keeps
  /// the build fully sequential.
  support::TaskPool* pool = nullptr;
  /// Skip the Program::assignIds() call in Workspace::reanalyze. Set only
  /// by the parallel driver, which assigns ids once up front because the
  /// Program is shared across concurrent per-procedure tasks.
  bool idsPreassigned = false;
};

/// The dependence graph of one procedure, as PED computes and displays it.
class DependenceGraph {
 public:
  /// Run all supporting analyses and build the graph.
  static DependenceGraph build(ir::ProcedureModel& model,
                               const AnalysisContext& ctx = {});

  /// Incremental rebuild after an edit: re-runs the dependence-test battery
  /// only for reference pairs whose test inputs (statement text, enclosing
  /// nest, loop bounds, substitution maps, facts, classification overrides)
  /// changed since `previous` was built, and splices the previous graph's
  /// edges for every unchanged pair. The cleanliness checks compare the
  /// actual test inputs, so the result is edge-for-edge identical to a
  /// from-scratch build(). Scalar, control and call-site dependences are
  /// always recomputed (they are cheap and depend on whole-procedure
  /// dataflow). `previous` must describe the same procedure; its AST
  /// statement ids are used to locate surviving statements.
  static DependenceGraph update(ir::ProcedureModel& model,
                                const AnalysisContext& ctx,
                                const DependenceGraph& previous);

  [[nodiscard]] const std::vector<Dependence>& all() const { return deps_; }
  [[nodiscard]] std::vector<Dependence>& allMutable() { return deps_; }

  /// Dependences whose endpoints both lie in the given loop (the dependence
  /// pane's progressive disclosure: "when the user expresses interest in a
  /// particular loop ... the selected loop's dependences immediately
  /// appear").
  [[nodiscard]] std::vector<const Dependence*> forLoop(
      const ir::Loop& loop) const;

  /// Dependences that inhibit parallelization of the loop: active
  /// loop-carried edges whose carrier is this loop.
  [[nodiscard]] std::vector<const Dependence*> parallelismInhibitors(
      const ir::Loop& loop) const;

  /// True when the loop may run its iterations in parallel under the
  /// current marking/classification.
  [[nodiscard]] bool parallelizable(const ir::Loop& loop) const;

  [[nodiscard]] Dependence* byId(std::uint32_t id);
  [[nodiscard]] const TestStats& stats() const { return stats_; }

  /// The statistics of supporting analyses, for Table 3 style reporting.
  struct Summary {
    int totalDeps = 0;
    int provenDeps = 0;
    int pendingDeps = 0;
    int carriedDeps = 0;
    int controlDeps = 0;
    int interprocDeps = 0;
    /// Edges assumed only because an analysis budget ran out.
    int degradedDeps = 0;
  };
  [[nodiscard]] Summary summary() const;

  /// Adopt a deserialized edge set (persistent-program-database warm
  /// start). The caller has already proven, via the store's content-hash
  /// key, that `deps` came from an identical build over an identical
  /// procedure and context. Stats stay zero (no tests ran here) and the
  /// incremental state stays empty, so the next update() takes the
  /// full-rebuild path rather than trusting unverifiable splice
  /// signatures.
  static DependenceGraph restore(ir::ProcedureModel& model,
                                 std::vector<Dependence> deps,
                                 std::uint32_t nextEdgeId);

  /// The id the next inserted edge would receive (persisted so a restored
  /// graph keeps minting unique ids).
  [[nodiscard]] std::uint32_t nextEdgeId() const { return nextId_; }

 private:
  /// Per-statement/per-loop input fingerprints recorded by a build so the
  /// next update() can prove which reference pairs are unaffected by an
  /// edit. Empty when the build ran with incrementalUpdates off.
  struct IncrementalState {
    /// Context-wide inputs: facts, index-array facts, tester flags.
    std::string ctxSig;
    /// Per ref-bearing statement: printed text + enclosing DO chain +
    /// substitution map used for its subscripts.
    std::map<fortran::StmtId, std::string> stmtSig;
    /// Per DO statement: loop context (bounds/step/iv), classification
    /// overrides, and (for nest roots) the iteration-variant scalar set.
    std::map<fortran::StmtId, std::string> loopSig;
    /// Pre-order position, for loop-independent orientation checks.
    std::map<fortran::StmtId, int> position;
  };

  static DependenceGraph buildImpl(ir::ProcedureModel& model,
                                   const AnalysisContext& ctx,
                                   const DependenceGraph* previous);

  std::vector<Dependence> deps_;
  ir::ProcedureModel* model_ = nullptr;
  TestStats stats_;
  IncrementalState incr_;
  std::uint32_t nextId_ = 1;
};

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_GRAPH_H
