#ifndef PS_DEPENDENCE_PERSIST_H
#define PS_DEPENDENCE_PERSIST_H

// (De)serialization of dependence-analysis results for the persistent
// program database: expression trees (section bounds), per-procedure
// dependence-graph slices, and DepMemo snapshots.
//
// Graph slices store edge endpoints as pre-order statement ordinals and
// per-statement expression indices (ir/stable_id.h), never as StmtIds —
// ids are reassigned on every parse. Rebinding is only attempted after the
// store's content-hash key has already proven the procedure's pretty-
// printed text unchanged, which makes the ordinal spaces of the saved and
// the freshly parsed AST identical. Every readGraphSlice is nevertheless
// fully validated (ordinal ranges, expression indices, enum domains,
// direction-vector/level agreement): a payload that passes the checksum
// layer but violates any structural invariant is rejected wholesale so a
// hash collision can never seat a foreign edge in a live graph.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dependence/dep.h"
#include "dependence/graph.h"
#include "dependence/section.h"
#include "dependence/testsuite.h"
#include "fortran/ast.h"
#include "pdb/serial.h"

namespace ps::dep {

// --- Expression trees (used by summary sections) --------------------------

void writeExpr(pdb::Writer& w, const fortran::Expr* e);
/// Null on malformed input; never throws. Depth- and node-capped so a
/// corrupt payload cannot trigger unbounded recursion.
[[nodiscard]] fortran::ExprPtr readExpr(pdb::Reader& r);

void writeSection(pdb::Writer& w, const Section& s);
[[nodiscard]] bool readSection(pdb::Reader& r, Section* out);

// --- Dependence-graph slices ----------------------------------------------

/// Serialize every edge of `g` with endpoints rebased onto `proc`'s stable
/// ordinals. False when an edge references a statement or expression that
/// cannot be located (never expected for a graph built from `proc`; the
/// caller then simply skips persisting this procedure).
[[nodiscard]] bool writeGraphSlice(pdb::Writer& w,
                                   const fortran::Procedure& proc,
                                   const DependenceGraph& g);

struct RestoredSlice {
  std::vector<Dependence> deps;
  std::uint32_t nextEdgeId = 1;
};

/// Rebind a serialized slice against the freshly parsed `proc`. False on
/// any structural violation (the quarantine path).
[[nodiscard]] bool readGraphSlice(pdb::Reader& r,
                                  const fortran::Procedure& proc,
                                  RestoredSlice* out);

// --- DepMemo snapshots ----------------------------------------------------

void writeMemoEntries(
    pdb::Writer& w,
    const std::vector<std::pair<std::string, LevelResult>>& entries);
[[nodiscard]] bool readMemoEntries(
    pdb::Reader& r, std::vector<std::pair<std::string, LevelResult>>* out);

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_PERSIST_H
