#ifndef PS_DEPENDENCE_SECTION_H
#define PS_DEPENDENCE_SECTION_H

#include <optional>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::dep {

/// One dimension of a bounded regular section [Havlak–Kennedy]: an inclusive
/// range of subscript values as caller-scope expressions (actual arguments
/// substituted for formals by the interprocedural translator).
struct SectionDim {
  fortran::ExprPtr lo;
  fortran::ExprPtr hi;

  [[nodiscard]] SectionDim clone() const {
    SectionDim d;
    if (lo) d.lo = lo->clone();
    if (hi) d.hi = hi->clone();
    return d;
  }
  [[nodiscard]] std::string str() const;
};

/// A bounded regular section over an array. A disengaged dimension means
/// "whole extent / unknown".
struct Section {
  std::string array;
  std::vector<std::optional<SectionDim>> dims;

  [[nodiscard]] Section clone() const {
    Section s;
    s.array = array;
    for (const auto& d : dims) {
      if (d) {
        s.dims.push_back(d->clone());
      } else {
        s.dims.emplace_back();
      }
    }
    return s;
  }
  [[nodiscard]] std::string str() const;
};

/// The effect of one call site on one caller-visible variable, produced by
/// interprocedural MOD/REF/KILL + regular-section analysis.
struct CallEffect {
  std::string var;
  bool isArray = false;
  bool mayRead = false;
  bool mayWrite = false;
  /// Every-path overwrite of the section (flow-sensitive KILL analysis).
  bool kills = false;
  /// The callee may read the variable's incoming value (a read reachable
  /// from entry before any kill) — interprocedural upward-exposed use.
  bool exposedRead = false;
  /// When known, the accessed portion of an array, in caller terms.
  std::optional<Section> section;

  [[nodiscard]] CallEffect clone() const {
    CallEffect e;
    e.var = var;
    e.isArray = isArray;
    e.mayRead = mayRead;
    e.mayWrite = mayWrite;
    e.kills = kills;
    e.exposedRead = exposedRead;
    if (section) e.section = section->clone();
    return e;
  }
};

/// Interface the dependence-graph builder uses to ask about procedure
/// calls. The interproc module provides the real implementation; a null
/// oracle forces worst-case assumptions (every call may read and write all
/// of its actuals and all COMMON storage) — exactly the baseline Table 3's
/// "sections" row improves on.
class SideEffectOracle {
 public:
  virtual ~SideEffectOracle() = default;
  /// True when summaries exist for this callee.
  [[nodiscard]] virtual bool knowsCallee(const std::string& name) const = 0;
  /// Effects of the named call in this statement, in caller terms.
  [[nodiscard]] virtual std::vector<CallEffect> effectsOfCall(
      const fortran::Stmt& stmt, const std::string& callee) const = 0;
};

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_SECTION_H
