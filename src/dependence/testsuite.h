#ifndef PS_DEPENDENCE_TESTSUITE_H
#define PS_DEPENDENCE_TESTSUITE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataflow/linear.h"
#include "dependence/dep.h"
#include "dependence/fm.h"
#include "dependence/section.h"
#include "dependence/subscript.h"
#include "fortran/ast.h"

namespace ps::dep {

/// One loop of the common nest enclosing a reference pair, outermost first.
struct LoopContext {
  std::string iv;
  dataflow::LinearExpr lo;  // linearized lower bound (loop-entry values)
  dataflow::LinearExpr hi;  // linearized upper bound
  long long step = 1;       // 0 = unknown (non-constant step)
  fortran::StmtId doStmt = fortran::kInvalidStmt;
};

/// A linear fact known to hold: expr >= 0 (or > 0 when strict). Sources:
/// loop bounds of enclosing non-common loops, symbolic relations, and user
/// RELATION / RANGE assertions.
struct Fact {
  dataflow::LinearExpr expr;
  bool strict = false;
};

/// Assertions about index arrays (the paper's §3.3 / §4.3 obstacles).
struct IndexArrayFacts {
  /// PERMUTATION(A): A maps distinct arguments to distinct values.
  std::set<std::string> permutation;
  /// STRIDED(A, k): A is monotone increasing with A(i+1) >= A(i) + k.
  std::map<std::string, long long> strided;
  /// SEPARATED(A, B, k): min over B's values minus max over A's >= k.
  std::map<std::pair<std::string, std::string>, long long> separated;

  [[nodiscard]] bool empty() const {
    return permutation.empty() && strided.empty() && separated.empty();
  }
};

/// A pair of array references (same array) to test for dependence, with the
/// substitution maps of their statements.
struct RefPair {
  const fortran::Expr* src = nullptr;
  const fortran::Expr* dst = nullptr;
  const std::map<std::string, dataflow::LinearExpr>* srcSub = nullptr;
  const std::map<std::string, dataflow::LinearExpr>* dstSub = nullptr;
};

enum class DepAnswer {
  NoDependence,       // proved independent
  DependenceExact,    // dependence exists and the test was exact (-> proven)
  DependenceAssumed,  // could not disprove (-> pending)
};

struct LevelResult {
  DepAnswer answer = DepAnswer::DependenceAssumed;
  /// Iteration distance at the carrier level when exactly known.
  std::optional<long long> distance;
  /// True when an analysis budget ran out while answering this query and the
  /// answer was coarsened to DependenceAssumed instead of being decided.
  bool degraded = false;
};

/// Explicit work limits for one dependence-analysis build. Every bound, when
/// hit, coarsens the answer conservatively (assume dependence / opaque term
/// / fewer symbolic relations) and is reported through TestStats — the
/// analysis never silently times out and never returns a wrong disproof.
struct AnalysisBudget {
  /// Fourier–Motzkin constraint-blowup and elimination caps.
  std::size_t fmMaxConstraints = 4000;
  int fmMaxEliminations = 64;
  /// Subscript linearizer node cap (0 = unlimited).
  std::size_t maxSubscriptNodes = 512;
  /// Cap on symbolic relations propagated per procedure (0 = unlimited).
  std::size_t maxSymbolicRelations = 4096;

  [[nodiscard]] bool operator==(const AnalysisBudget& o) const {
    return fmMaxConstraints == o.fmMaxConstraints &&
           fmMaxEliminations == o.fmMaxEliminations &&
           maxSubscriptNodes == o.maxSubscriptNodes &&
           maxSymbolicRelations == o.maxSymbolicRelations;
  }
};

/// Counters for the hierarchical suite (ablation benches A1/A2/A3) plus the
/// memoization and incremental-splice observability counters.
struct TestStats {
  long long zivDisproofs = 0;
  long long zivExact = 0;
  long long strongSiv = 0;
  long long strongSivDisproofs = 0;
  long long indexArrayDisproofs = 0;
  long long fmRuns = 0;
  long long fmDisproofs = 0;
  long long assumed = 0;

  /// Fourier–Motzkin runs that hit their constraint/elimination budget.
  long long fmDegraded = 0;
  /// Queries whose final answer was coarsened by some exhausted budget.
  long long degradedAnswers = 0;
  /// Subscripts collapsed to a single opaque term by the node budget.
  long long linearizeDegraded = 0;
  /// Symbolic relations dropped by the per-procedure relation cap.
  long long symbolicTruncated = 0;

  /// Dependence-test queries issued (test/testSection/testSections calls).
  long long testsRequested = 0;
  /// Queries answered from the memo table without running any tier.
  long long memoHits = 0;
  /// Queries that ran the suite and populated the memo table.
  long long memoMisses = 0;

  /// Reference pairs whose test battery actually ran this build.
  long long pairsTested = 0;
  /// Fixed-size batches the dirty pairs were partitioned into. Each batch is
  /// an independently schedulable unit (private tester/opaque copies), so
  /// this is the array-pair phase's available parallelism for one build.
  long long pairBatches = 0;
  /// Reference pairs skipped by the incremental update (inputs unchanged).
  long long pairsSpliced = 0;
  /// Edges copied over from the previous graph by the incremental update.
  long long edgesSpliced = 0;
  /// Edges produced by running tests in this build.
  long long edgesRebuilt = 0;

  /// Wall time per phase, in seconds (dataflow setup, array-pair testing,
  /// scalar/control/call-site sections, whole build).
  double dataflowSeconds = 0;
  double pairSeconds = 0;
  double otherSeconds = 0;
  double totalSeconds = 0;

  /// Tests that actually executed (requested minus memo hits).
  [[nodiscard]] long long testsRun() const {
    return testsRequested - memoHits;
  }

  void accumulate(const TestStats& o);
};

/// A memo key with its 64-bit content hash (support::xxh64) computed ONCE
/// at construction. Shard selection, open-addressing probe starts, and
/// equality prefiltering all reuse the cached hash, so the table never
/// re-runs std::hash<std::string> over the (often hundreds of bytes long)
/// canonical key text per lookup.
struct MemoKey {
  std::string text;
  std::uint64_t hash = 0;

  MemoKey() = default;
  explicit MemoKey(std::string t);
};

/// Cross-build memo table for dependence-test results. The key is a
/// canonical form of (nest shape, facts, budget, level, direction
/// constraint, subscript-difference forms), so structurally identical pairs
/// like A(I,J) vs A(I,J-1) across statements — and across rebuilds — are
/// answered without re-running the tier suite. Opaque terms are
/// content-addressed ("@" + printed expression), so the key is a complete
/// rendering of the test's inputs: a key match implies the cached result is
/// what recomputation would produce, which is what makes sharing one memo
/// across SESSIONS sound.
///
/// Concurrency: the key's cached hash picks one of kShards shards. Two
/// backends are compiled, selected at construction (PS_LOCKFREE, default
/// on):
///  - lock-free (default): each shard is an open-addressing slot array of
///    tagged record pointers. A lookup is an epoch-pinned probe: load the
///    shard's array pointer, linear-probe by the cached hash, acquire-load
///    the record's entry box — no lock anywhere. An insert CAS-claims the
///    first empty slot (or atomically swaps a new entry box into an
///    existing record). Growth seals the old array (CASing every empty
///    slot to a sentinel so no claim can land), migrates the stable record
///    pointers into a doubled array, publishes it, and retires the old
///    array through epoch-based reclamation — concurrent readers finish
///    their probes on the superseded array, which stays valid until every
///    pinned reader is gone. Entries are never deleted (invalidation is
///    lazy, via the epoch windows below), so there are no tombstones.
///  - mutex (PS_LOCKFREE=0): the original independently-locked
///    unordered_map stripes, kept as the A/B baseline for bench_contention.
///
/// Invalidation is per-VIEW. A view is one client's (one session's) window
/// onto the shared table: every entry carries the global epoch captured by
/// its inserting tester at construction, and each view has a floor epoch.
/// A tester captures (floor of its view, current epoch) once, at
/// construction; a lookup hits only entries stamped inside [floor, epoch].
///   - invalidateView(v) bumps the global epoch and raises ONLY v's floor,
///     so one session's invalidation never evicts a neighbor view's valid
///     entries — the multi-session server's shared warm memo depends on
///     this.
///   - The capture-once protocol survives per view: an insert from a tester
///     constructed before the bump carries a stamp below the new floor and
///     is simply never returned to that view's post-bump readers; the upper
///     bound keeps a pre-bump tester from adopting entries inserted after
///     its own facts were snapshot (for a lone view this degenerates to the
///     original exact-generation-match contract).
class DepMemo {
 public:
  using ViewId = std::uint32_t;

  /// Construction registers view 0 — the default view standalone sessions
  /// (and the existing single-session tests) use. `lockfree` overrides the
  /// PS_LOCKFREE default (bench_contention A/Bs both backends in-process).
  explicit DepMemo(std::optional<bool> lockfree = std::nullopt);
  ~DepMemo();
  DepMemo(const DepMemo&) = delete;
  DepMemo& operator=(const DepMemo&) = delete;

  [[nodiscard]] bool lockfree() const { return lockfree_; }

  /// Register a new view with floor 0: it sees every entry the table has
  /// accumulated so far (the whole shared warm state).
  [[nodiscard]] ViewId createView();
  /// Invalidate every entry AS SEEN BY `v` (lazily, via the floor): bump
  /// the epoch and raise v's floor to it. Other views are untouched.
  void invalidateView(ViewId v);
  /// Invalidate every entry for every view (the standalone convenience).
  void invalidateAll();
  [[nodiscard]] std::uint64_t floorOf(ViewId v) const;

  /// Returns a copy of the cached result for `key` if its stamp lies in
  /// [floor, cap]; nullopt on miss. Returned by value: a pointer into the
  /// table would not survive concurrent rehash/retirement.
  [[nodiscard]] std::optional<LevelResult> lookup(const MemoKey& key,
                                                  std::uint64_t floor,
                                                  std::uint64_t cap) const;
  [[nodiscard]] std::optional<LevelResult> lookup(const std::string& key,
                                                  std::uint64_t floor,
                                                  std::uint64_t cap) const {
    return lookup(MemoKey(key), floor, cap);
  }
  /// Single-generation form (floor == cap): the original exact-match
  /// contract, used by clients that capture one generation.
  [[nodiscard]] std::optional<LevelResult> lookup(const MemoKey& key,
                                                  std::uint64_t gen) const {
    return lookup(key, gen, gen);
  }
  [[nodiscard]] std::optional<LevelResult> lookup(const std::string& key,
                                                  std::uint64_t gen) const {
    return lookup(MemoKey(key), gen, gen);
  }
  /// Record `result` stamped with `gen` (the epoch the inserting tester
  /// captured at construction, NOT the current one).
  void insert(const MemoKey& key, const LevelResult& result,
              std::uint64_t gen);
  void insert(const std::string& key, const LevelResult& result,
              std::uint64_t gen) {
    insert(MemoKey(key), result, gen);
  }
  /// The current epoch. Monotone: any view's invalidation advances it.
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] static constexpr std::size_t shardCount() { return kShards; }

  /// Every entry valid for `view` (stamp >= its floor), sorted by key
  /// (deterministic bytes for the persistent program database's memo
  /// record).
  [[nodiscard]] std::vector<std::pair<std::string, LevelResult>>
  exportEntries(ViewId view = 0) const;
  /// Seed entries at the current epoch (warm start): visible to every view.
  /// The caller must have verified — via the store's fact/budget digest —
  /// that the entries were computed under an identical fact base.
  void preWarm(
      const std::vector<std::pair<std::string, LevelResult>>& entries);

  /// Slot-claim CASes lost to a racing writer plus respins on a sealed
  /// (mid-growth) array — the lock-free backend's contention measure,
  /// reported by bench_contention. Always 0 on the mutex backend.
  [[nodiscard]] std::uint64_t contentionRetries() const {
    return casRetries_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kInitialSlots = 64;

  struct Entry {
    LevelResult result;
    std::uint64_t gen = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> table;
  };

  /// Lock-free backend: a record binds one key to an atomically swappable
  /// entry box. Records are allocated once and stay put for the memo's
  /// lifetime (growth migrates pointers, never copies records), so readers
  /// may hold them without reclamation concerns; only boxes and slot
  /// arrays are retired through the epoch domain.
  struct LfBox {
    LevelResult result;
    std::uint64_t gen = 0;
  };
  struct LfRecord {
    std::uint64_t hash = 0;
    std::string key;
    std::atomic<LfBox*> box{nullptr};
  };
  struct LfTable {
    std::size_t mask = 0;  // capacity - 1, capacity a power of two
    std::unique_ptr<std::atomic<LfRecord*>[]> slots;
  };
  struct LfShard {
    std::atomic<LfTable*> table{nullptr};
    std::atomic<std::size_t> count{0};
    /// Serializes growth only; never taken by lookup or by an insert that
    /// finds room. A writer that meets a sealed slot spins on `table`
    /// until the grower publishes the doubled array.
    std::mutex growMu;
  };

  [[nodiscard]] Shard& shardFor(const MemoKey& key) const {
    return shards_[key.hash % kShards];
  }

  [[nodiscard]] std::optional<LevelResult> lookupLf(const MemoKey& key,
                                                    std::uint64_t floor,
                                                    std::uint64_t cap) const;
  void insertLf(const MemoKey& key, const LevelResult& result,
                std::uint64_t gen);
  /// Doubles (or creates) the shard's slot array if it still equals `from`.
  void growShard(LfShard& sh, const LfTable* from);

  const bool lockfree_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::array<LfShard, kShards> lfShards_;
  mutable std::atomic<std::uint64_t> casRetries_{0};
  std::atomic<std::uint64_t> generation_{0};
  /// Per-view floors; guarded by viewMu_ (reads happen once per tester
  /// construction, not on the lookup hot path).
  mutable std::mutex viewMu_;
  std::vector<std::uint64_t> floors_;
};

/// Append a canonical rendering of a linear form to a memo key.
void appendLinearKey(std::string& out, const dataflow::LinearExpr& e);

/// The hierarchical dependence tester: "a hierarchical suite of tests is
/// used, starting with inexpensive tests, to prove or disprove that a
/// dependence exists" [19]. `cheapFirst=false` skips the ZIV/SIV tiers and
/// goes straight to Fourier–Motzkin (ablation A1).
class DependenceTester {
 public:
  DependenceTester(std::vector<LoopContext> commonLoops,
                   std::vector<Fact> facts, IndexArrayFacts indexFacts,
                   OpaqueTable& opaques,
                   std::set<std::string> variantVars = {},
                   bool cheapFirst = true, DepMemo* memo = nullptr,
                   AnalysisBudget budget = {},
                   DepMemo::ViewId memoView = 0);

  /// Test for a dependence src -> dst carried at `level` (1-based index into
  /// the common nest; 0 = loop-independent, i.e. same iteration of every
  /// common loop). `innerDir` optionally constrains the direction at the
  /// next-deeper level (level+1), for direction-vector refinement.
  [[nodiscard]] LevelResult test(const RefPair& pair, int level,
                                 Direction innerDir = Direction::Star);

  /// Test a dependence between an array reference and a call-site section
  /// access (interprocedural side-effect endpoint). NoDependence means the
  /// reference provably lies outside the section under the iteration
  /// constraints.
  [[nodiscard]] LevelResult testSection(
      const fortran::Expr& ref,
      const std::map<std::string, dataflow::LinearExpr>& refSub,
      const Section& section,
      const std::map<std::string, dataflow::LinearExpr>& callSub, int level,
      bool callIsSrc);

  /// Overlap test between two call-site sections (call-call dependence).
  [[nodiscard]] LevelResult testSections(
      const Section& a,
      const std::map<std::string, dataflow::LinearExpr>& aSub,
      const Section& b,
      const std::map<std::string, dataflow::LinearExpr>& bSub, int level);

  [[nodiscard]] const TestStats& stats() const { return stats_; }
  [[nodiscard]] int numCommonLoops() const {
    return static_cast<int>(loops_.size());
  }

 private:
  /// Linearize one side of a dimension with iteration tagging for `level`.
  dataflow::LinearExpr tagged(
      const fortran::Expr& e,
      const std::map<std::string, dataflow::LinearExpr>& sub, int level,
      bool isSrc);
  /// Rename iteration-variant symbols in a linear form.
  dataflow::LinearExpr tagForm(const dataflow::LinearExpr& f, int level,
                               bool isSrc) const;
  [[nodiscard]] bool variantAtOrBelow(const std::string& var,
                                      int level) const;

  bool indexArrayDisproof(const dataflow::LinearExpr& diff, int level) const;

  /// The tier suite proper, after the subscript differences are formed.
  LevelResult runSuite(const std::vector<dataflow::LinearExpr>& diffs,
                       int level, Direction innerDir);

  /// Append iteration-variable bounds, carrier direction and facts, then run
  /// Fourier–Motzkin; returns true when the system is infeasible. When the
  /// solver hit its budget, `*degraded` is set (never cleared).
  bool finishFm(std::vector<Constraint> cs, int level,
                bool* degraded = nullptr);

  /// Canonical memo key: nest/facts prefix + query tag + linear forms. The
  /// key's 64-bit hash is computed here, once, and rides along into shard
  /// and slot selection.
  [[nodiscard]] MemoKey makeKey(
      char tag, int level, int variant,
      const std::vector<dataflow::LinearExpr>& forms) const;

  std::vector<LoopContext> loops_;
  std::vector<Fact> facts_;
  IndexArrayFacts indexFacts_;
  OpaqueTable& opaques_;
  std::set<std::string> variantVars_;
  bool cheapFirst_;
  DepMemo* memo_ = nullptr;
  std::uint64_t memoGen_ = 0;    // epoch captured when facts were snapshot;
                                 // inserts stamp it, lookups cap at it
  std::uint64_t memoFloor_ = 0;  // view floor captured alongside: lookups
                                 // reject entries the view invalidated
  AnalysisBudget budget_;
  std::string keyPrefix_;  // canonical nest shape + facts, set when memoized
  TestStats stats_;
};

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_TESTSUITE_H
