#ifndef PS_DEPENDENCE_DEP_H
#define PS_DEPENDENCE_DEP_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::dep {

/// Dependence classes, as displayed in PED's TYPE column.
enum class DepType {
  True,     // flow: write then read
  Anti,     // read then write
  Output,   // write then write
  Input,    // read then read (tracked for locality work, never inhibits)
  Control,  // control dependence
};

const char* depTypeName(DepType t);

/// Direction of a dependence with respect to one loop.
enum class Direction : std::uint8_t {
  Lt,    // '<' : carried forward
  Eq,    // '='
  Gt,    // '>'
  Le,    // '<='
  Ge,    // '>='
  Star,  // '*' : unknown
};

const char* directionName(Direction d);

/// Per-loop direction/distance information for a dependence.
struct DependenceVector {
  std::vector<Direction> dirs;
  /// Known constant distance per level (nullopt = unknown).
  std::vector<std::optional<long long>> dists;

  [[nodiscard]] std::string str() const;
};

/// PED's dependence marking: "The system marks each dependence as either
/// proven, pending, accepted or rejected."
enum class DepMark {
  Proven,    // an exact dependence test proved it exists
  Pending,   // assumed because analysis could not prove otherwise
  Accepted,  // user confirmed a pending dependence
  Rejected,  // user asserted it does not exist (disregarded, but kept)
};

const char* depMarkName(DepMark m);

/// Which builder section produced an edge. The incremental update splices
/// only array-pair edges (the expensive, memoizable section); scalar,
/// control and call-site edges are always recomputed.
enum class DepOrigin : std::uint8_t {
  ArrayPair,
  Scalar,
  Control,
  CallSite,
};

/// One dependence edge.
struct Dependence {
  std::uint32_t id = 0;
  DepType type = DepType::True;
  fortran::StmtId srcStmt = fortran::kInvalidStmt;
  fortran::StmtId dstStmt = fortran::kInvalidStmt;
  /// The source/sink reference expressions (null for control deps and
  /// whole-variable call summaries).
  const fortran::Expr* srcRef = nullptr;
  const fortran::Expr* dstRef = nullptr;
  std::string variable;  // empty for control deps

  /// Carrier: 0 = loop-independent, k = carried by the k-th loop of the
  /// common nest (1 = outermost common loop).
  int level = 0;
  /// The DO statement of the carrier loop (invalid when loop-independent).
  fortran::StmtId carrierLoop = fortran::kInvalidStmt;
  /// The innermost loop containing both endpoints (invalid if none).
  fortran::StmtId commonLoop = fortran::kInvalidStmt;

  DependenceVector vector;
  DepMark mark = DepMark::Pending;
  DepOrigin origin = DepOrigin::ArrayPair;
  std::string reason;  // editable annotation, as in PED's REASON column
  /// Dynamic-validation evidence: how a trace or relative execution
  /// confirmed, refuted or failed to check this edge ("trace: witness …",
  /// "trace: no witness in N events", "unvalidated: …"). Empty until a
  /// validation pass touches the edge; persisted with the graph slice so
  /// evidence survives the program database round trip.
  std::string evidence;

  /// True when one endpoint summarizes accesses inside a callee
  /// (interprocedural side-effect dependence).
  bool interprocedural = false;

  /// True when an analysis budget ran out while testing this pair: the edge
  /// is assumed, not proven, and might disappear with a larger budget. The
  /// session surfaces these through degradationReport().
  bool degraded = false;

  [[nodiscard]] bool loopCarried() const { return level > 0; }
  /// A dependence the parallelizer must honor: rejected edges are
  /// disregarded ("they remain in the system so the user can reconsider").
  [[nodiscard]] bool active() const { return mark != DepMark::Rejected; }
  /// Inhibits parallelization of its carrier loop.
  [[nodiscard]] bool inhibitsParallelism() const {
    return active() && loopCarried() && type != DepType::Input;
  }
};

}  // namespace ps::dep

#endif  // PS_DEPENDENCE_DEP_H
