#include "dependence/fm.h"

#include <numeric>
#include <set>

#include "support/taskpool.h"

namespace ps::dep {

using dataflow::LinearExpr;

namespace {

/// FM elimination churns O(lower*upper) combined constraints per variable;
/// backing the scratch vectors with the calling thread's arena keeps that
/// churn off the global heap, which is what lets parallel per-nest testers
/// scale (the element LinearExprs still own their coefficient maps — the
/// arena absorbs the vector buffers, the dominant reallocation traffic).
using ScratchVec =
    std::vector<LinearExpr, support::ArenaAllocator<LinearExpr>>;

/// Rewinds the thread arena to the solve-entry mark once the scratch
/// vectors (declared after it) have been destroyed.
struct ArenaScope {
  support::Arena& arena = support::threadArena();
  support::Arena::Mark mark = arena.mark();
  ~ArenaScope() { arena.rewind(mark); }
};

}  // namespace

std::string Constraint::str() const {
  const char* rel = kind == Kind::Ge0 ? " >= 0"
                    : kind == Kind::Gt0 ? " > 0"
                                        : " == 0";
  return expr.str() + rel;
}

FourierMotzkin::FourierMotzkin(std::vector<Constraint> constraints,
                               FmBudget budget)
    : budget_(budget) {
  solve(std::move(constraints));
}

namespace {

long long gcdAll(const LinearExpr& e) {
  long long g = 0;
  for (const auto& [v, c] : e.coef) {
    (void)v;
    g = std::gcd(g, c < 0 ? -c : c);
  }
  return g;
}

}  // namespace

void FourierMotzkin::solve(std::vector<Constraint> cs) {
  ArenaScope scope;
  support::ArenaAllocator<LinearExpr> alloc(&scope.arena);
  // Normalize: integer Gt0 -> Ge0 with constant-1; Eq0 -> GCD check + two
  // Ge0 constraints.
  ScratchVec ge(alloc);  // each means expr >= 0
  for (auto& c : cs) {
    if (!c.expr.affine) continue;  // cannot reason about it: drop (sound)
    switch (c.kind) {
      case Constraint::Kind::Gt0: {
        LinearExpr e = c.expr;
        e.constant -= 1;
        ge.push_back(std::move(e));
        break;
      }
      case Constraint::Kind::Ge0:
        ge.push_back(c.expr);
        break;
      case Constraint::Kind::Eq0: {
        long long g = gcdAll(c.expr);
        if (g == 0) {
          // No variables: constant must be exactly 0.
          if (c.expr.constant != 0) {
            infeasible_ = true;
            return;
          }
          break;
        }
        if (c.expr.constant % g != 0) {
          // GCD test: sum of coef*x cannot produce -constant.
          infeasible_ = true;
          return;
        }
        ge.push_back(c.expr);
        LinearExpr neg;
        neg.add(c.expr, -1);
        ge.push_back(std::move(neg));
        break;
      }
    }
  }

  // Collect variables.
  std::set<std::string> vars;
  for (const auto& e : ge) {
    for (const auto& [v, c] : e.coef) {
      (void)c;
      vars.insert(v);
    }
  }

  for (const std::string& v : vars) {
    if (eliminations_ >= budget_.maxEliminations) {
      // Budget exhausted before the system was decided: assume feasible
      // (sound) and tell the caller the answer is conservative.
      degraded_ = true;
      return;
    }
    ScratchVec lower(alloc), upper(alloc), rest(alloc);
    for (const auto& e : ge) {
      long long a = e.coefOf(v);
      if (a > 0) {
        lower.push_back(e);
      } else if (a < 0) {
        upper.push_back(e);
      } else {
        rest.push_back(e);
      }
    }
    ++eliminations_;
    // Combine every lower with every upper bound:
    //   L: a*v + rl >= 0 (a>0)    =>  v >= -rl/a
    //   U: -b*v + ru >= 0 (b>0)   =>  v <= ru/b
    //   feasible v exists iff b*rl + a*ru >= 0... careful with signs:
    //   combine: b*L + a*U eliminates v:  b*rl + a*ru >= 0 where
    //   rl = L - a*v, ru = U + b*v. Equivalently b*L + a*U with the v terms
    //   cancelling.
    for (const auto& lo : lower) {
      long long a = lo.coefOf(v);
      for (const auto& up : upper) {
        long long b = -up.coefOf(v);
        LinearExpr combined;
        combined.add(lo, b);
        combined.add(up, a);
        // v coefficient: b*a + a*(-b) = 0 by construction.
        rest.push_back(std::move(combined));
        if (rest.size() > budget_.maxConstraints) {
          // Blowup guard: give up (assume feasible — sound) and report it.
          degraded_ = true;
          return;
        }
      }
    }
    ge = std::move(rest);
    // Early exit: constant-only contradictions.
    for (const auto& e : ge) {
      if (e.coef.empty() && e.constant < 0) {
        infeasible_ = true;
        return;
      }
    }
  }

  for (const auto& e : ge) {
    if (e.coef.empty() && e.constant < 0) {
      infeasible_ = true;
      return;
    }
  }
}

}  // namespace ps::dep
