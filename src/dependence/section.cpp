#include "dependence/section.h"

#include "fortran/pretty.h"

namespace ps::dep {

std::string SectionDim::str() const {
  std::string l = lo ? fortran::printExpr(*lo) : "*";
  std::string h = hi ? fortran::printExpr(*hi) : "*";
  if (l == h) return l;
  return l + ":" + h;
}

std::string Section::str() const {
  std::string out = array + "(";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) out += ", ";
    out += dims[i] ? dims[i]->str() : "*";
  }
  out += ")";
  return out;
}

}  // namespace ps::dep
