#ifndef PS_INTERPROC_SUMMARIES_H
#define PS_INTERPROC_SUMMARIES_H

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dataflow/symbolic.h"
#include "dependence/section.h"
#include "fortran/ast.h"
#include "interproc/callgraph.h"
#include "ir/refs.h"

namespace ps::interproc {

/// Summary of one procedure's effect on one externally visible variable
/// (a formal parameter or COMMON member), in the procedure's own scope.
struct VarEffect {
  bool isArray = false;
  bool mayRead = false;   // REF: read on some path
  bool mayWrite = false;  // MOD: written on some path
  bool kills = false;     // KILL: definitely (re)written on every path
  /// Read before any kill on some path from entry (upward-exposed use).
  bool exposedRead = false;

  /// Union of accessed subscript ranges when expressible as a bounded
  /// regular section over stable symbols; disengaged = "unknown/whole".
  std::optional<dep::Section> readSection;
  std::optional<dep::Section> writeSection;
};

/// Structural equality (sections compared by their canonical rendering) —
/// the incremental updater's "did this summary actually change" check.
[[nodiscard]] bool operator==(const VarEffect& a, const VarEffect& b);

/// Interprocedural summary of one procedure: flow-insensitive MOD/REF
/// [Banning 79], flow-sensitive KILL [Callahan 88], and bounded regular
/// sections [Havlak–Kennedy 91] — the suite the paper credits as "one of
/// the distinguishing features of PED's dependence information".
struct ProcSummary {
  std::string name;
  std::vector<std::string> formals;
  std::map<std::string, VarEffect> effects;

  [[nodiscard]] const VarEffect* effectOn(const std::string& var) const {
    auto it = effects.find(var);
    return it == effects.end() ? nullptr : &it->second;
  }
};

[[nodiscard]] bool operator==(const ProcSummary& a, const ProcSummary& b);

/// Builds summaries bottom-up over the call graph. Procedures on recursive
/// cycles and calls to unresolved (library) routines get worst-case
/// summaries.
class SummaryBuilder {
 public:
  explicit SummaryBuilder(fortran::Program& program);

  /// Deferred construction for the parallel analysis driver. Builds the
  /// call graph, pre-inserts one summary slot per summarizable procedure —
  /// so concurrent summarizeOne()/finalizeRecursiveOne() calls assign into
  /// existing map nodes and never mutate the map structure — and computes
  /// the (immutable, AST-only) formal constants, but summarizes nothing.
  /// The driver must call summarizeOne() for every bottomUpOrder() name
  /// sequenced callee-before-caller (the call-graph DAG) and
  /// finalizeRecursiveOne() for every recursive() name (no ordering
  /// constraint), then computeGlobalFacts() after all of those. The result
  /// is identical to the eager constructor.
  struct Deferred {};
  SummaryBuilder(fortran::Program& program, Deferred);

  /// Summarize one procedure. Safe to call concurrently for different
  /// procedures provided every callee's summarizeOne happened-before.
  void summarizeOne(const std::string& name);
  /// Sequential epilogue: worst-case summaries for recursive procedures +
  /// whole-program constant/relation propagation.
  void finalize();

  /// Per-procedure slice of finalize(): install the worst-case summary of
  /// ONE recursive procedure. Depends only on that procedure's AST, so the
  /// parallel driver may run these concurrently with summarizeOne() calls —
  /// summarization never reads recursive slots (they are filtered to
  /// worst-case regardless), and the slot was pre-inserted by the
  /// constructor so no map node is created.
  void finalizeRecursiveOne(const std::string& name);
  /// The whole-program constant/relation census (the other half of
  /// finalize()). Must run after every summarizeOne()/finalizeRecursiveOne()
  /// — it resolves call actuals through the final summaries.
  void computeGlobalFacts();
  /// True when `procName` declares any COMMON variable, i.e. its inherited
  /// facts can depend on computeGlobalFacts(). Procedures without COMMON
  /// need not wait for the census (their inherited constants come from the
  /// call-site-literal scan, which is immutable once constructed).
  [[nodiscard]] bool usesGlobalFacts(const std::string& procName) const;

  /// Result of an incremental summary update after a source edit.
  struct Update {
    /// The call graph's shape changed (procedures or call sites added or
    /// removed): every summary was rebuilt and every analysis is stale.
    bool structureChanged = false;
    /// Procedures whose ProcSummary differs from the pre-edit one.
    std::set<std::string> changedSummaries;
    /// Procedures that were re-run through summarization.
    std::set<std::string> resummarized;
    /// Procedures whose dependence analysis is invalidated by the edit:
    /// the edited procedures plus every procedure with a call site whose
    /// callee summary changed. (Inherited-fact changes are diffed by the
    /// caller per materialized workspace.)
    std::set<std::string> staleAnalyses;
  };

  /// Re-establish all summaries after `editedProcs` had statements edited,
  /// re-summarizing only the edited procedures and the callers transitively
  /// reached by actual summary changes. The call graph is rebuilt
  /// unconditionally (its CallSite::stmt pointers must track the live AST).
  /// Post-state is bit-identical to a from-scratch eager build. Summaries
  /// are updated in place, so InterproceduralOracles holding a reference to
  /// this builder stay valid.
  Update applyEdit(const std::set<std::string>& editedProcs);

  [[nodiscard]] const ProcSummary* summaryOf(const std::string& name) const;
  [[nodiscard]] const CallGraph& callGraph() const { return callGraph_; }

  /// Warm-start shortcut: assign a deserialized summary into `name`'s
  /// pre-inserted slot instead of running summarizeOne(). Only valid on a
  /// Deferred builder, under the same callee-before-caller sequencing as
  /// summarizeOne (the persistent store's content key chains callee
  /// summary hashes, so a verified hit guarantees the bytes equal what
  /// summarizeOne would produce). False when `name` has no slot (not a
  /// summarizable procedure) — the caller must fall back to summarizeOne.
  bool installSummary(const std::string& name, ProcSummary s);

  /// Constants inherited by each procedure from its call sites: a formal
  /// receives a constant when every call site passes the same literal.
  /// COMMON variables receive one when the whole program assigns them a
  /// single literal before any use. (Interprocedural constant propagation.)
  [[nodiscard]] std::map<std::string, long long> inheritedConstantsFor(
      const std::string& procName) const;

  /// Symbolic relations valid on entry to a procedure: V = <linear form>
  /// where V is a COMMON variable assigned exactly once in the whole
  /// program and the operands are similarly stable (interprocedural
  /// symbolic propagation — the arc3d JM = JMAX - 1 case).
  [[nodiscard]] std::vector<dataflow::Relation> inheritedRelationsFor(
      const std::string& procName) const;

 private:
  void summarize(fortran::Procedure& proc);
  /// Formal constants from call-site literals (AST + call graph only, no
  /// summaries involved) — computed at construction so the parallel driver
  /// can read inherited constants concurrently with the census.
  void computeFormalConstants();
  /// Pre-insert one summary slot per summarizable procedure so the map
  /// structure never changes while summaries are assigned concurrently.
  void preinsertSlots();
  /// The callee-summary view DURING summarization: recursive procedures
  /// read as unknown (worst case) even when their slot is already filled,
  /// exactly as in the sequential eager build where finalize() ran last.
  /// Keeps re-summarization bit-identical to a fresh build, and keeps
  /// concurrent finalizeRecursiveOne() writes out of summarize()'s reads.
  [[nodiscard]] const ProcSummary* phaseSummaryOf(
      const std::string& name) const;
  [[nodiscard]] ProcSummary worstCaseSummary(
      const std::string& name, const fortran::Procedure& proc) const;
  /// True when a CallActual reference may actually be written, per the
  /// callee summaries (conservative for unknown callees). During
  /// summarization recursive callees read as unknown (see phaseSummaryOf);
  /// the census sees their worst-case summaries.
  [[nodiscard]] bool refMayWrite(const fortran::Stmt& s, const ir::Ref& r,
                                 bool duringSummarize) const;

  fortran::Program& program_;
  CallGraph callGraph_;
  std::set<std::string> recursiveNames_;  // callGraph_.recursive(), as a set
  std::map<std::string, ProcSummary> summaries_;
  std::map<std::string, long long> globalConstants_;       // COMMON var -> value
  std::vector<dataflow::Relation> globalRelations_;        // COMMON relations
  std::map<std::string, std::map<std::string, long long>> formalConstants_;
};

/// Adapts SummaryBuilder into the dependence builder's oracle interface,
/// translating callee-scope sections into the caller's scope at each call
/// site (actuals substituted for formals).
class InterproceduralOracle : public dep::SideEffectOracle {
 public:
  InterproceduralOracle(const SummaryBuilder& summaries,
                        const fortran::Procedure& caller);

  [[nodiscard]] bool knowsCallee(const std::string& name) const override;
  [[nodiscard]] std::vector<dep::CallEffect> effectsOfCall(
      const fortran::Stmt& stmt, const std::string& callee) const override;

 private:
  const SummaryBuilder& summaries_;
  const fortran::Procedure& caller_;
};

}  // namespace ps::interproc

#endif  // PS_INTERPROC_SUMMARIES_H
