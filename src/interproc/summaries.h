#ifndef PS_INTERPROC_SUMMARIES_H
#define PS_INTERPROC_SUMMARIES_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/symbolic.h"
#include "dependence/section.h"
#include "fortran/ast.h"
#include "interproc/callgraph.h"
#include "ir/refs.h"

namespace ps::interproc {

/// Summary of one procedure's effect on one externally visible variable
/// (a formal parameter or COMMON member), in the procedure's own scope.
struct VarEffect {
  bool isArray = false;
  bool mayRead = false;   // REF: read on some path
  bool mayWrite = false;  // MOD: written on some path
  bool kills = false;     // KILL: definitely (re)written on every path
  /// Read before any kill on some path from entry (upward-exposed use).
  bool exposedRead = false;

  /// Union of accessed subscript ranges when expressible as a bounded
  /// regular section over stable symbols; disengaged = "unknown/whole".
  std::optional<dep::Section> readSection;
  std::optional<dep::Section> writeSection;
};

/// Interprocedural summary of one procedure: flow-insensitive MOD/REF
/// [Banning 79], flow-sensitive KILL [Callahan 88], and bounded regular
/// sections [Havlak–Kennedy 91] — the suite the paper credits as "one of
/// the distinguishing features of PED's dependence information".
struct ProcSummary {
  std::string name;
  std::vector<std::string> formals;
  std::map<std::string, VarEffect> effects;

  [[nodiscard]] const VarEffect* effectOn(const std::string& var) const {
    auto it = effects.find(var);
    return it == effects.end() ? nullptr : &it->second;
  }
};

/// Builds summaries bottom-up over the call graph. Procedures on recursive
/// cycles and calls to unresolved (library) routines get worst-case
/// summaries.
class SummaryBuilder {
 public:
  explicit SummaryBuilder(fortran::Program& program);

  /// Deferred construction for the parallel analysis driver. Builds the
  /// call graph and pre-inserts one summary slot per non-recursive
  /// procedure — so concurrent summarizeOne() calls assign into existing
  /// map nodes and never mutate the map structure — but computes nothing.
  /// The driver must call summarizeOne() for every bottomUpOrder() name,
  /// sequenced callee-before-caller (the call-graph DAG), then finalize()
  /// exactly once. The result is identical to the eager constructor.
  struct Deferred {};
  SummaryBuilder(fortran::Program& program, Deferred);

  /// Summarize one procedure. Safe to call concurrently for different
  /// procedures provided every callee's summarizeOne happened-before.
  void summarizeOne(const std::string& name);
  /// Sequential epilogue: worst-case summaries for recursive procedures +
  /// whole-program constant/relation propagation.
  void finalize();

  [[nodiscard]] const ProcSummary* summaryOf(const std::string& name) const;
  [[nodiscard]] const CallGraph& callGraph() const { return callGraph_; }

  /// Constants inherited by each procedure from its call sites: a formal
  /// receives a constant when every call site passes the same literal.
  /// COMMON variables receive one when the whole program assigns them a
  /// single literal before any use. (Interprocedural constant propagation.)
  [[nodiscard]] std::map<std::string, long long> inheritedConstantsFor(
      const std::string& procName) const;

  /// Symbolic relations valid on entry to a procedure: V = <linear form>
  /// where V is a COMMON variable assigned exactly once in the whole
  /// program and the operands are similarly stable (interprocedural
  /// symbolic propagation — the arc3d JM = JMAX - 1 case).
  [[nodiscard]] std::vector<dataflow::Relation> inheritedRelationsFor(
      const std::string& procName) const;

 private:
  void summarize(fortran::Procedure& proc);
  void computeGlobalFacts();
  /// True when a CallActual reference may actually be written, per the
  /// callee summaries (conservative for unknown callees).
  [[nodiscard]] bool refMayWrite(const fortran::Stmt& s,
                                 const ir::Ref& r) const;

  fortran::Program& program_;
  CallGraph callGraph_;
  std::map<std::string, ProcSummary> summaries_;
  std::map<std::string, long long> globalConstants_;       // COMMON var -> value
  std::vector<dataflow::Relation> globalRelations_;        // COMMON relations
  std::map<std::string, std::map<std::string, long long>> formalConstants_;
};

/// Adapts SummaryBuilder into the dependence builder's oracle interface,
/// translating callee-scope sections into the caller's scope at each call
/// site (actuals substituted for formals).
class InterproceduralOracle : public dep::SideEffectOracle {
 public:
  InterproceduralOracle(const SummaryBuilder& summaries,
                        const fortran::Procedure& caller);

  [[nodiscard]] bool knowsCallee(const std::string& name) const override;
  [[nodiscard]] std::vector<dep::CallEffect> effectsOfCall(
      const fortran::Stmt& stmt, const std::string& callee) const override;

 private:
  const SummaryBuilder& summaries_;
  const fortran::Procedure& caller_;
};

}  // namespace ps::interproc

#endif  // PS_INTERPROC_SUMMARIES_H
