#ifndef PS_INTERPROC_ARRAY_KILL_H
#define PS_INTERPROC_ARRAY_KILL_H

#include <string>
#include <vector>

#include "dependence/graph.h"
#include "ir/model.h"

namespace ps::interproc {

/// One array found privatizable for a loop by array kill analysis: every
/// read of the array inside an iteration is covered by a write earlier in
/// the same iteration, so the array's values never cross iterations — the
/// slab2d/arc3d temporary-array pattern Table 3 reports as "needed".
struct ArrayKill {
  fortran::StmtId loop = fortran::kInvalidStmt;
  std::string array;
  /// True when the covering write sits inside a procedure invoked in the
  /// loop (the arc3d case: "an array is killed inside a procedure invoked
  /// in a loop, so interprocedural array kill analysis is required").
  bool interprocedural = false;
};

/// Find arrays privatizable per-iteration in each loop of a procedure.
/// `ctx` (may be null) supplies the callee KILL oracle, symbolic relations
/// (e.g. arc3d's JM = JMAX - 1, substituted into subscripts), and user
/// facts. Coverage of reads by writes is decided with the same
/// Fourier–Motzkin machinery the dependence tests use.
[[nodiscard]] std::vector<ArrayKill> findArrayKills(
    ir::ProcedureModel& model, const dep::DependenceGraph& graph,
    const dep::AnalysisContext* ctx = nullptr);

/// Back-compat convenience: oracle only.
[[nodiscard]] std::vector<ArrayKill> findArrayKills(
    ir::ProcedureModel& model, const dep::DependenceGraph& graph,
    const dep::SideEffectOracle* oracle);

}  // namespace ps::interproc

#endif  // PS_INTERPROC_ARRAY_KILL_H
