#include "interproc/callgraph.h"

#include <algorithm>
#include <set>

#include "ir/refs.h"

namespace ps::interproc {

using fortran::Procedure;
using fortran::Program;
using fortran::Stmt;

CallGraph CallGraph::build(const Program& program) {
  CallGraph g;
  std::set<std::string> defined;
  for (const auto& u : program.units) defined.insert(u->name);

  std::map<std::string, std::set<std::string>> callees;
  for (const auto& u : program.units) {
    callees[u->name];  // ensure every unit has a node
    u->forEachStmt([&](const Stmt& s) {
      for (const std::string& callee : ir::calledFunctions(s)) {
        g.sites_.push_back({u->name, callee, &s});
        callees[u->name].insert(callee);
        if (!defined.count(callee)) {
          if (std::find(g.unresolved_.begin(), g.unresolved_.end(),
                        callee) == g.unresolved_.end()) {
            g.unresolved_.push_back(callee);
          }
        }
      }
    });
  }

  // Iterative Kahn-style peeling: emit procedures whose defined callees are
  // all already emitted; anything left is on a cycle.
  std::set<std::string> emitted;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& u : program.units) {
      if (emitted.count(u->name)) continue;
      bool ready = true;
      for (const auto& c : callees[u->name]) {
        if (defined.count(c) && !emitted.count(c) && c != u->name) {
          ready = false;
          break;
        }
      }
      if (callees[u->name].count(u->name)) ready = false;  // self-recursion
      if (ready) {
        g.bottomUp_.push_back(u->name);
        emitted.insert(u->name);
        progress = true;
      }
    }
  }
  for (const auto& u : program.units) {
    if (!emitted.count(u->name)) g.recursive_.push_back(u->name);
  }
  return g;
}

std::vector<const CallSite*> CallGraph::callsFrom(
    const std::string& caller) const {
  std::vector<const CallSite*> out;
  for (const auto& s : sites_) {
    if (s.caller == caller) out.push_back(&s);
  }
  return out;
}

std::vector<const CallSite*> CallGraph::callsTo(
    const std::string& callee) const {
  std::vector<const CallSite*> out;
  for (const auto& s : sites_) {
    if (s.callee == callee) out.push_back(&s);
  }
  return out;
}

std::string CallGraph::textual() const {
  std::string out;
  std::set<std::string> callers;
  for (const auto& s : sites_) callers.insert(s.caller);
  for (const auto& c : callers) {
    out += c + ":";
    for (const auto& s : sites_) {
      if (s.caller == c) {
        out += " " + s.callee;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ps::interproc
