#include "interproc/summaries.h"

#include <algorithm>
#include <set>

#include "cfg/flow_graph.h"
#include "dataflow/constants.h"
#include "dataflow/linear.h"
#include "ir/model.h"
#include "ir/refs.h"

namespace ps::interproc {

using dataflow::LinearExpr;
using fortran::Expr;
using fortran::ExprKind;
using fortran::ExprPtr;
using fortran::Procedure;
using fortran::Stmt;
using fortran::StmtKind;
using ir::Ref;
using ir::RefKind;

namespace {

/// Convert a linear form back into an expression tree. Fails (returns null)
/// when the form carries opaque or tagged symbols.
ExprPtr exprFromLinear(const LinearExpr& f) {
  if (!f.affine) return nullptr;
  ExprPtr acc;
  for (const auto& [v, c] : f.coef) {
    if (v.find('@') != std::string::npos ||
        v.find('#') != std::string::npos) {
      return nullptr;
    }
    ExprPtr term;
    if (c == 1) {
      term = fortran::makeVarRef(v);
    } else if (c == -1) {
      term = fortran::makeUnary(fortran::UnOp::Neg, fortran::makeVarRef(v));
    } else {
      term = fortran::makeBinary(fortran::BinOp::Mul, fortran::makeIntConst(c),
                                 fortran::makeVarRef(v));
    }
    acc = acc ? fortran::makeBinary(fortran::BinOp::Add, std::move(acc),
                                    std::move(term))
              : std::move(term);
  }
  if (!acc) return fortran::makeIntConst(f.constant);
  if (f.constant > 0) {
    return fortran::makeBinary(fortran::BinOp::Add, std::move(acc),
                               fortran::makeIntConst(f.constant));
  }
  if (f.constant < 0) {
    return fortran::makeBinary(fortran::BinOp::Sub, std::move(acc),
                               fortran::makeIntConst(-f.constant));
  }
  return acc;
}

/// Widen a subscript's linear form over the enclosing loops, producing
/// [lo, hi] forms over `stable` names only. Returns false on failure.
bool widenOverLoops(LinearExpr form,
                    const std::vector<const ir::Loop*>& chain,
                    const std::set<std::string>& stable, LinearExpr* loOut,
                    LinearExpr* hiOut) {
  if (!form.affine) return false;
  LinearExpr lo = form, hi = form;
  // Innermost to outermost, so triangular bounds resolve outward.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ir::Loop* l = *it;
    const std::string& iv = l->inductionVar();
    long long cl = lo.coefOf(iv);
    long long ch = hi.coefOf(iv);
    if (cl == 0 && ch == 0) continue;
    LinearExpr lob = dataflow::linearize(*l->stmt->doLo);
    LinearExpr hib = dataflow::linearize(*l->stmt->doHi);
    if (!lob.affine || !hib.affine) return false;
    long long step = 1;
    if (l->stmt->doStep) {
      LinearExpr st = dataflow::linearize(*l->stmt->doStep);
      if (!st.affine || !st.isConstant() || st.constant == 0) return false;
      step = st.constant;
    }
    if (step < 0) std::swap(lob, hib);
    if (cl != 0) {
      lo.coef.erase(iv);
      lo.add(cl > 0 ? lob : hib, cl);
    }
    if (ch != 0) {
      hi.coef.erase(iv);
      hi.add(ch > 0 ? hib : lob, ch);
    }
  }
  for (const auto& [v, c] : lo.coef) {
    (void)c;
    if (!stable.count(v)) return false;
  }
  for (const auto& [v, c] : hi.coef) {
    (void)c;
    if (!stable.count(v)) return false;
  }
  *loOut = std::move(lo);
  *hiOut = std::move(hi);
  return true;
}

/// Merge a [lo,hi] contribution into a section dimension; collapses to
/// "unknown" (disengaged) when the union is not expressible.
void mergeDim(std::optional<dep::SectionDim>& dim, bool& dimKnown,
              const LinearExpr& lo, const LinearExpr& hi) {
  ExprPtr loE = exprFromLinear(lo);
  ExprPtr hiE = exprFromLinear(hi);
  if (!loE || !hiE) {
    dimKnown = false;
    dim.reset();
    return;
  }
  if (!dimKnown) return;  // already collapsed
  if (!dim) {
    dep::SectionDim d;
    d.lo = std::move(loE);
    d.hi = std::move(hiE);
    dim = std::move(d);
    return;
  }
  // Union: equal forms stay; constants take min/max; otherwise unknown.
  auto asConst = [](const Expr& e, long long* v) {
    if (e.kind == ExprKind::IntConst) {
      *v = e.intValue;
      return true;
    }
    return false;
  };
  if (!dim->lo->structurallyEquals(*loE)) {
    long long a, b;
    if (asConst(*dim->lo, &a) && asConst(*loE, &b)) {
      dim->lo = fortran::makeIntConst(std::min(a, b));
    } else {
      dimKnown = false;
      dim.reset();
      return;
    }
  }
  if (!dim->hi->structurallyEquals(*hiE)) {
    long long a, b;
    if (asConst(*dim->hi, &a) && asConst(*hiE, &b)) {
      dim->hi = fortran::makeIntConst(std::max(a, b));
    } else {
      dimKnown = false;
      dim.reset();
    }
  }
}

/// Accumulates one array's section per access kind during summarization.
struct SectionAccum {
  std::vector<std::optional<dep::SectionDim>> dims;
  std::vector<bool> dimKnown;
  bool any = false;

  void ensure(std::size_t n) {
    while (dims.size() < n) {
      dims.emplace_back();
      dimKnown.push_back(true);
    }
  }
  void collapse() {
    for (std::size_t i = 0; i < dims.size(); ++i) {
      dims[i].reset();
      dimKnown[i] = false;
    }
    any = true;
  }
  [[nodiscard]] std::optional<dep::Section> toSection(
      const std::string& array) const {
    if (!any) return std::nullopt;
    dep::Section s;
    s.array = array;
    for (const auto& d : dims) {
      if (d) {
        s.dims.push_back(d->clone());
      } else {
        s.dims.emplace_back();
      }
    }
    return s;
  }
};

/// Substitute formal references by actual expressions in a callee-scope
/// expression; returns null when a variable is neither a mapped formal nor
/// a pass-through (COMMON) name.
ExprPtr substituteFormals(const Expr& e,
                          const std::map<std::string, const Expr*>& map,
                          const std::set<std::string>& passThrough) {
  switch (e.kind) {
    case ExprKind::VarRef: {
      auto it = map.find(e.name);
      if (it != map.end()) return it->second->clone();
      if (passThrough.count(e.name)) return e.clone();
      return nullptr;
    }
    case ExprKind::IntConst:
    case ExprKind::RealConst:
    case ExprKind::LogicalConst:
      return e.clone();
    case ExprKind::Binary: {
      ExprPtr l = substituteFormals(*e.lhs, map, passThrough);
      ExprPtr r = substituteFormals(*e.rhs, map, passThrough);
      if (!l || !r) return nullptr;
      return fortran::makeBinary(e.binOp, std::move(l), std::move(r));
    }
    case ExprKind::Unary: {
      ExprPtr v = substituteFormals(*e.lhs, map, passThrough);
      if (!v) return nullptr;
      return fortran::makeUnary(e.unOp, std::move(v));
    }
    default:
      return nullptr;
  }
}

/// Canonical text of a section option, for structural comparison.
std::string sectionKey(const std::optional<dep::Section>& s) {
  return s ? s->str() : std::string("<none>");
}

/// Call-graph "shape": the procedure set, their topological/recursive
/// classification, and the (caller, callee) call-site multiset. Argument
/// expressions are NOT part of the shape (they feed formal constants,
/// which are recomputed on every update anyway).
bool sameShape(const CallGraph& a, const CallGraph& b) {
  if (a.bottomUpOrder() != b.bottomUpOrder()) return false;
  if (a.recursive() != b.recursive()) return false;
  if (a.unresolved() != b.unresolved()) return false;
  auto edges = [](const CallGraph& g) {
    std::vector<std::pair<std::string, std::string>> e;
    e.reserve(g.callSites().size());
    for (const CallSite& s : g.callSites()) e.emplace_back(s.caller, s.callee);
    std::sort(e.begin(), e.end());
    return e;
  };
  return edges(a) == edges(b);
}

}  // namespace

bool operator==(const VarEffect& a, const VarEffect& b) {
  return a.isArray == b.isArray && a.mayRead == b.mayRead &&
         a.mayWrite == b.mayWrite && a.kills == b.kills &&
         a.exposedRead == b.exposedRead &&
         sectionKey(a.readSection) == sectionKey(b.readSection) &&
         sectionKey(a.writeSection) == sectionKey(b.writeSection);
}

bool operator==(const ProcSummary& a, const ProcSummary& b) {
  if (a.name != b.name || a.formals != b.formals) return false;
  if (a.effects.size() != b.effects.size()) return false;
  auto ib = b.effects.begin();
  for (auto ia = a.effects.begin(); ia != a.effects.end(); ++ia, ++ib) {
    if (ia->first != ib->first || !(ia->second == ib->second)) return false;
  }
  return true;
}

SummaryBuilder::SummaryBuilder(fortran::Program& program)
    : program_(program), callGraph_(CallGraph::build(program)) {
  recursiveNames_.insert(callGraph_.recursive().begin(),
                         callGraph_.recursive().end());
  preinsertSlots();
  computeFormalConstants();
  for (const std::string& name : callGraph_.bottomUpOrder()) {
    if (Procedure* proc = program_.findUnit(name)) summarize(*proc);
  }
  finalize();
}

SummaryBuilder::SummaryBuilder(fortran::Program& program, Deferred)
    : program_(program), callGraph_(CallGraph::build(program)) {
  // Reserve a node per summarizable procedure up front: summarizeOne and
  // finalizeRecursiveOne then only assign into existing slots, so the map
  // structure is immutable during the parallel phase and lock-free
  // concurrent reads are safe. Formal constants are call-site literals —
  // pure AST — so they are computed here once and are immutable while the
  // driver's tasks read them.
  recursiveNames_.insert(callGraph_.recursive().begin(),
                         callGraph_.recursive().end());
  preinsertSlots();
  computeFormalConstants();
}

void SummaryBuilder::preinsertSlots() {
  for (const std::string& name : callGraph_.bottomUpOrder()) {
    if (program_.findUnit(name)) summaries_[name].name = name;
  }
  for (const std::string& name : callGraph_.recursive()) {
    if (program_.findUnit(name)) summaries_[name].name = name;
  }
}

void SummaryBuilder::summarizeOne(const std::string& name) {
  if (Procedure* proc = program_.findUnit(name)) summarize(*proc);
}

ProcSummary SummaryBuilder::worstCaseSummary(const std::string& name,
                                             const Procedure& proc) const {
  // Worst case: every formal and COMMON var may be read and written,
  // sections unknown.
  ProcSummary s;
  s.name = name;
  s.formals = proc.params;
  for (const auto& p : proc.params) {
    const fortran::VarDecl* d = proc.findDecl(p);
    VarEffect e;
    e.isArray = d && d->isArray();
    e.mayRead = e.mayWrite = true;
    e.exposedRead = true;
    s.effects[p] = std::move(e);
  }
  for (const auto& d : proc.decls) {
    if (d.commonBlock.empty()) continue;
    VarEffect e;
    e.isArray = d.isArray();
    e.mayRead = e.mayWrite = true;
    e.exposedRead = true;
    s.effects[d.name] = std::move(e);
  }
  return s;
}

void SummaryBuilder::finalizeRecursiveOne(const std::string& name) {
  Procedure* proc = program_.findUnit(name);
  if (!proc) return;
  summaries_[name] = worstCaseSummary(name, *proc);
}

void SummaryBuilder::finalize() {
  for (const std::string& name : callGraph_.recursive()) {
    finalizeRecursiveOne(name);
  }
  computeGlobalFacts();
}

const ProcSummary* SummaryBuilder::phaseSummaryOf(
    const std::string& name) const {
  // The recursive-name check comes FIRST: during the parallel phase a
  // finalizeRecursiveOne task may be assigning that very slot.
  if (recursiveNames_.count(name)) return nullptr;
  return summaryOf(name);
}

SummaryBuilder::Update SummaryBuilder::applyEdit(
    const std::set<std::string>& editedProcs) {
  Update up;
  CallGraph fresh = CallGraph::build(program_);
  const bool shapeKept = sameShape(callGraph_, fresh);
  // Always adopt the fresh graph: CallSite::stmt pointers must track the
  // live AST (the old ones dangle after statement replacement).
  callGraph_ = std::move(fresh);
  recursiveNames_.clear();
  recursiveNames_.insert(callGraph_.recursive().begin(),
                         callGraph_.recursive().end());

  if (!shapeKept) {
    // Procedures or call edges appeared/disappeared: rebuild everything
    // from scratch (rare for statement-level edits).
    up.structureChanged = true;
    summaries_.clear();
    preinsertSlots();
    computeFormalConstants();
    for (const std::string& name : callGraph_.bottomUpOrder()) {
      if (Procedure* proc = program_.findUnit(name)) summarize(*proc);
    }
    finalize();
    for (const auto& [name, s] : summaries_) {
      (void)s;
      up.changedSummaries.insert(name);
      up.resummarized.insert(name);
    }
    for (const auto& u : program_.units) up.staleAnalyses.insert(u->name);
    return up;
  }

  computeFormalConstants();

  // Recursive worst-case summaries track the procedure's current AST
  // (formals + COMMON decls); rebuild and diff them in place.
  for (const std::string& name : callGraph_.recursive()) {
    Procedure* proc = program_.findUnit(name);
    if (!proc) continue;
    ProcSummary ns = worstCaseSummary(name, *proc);
    if (!(ns == summaries_[name])) up.changedSummaries.insert(name);
    summaries_[name] = std::move(ns);
  }

  // Bottom-up: re-summarize the edited procedures plus every procedure one
  // of whose resolved callee summaries actually changed. Everything else
  // keeps its summary — summarize() is a pure function of the procedure's
  // AST and its direct callee summaries (recursive callees filtered to
  // unknown either way), so the untouched fixed point is what a fresh
  // eager build would recompute.
  for (const std::string& name : callGraph_.bottomUpOrder()) {
    Procedure* proc = program_.findUnit(name);
    if (!proc) continue;
    bool dirty = editedProcs.count(name) > 0;
    if (!dirty) {
      for (const CallSite* cs : callGraph_.callsFrom(name)) {
        if (up.changedSummaries.count(cs->callee)) {
          dirty = true;
          break;
        }
      }
    }
    if (!dirty) continue;
    up.resummarized.insert(name);
    ProcSummary old = std::move(summaries_[name]);
    summarize(*proc);
    if (!(summaries_[name] == old)) up.changedSummaries.insert(name);
  }

  // The census is a cheap whole-program AST scan; rerun it unconditionally.
  // Callers diff inherited facts per procedure to find contexts that
  // actually changed.
  computeGlobalFacts();

  up.staleAnalyses = editedProcs;
  for (const auto& u : program_.units) {
    if (up.staleAnalyses.count(u->name)) continue;
    for (const CallSite* cs : callGraph_.callsFrom(u->name)) {
      if (up.changedSummaries.count(cs->callee)) {
        up.staleAnalyses.insert(u->name);
        break;
      }
    }
  }
  return up;
}

const ProcSummary* SummaryBuilder::summaryOf(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

bool SummaryBuilder::installSummary(const std::string& name, ProcSummary s) {
  auto it = summaries_.find(name);
  if (it == summaries_.end()) return false;
  it->second = std::move(s);
  return true;
}

bool SummaryBuilder::refMayWrite(const Stmt& s, const ir::Ref& r,
                                 bool duringSummarize) const {
  // Resolve a CallActual's write status through the callee summaries; true
  // (conservative) when any callee is unknown or reports MOD.
  for (const std::string& callee : ir::calledFunctions(s)) {
    const ProcSummary* cs =
        duringSummarize ? phaseSummaryOf(callee) : summaryOf(callee);
    if (!cs) return true;
    const std::vector<ExprPtr>* args = nullptr;
    if (s.kind == StmtKind::Call && s.callee == callee) {
      args = &s.args;
    } else {
      s.forEachExpr([&](const Expr& e) {
        if (e.kind == ExprKind::FuncCall && e.name == callee) args = &e.args;
      });
    }
    if (!args) return true;
    for (std::size_t i = 0; i < cs->formals.size() && i < args->size();
         ++i) {
      const Expr& a = *(*args)[i];
      if ((a.kind == ExprKind::VarRef || a.kind == ExprKind::ArrayRef) &&
          a.name == r.name) {
        const VarEffect* eff = cs->effectOn(cs->formals[i]);
        if (eff && eff->mayWrite) return true;
      }
    }
    // COMMON pass-through.
    const VarEffect* eff = cs->effectOn(r.name);
    if (eff && eff->mayWrite) return true;
  }
  return false;
}

void SummaryBuilder::summarize(Procedure& proc) {
  ProcSummary sum;
  sum.name = proc.name;
  sum.formals = proc.params;

  ir::ProcedureModel model(proc);

  // Externally visible names and stable names.
  std::set<std::string> visible;
  for (const auto& p : proc.params) visible.insert(p);
  for (const auto& d : proc.decls) {
    if (!d.commonBlock.empty()) visible.insert(d.name);
  }
  if (proc.kind == fortran::ProcKind::Function) visible.insert(proc.name);

  // Names written in this procedure. A call actual only counts as written
  // when the callee's summary says so (or the callee is unknown) — without
  // this, every variable ever passed to a call would lose its "stable"
  // status and sections would collapse.
  std::set<std::string> writtenSomewhere;
  for (const Stmt* s : model.allStmts()) {
    for (const Ref& r : ir::collectRefs(*s)) {
      if (!r.isWrite()) continue;
      if (r.kind == RefKind::CallActual) {
        if (!refMayWrite(*s, r, /*duringSummarize=*/true)) continue;
      }
      writtenSomewhere.insert(r.name);
    }
  }
  std::set<std::string> stable;
  for (const auto& d : proc.decls) {
    if (!writtenSomewhere.count(d.name) || d.isParameter) {
      stable.insert(d.name);
    }
  }

  std::map<std::string, SectionAccum> readAcc, writeAcc;

  auto loopChainOf = [&](const Stmt* s) {
    std::vector<const ir::Loop*> chain;
    if (const ir::Loop* l = model.enclosingLoop(s->id)) {
      for (const ir::Loop* p : l->nestPath()) chain.push_back(p);
    }
    return chain;
  };

  auto recordArrayRef = [&](const Stmt* s, const Expr* ref, bool write) {
    SectionAccum& acc = (write ? writeAcc : readAcc)[ref->name];
    acc.ensure(ref->args.size());
    acc.any = true;
    auto chain = loopChainOf(s);
    for (std::size_t d = 0; d < ref->args.size(); ++d) {
      LinearExpr form = dataflow::linearize(*ref->args[d]);
      LinearExpr lo, hi;
      bool known = acc.dimKnown[d];
      if (form.affine && widenOverLoops(form, chain, stable, &lo, &hi)) {
        mergeDim(acc.dims[d], known, lo, hi);
        acc.dimKnown[d] = known;
      } else {
        acc.dims[d].reset();
        acc.dimKnown[d] = false;
      }
    }
  };

  // Direct references.
  for (const Stmt* s : model.allStmts()) {
    for (const Ref& r : ir::collectRefs(*s)) {
      if (r.kind == RefKind::CallActual) continue;  // handled below
      if (!visible.count(r.name)) continue;
      VarEffect& e = sum.effects[r.name];
      const fortran::VarDecl* decl = proc.findDecl(r.name);
      e.isArray = decl && decl->isArray();
      if (r.isRead()) e.mayRead = true;
      if (r.isWrite()) e.mayWrite = true;
      if (e.isArray && r.expr && r.expr->kind == ExprKind::ArrayRef) {
        recordArrayRef(s, r.expr, r.isWrite());
      }
    }
  }

  // Effects of nested calls, translated into this scope.
  for (const Stmt* s : model.allStmts()) {
    for (const std::string& callee : ir::calledFunctions(*s)) {
      const ProcSummary* cs = phaseSummaryOf(callee);
      auto chain = loopChainOf(s);
      // Argument expressions at this call.
      const std::vector<ExprPtr>* args = nullptr;
      if (s->kind == StmtKind::Call && s->callee == callee) {
        args = &s->args;
      } else {
        s->forEachExpr([&](const Expr& e) {
          if (e.kind == ExprKind::FuncCall && e.name == callee) {
            args = &e.args;
          }
        });
      }
      if (!cs) {
        // Unknown callee: worst case on array/variable actuals and COMMON.
        if (args) {
          for (const auto& a : *args) {
            if ((a->kind == ExprKind::VarRef ||
                 a->kind == ExprKind::ArrayRef) &&
                visible.count(a->name)) {
              VarEffect& e = sum.effects[a->name];
              const fortran::VarDecl* decl = proc.findDecl(a->name);
              e.isArray = decl && decl->isArray();
              e.mayRead = e.mayWrite = true;
              if (e.isArray) {
                readAcc[a->name].collapse();
                writeAcc[a->name].collapse();
              }
            }
          }
        }
        for (const auto& d : proc.decls) {
          if (d.commonBlock.empty()) continue;
          VarEffect& e = sum.effects[d.name];
          e.isArray = d.isArray();
          e.mayRead = e.mayWrite = true;
          if (e.isArray) {
            readAcc[d.name].collapse();
            writeAcc[d.name].collapse();
          }
        }
        continue;
      }

      std::map<std::string, const Expr*> formalMap;
      if (args) {
        for (std::size_t i = 0;
             i < cs->formals.size() && i < args->size(); ++i) {
          formalMap[cs->formals[i]] = (*args)[i].get();
        }
      }

      for (const auto& [var, eff] : cs->effects) {
        // Resolve the callee-scope name into this scope.
        std::string target;
        bool wholeArray = true;
        auto itF = formalMap.find(var);
        if (itF != formalMap.end()) {
          const Expr* actual = itF->second;
          if (actual->kind == ExprKind::VarRef) {
            target = actual->name;
          } else if (actual->kind == ExprKind::ArrayRef) {
            target = actual->name;   // element/offset passed: lose the
            wholeArray = false;       // section mapping
          } else {
            continue;  // expression actual: no externally visible effect
          }
        } else {
          target = var;  // COMMON pass-through
        }
        if (!visible.count(target) && !proc.findDecl(target)) continue;

        VarEffect& e = sum.effects[target];
        const fortran::VarDecl* decl = proc.findDecl(target);
        e.isArray = (decl && decl->isArray()) || eff.isArray;
        e.mayRead = e.mayRead || eff.mayRead;
        e.mayWrite = e.mayWrite || eff.mayWrite;

        if (!e.isArray) continue;
        // Translate and widen the callee's sections.
        std::set<std::string> passThrough;
        for (const auto& d : proc.decls) {
          if (!d.commonBlock.empty()) passThrough.insert(d.name);
        }
        auto translate = [&](const std::optional<dep::Section>& sec,
                             bool isWrite) {
          SectionAccum& acc = (isWrite ? writeAcc : readAcc)[target];
          if (!sec || !wholeArray) {
            acc.collapse();
            return;
          }
          acc.ensure(sec->dims.size());
          acc.any = true;
          for (std::size_t d = 0; d < sec->dims.size(); ++d) {
            if (!sec->dims[d] || !sec->dims[d]->lo || !sec->dims[d]->hi) {
              acc.dims[d].reset();
              acc.dimKnown[d] = false;
              continue;
            }
            ExprPtr lo =
                substituteFormals(*sec->dims[d]->lo, formalMap, passThrough);
            ExprPtr hi =
                substituteFormals(*sec->dims[d]->hi, formalMap, passThrough);
            if (!lo || !hi) {
              acc.dims[d].reset();
              acc.dimKnown[d] = false;
              continue;
            }
            LinearExpr loF = dataflow::linearize(*lo);
            LinearExpr hiF = dataflow::linearize(*hi);
            LinearExpr loW, hiW, loW2, hiW2;
            bool known = acc.dimKnown[d];
            if (loF.affine && hiF.affine &&
                widenOverLoops(loF, chain, stable, &loW, &hiW2) &&
                widenOverLoops(hiF, chain, stable, &loW2, &hiW)) {
              mergeDim(acc.dims[d], known, loW, hiW);
              acc.dimKnown[d] = known;
            } else {
              acc.dims[d].reset();
              acc.dimKnown[d] = false;
            }
          }
        };
        if (eff.mayRead) translate(eff.readSection, false);
        if (eff.mayWrite) translate(eff.writeSection, true);
      }
    }
  }

  // Attach accumulated sections.
  for (auto& [var, eff] : sum.effects) {
    if (!eff.isArray) continue;
    auto itR = readAcc.find(var);
    if (itR != readAcc.end()) eff.readSection = itR->second.toSection(var);
    auto itW = writeAcc.find(var);
    if (itW != writeAcc.end()) eff.writeSection = itW->second.toSection(var);
  }

  // Flow-sensitive scalar KILL: must-write on every path entry->exit.
  {
    cfg::FlowGraph fg = cfg::FlowGraph::build(model);
    const int n = fg.numNodes();
    std::vector<std::set<std::string>> out(static_cast<std::size_t>(n));
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    visited[cfg::FlowGraph::kEntry] = true;
    auto order = fg.reversePostOrder();
    bool changed = true;
    while (changed) {
      changed = false;
      for (int node : order) {
        if (node == cfg::FlowGraph::kEntry) continue;
        auto un = static_cast<std::size_t>(node);
        std::set<std::string> in;
        bool first = true;
        for (int p : fg.predecessors(node)) {
          auto up = static_cast<std::size_t>(p);
          if (!visited[up]) continue;
          if (first) {
            in = out[up];
            first = false;
          } else {
            std::set<std::string> merged;
            for (const auto& v : in) {
              if (out[up].count(v)) merged.insert(v);
            }
            in = std::move(merged);
          }
        }
        if (first) continue;  // unreachable so far
        const Stmt* s = fg.stmtOf(node);
        std::set<std::string> newOut = in;
        if (s) {
          if (s->kind == StmtKind::Assign &&
              s->lhs->kind == ExprKind::VarRef) {
            newOut.insert(s->lhs->name);
          }
          if (s->kind == StmtKind::Read) {
            for (const auto& item : s->args) {
              if (item->kind == ExprKind::VarRef) newOut.insert(item->name);
            }
          }
          // A nested call's KILL set propagates.
          for (const std::string& callee : ir::calledFunctions(*s)) {
            const ProcSummary* cs = phaseSummaryOf(callee);
            if (!cs) continue;
            const std::vector<ExprPtr>* args =
                (s->kind == StmtKind::Call) ? &s->args : nullptr;
            for (const auto& [var, eff] : cs->effects) {
              if (!eff.kills || eff.isArray) continue;
              // Translate the killed name.
              std::string target = var;
              if (args) {
                for (std::size_t i = 0;
                     i < cs->formals.size() && i < args->size(); ++i) {
                  if (cs->formals[i] == var &&
                      (*args)[i]->kind == ExprKind::VarRef) {
                    target = (*args)[i]->name;
                  }
                }
              }
              newOut.insert(target);
            }
          }
        }
        if (!visited[un] || newOut != out[un]) {
          visited[un] = true;
          out[un] = std::move(newOut);
          changed = true;
        }
      }
    }
    const auto& killed = out[cfg::FlowGraph::kExit];
    for (auto& [var, eff] : sum.effects) {
      if (!eff.isArray && killed.count(var)) eff.kills = true;
    }

    // Upward-exposed reads for visible scalars: a read reachable from the
    // entry before any killing write (the nxsns "scalar killed in a
    // procedure invoked inside a loop" refinement).
    for (auto& [var, eff] : sum.effects) {
      if (eff.isArray) {
        eff.exposedRead = eff.mayRead;  // arrays: conservative
        continue;
      }
      if (!eff.mayRead) {
        eff.exposedRead = false;
        continue;
      }
      // Forward BFS from entry; stop paths at killing statements.
      std::vector<int> work{cfg::FlowGraph::kEntry};
      std::set<int> seen;
      bool exposed = false;
      while (!work.empty() && !exposed) {
        int node = work.back();
        work.pop_back();
        if (seen.count(node)) continue;
        seen.insert(node);
        const Stmt* s = fg.stmtOf(node);
        bool killsHere = false;
        if (s) {
          for (const Ref& r : ir::collectRefs(*s)) {
            if (r.name != var) continue;
            if (r.kind == RefKind::Read) {
              exposed = true;
              break;
            }
            if (r.kind == RefKind::CallActual) {
              // Consult the callee: exposed read and/or kill through the
              // call.
              bool calleeExposed = true, calleeKills = false;
              for (const std::string& callee : ir::calledFunctions(*s)) {
                const ProcSummary* cs = phaseSummaryOf(callee);
                if (!cs) continue;
                const std::vector<ExprPtr>* args =
                    (s->kind == StmtKind::Call) ? &s->args : nullptr;
                if (!args) continue;
                for (std::size_t i = 0;
                     i < cs->formals.size() && i < args->size(); ++i) {
                  if ((*args)[i]->kind == ExprKind::VarRef &&
                      (*args)[i]->name == var) {
                    const VarEffect* fe = cs->effectOn(cs->formals[i]);
                    calleeExposed = fe ? fe->exposedRead : false;
                    calleeKills = fe && fe->kills;
                  }
                }
              }
              if (calleeExposed) {
                exposed = true;
                break;
              }
              if (calleeKills) killsHere = true;
            }
            if (r.kind == RefKind::Write || r.kind == RefKind::DoVarDef) {
              killsHere = true;
            }
          }
        }
        if (exposed) break;
        if (killsHere) continue;
        for (int succ : fg.successors(node)) {
          if (!seen.count(succ)) work.push_back(succ);
        }
      }
      eff.exposedRead = exposed;
    }
    // Array KILL: the write section covers the whole declared extent.
    for (auto& [var, eff] : sum.effects) {
      if (!eff.isArray || !eff.writeSection) continue;
      const fortran::VarDecl* decl = proc.findDecl(var);
      if (!decl || decl->dims.empty()) continue;
      bool covers = true;
      for (std::size_t d = 0;
           d < decl->dims.size() && d < eff.writeSection->dims.size(); ++d) {
        const auto& sd = eff.writeSection->dims[d];
        if (!sd || !sd->lo || !sd->hi) {
          covers = false;
          break;
        }
        // Declared range: [lower or 1, upper].
        ExprPtr declLo = decl->dims[d].lower ? decl->dims[d].lower->clone()
                                             : fortran::makeIntConst(1);
        if (!decl->dims[d].upper) {
          covers = false;
          break;
        }
        if (!sd->lo->structurallyEquals(*declLo) ||
            !sd->hi->structurallyEquals(*decl->dims[d].upper)) {
          covers = false;
          break;
        }
      }
      if (covers && decl->dims.size() <= eff.writeSection->dims.size()) {
        eff.kills = true;  // caveat: assumes the covering loops execute
      }
    }
  }

  summaries_[proc.name] = std::move(sum);
}

void SummaryBuilder::computeGlobalFacts() {
  // COMMON variables assigned exactly once in the whole program — in the
  // main program's initialization prefix (before the first call) — become
  // global constants/relations. The paper's arc3d case: "in the
  // initialization routine, the assignment JM = JMAX - 1 occurs, and this
  // relation holds for the rest of the program."
  globalConstants_.clear();
  globalRelations_.clear();
  std::set<std::string> commonNames;
  for (const auto& u : program_.units) {
    for (const auto& d : u->decls) {
      if (!d.commonBlock.empty()) commonNames.insert(d.name);
    }
  }

  const Procedure* mainUnit = nullptr;
  for (const auto& u : program_.units) {
    if (u->kind == fortran::ProcKind::Program) mainUnit = u.get();
  }

  // Write census: count, position of the write in the main unit's
  // pre-order (-1 when written outside main).
  struct WriteInfo {
    int count = 0;
    int mainPos = -1;
    const Stmt* stmt = nullptr;
  };
  std::map<std::string, WriteInfo> writes;
  std::map<fortran::StmtId, int> mainPos;
  int firstCallPos = 1 << 30;
  if (mainUnit) {
    int idx = 0;
    mainUnit->forEachStmt([&](const Stmt& s) {
      mainPos[s.id] = idx;
      if (!ir::calledFunctions(s).empty()) {
        firstCallPos = std::min(firstCallPos, idx);
      }
      ++idx;
    });
  }
  for (const auto& u : program_.units) {
    u->forEachStmt([&](const Stmt& s) {
      for (const Ref& r : ir::collectRefs(s)) {
        if (!r.isWrite() || !commonNames.count(r.name)) continue;
        if (r.kind == RefKind::CallActual &&
            !refMayWrite(s, r, /*duringSummarize=*/false)) {
          continue;
        }
        WriteInfo& w = writes[r.name];
        ++w.count;
        w.stmt = &s;
        w.mainPos = (u.get() == mainUnit && mainPos.count(s.id))
                        ? mainPos[s.id]
                        : -1;
      }
    });
  }

  for (const auto& [name, w] : writes) {
    if (w.count != 1 || w.mainPos < 0 || w.mainPos >= firstCallPos) continue;
    const Stmt* s = w.stmt;
    if (s->kind != StmtKind::Assign || s->lhs->kind != ExprKind::VarRef) {
      continue;
    }
    LinearExpr form = dataflow::linearize(*s->rhs);
    if (!form.affine) continue;
    bool operandsStable = true;
    for (const auto& [v, c] : form.coef) {
      (void)c;
      if (!commonNames.count(v)) {
        operandsStable = false;
        continue;
      }
      auto itW = writes.find(v);
      if (itW != writes.end()) {
        // The operand may only be written in main, before this assignment.
        const WriteInfo& ow = itW->second;
        bool allBefore = ow.mainPos >= 0 && ow.mainPos < w.mainPos &&
                         ow.count == 1;
        if (!allBefore) operandsStable = false;
      }
    }
    if (form.isConstant()) {
      globalConstants_[name] = form.constant;
    } else if (operandsStable) {
      globalRelations_.push_back({name, form});
    }
  }
}

void SummaryBuilder::computeFormalConstants() {
  // Formal constants: every call site passes the same literal. Pure AST +
  // call graph — no summaries — so this is valid before summarization.
  formalConstants_.clear();
  for (const auto& u : program_.units) {
    auto calls = callGraph_.callsTo(u->name);
    if (calls.empty()) continue;
    for (std::size_t i = 0; i < u->params.size(); ++i) {
      bool allSame = true;
      bool haveValue = false;
      long long value = 0;
      for (const CallSite* cs : calls) {
        if (cs->stmt->kind != StmtKind::Call ||
            i >= cs->stmt->args.size()) {
          allSame = false;
          break;
        }
        const Expr& a = *cs->stmt->args[i];
        if (a.kind != ExprKind::IntConst) {
          allSame = false;
          break;
        }
        if (!haveValue) {
          value = a.intValue;
          haveValue = true;
        } else if (value != a.intValue) {
          allSame = false;
          break;
        }
      }
      if (allSame && haveValue) {
        formalConstants_[u->name][u->params[i]] = value;
      }
    }
  }
}

bool SummaryBuilder::usesGlobalFacts(const std::string& procName) const {
  const Procedure* proc = program_.findUnit(procName);
  if (!proc) return false;
  for (const auto& d : proc->decls) {
    if (!d.commonBlock.empty()) return true;
  }
  return false;
}

std::map<std::string, long long> SummaryBuilder::inheritedConstantsFor(
    const std::string& procName) const {
  std::map<std::string, long long> out;
  const Procedure* proc = nullptr;
  for (const auto& u : program_.units) {
    if (u->name == procName) proc = u.get();
  }
  if (!proc) return out;
  for (const auto& d : proc->decls) {
    if (d.commonBlock.empty()) continue;
    auto it = globalConstants_.find(d.name);
    if (it != globalConstants_.end()) out[d.name] = it->second;
  }
  auto itF = formalConstants_.find(procName);
  if (itF != formalConstants_.end()) {
    for (const auto& [name, v] : itF->second) out[name] = v;
  }
  return out;
}

std::vector<dataflow::Relation> SummaryBuilder::inheritedRelationsFor(
    const std::string& procName) const {
  std::vector<dataflow::Relation> out;
  const Procedure* proc = nullptr;
  for (const auto& u : program_.units) {
    if (u->name == procName) proc = u.get();
  }
  if (!proc) return out;
  // Without a COMMON declaration nothing below can match; returning early
  // also keeps this readable concurrently with the census task (a
  // no-COMMON procedure's analysis need not wait for computeGlobalFacts).
  if (!usesGlobalFacts(procName)) return out;
  for (const auto& r : globalRelations_) {
    // The relation's variable must be visible here, and the procedure must
    // not be the one performing the assignment... single-assignment already
    // guarantees validity after the write; we additionally require the
    // variable to be in COMMON in this procedure.
    const fortran::VarDecl* d = proc->findDecl(r.name);
    if (d && !d->commonBlock.empty()) out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

InterproceduralOracle::InterproceduralOracle(const SummaryBuilder& summaries,
                                             const Procedure& caller)
    : summaries_(summaries), caller_(caller) {}

bool InterproceduralOracle::knowsCallee(const std::string& name) const {
  return summaries_.summaryOf(name) != nullptr;
}

std::vector<dep::CallEffect> InterproceduralOracle::effectsOfCall(
    const Stmt& stmt, const std::string& callee) const {
  std::vector<dep::CallEffect> out;
  const ProcSummary* cs = summaries_.summaryOf(callee);
  if (!cs) return out;

  const std::vector<ExprPtr>* args = nullptr;
  if (stmt.kind == StmtKind::Call && stmt.callee == callee) {
    args = &stmt.args;
  } else {
    stmt.forEachExpr([&](const Expr& e) {
      if (e.kind == ExprKind::FuncCall && e.name == callee) args = &e.args;
    });
  }

  std::map<std::string, const Expr*> formalMap;
  if (args) {
    for (std::size_t i = 0; i < cs->formals.size() && i < args->size();
         ++i) {
      formalMap[cs->formals[i]] = (*args)[i].get();
    }
  }
  std::set<std::string> passThrough;
  for (const auto& d : caller_.decls) {
    if (!d.commonBlock.empty()) passThrough.insert(d.name);
  }
  // Caller locals referenced by actual expressions are also valid symbols
  // after substitution; substituteFormals only needs passThrough for
  // callee-scope names that are NOT formals (i.e. COMMON).

  for (const auto& [var, eff] : cs->effects) {
    std::string target;
    bool wholeArray = true;
    auto itF = formalMap.find(var);
    if (itF != formalMap.end()) {
      const Expr* actual = itF->second;
      if (actual->kind == ExprKind::VarRef) {
        target = actual->name;
      } else if (actual->kind == ExprKind::ArrayRef) {
        target = actual->name;
        wholeArray = false;
      } else {
        continue;
      }
    } else {
      target = var;
      if (!passThrough.count(target)) continue;  // not visible here
    }

    auto translateSection =
        [&](const std::optional<dep::Section>& sec)
        -> std::optional<dep::Section> {
      if (!sec || !wholeArray) return std::nullopt;
      dep::Section s;
      s.array = target;
      for (const auto& d : sec->dims) {
        if (!d || !d->lo || !d->hi) {
          s.dims.emplace_back();
          continue;
        }
        ExprPtr lo = substituteFormals(*d->lo, formalMap, passThrough);
        ExprPtr hi = substituteFormals(*d->hi, formalMap, passThrough);
        if (!lo || !hi) {
          s.dims.emplace_back();
          continue;
        }
        dep::SectionDim sd;
        sd.lo = std::move(lo);
        sd.hi = std::move(hi);
        s.dims.emplace_back(std::move(sd));
      }
      return s;
    };

    if (eff.mayRead) {
      dep::CallEffect e;
      e.var = target;
      e.isArray = eff.isArray;
      e.mayRead = true;
      e.exposedRead = eff.exposedRead;
      e.section = translateSection(eff.readSection);
      out.push_back(std::move(e));
    }
    if (eff.mayWrite) {
      dep::CallEffect e;
      e.var = target;
      e.isArray = eff.isArray;
      e.mayWrite = true;
      e.kills = eff.kills;
      e.section = translateSection(eff.writeSection);
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace ps::interproc
