#ifndef PS_INTERPROC_PERSIST_H
#define PS_INTERPROC_PERSIST_H

// (De)serialization of interprocedural summaries for the persistent
// program database. The encoding is canonical — effects are a std::map,
// sections render through the expression serializer — so byte equality of
// two serialized summaries coincides with ProcSummary equality. The store
// exploits that: a procedure's content key chains the xxh64 of each direct
// callee's serialized summary, giving Merkle-style invalidation up the
// call graph.

#include "interproc/summaries.h"
#include "pdb/serial.h"

namespace ps::interproc {

void writeSummary(pdb::Writer& w, const ProcSummary& s);

/// False on malformed input (quarantine path); never throws.
[[nodiscard]] bool readSummary(pdb::Reader& r, ProcSummary* out);

/// The xxh64 fingerprint of the canonical encoding (the store's callee
/// hash-chain link).
[[nodiscard]] std::uint64_t summaryFingerprint(const ProcSummary& s);

}  // namespace ps::interproc

#endif  // PS_INTERPROC_PERSIST_H
