#ifndef PS_INTERPROC_CALLGRAPH_H
#define PS_INTERPROC_CALLGRAPH_H

#include <map>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::interproc {

/// One call site: the calling statement and the callee name. Covers CALL
/// statements and user-function invocations in expressions.
struct CallSite {
  std::string caller;
  std::string callee;
  const fortran::Stmt* stmt = nullptr;
};

/// The program call graph (the ParaScope Composition Editor's "big picture"
/// the users asked to see graphically).
class CallGraph {
 public:
  static CallGraph build(const fortran::Program& program);

  [[nodiscard]] const std::vector<CallSite>& callSites() const {
    return sites_;
  }
  [[nodiscard]] std::vector<const CallSite*> callsFrom(
      const std::string& caller) const;
  [[nodiscard]] std::vector<const CallSite*> callsTo(
      const std::string& callee) const;

  /// Procedure names in reverse topological (callee-first) order, suitable
  /// for bottom-up summary propagation. Procedures on cycles (recursion)
  /// are reported in `recursive()` and excluded from the order.
  [[nodiscard]] const std::vector<std::string>& bottomUpOrder() const {
    return bottomUp_;
  }
  [[nodiscard]] const std::vector<std::string>& recursive() const {
    return recursive_;
  }

  /// Callees referenced but not defined in the program (library routines).
  [[nodiscard]] const std::vector<std::string>& unresolved() const {
    return unresolved_;
  }

  /// Render the textual call-graph listing PED's interface exposes.
  [[nodiscard]] std::string textual() const;

 private:
  std::vector<CallSite> sites_;
  std::vector<std::string> bottomUp_;
  std::vector<std::string> recursive_;
  std::vector<std::string> unresolved_;
};

}  // namespace ps::interproc

#endif  // PS_INTERPROC_CALLGRAPH_H
