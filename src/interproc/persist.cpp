#include "interproc/persist.h"

#include "dependence/persist.h"
#include "support/hash.h"

namespace ps::interproc {

namespace {

constexpr std::uint32_t kMaxNames = 1U << 20;

void writeOptSection(pdb::Writer& w, const std::optional<dep::Section>& s) {
  w.u8(s.has_value() ? 1 : 0);
  if (s) dep::writeSection(w, *s);
}

bool readOptSection(pdb::Reader& r, std::optional<dep::Section>* out) {
  const std::uint8_t has = r.u8();
  if (!r.ok() || has > 1) return false;
  if (!has) {
    out->reset();
    return true;
  }
  dep::Section s;
  if (!dep::readSection(r, &s)) return false;
  *out = std::move(s);
  return true;
}

}  // namespace

void writeSummary(pdb::Writer& w, const ProcSummary& s) {
  w.str(s.name);
  w.u32(static_cast<std::uint32_t>(s.formals.size()));
  for (const auto& f : s.formals) w.str(f);
  w.u32(static_cast<std::uint32_t>(s.effects.size()));
  for (const auto& [var, e] : s.effects) {
    w.str(var);
    std::uint8_t flags = 0;
    if (e.isArray) flags |= 1U;
    if (e.mayRead) flags |= 2U;
    if (e.mayWrite) flags |= 4U;
    if (e.kills) flags |= 8U;
    if (e.exposedRead) flags |= 16U;
    w.u8(flags);
    writeOptSection(w, e.readSection);
    writeOptSection(w, e.writeSection);
  }
}

bool readSummary(pdb::Reader& r, ProcSummary* out) {
  out->name = r.str();
  const std::uint32_t nFormals = r.u32();
  if (!r.ok() || nFormals > kMaxNames) return false;
  out->formals.clear();
  for (std::uint32_t i = 0; i < nFormals; ++i) {
    out->formals.push_back(r.str());
  }
  const std::uint32_t nEffects = r.u32();
  if (!r.ok() || nEffects > kMaxNames) return false;
  out->effects.clear();
  for (std::uint32_t i = 0; i < nEffects; ++i) {
    std::string var = r.str();
    const std::uint8_t flags = r.u8();
    if (!r.ok() || flags > 31) return false;
    VarEffect e;
    e.isArray = (flags & 1U) != 0;
    e.mayRead = (flags & 2U) != 0;
    e.mayWrite = (flags & 4U) != 0;
    e.kills = (flags & 8U) != 0;
    e.exposedRead = (flags & 16U) != 0;
    if (!readOptSection(r, &e.readSection) ||
        !readOptSection(r, &e.writeSection)) {
      return false;
    }
    out->effects.emplace(std::move(var), std::move(e));
  }
  return r.ok();
}

std::uint64_t summaryFingerprint(const ProcSummary& s) {
  pdb::Writer w;
  writeSummary(w, s);
  return support::xxh64(w.data());
}

}  // namespace ps::interproc
