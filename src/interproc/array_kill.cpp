#include "interproc/array_kill.h"

#include <algorithm>
#include <map>
#include <set>

#include "dataflow/linear.h"
#include "dependence/fm.h"
#include "ir/refs.h"

namespace ps::interproc {

using dataflow::LinearExpr;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using ir::Loop;
using ir::Ref;
using ir::RefKind;

namespace {

/// Loops strictly inside `outer` that enclose `stmt`.
std::vector<const Loop*> innerChain(ir::ProcedureModel& model,
                                    const Loop* outer, const Stmt* stmt) {
  std::vector<const Loop*> chain;
  const Loop* l = model.enclosingLoop(stmt->id);
  while (l && l != outer) {
    chain.push_back(l);
    l = l->parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Constraints binding a loop chain's normalized iteration variables (the
/// IVs themselves are used as FM variables, with lo <= iv <= hi).
void addLoopConstraints(const std::vector<const Loop*>& chain,
                        const std::map<std::string, LinearExpr>& subst,
                        std::vector<dep::Constraint>& cs, bool* ok) {
  for (const Loop* l : chain) {
    LinearExpr lo = dataflow::linearize(*l->stmt->doLo, subst);
    LinearExpr hi = dataflow::linearize(*l->stmt->doHi, subst);
    if (!lo.affine || !hi.affine) {
      *ok = false;
      return;
    }
    LinearExpr lower;
    lower.coef[l->inductionVar()] = 1;
    lower.add(lo, -1);
    cs.push_back(dep::Constraint::ge0(std::move(lower)));
    LinearExpr upper = hi;
    upper.coef[l->inductionVar()] -= 1;
    if (upper.coef[l->inductionVar()] == 0) {
      upper.coef.erase(l->inductionVar());
    }
    cs.push_back(dep::Constraint::ge0(std::move(upper)));
  }
}

/// Widen a subscript over a loop chain into [lo, hi] forms; false on
/// failure or when leftover variables are iteration-variant in `outer`.
bool widen(const Expr& sub, const std::vector<const Loop*>& chain,
           const std::set<std::string>& variantInOuter,
           const std::map<std::string, LinearExpr>& subst, LinearExpr* loOut,
           LinearExpr* hiOut) {
  LinearExpr f = dataflow::linearize(sub, subst);
  if (!f.affine) return false;
  LinearExpr lo = f, hi = f;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Loop* l = *it;
    const std::string& iv = l->inductionVar();
    long long cl = lo.coefOf(iv), ch = hi.coefOf(iv);
    if (cl == 0 && ch == 0) continue;
    LinearExpr lob = dataflow::linearize(*l->stmt->doLo, subst);
    LinearExpr hib = dataflow::linearize(*l->stmt->doHi, subst);
    if (!lob.affine || !hib.affine) return false;
    if (l->stmt->doStep && !l->stmt->doStep->isIntConst(1)) return false;
    if (cl != 0) {
      lo.coef.erase(iv);
      lo.add(cl > 0 ? lob : hib, cl);
    }
    if (ch != 0) {
      hi.coef.erase(iv);
      hi.add(ch > 0 ? hib : lob, ch);
    }
  }
  for (const auto& [v, c] : lo.coef) {
    (void)c;
    if (variantInOuter.count(v)) return false;
  }
  for (const auto& [v, c] : hi.coef) {
    (void)c;
    if (variantInOuter.count(v)) return false;
  }
  *loOut = std::move(lo);
  *hiOut = std::move(hi);
  return true;
}

/// Is the read subscript provably within [lo, hi] for every iteration of
/// its inner loops? `facts` carry non-emptiness assumptions (hi - lo >= 0
/// for the writing loops: if the covering write never executed the read
/// would see undefined storage anyway, the classical array-kill caveat).
bool covered(const Expr& readSub, const std::vector<const Loop*>& readChain,
             const LinearExpr& lo, const LinearExpr& hi,
             const std::map<std::string, LinearExpr>& subst,
             const std::vector<dep::Constraint>& facts) {
  LinearExpr f = dataflow::linearize(readSub, subst);
  if (!f.affine) return false;
  // Below-lower violation: f <= lo - 1 feasible?
  {
    std::vector<dep::Constraint> cs = facts;
    bool ok = true;
    addLoopConstraints(readChain, subst, cs, &ok);
    if (!ok) return false;
    LinearExpr viol = lo;
    viol.add(f, -1);  // lo - f >= 1
    cs.push_back(dep::Constraint::gt0(std::move(viol)));
    dep::FourierMotzkin fm(std::move(cs));
    if (!fm.infeasible()) return false;
  }
  // Above-upper violation: f >= hi + 1 feasible?
  {
    std::vector<dep::Constraint> cs = facts;
    bool ok = true;
    addLoopConstraints(readChain, subst, cs, &ok);
    if (!ok) return false;
    LinearExpr viol = f;
    viol.add(hi, -1);  // f - hi >= 1
    cs.push_back(dep::Constraint::gt0(std::move(viol)));
    dep::FourierMotzkin fm(std::move(cs));
    if (!fm.infeasible()) return false;
  }
  return true;
}

}  // namespace

std::vector<ArrayKill> findArrayKills(ir::ProcedureModel& model,
                                      const dep::DependenceGraph& graph,
                                      const dep::SideEffectOracle* oracle) {
  dep::AnalysisContext ctx;
  ctx.oracle = oracle;
  return findArrayKills(model, graph, &ctx);
}

std::vector<ArrayKill> findArrayKills(ir::ProcedureModel& model,
                                      const dep::DependenceGraph& graph,
                                      const dep::AnalysisContext* ctx) {
  std::vector<ArrayKill> out;
  const fortran::Procedure& proc = model.procedure();
  const dep::SideEffectOracle* oracle = ctx ? ctx->oracle : nullptr;

  // Symbolic relations become a substitution so related names (JM vs JMAX)
  // compare in one namespace; user facts join the coverage prover.
  std::map<std::string, LinearExpr> subst;
  std::vector<dep::Constraint> userFacts;
  if (ctx) {
    for (const auto& r : ctx->inheritedRelations) subst[r.name] = r.value;
    for (const auto& f : ctx->facts) {
      userFacts.push_back(f.strict ? dep::Constraint::gt0(f.expr)
                                   : dep::Constraint::ge0(f.expr));
    }
  }

  for (const auto& loopPtr : model.loops()) {
    const Loop* loop = loopPtr.get();

    // Arrays whose carried dependences serialize this loop.
    std::set<std::string> candidates;
    for (const auto* d : graph.parallelismInhibitors(*loop)) {
      const fortran::VarDecl* decl = proc.findDecl(d->variable);
      if (decl && decl->isArray()) candidates.insert(d->variable);
    }
    if (candidates.empty()) continue;

    // Iteration-variant names of this loop.
    std::set<std::string> variant;
    variant.insert(loop->inductionVar());
    for (const Stmt* s : loop->bodyStmts) {
      for (const Ref& r : ir::collectRefs(*s)) {
        if (r.isWrite()) variant.insert(r.name);
      }
    }

    for (const std::string& array : candidates) {
      // Walk the loop's immediate body in order; the first statement (or
      // statement group) touching the array must write a coverable section
      // with no prior read.
      bool interproc = false;
      bool haveSection = false;
      std::vector<std::pair<LinearExpr, LinearExpr>> sectionDims;
      std::vector<dep::Constraint> nonEmpty;  // hi - lo >= 0 per dim
      bool killed = true;
      bool sawAccess = false;
      auto rebuildNonEmpty = [&] {
        // Accumulate: every section version's non-emptiness remains a valid
        // assumption (each covering write loop executed).
        for (const auto& [lo, hi] : sectionDims) {
          LinearExpr span = hi;
          span.add(lo, -1);
          nonEmpty.push_back(dep::Constraint::ge0(std::move(span)));
        }
      };
      auto allFacts = [&] {
        std::vector<dep::Constraint> facts = nonEmpty;
        facts.insert(facts.end(), userFacts.begin(), userFacts.end());
        return facts;
      };
      // Prove a linear inequality e >= 0 under the current facts (its
      // negation must be infeasible).
      auto proves = [&](LinearExpr e) {
        std::vector<dep::Constraint> cs = allFacts();
        LinearExpr neg;
        neg.add(e, -1);  // -e >= 1  i.e.  e <= -1
        cs.push_back(dep::Constraint::gt0(std::move(neg)));
        dep::FourierMotzkin fm(std::move(cs));
        return fm.infeasible();
      };
      // A later write extends the killed section when it is adjacent or
      // overlapping (arc3d's boundary-row copy WR1(JMAX,K) extends
      // [1, JM] to [1, JMAX] given JM = JMAX - 1).
      auto extendSection = [&](const Stmt* wstmt, const Expr* wref) {
        auto chain = innerChain(model, loop, wstmt);
        for (std::size_t dmn = 0;
             dmn < wref->args.size() && dmn < sectionDims.size(); ++dmn) {
          LinearExpr wlo, whi;
          if (!widen(*wref->args[dmn], chain, variant, subst, &wlo, &whi)) {
            continue;
          }
          auto& [lo, hi] = sectionDims[dmn];
          // Upward: wlo <= hi + 1 and whi >= hi  =>  hi := whi.
          LinearExpr adjacency = hi;   // hi + 1 - wlo >= 0
          adjacency.add(wlo, -1);
          adjacency.constant += 1;
          LinearExpr growth = whi;     // whi - hi >= 0
          growth.add(hi, -1);
          if (proves(adjacency) && proves(growth)) {
            hi = whi;
            rebuildNonEmpty();
            continue;
          }
          // Downward: whi >= lo - 1 and wlo <= lo  =>  lo := wlo.
          LinearExpr adjacency2 = whi;  // whi - lo + 1 >= 0
          adjacency2.add(lo, -1);
          adjacency2.constant += 1;
          LinearExpr growth2 = lo;      // lo - wlo >= 0
          growth2.add(wlo, -1);
          if (proves(adjacency2) && proves(growth2)) {
            lo = wlo;
            rebuildNonEmpty();
          }
        }
      };

      for (const auto& topPtr : loop->stmt->body) {
        const Stmt* top = topPtr.get();
        // Collect this group's reads and writes of the array, in textual
        // order within the group.
        struct Access {
          const Stmt* stmt;
          const Expr* ref;
          bool write;
        };
        std::vector<Access> accesses;
        top->forEach([&](const Stmt& s) {
          for (const Ref& r : ir::collectRefs(s)) {
            if (r.name != array) continue;
            if (r.kind == RefKind::CallActual) {
              accesses.push_back({&s, r.expr, true});  // resolved below
            } else if (r.isArrayRef()) {
              accesses.push_back({&s, r.expr, r.isWrite()});
            }
          }
        });
        if (accesses.empty()) continue;

        if (!sawAccess) {
          sawAccess = true;
          // The first accessing group must establish the killed section.
          const Stmt* first = accesses.front().stmt;
          if (first->kind == StmtKind::Call && oracle) {
            bool resolved = false;
            for (const auto& callee : ir::calledFunctions(*first)) {
              if (!oracle->knowsCallee(callee)) continue;
              for (const auto& e : oracle->effectsOfCall(*first, callee)) {
                if (e.var != array || !e.mayWrite || !e.kills ||
                    !e.section) {
                  continue;
                }
                sectionDims.clear();
                bool all = true;
                for (const auto& dPtr : e.section->dims) {
                  if (!dPtr || !dPtr->lo || !dPtr->hi) {
                    all = false;
                    break;
                  }
                  LinearExpr lo = dataflow::linearize(*dPtr->lo);
                  LinearExpr hi = dataflow::linearize(*dPtr->hi);
                  if (!lo.affine || !hi.affine) {
                    all = false;
                    break;
                  }
                  sectionDims.emplace_back(std::move(lo), std::move(hi));
                }
                if (all) {
                  haveSection = true;
                  interproc = true;
                  resolved = true;
                  rebuildNonEmpty();
                }
              }
            }
            if (!resolved) {
              killed = false;
              break;
            }
            continue;
          }
          // A direct write group: no read may precede the write, and the
          // write's section must widen cleanly.
          if (!accesses.front().write) {
            killed = false;
            break;
          }
          const Expr* w = accesses.front().ref;
          auto chain = innerChain(model, loop, accesses.front().stmt);
          sectionDims.clear();
          bool all = true;
          for (const auto& sub : w->args) {
            LinearExpr lo, hi;
            if (!widen(*sub, chain, variant, subst, &lo, &hi)) {
              all = false;
              break;
            }
            sectionDims.emplace_back(std::move(lo), std::move(hi));
          }
          if (!all) {
            killed = false;
            break;
          }
          haveSection = true;
          rebuildNonEmpty();
          // Reads inside the same group must also be covered (e.g. the
          // write loop reads what it already wrote) — check them below
          // like any other read, except the very first access.
          for (std::size_t k = 1; k < accesses.size(); ++k) {
            if (accesses[k].write) continue;
            auto rc = innerChain(model, loop, accesses[k].stmt);
            const Expr* r = accesses[k].ref;
            for (std::size_t dmn = 0;
                 dmn < r->args.size() && dmn < sectionDims.size(); ++dmn) {
              if (!covered(*r->args[dmn], rc, sectionDims[dmn].first,
                           sectionDims[dmn].second, subst, allFacts())) {
                killed = false;
              }
            }
          }
          if (!killed) break;
          continue;
        }

        // Later groups: writes may extend the killed section; every read
        // must be covered by it.
        if (!haveSection) {
          killed = false;
          break;
        }
        for (const auto& acc : accesses) {
          if (acc.write && acc.ref) {
            extendSection(acc.stmt, acc.ref);
            continue;
          }
          if (acc.write) continue;
          auto rc = innerChain(model, loop, acc.stmt);
          const Expr* r = acc.ref;
          if (!r) {
            killed = false;
            break;
          }
          for (std::size_t dmn = 0;
               dmn < r->args.size() && dmn < sectionDims.size(); ++dmn) {
            if (!covered(*r->args[dmn], rc, sectionDims[dmn].first,
                         sectionDims[dmn].second, subst, allFacts())) {
              killed = false;
            }
          }
        }
        if (!killed) break;
      }

      if (sawAccess && haveSection && killed) {
        out.push_back({loop->stmt->id, array, interproc});
      }
    }
  }
  return out;
}

}  // namespace ps::interproc
