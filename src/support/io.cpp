#include "support/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ps::support {

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

bool writeFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace ps::support
