#include "support/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ps::support {

std::string IoStatus::str() const {
  if (ok()) return {};
  return stage + ": " + std::strerror(error);
}

IoStatus readFileEx(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {"open", errno};
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return {"read", err};
    }
    if (n == 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  *out = std::move(buf);
  return {};
}

IoStatus writeFileAtomicEx(const std::string& path, const std::string& data) {
  // Unique per-writer temp name in the same directory (rename must not
  // cross filesystems): pid disambiguates processes, the counter
  // disambiguates threads and successive writes within one process. A
  // fixed ".tmp" suffix here was the torn-save bug — two concurrent savers
  // opened the SAME temp file and interleaved their images.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return {"create", errno};
  auto fail = [&](const char* stage, int err) -> IoStatus {
    ::close(fd);
    std::remove(tmp.c_str());
    return {stage, err};
  };
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write", errno);
    }
    off += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the data must be on disk before the
  // rename can make it the store, or a crash could publish a hole.
  if (::fsync(fd) != 0) return fail("fsync", errno);
  if (::close(fd) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return {"close", err};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return {"rename", err};
  }
  return {};
}

bool readFile(const std::string& path, std::string* out) {
  return readFileEx(path, out).ok();
}

bool writeFileAtomic(const std::string& path, const std::string& data) {
  return writeFileAtomicEx(path, data).ok();
}

}  // namespace ps::support
