#include "support/diagnostics.h"

namespace ps {

namespace {
const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::str() const {
  return loc.str() + ": " + severityName(severity) + ": " + message;
}

void DiagnosticEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Note, loc, std::move(msg)});
}

void DiagnosticEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

void DiagnosticEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Error, loc, std::move(msg)});
  ++errorCount_;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

std::string DiagnosticEngine::dump() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace ps
