#include "support/diagnostics.h"

namespace ps {

namespace {
const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::str() const {
  std::string out = loc.str() + ": " + severityName(severity) + ": " + message;
  if (!sourceLine.empty() && loc.valid()) {
    out += "\n  ";
    out += sourceLine;
    out += "\n  ";
    // Caret under the offending column (1-based; clamp into the line).
    int col = loc.column > 0 ? loc.column : 1;
    int max = static_cast<int>(sourceLine.size());
    if (col > max + 1) col = max + 1;
    for (int i = 1; i < col; ++i) {
      out += sourceLine[static_cast<std::size_t>(i - 1)] == '\t' ? '\t' : ' ';
    }
    out += '^';
  }
  return out;
}

void DiagnosticEngine::setSourceText(std::string_view source) {
  sourceLines_.clear();
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < source.size()) {
        sourceLines_.emplace_back(source.substr(start));
      }
      break;
    }
    sourceLines_.emplace_back(source.substr(start, end - start));
    start = end + 1;
  }
}

std::string DiagnosticEngine::lineAt(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > sourceLines_.size()) {
    return {};
  }
  return sourceLines_[static_cast<std::size_t>(line - 1)];
}

void DiagnosticEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Note, loc, std::move(msg), lineAt(loc.line)});
}

void DiagnosticEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Warning, loc, std::move(msg), lineAt(loc.line)});
}

void DiagnosticEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Error, loc, std::move(msg), lineAt(loc.line)});
  ++errorCount_;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

std::string DiagnosticEngine::dump() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace ps
