#ifndef PS_SUPPORT_AUDIT_H
#define PS_SUPPORT_AUDIT_H

#include <string>
#include <vector>

#include "dependence/graph.h"
#include "fortran/ast.h"
#include "ir/model.h"

namespace ps::audit {

/// How much checking to pay for. Cheap covers the structural invariants
/// that every edit/transform must preserve (id uniqueness, AST shape,
/// loop-tree agreement, dependence-edge liveness) and is fast enough to run
/// after every mutation. Deep adds the pretty-print -> re-parse round trip,
/// intended for tests and the fuzz harness.
enum class Depth { Cheap, Deep };

/// One invariant violation: which check tripped and where.
struct Violation {
  std::string check;   // "stmt-id-unique", "ast-shape", ...
  std::string detail;

  [[nodiscard]] std::string str() const { return check + ": " + detail; }
};

/// The outcome of an audit pass over the program database.
struct Report {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void add(std::string check, std::string detail) {
    violations.push_back({std::move(check), std::move(detail)});
  }
  void merge(Report other) {
    for (auto& v : other.violations) violations.push_back(std::move(v));
  }
  [[nodiscard]] std::string str() const;
};

/// Program-wide invariants: every statement id is valid, unique across all
/// units, and below the program's id counter; every statement has the
/// operands its kind requires (an Assign has both sides, a DO has a
/// variable and bounds, IF arms have conditions). These hold even for the
/// partial programs produced by error recovery — the parser never emits a
/// malformed statement node.
void auditProgram(const fortran::Program& prog, Report& out);

/// Loop-tree/AST agreement: the model's pre-order statement index matches a
/// fresh traversal of the procedure, every DO statement has exactly one
/// loop-tree node, and loop parent/level links are consistent. Run against
/// a workspace's model after each incremental reanalysis.
void auditModel(const ir::ProcedureModel& model, Report& out);

/// Dependence-graph consistency with the model it was built (or spliced)
/// against: edge endpoints and carrier loops name live statements, edge ids
/// are unique, levels fit the direction vectors.
void auditGraph(const dep::DependenceGraph& graph,
                const ir::ProcedureModel& model, Report& out);

/// Deep check: pretty-print the program and re-parse it; the result must
/// parse without errors and agree unit-for-unit on the executable statement
/// kind sequence. Catches printer/parser drift that would corrupt the
/// source pane's edit cycle.
void auditRoundTrip(const fortran::Program& prog, Report& out);

/// Convenience: the whole battery at the given depth. Model/graph checks
/// are the caller's to add per workspace (they need the analysis state).
[[nodiscard]] Report auditAll(const fortran::Program& prog, Depth depth);

}  // namespace ps::audit

#endif  // PS_SUPPORT_AUDIT_H
