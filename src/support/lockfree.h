#ifndef PS_SUPPORT_LOCKFREE_H
#define PS_SUPPORT_LOCKFREE_H

// Lock-free building blocks for the analysis substrate:
//
//  - ChaseLevDeque: the classic work-stealing deque (Chase & Lev, SPAA'05,
//    with the C11 memory orderings of Lê et al., PPoPP'13). The owner pushes
//    and pops at the bottom without synchronization beyond fences; thieves
//    CAS the top. The circular buffer grows on demand; superseded buffers
//    are kept on a retire chain owned by the deque, because a thief may
//    still be reading a stale buffer pointer when the owner grows — they
//    are freed wholesale at destruction (total retained memory is < 2x the
//    final buffer, since capacities double).
//
//  - MpmcChannel: Dmitry Vyukov's bounded MPMC queue (per-cell sequence
//    numbers). Used as the external-submission channel into each worker:
//    in the common case it degenerates to an SPSC ring (one session thread
//    producing, one worker consuming), but it stays safe when several
//    server sessions submit concurrently and when idle workers drain a
//    busy sibling's channel. No node allocation, no reclamation problem.
//
//  - lockfreeDefault(): the PS_LOCKFREE escape hatch. Both the lock-free
//    and the mutex paths stay compiled; PS_LOCKFREE=0 selects the mutex
//    baseline at runtime for A/B benching (bench_contention) and for
//    bisecting any suspected substrate bug.
//
// ThreadSanitizer: TSan does not model standalone memory fences
// (std::atomic_thread_fence), so the fence-based deque would report false
// races under -fsanitize=thread. Under TSan every atomic operation in this
// header is promoted to seq_cst and the fences become no-ops: the
// all-seq-cst execution is sequentially consistent, which is the memory
// model the original Chase–Lev proof assumes, so the promotion is
// correctness-preserving (just slower — fine for a sanitizer build).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>

#if defined(__SANITIZE_THREAD__)
#define PS_LOCKFREE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PS_LOCKFREE_TSAN 1
#endif
#endif

namespace ps::support {

namespace lf {
#ifdef PS_LOCKFREE_TSAN
inline constexpr std::memory_order relaxed = std::memory_order_seq_cst;
inline constexpr std::memory_order acquire = std::memory_order_seq_cst;
inline constexpr std::memory_order release = std::memory_order_seq_cst;
inline constexpr std::memory_order acq_rel = std::memory_order_seq_cst;
inline void fenceSeqCst() {}  // every op is already seq_cst
#else
inline constexpr std::memory_order relaxed = std::memory_order_relaxed;
inline constexpr std::memory_order acquire = std::memory_order_acquire;
inline constexpr std::memory_order release = std::memory_order_release;
inline constexpr std::memory_order acq_rel = std::memory_order_acq_rel;
inline void fenceSeqCst() { std::atomic_thread_fence(std::memory_order_seq_cst); }
#endif
}  // namespace lf

/// Runtime selection of the lock-free substrate. Defaults to on; set
/// PS_LOCKFREE=0 to fall back to the mutex-based TaskPool queues and the
/// striped-lock DepMemo (the pre-lock-free baseline, kept compiled for A/B
/// comparison).
[[nodiscard]] inline bool lockfreeDefault() {
  static const bool enabled = [] {
    const char* env = std::getenv("PS_LOCKFREE");
    return env == nullptr || *env == '\0' || (env[0] != '0' || env[1] != '\0');
  }();
  return enabled;
}

// ---------------------------------------------------------------------------
// ChaseLevDeque
// ---------------------------------------------------------------------------

/// Work-stealing deque of opaque pointers. pushBottom/popBottom are
/// OWNER-ONLY (exactly one thread, the worker that owns the deque); steal
/// may be called by any number of thieves concurrently.
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initialCapacity = 64)
      : buffer_(newBuffer(roundUpPow2(initialCapacity), nullptr)) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    Buffer* b = buffer_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Buffer* prev = b->prev;
      freeBuffer(b);
      b = prev;
    }
  }

  /// Owner only. Never fails: grows the buffer when full.
  void pushBottom(void* item) {
    const std::int64_t b = bottom_.load(lf::relaxed);
    const std::int64_t t = top_.load(lf::acquire);
    Buffer* buf = buffer_.load(lf::relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->at(b).store(item, lf::relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, lf::relaxed);
  }

  /// Owner only. nullptr = empty.
  void* popBottom() {
    const std::int64_t b = bottom_.load(lf::relaxed) - 1;
    Buffer* buf = buffer_.load(lf::relaxed);
    bottom_.store(b, lf::relaxed);
    lf::fenceSeqCst();
    std::int64_t t = top_.load(lf::relaxed);
    void* item = nullptr;
    if (t <= b) {
      item = buf->at(b).load(lf::relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief got it
        }
        bottom_.store(b + 1, lf::relaxed);
      }
    } else {
      bottom_.store(b + 1, lf::relaxed);  // deque was empty
    }
    return item;
  }

  enum class Steal { Got, Empty, Abort };

  /// Any thread. Abort = lost a CAS race with the owner or another thief
  /// (the caller should count it as contention and move on / retry).
  Steal steal(void** out) {
    std::int64_t t = top_.load(lf::acquire);
    lf::fenceSeqCst();
    const std::int64_t b = bottom_.load(lf::acquire);
    if (t >= b) return Steal::Empty;
    Buffer* buf = buffer_.load(lf::acquire);
    void* item = buf->at(t).load(lf::relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return Steal::Abort;
    }
    *out = item;
    return Steal::Got;
  }

  /// Racy size estimate (telemetry only).
  [[nodiscard]] std::size_t sizeApprox() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] std::size_t capacity() const {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Buffer {
    std::size_t capacity = 0;  // power of two
    Buffer* prev = nullptr;    // superseded predecessor, freed at destruction
    std::atomic<void*>* slots = nullptr;

    [[nodiscard]] std::atomic<void*>& at(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)];
    }
  };

  static std::size_t roundUpPow2(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  static Buffer* newBuffer(std::size_t capacity, Buffer* prev) {
    Buffer* b = new Buffer;
    b->capacity = capacity;
    b->prev = prev;
    b->slots = new std::atomic<void*>[capacity];
    return b;
  }

  static void freeBuffer(Buffer* b) {
    delete[] b->slots;
    delete b;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* bigger = newBuffer(old->capacity * 2, old);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->at(i).store(old->at(i).load(lf::relaxed), lf::relaxed);
    }
    // Thieves holding the old pointer still read valid data: entries
    // [t, b) were copied, old slots are never cleared, and the old buffer
    // stays allocated on the retire chain until the deque dies.
    buffer_.store(bigger, lf::release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
};

// ---------------------------------------------------------------------------
// MpmcChannel
// ---------------------------------------------------------------------------

/// Vyukov bounded MPMC ring of opaque pointers. tryPush/tryPop never block
/// and never allocate; each is one CAS on a position counter plus a
/// release/acquire pair on the cell's sequence number. Cell payloads are
/// plain (non-atomic) because the sequence handshake orders them.
class MpmcChannel {
 public:
  explicit MpmcChannel(std::size_t capacity = 1024)
      : mask_(roundUpPow2(capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcChannel(const MpmcChannel&) = delete;
  MpmcChannel& operator=(const MpmcChannel&) = delete;

  bool tryPush(void* item) {
    std::size_t pos = enqueue_.load(lf::relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(lf::acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1, lf::relaxed)) {
          cell.item = item;
          cell.seq.store(pos + 1, lf::release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_.load(lf::relaxed);
      }
    }
  }

  bool tryPop(void** out) {
    std::size_t pos = dequeue_.load(lf::relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(lf::acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1, lf::relaxed)) {
          *out = cell.item;
          cell.seq.store(pos + mask_ + 1, lf::release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_.load(lf::relaxed);
      }
    }
  }

  /// Racy estimate (telemetry only).
  [[nodiscard]] std::size_t sizeApprox() const {
    const std::size_t e = enqueue_.load(std::memory_order_relaxed);
    const std::size_t d = dequeue_.load(std::memory_order_relaxed);
    return e > d ? e - d : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    void* item = nullptr;
  };

  static std::size_t roundUpPow2(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_{0};
  alignas(64) std::atomic<std::size_t> dequeue_{0};
};

}  // namespace ps::support

#endif  // PS_SUPPORT_LOCKFREE_H
