#ifndef PS_SUPPORT_IO_H
#define PS_SUPPORT_IO_H

// Minimal binary file I/O for the persistent program database. Reads are
// whole-file (stores are small relative to the analyses they replace);
// writes are atomic via a same-directory temp file + rename, so a crashed
// save can never leave a half-written store where the next session will
// find it — it finds either the old store or the new one.

#include <string>

namespace ps::support {

/// Read the whole file into `out`. False (out untouched) when the file is
/// missing or unreadable.
[[nodiscard]] bool readFile(const std::string& path, std::string* out);

/// Write `data` to `path` atomically (temp file + rename). False when any
/// step fails; a failed write never clobbers an existing file.
[[nodiscard]] bool writeFileAtomic(const std::string& path,
                                   const std::string& data);

}  // namespace ps::support

#endif  // PS_SUPPORT_IO_H
