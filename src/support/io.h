#ifndef PS_SUPPORT_IO_H
#define PS_SUPPORT_IO_H

// Minimal binary file I/O for the persistent program database. Reads are
// whole-file (stores are small relative to the analyses they replace);
// writes are atomic via a same-directory temp file + rename, so a crashed
// save can never leave a half-written store where the next session will
// find it — it finds either the old store or the new one.
//
// Concurrency contract: every writer renders into its OWN temp file
// (pid + process-wide counter in the name), fsyncs it, and renames it over
// the target. Concurrent writeFileAtomic calls on one path are therefore
// last-writer-wins — the surviving file is always one writer's complete
// image, never an interleaving — and a reader racing the rename sees either
// the old image or a new one, both intact.

#include <string>

namespace ps::support {

/// Where an I/O operation failed, plus the errno it failed with. The stage
/// names are stable (tests and failure reports key on them): "open",
/// "read", "create", "write", "fsync", "close", "rename".
struct IoStatus {
  std::string stage;  // empty on success
  int error = 0;      // errno at the failing stage (0 on success)

  [[nodiscard]] bool ok() const { return stage.empty(); }
  /// "stage: strerror(error)" — empty string on success.
  [[nodiscard]] std::string str() const;
};

/// Read the whole file into `out`. On failure `out` is untouched and the
/// returned status names the failing stage ("open" for a missing or
/// unreadable file, "read" for a mid-read error) and errno.
IoStatus readFileEx(const std::string& path, std::string* out);

/// Write `data` to `path` atomically: render into a uniquely named temp
/// file in the same directory, fsync it, then rename() over the target.
/// A failed write never clobbers an existing file, and concurrent writers
/// to one path never tear each other — last rename wins with a complete
/// image. The status names the failing stage and errno.
IoStatus writeFileAtomicEx(const std::string& path, const std::string& data);

/// Bool-only conveniences for callers that do not report the failure.
[[nodiscard]] bool readFile(const std::string& path, std::string* out);
[[nodiscard]] bool writeFileAtomic(const std::string& path,
                                   const std::string& data);

}  // namespace ps::support

#endif  // PS_SUPPORT_IO_H
