#include "support/hash.h"

#include <array>
#include <cstring>

namespace ps::support {

namespace {

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline std::uint64_t read64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t read32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t round1(std::uint64_t acc, std::uint64_t input) {
  acc += input * kP2;
  return rotl(acc, 31) * kP1;
}

inline std::uint64_t mergeRound(std::uint64_t acc, std::uint64_t val) {
  acc ^= round1(0, val);
  return acc * kP1 + kP4;
}

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t xxh64(std::string_view data, std::uint64_t seed) {
  const char* p = data.data();
  const char* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kP1 + kP2;
    std::uint64_t v2 = seed + kP2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kP1;
    const char* const limit = end - 32;
    do {
      v1 = round1(v1, read64(p));
      v2 = round1(v2, read64(p + 8));
      v3 = round1(v3, read64(p + 16));
      v4 = round1(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = mergeRound(h, v1);
    h = mergeRound(h, v2);
    h = mergeRound(h, v3);
    h = mergeRound(h, v4);
  } else {
    h = seed + kP5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= round1(0, read64(p));
    h = rotl(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kP1;
    h = rotl(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*p)) * kP5;
    h = rotl(h, 11) * kP1;
    ++p;
  }

  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

std::uint32_t crc32(std::string_view data) {
  const auto& table = crcTable();
  std::uint32_t c = 0xFFFFFFFFU;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace ps::support
