#ifndef PS_SUPPORT_TASKPOOL_H
#define PS_SUPPORT_TASKPOOL_H

// Parallel analysis engine primitives.
//
// Three layers, bottom up:
//
//  - Arena / ArenaAllocator: a chunked bump allocator so workers can churn
//    transient subscript / Fourier-Motzkin scratch objects without touching
//    the global heap (the malloc lock is the classic scaling killer for
//    fine-grained analysis tasks). Every thread owns one via threadArena().
//
//  - TaskPool: a fixed-size pool of workers. Two substrates, selected at
//    construction (PS_LOCKFREE, default on):
//      * lock-free: each worker owns a Chase–Lev stealing deque (owner
//        push/pop at the bottom, thieves CAS the top) plus a bounded MPMC
//        submission channel for tasks arriving from non-worker threads.
//        Workers prefer their own deque, then their own channel, then steal
//        from siblings' deques and channels. The only lock left is the
//        parking lot (idleMu_/idleCv_), entered exclusively when a thread
//        has found nothing to run anywhere.
//      * mutex (PS_LOCKFREE=0): the original per-worker mutexed deques,
//        kept compiled as the A/B baseline for bench_contention.
//    Waiting threads *help* under both substrates: they execute queued
//    tasks instead of blocking, so tasks may safely spawn subtasks into the
//    same pool and wait for them (per-nest fan-out inside a per-procedure
//    task).
//
//  - TaskGraph: a small DAG runner with per-node dependency counts, used to
//    sequence interprocedural summary tasks callee-before-caller and to gate
//    per-procedure analysis on summary completion.
//
// Determinism contract: a pool constructed with nThreads == 1 spawns no
// worker threads at all. submit() enqueues into a single FIFO and wait()
// drains it on the calling thread, so execution order equals submission
// order exactly. That makes the 1-thread parallel path bit-identical to the
// sequential path — the property Session::analyzeParallel(1) relies on.
// (The single-FIFO path is substrate-independent: nThreads == 1 always uses
// it, so PS_LOCKFREE cannot perturb the reference ordering.)

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "support/lockfree.h"

namespace ps::support {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

/// Chunked bump allocator. Allocation is a pointer increment; deallocation
/// is a no-op. Callers bracket a burst of transient allocations with
/// mark()/rewind() so the same chunk bytes are reused across bursts and the
/// arena's footprint stays at the high-water mark of a single burst.
class Arena {
 public:
  explicit Arena(std::size_t chunkBytes = 64 * 1024) : chunkBytes_(chunkBytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align);

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {current_, currentUsed()}; }
  void rewind(Mark m);
  void reset() { rewind({0, 0}); }

  /// Bytes handed out since construction (never decremented by rewind);
  /// a cheap proxy for how much heap traffic the arena absorbed.
  [[nodiscard]] std::uint64_t totalAllocated() const { return totalAllocated_; }
  [[nodiscard]] std::size_t capacity() const;

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] std::size_t currentUsed() const {
    return chunks_.empty() ? 0 : chunks_[current_].used;
  }

  std::size_t chunkBytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::uint64_t totalAllocated_ = 0;
};

/// The calling thread's scratch arena. Workers, the main thread, and any
/// helper each lazily get an independent arena, so arena use is always
/// contention-free.
Arena& threadArena();

/// Minimal std-allocator adapter over Arena, for scratch containers in hot
/// loops (FM elimination vectors, subscript term lists).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by rewind()

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_;
};

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

/// Tracks completion of a batch of tasks. pending() reaches zero when every
/// task submitted against this group has finished; the first exception
/// thrown by a member task is captured and rethrown from TaskPool::wait.
class WaitGroup {
 public:
  [[nodiscard]] long pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class TaskPool;
  std::atomic<long> pending_{0};
  std::mutex mu_;
  std::exception_ptr error_;
};

class TaskPool {
 public:
  /// nThreads == 0 picks std::thread::hardware_concurrency().
  /// nThreads == 1 spawns no threads: everything runs inline, FIFO, on the
  /// thread that calls wait()/runAll() — the deterministic reference path.
  /// `lockfree` overrides the PS_LOCKFREE default (bench_contention builds
  /// both substrates in one process to A/B them).
  explicit TaskPool(int nThreads = 0,
                    std::optional<bool> lockfree = std::nullopt);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] int threadCount() const { return threadCount_; }
  /// True when this pool runs on the Chase–Lev substrate (always false for
  /// the nThreads == 1 reference path, which has no concurrency).
  [[nodiscard]] bool lockfree() const { return lockfree_; }
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Steal probes that lost a CAS race on a victim's deque top (lock-free
  /// substrate only). The direct measure of steal-path contention: aborts
  /// mean two thieves (or a thief and the owner) collided on one task.
  [[nodiscard]] std::uint64_t stealAborts() const {
    return stealAborts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tasksExecuted() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Steal-latency telemetry for one executor: how often it went idle (no
  /// runnable or stealable task anywhere) and for how long. `histogram[i]`
  /// counts idle bouts of [2^(i-1), 2^i) microseconds (bucket 0 = sub-µs;
  /// the last bucket absorbs everything longer). Sizing per-nest task
  /// granularity: long bouts with few steals mean tasks are too coarse to
  /// keep the pool fed, many sub-ms bouts mean they are too fine.
  ///
  /// stealAttempts/stealFails make contention visible alongside idleness:
  /// an attempt is one probe of a victim's queue (deque or submission
  /// channel); a fail is a probe that came back empty-handed — because the
  /// victim was empty or, on the lock-free substrate, because a CAS race
  /// was lost (those also count into TaskPool::stealAborts()). A high
  /// fail/attempt ratio with low idle time means executors are spinning
  /// over each other's queues rather than parking.
  struct IdleStats {
    static constexpr int kBuckets = 16;
    std::uint64_t bouts = 0;
    std::uint64_t idleNanos = 0;
    std::uint64_t stealAttempts = 0;
    std::uint64_t stealFails = 0;
    std::array<std::uint64_t, kBuckets> histogram{};

    void accumulate(const IdleStats& o);
    /// Counter difference vs an earlier snapshot of the same row.
    [[nodiscard]] IdleStats since(const IdleStats& start) const;
  };

  /// One row per worker (0..threadCount()-1) plus a final row aggregating
  /// external waiters (threads blocked in wait() that are not pool
  /// workers — e.g. the session thread driving runAll). Counters are
  /// cumulative over the pool's lifetime; callers diff snapshots.
  [[nodiscard]] std::vector<IdleStats> idleStats() const;

  /// Enqueue a task accounted against `wg`.
  void submit(WaitGroup& wg, std::function<void()> fn);

  /// Block until every task in `wg` has completed, helping to execute
  /// queued tasks meanwhile. Rethrows the first captured task exception.
  void wait(WaitGroup& wg);

  /// Convenience: submit all thunks against a fresh group and wait.
  void runAll(std::vector<std::function<void()>> thunks);

 private:
  struct Task {
    std::function<void()> fn;
    WaitGroup* wg = nullptr;
  };

  /// Mutex substrate: one locked deque per worker.
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Lock-free substrate: one Chase–Lev deque (owner: the worker) plus one
  /// bounded MPMC channel for external submissions, per worker.
  struct LfWorker {
    ChaseLevDeque deque;
    MpmcChannel inbox{4096};
  };

  /// Per-executor steal counters, written on the hot path with relaxed
  /// atomics (the idle_ rows live under idleMu_ and are only touched when
  /// parking). Padded so two executors never share a line.
  struct alignas(64) StealRow {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> fails{0};
  };

  void workerLoop(int slot);
  bool tryRunOne(int preferredSlot);
  bool tryRunOneMutex(int preferredSlot, std::size_t row);
  bool tryRunOneLockfree(int preferredSlot, std::size_t row);
  void runTask(Task&& task);
  /// Wake one parked executor if any is parked (cheap no-op otherwise).
  void wakeOne();
  /// Requires idleMu_ held (both call sites already own it for the condvar).
  void recordIdle(std::size_t row, std::uint64_t nanos);
  [[nodiscard]] std::size_t telemetryRow(int slot) const;

  int threadCount_ = 1;
  bool lockfree_ = false;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<LfWorker>> lf_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<StealRow>> stealRows_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stealAborts_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> nextQueue_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};
  mutable std::mutex idleMu_;
  std::condition_variable idleCv_;
  std::vector<IdleStats> idle_;  // workers + 1 external row; under idleMu_
};

// ---------------------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------------------

/// DAG of tasks with dependency counts. Nodes whose pending count is zero
/// are submitted in insertion order; when a node finishes it decrements its
/// successors and submits any that become ready. run() drives the whole
/// graph on a pool and returns when every node has executed.
class TaskGraph {
 public:
  std::size_t add(std::function<void()> fn);
  /// `after` will not start until `before` has finished. Duplicate edges
  /// are deduplicated. Must be called before run().
  void addEdge(std::size_t before, std::size_t after);
  /// Executes the graph; throws if a cycle leaves nodes unrunnable or if a
  /// node throws. Single-use: a TaskGraph cannot be run twice.
  void run(TaskPool& pool);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    std::function<void()> fn;
    /// Unfinished predecessors plus one "start" token that run() removes.
    /// Whoever drops the count to zero submits the node — exactly once,
    /// even when predecessors finish while run() is still seeding roots.
    std::atomic<int> pending{1};
    std::vector<std::size_t> out;
  };

  void submitNode(TaskPool& pool, WaitGroup& wg, std::size_t index);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<std::size_t> executedNodes_{0};
};

}  // namespace ps::support

#endif  // PS_SUPPORT_TASKPOOL_H
