#include "support/ebr.h"

#include <memory>
#include <stdexcept>

namespace ps::support {

EpochDomain& EpochDomain::global() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
  // Quiescent by contract: no thread is inside a guard or mid-retire. Some
  // user threads may still be alive (the main thread's handle lives until
  // process exit), so detach their handles — draining any limbo they hold,
  // since no reader can exist anymore — before they dangle.
  std::lock_guard<std::mutex> lk(orphanMu_);
  for (Handle* h : handles_) {
    for (int i = 0; i < 3; ++i) {
      for (Retired& r : h->limbo[i]) {
        r.deleter(r.p);
        freed_.fetch_add(1, std::memory_order_relaxed);
      }
      h->limbo[i].clear();
    }
    h->domain = nullptr;  // its destructor becomes a no-op
  }
  handles_.clear();
  for (auto& [tag, r] : orphans_) {
    (void)tag;
    r.deleter(r.p);
    freed_.fetch_add(1, std::memory_order_relaxed);
  }
  orphans_.clear();
}

EpochDomain::Handle::~Handle() {
  if (domain == nullptr) return;  // the domain died first and detached us
  {
    std::lock_guard<std::mutex> lk(domain->orphanMu_);
    for (int i = 0; i < 3; ++i) {
      for (Retired& r : limbo[i]) {
        domain->orphans_.emplace_back(limboEpoch[i], r);
      }
      limbo[i].clear();
    }
    auto& hs = domain->handles_;
    for (std::size_t i = 0; i < hs.size(); ++i) {
      if (hs[i] == this) {
        hs[i] = hs.back();
        hs.pop_back();
        break;
      }
    }
  }
  slot->epoch.store(kIdle, std::memory_order_release);
  slot->used.store(false, std::memory_order_release);
}

EpochDomain::Handle& EpochDomain::handleForThisThread() {
  // One Handle per (thread, domain). In practice only the global domain is
  // hot, so cache the last hit; tests that build private domains pay one
  // short vector scan.
  struct ThreadHandles {
    std::vector<std::unique_ptr<Handle>> handles;
  };
  thread_local ThreadHandles tls;
  thread_local Handle* last = nullptr;
  if (last != nullptr && last->domain == this) return *last;
  for (auto& h : tls.handles) {
    if (h->domain == this) {
      last = h.get();
      return *last;
    }
  }
  auto h = std::make_unique<Handle>();
  h->domain = this;
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].used.load(std::memory_order_acquire)) {
      if (slots_[i].used.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
        h->slot = &slots_[i];
        h->slotIndex = i;
        break;
      }
    }
  }
  if (h->slot == nullptr) {
    throw std::runtime_error("EpochDomain: thread slot table exhausted");
  }
  h->slot->epoch.store(kIdle, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(orphanMu_);
    handles_.push_back(h.get());
  }
  tls.handles.push_back(std::move(h));
  last = tls.handles.back().get();
  return *last;
}

void EpochDomain::pin(Handle& h) {
  if (h.pinDepth++ > 0) return;
  Slot& s = *h.slot;
  std::uint64_t e = epoch_.load(std::memory_order_acquire);
  for (;;) {
    // seq_cst store + seq_cst re-load: either a concurrent advancer saw our
    // announcement (and refused to advance past us), or we see its new
    // epoch here and re-announce. Without the re-validation a thread could
    // pin a stale epoch the reclaimer already considers drained.
    s.epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t e2 = epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) break;
    e = e2;
  }
}

void EpochDomain::unpin(Handle& h) {
  if (--h.pinDepth > 0) return;
  h.slot->epoch.store(kIdle, std::memory_order_release);
}

void EpochDomain::flushExpired(Handle& h, std::uint64_t cur) {
  for (int i = 0; i < 3; ++i) {
    if (h.limbo[i].empty() || cur < h.limboEpoch[i] + 2) continue;
    for (Retired& r : h.limbo[i]) r.deleter(r.p);
    freed_.fetch_add(h.limbo[i].size(), std::memory_order_relaxed);
    h.limbo[i].clear();
  }
}

bool EpochDomain::tryAdvance(Handle* h) {
  std::uint64_t e = epoch_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].used.load(std::memory_order_acquire)) continue;
    const std::uint64_t se = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (se != kIdle && se != e) return false;  // a straggler is still pinned
  }
  if (!epoch_.compare_exchange_strong(e, e + 1, std::memory_order_acq_rel)) {
    return false;  // someone else advanced; their flush covers the orphans
  }
  const std::uint64_t cur = e + 1;
  if (h != nullptr) flushExpired(*h, cur);
  std::lock_guard<std::mutex> lk(orphanMu_);
  std::size_t kept = 0;
  for (auto& [tag, r] : orphans_) {
    if (cur >= tag + 2) {
      r.deleter(r.p);
      freed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      orphans_[kept++] = {tag, r};
    }
  }
  orphans_.resize(kept);
  return true;
}

void EpochDomain::retire(void* p, void (*deleter)(void*)) {
  Handle& h = handleForThisThread();
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  const std::size_t b = static_cast<std::size_t>(e % 3);
  if (!h.limbo[b].empty() && h.limboEpoch[b] != e) {
    // The bucket's residents were retired at e-3 (same residue, older
    // epoch); e >= (e-3)+2, so they are past their grace period.
    for (Retired& r : h.limbo[b]) r.deleter(r.p);
    freed_.fetch_add(h.limbo[b].size(), std::memory_order_relaxed);
    h.limbo[b].clear();
  }
  h.limboEpoch[b] = e;
  h.limbo[b].push_back({p, deleter});
  retired_.fetch_add(1, std::memory_order_relaxed);
  if (++h.sinceAdvance >= kAdvanceEvery) {
    h.sinceAdvance = 0;
    tryAdvance(&h);
  }
}

void EpochDomain::synchronize() {
  Handle& h = handleForThisThread();
  // Three successful advances guarantee every bucket crosses its grace
  // period; stop early if a pinned straggler blocks progress.
  for (int i = 0; i < 3; ++i) {
    if (!tryAdvance(&h)) break;
  }
  flushExpired(h, epoch_.load(std::memory_order_acquire));
}

}  // namespace ps::support
