#include "support/text.h"

#include <cctype>

namespace ps::text {

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> splitLines(std::string_view s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '\n') {
      std::string_view line = s.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines.emplace_back(line);
      start = i + 1;
    }
  }
  // A trailing newline should not create a phantom empty line.
  if (!s.empty() && s.back() == '\n') lines.pop_back();
  return lines;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string padRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string padLeft(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out += s;
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ps::text
