#ifndef PS_SUPPORT_DIAGNOSTICS_H
#define PS_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <string_view>
#include <vector>

#include "support/source_loc.h"

namespace ps {

enum class Severity { Note, Warning, Error };

/// One diagnostic message produced by the front end or an analysis.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
  /// The offending source line, captured at report time when the engine
  /// knows the source text; empty otherwise.
  std::string sourceLine;

  /// "line:col: severity: message", followed by the source line and a caret
  /// under the offending column when the line is known.
  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics. The front end never throws on bad input; it records
/// an error here and recovers, mirroring PED's incremental-parse model where
/// the user is "immediately informed of any syntactic or semantic errors".
class DiagnosticEngine {
 public:
  /// Remember the source text so subsequent diagnostics can quote the
  /// offending line with a caret marker. parseSource() installs the deck it
  /// is given; diagnostics reported before (or without) a source text print
  /// without the excerpt.
  void setSourceText(std::string_view source);

  void note(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void error(SourceLoc loc, std::string msg);

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] int errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  void clear();

  /// All diagnostics joined by newlines — convenient for test failure output.
  [[nodiscard]] std::string dump() const;

 private:
  [[nodiscard]] std::string lineAt(int line) const;

  std::vector<Diagnostic> diags_;
  std::vector<std::string> sourceLines_;
  int errorCount_ = 0;
};

}  // namespace ps

#endif  // PS_SUPPORT_DIAGNOSTICS_H
