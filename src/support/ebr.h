#ifndef PS_SUPPORT_EBR_H
#define PS_SUPPORT_EBR_H

// Epoch-based reclamation (EBR) for lock-free data structures.
//
// The problem: a lock-free reader may hold a pointer into a structure (a
// DepMemo slot array, an entry box) at the exact moment a writer unlinks
// it. The writer must not free the memory until every reader that could
// have seen the old pointer is gone. EBR solves this with a global epoch
// counter and per-thread announcements:
//
//   - A reader *pins* the current global epoch for the duration of its
//     critical section (EpochGuard). Pinning is two relaxed-ish atomic
//     stores on a thread-local slot — no CAS, no shared-cache-line writes
//     besides the slot itself.
//   - A writer that unlinks a node calls retire(node, deleter). The node
//     is stashed in a limbo list tagged with the current epoch; nothing is
//     freed inline.
//   - The epoch advances only when every pinned thread has been observed
//     in the current epoch. A node retired in epoch e is freed once the
//     global epoch reaches e+2: any reader that could reach it pinned an
//     epoch <= e, and for the global epoch to have advanced twice, every
//     such reader must have unpinned. Three limbo generations per thread
//     therefore suffice (the classic 3-epoch scheme).
//
// Progress: advancing is opportunistic (attempted on retire, throttled).
// A thread that stays pinned forever stalls reclamation but never blocks
// readers or writers — memory is the only thing that grows, which is the
// right failure mode for an interactive analysis server.
//
// Thread slots: a fixed table of cache-padded slots claimed on first use
// per thread and released at thread exit. Limbo lists owned by an exiting
// thread are handed to a domain-level orphan list so their nodes are still
// freed by whoever advances the epoch next.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ps::support {

class EpochDomain {
 public:
  /// The process-wide domain. Every lock-free structure in the analysis
  /// substrate shares it: reclamation pressure aggregates, and a thread
  /// pins once even when touching several structures.
  static EpochDomain& global();

  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Defer `delete`-ing `p` (via `deleter`) until two epoch advances prove
  /// no pinned reader can still reach it. May be called pinned or unpinned.
  void retire(void* p, void (*deleter)(void*));

  /// Current global epoch (telemetry / tests).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Nodes handed to retire() so far, and nodes actually freed. The
  /// difference is the limbo population; tests assert it stays bounded and
  /// drains to zero at quiescence.
  [[nodiscard]] std::uint64_t retiredCount() const {
    return retired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t freedCount() const {
    return freed_.load(std::memory_order_relaxed);
  }

  /// Force reclamation of everything reclaimable, advancing the epoch as
  /// far as the current pin set allows. Quiescent callers (tests,
  /// destructors) use this to drain limbo deterministically.
  void synchronize();

 private:
  friend class EpochGuard;

  static constexpr std::size_t kMaxThreads = 512;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  /// Retires between opportunistic advance attempts (per thread).
  static constexpr std::uint32_t kAdvanceEvery = 64;

  struct alignas(64) Slot {
    /// Epoch this thread is pinned at; kIdle when outside any guard.
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<bool> used{false};
  };

  struct Retired {
    void* p;
    void (*deleter)(void*);
  };

  /// Per-thread handle: claimed slot + three limbo generations.
  struct Handle {
    EpochDomain* domain = nullptr;
    Slot* slot = nullptr;
    std::size_t slotIndex = 0;
    int pinDepth = 0;
    std::uint32_t sinceAdvance = 0;
    /// limbo[e % 3] holds nodes retired while the global epoch was e; it is
    /// freed when the global epoch next returns to e % 3 (i.e. at e+3 > e+2).
    std::vector<Retired> limbo[3];
    std::uint64_t limboEpoch[3] = {0, 0, 0};

    ~Handle();
  };

  Handle& handleForThisThread();
  void pin(Handle& h);
  void unpin(Handle& h);
  /// Try to advance the global epoch once; frees h's expired limbo
  /// generation and a batch of expired orphans on success.
  bool tryAdvance(Handle* h);
  void flushExpired(Handle& h, std::uint64_t newEpoch);

  std::atomic<std::uint64_t> epoch_{0};
  Slot slots_[kMaxThreads];
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};

  /// Limbo lists of exited threads, tagged with their retire epoch;
  /// cold path only (thread exit, adoption during advance).
  std::mutex orphanMu_;
  std::vector<std::pair<std::uint64_t, Retired>> orphans_;
  /// Live handles, so a domain dying before its user threads (a test-local
  /// domain; the main thread's handle survives to process exit) can detach
  /// them instead of leaving them pointing at freed slots. Under orphanMu_.
  std::vector<Handle*> handles_;
};

/// RAII pin on the global epoch: while alive, any pointer read from a
/// lock-free structure stays valid even if concurrently retired. Cheap and
/// reentrant (nested guards on one thread pin once).
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& d = EpochDomain::global())
      : domain_(d), handle_(d.handleForThisThread()) {
    domain_.pin(handle_);
  }
  ~EpochGuard() { domain_.unpin(handle_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
  EpochDomain::Handle& handle_;
};

}  // namespace ps::support

#endif  // PS_SUPPORT_EBR_H
