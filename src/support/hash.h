#ifndef PS_SUPPORT_HASH_H
#define PS_SUPPORT_HASH_H

// Content hashing for the persistent program database. Two independent
// primitives so a single corrupted/colliding value can never both address a
// record AND validate it:
//   - xxh64: the 64-bit XXHash, seedable. Seed 0 addresses records; a second
//     fixed seed produces the in-payload verification hash that defeats
//     accidental (or adversarially reframed) key collisions.
//   - crc32: the IEEE polynomial, as an independent integrity check on raw
//     record bytes. CRC and XXH have disjoint failure modes, so a payload
//     passing both is byte-exact for any fault model short of deliberate
//     forgery of both checksums.

#include <cstdint>
#include <string_view>

namespace ps::support {

[[nodiscard]] std::uint64_t xxh64(std::string_view data,
                                  std::uint64_t seed = 0);

[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace ps::support

#endif  // PS_SUPPORT_HASH_H
