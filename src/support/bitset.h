#ifndef PS_SUPPORT_BITSET_H
#define PS_SUPPORT_BITSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps {

/// A dense, dynamically sized bit set for data-flow fixpoints.
class DenseBitSet {
 public:
  DenseBitSet() = default;
  explicit DenseBitSet(std::size_t size) : size_(size),
        words_((size + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// this |= other; returns true if this changed.
  bool unionWith(const DenseBitSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t next = words_[w] | other.words_[w];
      if (next != words_[w]) {
        words_[w] = next;
        changed = true;
      }
    }
    return changed;
  }

  /// this &= ~other.
  void subtract(const DenseBitSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool operator==(const DenseBitSet& other) const {
    return words_ == other.words_;
  }

  /// Invoke fn(i) for every set bit.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ps

#endif  // PS_SUPPORT_BITSET_H
