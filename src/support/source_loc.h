#ifndef PS_SUPPORT_SOURCE_LOC_H
#define PS_SUPPORT_SOURCE_LOC_H

#include <compare>
#include <string>

namespace ps {

/// A position in a Fortran source text. Lines and columns are 1-based;
/// line 0 means "unknown" (e.g. synthesized statements).
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool valid() const { return line > 0; }
  auto operator<=>(const SourceLoc&) const = default;

  [[nodiscard]] std::string str() const {
    if (!valid()) return "<synth>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

}  // namespace ps

#endif  // PS_SUPPORT_SOURCE_LOC_H
