#ifndef PS_SUPPORT_TEXT_H
#define PS_SUPPORT_TEXT_H

#include <string>
#include <string_view>
#include <vector>

namespace ps::text {

/// ASCII upper-casing; Fortran identifiers and keywords are case-insensitive,
/// so the front end canonicalizes everything to upper case.
[[nodiscard]] std::string upper(std::string_view s);
[[nodiscard]] std::string lower(std::string_view s);

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::vector<std::string> splitLines(std::string_view s);
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Left-pad / right-pad to a fixed width (for the pane renderer's columns).
[[nodiscard]] std::string padRight(std::string_view s, std::size_t width);
[[nodiscard]] std::string padLeft(std::string_view s, std::size_t width);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace ps::text

#endif  // PS_SUPPORT_TEXT_H
