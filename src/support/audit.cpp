#include "support/audit.h"

#include <map>
#include <set>

#include "fortran/parser.h"
#include "fortran/pretty.h"

namespace ps::audit {

using fortran::Procedure;
using fortran::Program;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;

std::string Report::str() const {
  std::string out;
  for (const auto& v : violations) {
    out += v.str();
    out += '\n';
  }
  return out;
}

namespace {

const char* kindName(StmtKind k) {
  switch (k) {
    case StmtKind::Assign: return "Assign";
    case StmtKind::Do: return "Do";
    case StmtKind::If: return "If";
    case StmtKind::ArithmeticIf: return "ArithmeticIf";
    case StmtKind::Goto: return "Goto";
    case StmtKind::Call: return "Call";
    case StmtKind::Continue: return "Continue";
    case StmtKind::Return: return "Return";
    case StmtKind::Stop: return "Stop";
    case StmtKind::Read: return "Read";
    case StmtKind::Write: return "Write";
    case StmtKind::Assertion: return "Assertion";
  }
  return "?";
}

std::string where(const Procedure& proc, const Stmt& s) {
  return proc.name + " stmt#" + std::to_string(s.id) + " (" +
         kindName(s.kind) + " at " + s.loc.str() + ")";
}

void checkShape(const Procedure& proc, const Stmt& s, Report& out) {
  auto need = [&](bool cond, const char* what) {
    if (!cond) {
      out.add("ast-shape", where(proc, s) + " missing " + what);
    }
  };
  switch (s.kind) {
    case StmtKind::Assign:
      need(s.lhs != nullptr, "lhs");
      need(s.rhs != nullptr, "rhs");
      break;
    case StmtKind::Do:
      need(!s.doVar.empty(), "induction variable");
      need(s.doLo != nullptr, "lower bound");
      need(s.doHi != nullptr, "upper bound");
      break;
    case StmtKind::If:
      need(!s.arms.empty(), "arms");
      for (std::size_t i = 0; i < s.arms.size(); ++i) {
        // Only the final ELSE arm may lack a condition.
        if (!s.arms[i].condition && i + 1 != s.arms.size()) {
          out.add("ast-shape",
                  where(proc, s) + " non-final arm without condition");
        }
      }
      break;
    case StmtKind::ArithmeticIf:
      need(s.condExpr != nullptr, "condition");
      break;
    default:
      break;
  }
}

}  // namespace

void auditProgram(const Program& prog, Report& out) {
  std::set<StmtId> seen;
  for (const auto& unit : prog.units) {
    unit->forEachStmt([&](const Stmt& s) {
      if (s.id == fortran::kInvalidStmt) {
        out.add("stmt-id-valid", where(*unit, s) + " has invalid id");
      } else {
        if (s.id >= prog.nextStmtId) {
          out.add("stmt-id-counter",
                  where(*unit, s) + " id beyond program counter " +
                      std::to_string(prog.nextStmtId));
        }
        if (!seen.insert(s.id).second) {
          out.add("stmt-id-unique", where(*unit, s) + " duplicates an id");
        }
      }
      checkShape(*unit, s, out);
    });
  }
}

void auditModel(const ir::ProcedureModel& model, Report& out) {
  const Procedure& proc = model.procedure();
  // The model's pre-order index must agree with a fresh traversal.
  std::vector<const Stmt*> fresh;
  proc.forEachStmt([&](const Stmt& s) { fresh.push_back(&s); });
  const auto& indexed = model.allStmts();
  if (fresh.size() != indexed.size()) {
    out.add("model-stmt-index",
            proc.name + ": model indexes " +
                std::to_string(indexed.size()) + " statements, AST has " +
                std::to_string(fresh.size()));
  } else {
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i] != indexed[i]) {
        out.add("model-stmt-index",
                proc.name + ": model statement " + std::to_string(i) +
                    " diverges from AST pre-order (stale model?)");
        break;
      }
    }
  }
  // Id lookups resolve to the very same nodes.
  for (const Stmt* s : indexed) {
    if (model.stmt(s->id) != s) {
      out.add("model-id-lookup",
              where(proc, *s) + " does not resolve to itself");
    }
  }
  // Every DO statement owns exactly one loop node; links are consistent.
  std::map<StmtId, int> doLoops;
  for (const auto& loopPtr : model.loops()) {
    const ir::Loop* l = loopPtr.get();
    if (!l->stmt || l->stmt->kind != StmtKind::Do) {
      out.add("loop-tree", proc.name + ": loop node without a DO statement");
      continue;
    }
    ++doLoops[l->stmt->id];
    int expected = l->parent ? l->parent->level + 1 : 1;
    if (l->level != expected) {
      out.add("loop-tree", where(proc, *l->stmt) + " level " +
                               std::to_string(l->level) + ", expected " +
                               std::to_string(expected));
    }
    if (l->parent && !l->parent->contains(l->stmt->id)) {
      out.add("loop-tree",
              where(proc, *l->stmt) + " not contained in its parent loop");
    }
    for (const Stmt* b : l->bodyStmts) {
      if (model.stmt(b->id) != b) {
        out.add("loop-tree",
                where(proc, *l->stmt) + " body references a dead statement");
        break;
      }
    }
  }
  for (const Stmt* s : indexed) {
    if (s->kind != StmtKind::Do) continue;
    auto it = doLoops.find(s->id);
    if (it == doLoops.end()) {
      out.add("loop-tree", where(proc, *s) + " has no loop-tree node");
    } else if (it->second != 1) {
      out.add("loop-tree", where(proc, *s) + " has " +
                               std::to_string(it->second) +
                               " loop-tree nodes");
    }
  }
}

void auditGraph(const dep::DependenceGraph& graph,
                const ir::ProcedureModel& model, Report& out) {
  const std::string& proc = model.procedure().name;
  std::set<std::uint32_t> ids;
  for (const dep::Dependence& d : graph.all()) {
    std::string tag = proc + " dep#" + std::to_string(d.id) + " on " +
                      (d.variable.empty() ? std::string("<control>")
                                          : d.variable);
    if (!ids.insert(d.id).second) {
      out.add("dep-id-unique", tag + " duplicates an edge id");
    }
    if (!model.stmt(d.srcStmt)) {
      out.add("dep-live-endpoint", tag + " source stmt#" +
                                       std::to_string(d.srcStmt) +
                                       " is not in the procedure");
    }
    if (!model.stmt(d.dstStmt)) {
      out.add("dep-live-endpoint", tag + " sink stmt#" +
                                       std::to_string(d.dstStmt) +
                                       " is not in the procedure");
    }
    if (d.level < 0 ||
        static_cast<std::size_t>(d.level) > d.vector.dirs.size()) {
      out.add("dep-level", tag + " level " + std::to_string(d.level) +
                               " outside its direction vector");
    }
    if (d.level > 0) {
      if (d.carrierLoop == fortran::kInvalidStmt ||
          !model.loopByDoStmt(d.carrierLoop)) {
        out.add("dep-carrier", tag + " carried edge without a live carrier"
                                     " loop");
      }
    }
    if (d.commonLoop != fortran::kInvalidStmt &&
        !model.loopByDoStmt(d.commonLoop)) {
      out.add("dep-carrier", tag + " common loop stmt#" +
                                 std::to_string(d.commonLoop) +
                                 " is not a live loop");
    }
  }
}

void auditRoundTrip(const Program& prog, Report& out) {
  const std::string printed = fortran::printProgram(prog);
  DiagnosticEngine diags;
  auto reparsed = fortran::parseSource(printed, diags);
  if (diags.hasErrors()) {
    out.add("round-trip",
            "pretty-printed program does not re-parse:\n" + diags.dump());
    return;
  }
  if (reparsed->units.size() != prog.units.size()) {
    out.add("round-trip", "unit count changed: " +
                              std::to_string(prog.units.size()) + " -> " +
                              std::to_string(reparsed->units.size()));
    return;
  }
  for (std::size_t u = 0; u < prog.units.size(); ++u) {
    std::vector<StmtKind> before, after;
    prog.units[u]->forEachStmt(
        [&](const Stmt& s) { before.push_back(s.kind); });
    reparsed->units[u]->forEachStmt(
        [&](const Stmt& s) { after.push_back(s.kind); });
    if (before != after) {
      out.add("round-trip",
              prog.units[u]->name + ": statement kind sequence changed (" +
                  std::to_string(before.size()) + " -> " +
                  std::to_string(after.size()) + " statements)");
    }
  }
}

Report auditAll(const Program& prog, Depth depth) {
  Report out;
  auditProgram(prog, out);
  if (depth == Depth::Deep) auditRoundTrip(prog, out);
  return out;
}

}  // namespace ps::audit
