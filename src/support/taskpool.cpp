#include "support/taskpool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace ps::support {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align == 0) align = 1;
  for (;;) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_[current_];
      auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      std::uintptr_t aligned = (base + c.used + (align - 1)) & ~(std::uintptr_t(align) - 1);
      std::size_t offset = static_cast<std::size_t>(aligned - base);
      if (offset + bytes <= c.size) {
        c.used = offset + bytes;
        totalAllocated_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      if (current_ + 1 < chunks_.size()) {
        ++current_;
        chunks_[current_].used = 0;
        continue;
      }
    }
    std::size_t size = std::max(chunkBytes_, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size, 0});
    current_ = chunks_.size() - 1;
  }
}

void Arena::rewind(Mark m) {
  if (chunks_.empty()) return;
  current_ = std::min(m.chunk, chunks_.size() - 1);
  chunks_[current_].used = std::min(m.used, chunks_[current_].size);
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

Arena& threadArena() {
  thread_local Arena arena;
  return arena;
}

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

namespace {

/// Which pool (if any) the current thread is a worker of, and its queue
/// slot. Helping threads that are not workers carry slot -1 and steal.
struct WorkerIdentity {
  const TaskPool* pool = nullptr;
  int slot = -1;
};
thread_local WorkerIdentity tlsWorker;

}  // namespace

void TaskPool::IdleStats::accumulate(const IdleStats& o) {
  bouts += o.bouts;
  idleNanos += o.idleNanos;
  stealAttempts += o.stealAttempts;
  stealFails += o.stealFails;
  for (int i = 0; i < kBuckets; ++i) histogram[static_cast<std::size_t>(i)] +=
      o.histogram[static_cast<std::size_t>(i)];
}

TaskPool::IdleStats TaskPool::IdleStats::since(const IdleStats& start) const {
  IdleStats d;
  d.bouts = bouts - start.bouts;
  d.idleNanos = idleNanos - start.idleNanos;
  d.stealAttempts = stealAttempts - start.stealAttempts;
  d.stealFails = stealFails - start.stealFails;
  for (int i = 0; i < kBuckets; ++i) {
    auto u = static_cast<std::size_t>(i);
    d.histogram[u] = histogram[u] - start.histogram[u];
  }
  return d;
}

TaskPool::TaskPool(int nThreads, std::optional<bool> lockfree) {
  if (nThreads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    nThreads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threadCount_ = nThreads;
  idle_.resize(static_cast<std::size_t>(threadCount_) + 1);
  stealRows_.reserve(static_cast<std::size_t>(threadCount_) + 1);
  for (int i = 0; i <= threadCount_; ++i) {
    stealRows_.push_back(std::make_unique<StealRow>());
  }
  if (threadCount_ == 1) {
    // Deterministic reference path: one FIFO, no workers; wait() drains the
    // queue inline in exact submission order. Substrate-independent.
    queues_.push_back(std::make_unique<Queue>());
    return;
  }
  lockfree_ = lockfree.value_or(lockfreeDefault());
  if (lockfree_) {
    lf_.reserve(static_cast<std::size_t>(threadCount_));
    for (int i = 0; i < threadCount_; ++i) {
      lf_.push_back(std::make_unique<LfWorker>());
    }
  } else {
    queues_.reserve(static_cast<std::size_t>(threadCount_));
    for (int i = 0; i < threadCount_; ++i) {
      queues_.push_back(std::make_unique<Queue>());
    }
  }
  workers_.reserve(static_cast<std::size_t>(threadCount_));
  for (int i = 0; i < threadCount_; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  idleCv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Abandoned tasks (a caller that never waited) are dropped, matching the
  // mutex substrate where ~deque discards them; on the lock-free substrate
  // they are heap nodes and must be deleted explicitly.
  for (auto& w : lf_) {
    void* p = nullptr;
    while ((p = w->deque.popBottom()) != nullptr) delete static_cast<Task*>(p);
    while (w->inbox.tryPop(&p)) delete static_cast<Task*>(p);
  }
}

std::size_t TaskPool::telemetryRow(int slot) const {
  return slot >= 0 && tlsWorker.pool == this && tlsWorker.slot == slot
             ? static_cast<std::size_t>(slot)
             : static_cast<std::size_t>(threadCount_);
}

void TaskPool::wakeOne() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) idleCv_.notify_one();
}

void TaskPool::submit(WaitGroup& wg, std::function<void()> fn) {
  wg.pending_.fetch_add(1, std::memory_order_acq_rel);
  if (!lockfree_) {
    std::size_t slot =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
      std::lock_guard<std::mutex> lk(queues_[slot]->mu);
      queues_[slot]->tasks.push_back(Task{std::move(fn), &wg});
    }
    idleCv_.notify_one();
    return;
  }
  Task* task = new Task{std::move(fn), &wg};
  if (tlsWorker.pool == this && tlsWorker.slot >= 0) {
    // Worker thread spawning a subtask (per-nest fan-out): owner push onto
    // its own deque — the uncontended hot path.
    lf_[static_cast<std::size_t>(tlsWorker.slot)]->deque.pushBottom(task);
  } else {
    // External thread: round-robin into the per-worker submission channels.
    const std::size_t n = lf_.size();
    const std::size_t start =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) % n;
    for (;;) {
      bool pushed = false;
      for (std::size_t i = 0; i < n && !pushed; ++i) {
        pushed = lf_[(start + i) % n]->inbox.tryPush(task);
      }
      if (pushed) break;
      // Every channel is full (a pathological burst): help drain by
      // executing one task inline, then retry — backpressure that makes
      // progress instead of blocking.
      if (!tryRunOne(-1)) std::this_thread::yield();
    }
  }
  wakeOne();
}

void TaskPool::runTask(Task&& task) {
  WaitGroup* wg = task.wg;
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(wg->mu_);
    if (!wg->error_) wg->error_ = std::current_exception();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  wg->pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) idleCv_.notify_all();
}

bool TaskPool::tryRunOneMutex(int preferredSlot, std::size_t row) {
  Task task;
  bool have = false;
  // Own queue first, oldest task first: with a single executor this makes
  // execution order equal submission order.
  if (preferredSlot >= 0) {
    Queue& q = *queues_[static_cast<std::size_t>(preferredSlot)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      have = true;
    }
  }
  if (!have) {
    StealRow& counters = *stealRows_[row];
    std::size_t n = queues_.size();
    std::size_t start = preferredSlot >= 0
                            ? (static_cast<std::size_t>(preferredSlot) + 1) % n
                            : 0;
    for (std::size_t i = 0; i < n && !have; ++i) {
      std::size_t v = (start + i) % n;
      if (preferredSlot >= 0 && v == static_cast<std::size_t>(preferredSlot)) continue;
      if (n > 1) counters.attempts.fetch_add(1, std::memory_order_relaxed);
      Queue& q = *queues_[v];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.tasks.empty()) {
        // Steal the newest task: the victim keeps draining its own queue
        // from the front, so front/back contention is minimized.
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
        have = true;
        if (queues_.size() > 1) steals_.fetch_add(1, std::memory_order_relaxed);
      } else if (n > 1) {
        counters.fails.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!have) return false;
  runTask(std::move(task));
  return true;
}

bool TaskPool::tryRunOneLockfree(int preferredSlot, std::size_t row) {
  const bool owner = preferredSlot >= 0 && tlsWorker.pool == this &&
                     tlsWorker.slot == preferredSlot;
  Task* task = nullptr;
  if (owner) {
    LfWorker& w = *lf_[static_cast<std::size_t>(preferredSlot)];
    task = static_cast<Task*>(w.deque.popBottom());
    if (task == nullptr) {
      void* p = nullptr;
      if (w.inbox.tryPop(&p)) task = static_cast<Task*>(p);
    }
  }
  if (task == nullptr) {
    StealRow& counters = *stealRows_[row];
    const std::size_t n = lf_.size();
    const std::size_t start =
        owner ? (static_cast<std::size_t>(preferredSlot) + 1) % n
              : nextQueue_.fetch_add(1, std::memory_order_relaxed) % n;
    for (std::size_t i = 0; i < n && task == nullptr; ++i) {
      const std::size_t v = (start + i) % n;
      if (owner && v == static_cast<std::size_t>(preferredSlot)) continue;
      counters.attempts.fetch_add(1, std::memory_order_relaxed);
      void* p = nullptr;
      switch (lf_[v]->deque.steal(&p)) {
        case ChaseLevDeque::Steal::Got:
          task = static_cast<Task*>(p);
          steals_.fetch_add(1, std::memory_order_relaxed);
          continue;
        case ChaseLevDeque::Steal::Abort:
          // Lost the CAS race on the victim's top — contention, not
          // emptiness. Count it and move to the next victim; the caller's
          // outer loop comes back around.
          stealAborts_.fetch_add(1, std::memory_order_relaxed);
          break;
        case ChaseLevDeque::Steal::Empty:
          break;
      }
      if (lf_[v]->inbox.tryPop(&p)) {
        task = static_cast<Task*>(p);
        steals_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      counters.fails.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (task == nullptr) return false;
  runTask(std::move(*task));
  delete task;
  return true;
}

bool TaskPool::tryRunOne(int preferredSlot) {
  const std::size_t row = telemetryRow(preferredSlot);
  return lockfree_ ? tryRunOneLockfree(preferredSlot, row)
                   : tryRunOneMutex(preferredSlot, row);
}

void TaskPool::recordIdle(std::size_t row, std::uint64_t nanos) {
  IdleStats& s = idle_[row];
  ++s.bouts;
  s.idleNanos += nanos;
  const std::uint64_t us = nanos / 1000;
  int b = 0;
  while (b + 1 < IdleStats::kBuckets && us >= (std::uint64_t{1} << b)) ++b;
  ++s.histogram[static_cast<std::size_t>(b)];
}

std::vector<TaskPool::IdleStats> TaskPool::idleStats() const {
  std::vector<IdleStats> rows;
  {
    std::lock_guard<std::mutex> lk(idleMu_);
    rows = idle_;
  }
  for (std::size_t i = 0; i < rows.size() && i < stealRows_.size(); ++i) {
    rows[i].stealAttempts =
        stealRows_[i]->attempts.load(std::memory_order_relaxed);
    rows[i].stealFails = stealRows_[i]->fails.load(std::memory_order_relaxed);
  }
  return rows;
}

void TaskPool::workerLoop(int slot) {
  tlsWorker = WorkerIdentity{this, slot};
  while (!stop_.load(std::memory_order_acquire)) {
    if (tryRunOne(slot)) continue;
    // Park. Announce first, then re-check once: a submitter either observes
    // the announcement (and notifies) or this re-check observes its task —
    // the seq_cst pair closes the classic missed-wakeup window. The timed
    // wait stays as a backstop regardless.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (tryRunOne(slot)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(idleMu_);
      if (stop_.load(std::memory_order_acquire)) {
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      idleCv_.wait_for(lk, std::chrono::milliseconds(2));
      recordIdle(static_cast<std::size_t>(slot),
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count()));
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  tlsWorker = WorkerIdentity{};
}

void TaskPool::wait(WaitGroup& wg) {
  int slot = -1;
  if (tlsWorker.pool == this) {
    slot = tlsWorker.slot;  // nested wait from inside one of our tasks
  } else if (threadCount_ == 1) {
    slot = 0;  // single-queue pool: the waiting thread is the executor
  }
  // Workers idle into their own telemetry row; any other waiting thread
  // (the session thread driving runAll, a helper) shares the final row.
  const std::size_t idleRow = slot >= 0 && tlsWorker.pool == this
                                  ? static_cast<std::size_t>(slot)
                                  : static_cast<std::size_t>(threadCount_);
  while (wg.pending() > 0) {
    if (tryRunOne(slot)) continue;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (wg.pending() == 0 || tryRunOne(slot)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(idleMu_);
      const auto t0 = std::chrono::steady_clock::now();
      idleCv_.wait_for(lk, std::chrono::milliseconds(1),
                       [&] { return wg.pending() == 0; });
      recordIdle(idleRow,
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count()));
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lk(wg.mu_);
  if (wg.error_) {
    std::exception_ptr e = wg.error_;
    wg.error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void TaskPool::runAll(std::vector<std::function<void()>> thunks) {
  WaitGroup wg;
  for (auto& fn : thunks) submit(wg, std::move(fn));
  wait(wg);
}

// ---------------------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------------------

std::size_t TaskGraph::add(std::function<void()> fn) {
  nodes_.push_back(std::make_unique<Node>());
  nodes_.back()->fn = std::move(fn);
  return nodes_.size() - 1;
}

void TaskGraph::addEdge(std::size_t before, std::size_t after) {
  if (before >= nodes_.size() || after >= nodes_.size() || before == after)
    throw std::logic_error("TaskGraph::addEdge: bad node index");
  std::vector<std::size_t>& out = nodes_[before]->out;
  if (std::find(out.begin(), out.end(), after) != out.end()) return;
  out.push_back(after);
  nodes_[after]->pending.fetch_add(1, std::memory_order_relaxed);
}

void TaskGraph::submitNode(TaskPool& pool, WaitGroup& wg, std::size_t index) {
  pool.submit(wg, [this, &pool, &wg, index] {
    nodes_[index]->fn();
    executedNodes_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t succ : nodes_[index]->out) {
      if (nodes_[succ]->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        submitNode(pool, wg, succ);
    }
  });
}

void TaskGraph::run(TaskPool& pool) {
  WaitGroup wg;
  // Remove each node's "start" token. A node whose predecessors all finished
  // before its token is removed gets submitted HERE; otherwise the last
  // finishing predecessor's decrement reaches zero and submits it. Either
  // way the submission is unique — reading pending==0 and then submitting
  // would instead race with predecessors that complete mid-loop.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      submitNode(pool, wg, i);
  }
  pool.wait(wg);
  if (executedNodes_.load(std::memory_order_relaxed) != nodes_.size())
    throw std::logic_error("TaskGraph::run: cycle left nodes unrunnable");
}

}  // namespace ps::support
