#include "support/taskpool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace ps::support {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align == 0) align = 1;
  for (;;) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_[current_];
      auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      std::uintptr_t aligned = (base + c.used + (align - 1)) & ~(std::uintptr_t(align) - 1);
      std::size_t offset = static_cast<std::size_t>(aligned - base);
      if (offset + bytes <= c.size) {
        c.used = offset + bytes;
        totalAllocated_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      if (current_ + 1 < chunks_.size()) {
        ++current_;
        chunks_[current_].used = 0;
        continue;
      }
    }
    std::size_t size = std::max(chunkBytes_, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size, 0});
    current_ = chunks_.size() - 1;
  }
}

void Arena::rewind(Mark m) {
  if (chunks_.empty()) return;
  current_ = std::min(m.chunk, chunks_.size() - 1);
  chunks_[current_].used = std::min(m.used, chunks_[current_].size);
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

Arena& threadArena() {
  thread_local Arena arena;
  return arena;
}

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

namespace {

/// Which pool (if any) the current thread is a worker of, and its queue
/// slot. Helping threads that are not workers carry slot -1 and steal.
struct WorkerIdentity {
  const TaskPool* pool = nullptr;
  int slot = -1;
};
thread_local WorkerIdentity tlsWorker;

}  // namespace

void TaskPool::IdleStats::accumulate(const IdleStats& o) {
  bouts += o.bouts;
  idleNanos += o.idleNanos;
  for (int i = 0; i < kBuckets; ++i) histogram[static_cast<std::size_t>(i)] +=
      o.histogram[static_cast<std::size_t>(i)];
}

TaskPool::IdleStats TaskPool::IdleStats::since(const IdleStats& start) const {
  IdleStats d;
  d.bouts = bouts - start.bouts;
  d.idleNanos = idleNanos - start.idleNanos;
  for (int i = 0; i < kBuckets; ++i) {
    auto u = static_cast<std::size_t>(i);
    d.histogram[u] = histogram[u] - start.histogram[u];
  }
  return d;
}

TaskPool::TaskPool(int nThreads) {
  if (nThreads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    nThreads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threadCount_ = nThreads;
  idle_.resize(static_cast<std::size_t>(threadCount_) + 1);
  if (threadCount_ == 1) {
    // Deterministic reference path: one FIFO, no workers; wait() drains the
    // queue inline in exact submission order.
    queues_.push_back(std::make_unique<Queue>());
    return;
  }
  queues_.reserve(static_cast<std::size_t>(threadCount_));
  for (int i = 0; i < threadCount_; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(static_cast<std::size_t>(threadCount_));
  for (int i = 0; i < threadCount_; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  idleCv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::submit(WaitGroup& wg, std::function<void()> fn) {
  wg.pending_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t slot =
      nextQueue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lk(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(Task{std::move(fn), &wg});
  }
  idleCv_.notify_one();
}

void TaskPool::runTask(Task&& task) {
  WaitGroup* wg = task.wg;
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(wg->mu_);
    if (!wg->error_) wg->error_ = std::current_exception();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  wg->pending_.fetch_sub(1, std::memory_order_acq_rel);
  idleCv_.notify_all();
}

bool TaskPool::tryRunOne(int preferredSlot) {
  Task task;
  bool have = false;
  // Own queue first, oldest task first: with a single executor this makes
  // execution order equal submission order.
  if (preferredSlot >= 0) {
    Queue& q = *queues_[static_cast<std::size_t>(preferredSlot)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      have = true;
    }
  }
  if (!have) {
    std::size_t n = queues_.size();
    std::size_t start = preferredSlot >= 0
                            ? (static_cast<std::size_t>(preferredSlot) + 1) % n
                            : 0;
    for (std::size_t i = 0; i < n && !have; ++i) {
      std::size_t v = (start + i) % n;
      if (preferredSlot >= 0 && v == static_cast<std::size_t>(preferredSlot)) continue;
      Queue& q = *queues_[v];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.tasks.empty()) {
        // Steal the newest task: the victim keeps draining its own queue
        // from the front, so front/back contention is minimized.
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
        have = true;
        if (queues_.size() > 1) steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!have) return false;
  runTask(std::move(task));
  return true;
}

void TaskPool::recordIdle(std::size_t row, std::uint64_t nanos) {
  IdleStats& s = idle_[row];
  ++s.bouts;
  s.idleNanos += nanos;
  const std::uint64_t us = nanos / 1000;
  int b = 0;
  while (b + 1 < IdleStats::kBuckets && us >= (std::uint64_t{1} << b)) ++b;
  ++s.histogram[static_cast<std::size_t>(b)];
}

std::vector<TaskPool::IdleStats> TaskPool::idleStats() const {
  std::lock_guard<std::mutex> lk(idleMu_);
  return idle_;
}

void TaskPool::workerLoop(int slot) {
  tlsWorker = WorkerIdentity{this, slot};
  while (!stop_.load(std::memory_order_acquire)) {
    if (tryRunOne(slot)) continue;
    std::unique_lock<std::mutex> lk(idleMu_);
    if (stop_.load(std::memory_order_acquire)) break;
    const auto t0 = std::chrono::steady_clock::now();
    idleCv_.wait_for(lk, std::chrono::milliseconds(2));
    recordIdle(static_cast<std::size_t>(slot),
               static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()));
  }
  tlsWorker = WorkerIdentity{};
}

void TaskPool::wait(WaitGroup& wg) {
  int slot = -1;
  if (tlsWorker.pool == this) {
    slot = tlsWorker.slot;  // nested wait from inside one of our tasks
  } else if (threadCount_ == 1) {
    slot = 0;  // single-queue pool: the waiting thread is the executor
  }
  // Workers idle into their own telemetry row; any other waiting thread
  // (the session thread driving runAll, a helper) shares the final row.
  const std::size_t idleRow = slot >= 0 && tlsWorker.pool == this
                                  ? static_cast<std::size_t>(slot)
                                  : static_cast<std::size_t>(threadCount_);
  while (wg.pending() > 0) {
    if (tryRunOne(slot)) continue;
    std::unique_lock<std::mutex> lk(idleMu_);
    const auto t0 = std::chrono::steady_clock::now();
    idleCv_.wait_for(lk, std::chrono::milliseconds(1),
                     [&] { return wg.pending() == 0; });
    recordIdle(idleRow,
               static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()));
  }
  std::lock_guard<std::mutex> lk(wg.mu_);
  if (wg.error_) {
    std::exception_ptr e = wg.error_;
    wg.error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void TaskPool::runAll(std::vector<std::function<void()>> thunks) {
  WaitGroup wg;
  for (auto& fn : thunks) submit(wg, std::move(fn));
  wait(wg);
}

// ---------------------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------------------

std::size_t TaskGraph::add(std::function<void()> fn) {
  nodes_.push_back(std::make_unique<Node>());
  nodes_.back()->fn = std::move(fn);
  return nodes_.size() - 1;
}

void TaskGraph::addEdge(std::size_t before, std::size_t after) {
  if (before >= nodes_.size() || after >= nodes_.size() || before == after)
    throw std::logic_error("TaskGraph::addEdge: bad node index");
  std::vector<std::size_t>& out = nodes_[before]->out;
  if (std::find(out.begin(), out.end(), after) != out.end()) return;
  out.push_back(after);
  nodes_[after]->pending.fetch_add(1, std::memory_order_relaxed);
}

void TaskGraph::submitNode(TaskPool& pool, WaitGroup& wg, std::size_t index) {
  pool.submit(wg, [this, &pool, &wg, index] {
    nodes_[index]->fn();
    executedNodes_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t succ : nodes_[index]->out) {
      if (nodes_[succ]->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        submitNode(pool, wg, succ);
    }
  });
}

void TaskGraph::run(TaskPool& pool) {
  WaitGroup wg;
  // Remove each node's "start" token. A node whose predecessors all finished
  // before its token is removed gets submitted HERE; otherwise the last
  // finishing predecessor's decrement reaches zero and submits it. Either
  // way the submission is unique — reading pending==0 and then submitting
  // would instead race with predecessors that complete mid-loop.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      submitNode(pool, wg, i);
  }
  pool.wait(wg);
  if (executedNodes_.load(std::memory_order_relaxed) != nodes_.size())
    throw std::logic_error("TaskGraph::run: cycle left nodes unrunnable");
}

}  // namespace ps::support
