#include "emit/emit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "cfg/flow_graph.h"
#include "dataflow/liveness.h"
#include "dependence/graph.h"
#include "fortran/pretty.h"
#include "ir/refs.h"
#include "transform/transform.h"

namespace ps::emit {

const char* clauseKindName(ClauseKind k) {
  switch (k) {
    case ClauseKind::Private: return "PRIVATE";
    case ClauseKind::FirstPrivate: return "FIRSTPRIVATE";
    case ClauseKind::LastPrivate: return "LASTPRIVATE";
    case ClauseKind::Reduction: return "REDUCTION";
    case ClauseKind::Shared: return "SHARED";
  }
  return "?";
}

std::string BlockingEdge::str() const {
  std::ostringstream os;
  os << "dep#" << depId << " " << type << " on "
     << (variable.empty() ? "<control>" : variable) << " stmt" << srcStmt
     << "->stmt" << dstStmt << " level=" << level << " [" << mark << "]";
  return os.str();
}

std::string renderPayload(const std::vector<Clause>& clauses) {
  // Gather per-kind sorted variable lists. The ", " separator matters:
  // wrapOmpDirective breaks lines at spaces and the round-trip lexer
  // rejoins continuations with a single space, so a clause list split
  // across lines reassembles to exactly this payload.
  std::map<ClauseKind, std::set<std::string>> byKind;
  for (const Clause& c : clauses) byKind[c.kind].insert(c.variable);
  std::string p = "PARALLEL DO DEFAULT(NONE)";
  const ClauseKind order[] = {ClauseKind::Private, ClauseKind::FirstPrivate,
                              ClauseKind::LastPrivate, ClauseKind::Reduction,
                              ClauseKind::Shared};
  for (ClauseKind k : order) {
    auto it = byKind.find(k);
    if (it == byKind.end() || it->second.empty()) continue;
    p += ' ';
    p += clauseKindName(k);
    p += (k == ClauseKind::Reduction) ? "(+:" : "(";
    bool first = true;
    for (const std::string& v : it->second) {
      if (!first) p += ", ";
      first = false;
      p += v;
    }
    p += ')';
  }
  return p;
}

namespace {

/// The loop's induction variable plus every nested DO's induction variable
/// — all predetermined private in OpenMP.
std::set<std::string> inductionVars(const ir::Loop& loop) {
  std::set<std::string> ivs;
  ivs.insert(loop.inductionVar());
  for (const fortran::Stmt* s : loop.bodyStmts) {
    if (s->kind == fortran::StmtKind::Do) ivs.insert(s->doVar);
  }
  return ivs;
}

const dataflow::VariableClassification* classOf(
    const std::vector<dataflow::VariableClassification>& classes,
    const std::string& name) {
  for (const auto& c : classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

/// A scalar the intraprocedural analysis leaves Shared can still be proven
/// private by the dependence graph: when a callee KILLs it on every call
/// (the Table 3 interprocedural-kills row), the carried edges are gone from
/// the graph, the scalar is written inside the loop, and no surviving edge
/// crosses the loop boundary. Without this upgrade emission would list the
/// scalar SHARED and the relative check would refuse a loop the session
/// proved parallel.
bool graphPrivatizesScalar(const dep::DependenceGraph& g,
                           const std::set<fortran::StmtId>& inLoop,
                           const std::vector<ir::Ref>& refs,
                           const std::string& name) {
  bool writtenInside = false;
  for (const ir::Ref& r : refs) {
    if (r.name != name) continue;
    if (r.isArrayRef()) return false;  // arrays keep the analysis verdict
    if (r.isWrite() && r.stmt && inLoop.count(r.stmt->id)) {
      writtenInside = true;
    }
  }
  if (!writtenInside) return false;
  for (const dep::Dependence& d : g.all()) {
    if (!d.active() || d.type == dep::DepType::Input) continue;
    if (d.variable != name) continue;
    const bool srcIn = inLoop.count(d.srcStmt) != 0;
    const bool dstIn = inLoop.count(d.dstStmt) != 0;
    if (srcIn != dstIn) return false;  // value crosses the loop boundary
  }
  return true;
}

}  // namespace

std::vector<LoopEmission> planProcedure(const ProcedureContext& ctx) {
  std::vector<LoopEmission> out;
  const cfg::FlowGraph fg = cfg::FlowGraph::build(*ctx.model);
  const dataflow::Liveness lv = dataflow::Liveness::build(fg, *ctx.model);
  const dataflow::PrivatizationAnalysis priv =
      dataflow::PrivatizationAnalysis::build(*ctx.model, fg, lv);

  for (const auto& lp : ctx.model->loops()) {
    const ir::Loop& loop = *lp;
    if (!loop.stmt->isParallel) continue;
    LoopEmission le;
    le.procedure = ctx.proc->name;
    le.loop = loop.stmt->id;
    le.headline = fortran::stmtHeadline(*loop.stmt);

    // A recognized sum reduction maps to REDUCTION(+:acc), so carried
    // edges confined to the accumulator do not block emission.
    transform::SumReduction red;
    const bool hasRed = transform::findSumReduction(loop, &red);

    for (const dep::Dependence* d : ctx.graph->parallelismInhibitors(loop)) {
      if (hasRed && d->variable == red.accumulator) continue;
      BlockingEdge be;
      be.depId = d->id;
      be.type = dep::depTypeName(d->type);
      be.variable = d->variable;
      be.level = d->level;
      be.srcStmt = d->srcStmt;
      be.dstStmt = d->dstStmt;
      be.mark = dep::depMarkName(d->mark);
      le.blocking.push_back(be);
    }
    if (!le.blocking.empty()) {
      std::ostringstream os;
      os << le.blocking.size() << " surviving loop-carried dependence(s): ";
      for (std::size_t i = 0; i < le.blocking.size(); ++i) {
        if (i) os << "; ";
        os << le.blocking[i].str();
      }
      le.refusal = os.str();
      out.push_back(std::move(le));
      continue;
    }

    // Clause derivation over every variable the loop references (the DO
    // header's bound/step reads included — DEFAULT(NONE) requires listing
    // them), with the variable pane's precedence: reduction accumulator,
    // induction variables, user classification overrides, then the
    // privatization analysis.
    const std::set<std::string> ivs = inductionVars(loop);
    std::vector<ir::Ref> refs = ir::collectRefs(*loop.stmt);
    {
      std::vector<ir::Ref> body = ir::collectRefsRecursive(loop.bodyStmts);
      refs.insert(refs.end(), body.begin(), body.end());
    }
    std::set<std::string> names;
    for (const ir::Ref& r : refs) names.insert(r.name);
    std::set<fortran::StmtId> inLoop;
    inLoop.insert(loop.stmt->id);
    for (const fortran::Stmt* s : loop.bodyStmts) inLoop.insert(s->id);

    const std::map<std::string, bool>* ov = nullptr;
    if (ctx.overrides) {
      auto it = ctx.overrides->find(le.loop);
      if (it != ctx.overrides->end()) ov = &it->second;
    }
    const auto& classes = priv.classesFor(loop);

    for (const std::string& name : names) {
      Clause c;
      c.variable = name;
      const dataflow::VariableClassification* vc = classOf(classes, name);
      if (hasRed && name == red.accumulator) {
        c.kind = ClauseKind::Reduction;
      } else if (ivs.count(name)) {
        c.kind = ClauseKind::Private;
      } else if (ov && ov->count(name)) {
        if (!ov->at(name)) {
          c.kind = ClauseKind::Shared;
        } else if (vc && vc->status ==
                             dataflow::PrivatizationStatus::PrivateNeedsLastValue) {
          c.kind = ClauseKind::LastPrivate;
        } else if (vc && vc->upwardExposedRead) {
          c.kind = ClauseKind::FirstPrivate;
        } else {
          c.kind = ClauseKind::Private;
        }
      } else {
        switch (priv.statusOf(loop, name)) {
          case dataflow::PrivatizationStatus::Private:
            c.kind = ClauseKind::Private;
            break;
          case dataflow::PrivatizationStatus::PrivateNeedsLastValue:
            c.kind = ClauseKind::LastPrivate;
            break;
          case dataflow::PrivatizationStatus::Unused:
          case dataflow::PrivatizationStatus::Shared:
            c.kind = ClauseKind::Shared;
            break;
        }
        if (c.kind == ClauseKind::Shared &&
            graphPrivatizesScalar(*ctx.graph, inLoop, refs, name)) {
          c.kind = ClauseKind::Private;
        }
      }
      le.clauses.push_back(std::move(c));
    }

    le.emitted = true;
    le.payload = renderPayload(le.clauses);
    for (const Clause& c : le.clauses) {
      if (c.kind == ClauseKind::Shared) continue;
      le.interpClauses.privatized.insert(c.variable);
      if (c.kind == ClauseKind::LastPrivate) {
        le.interpClauses.lastPrivate.insert(c.variable);
      }
    }
    out.push_back(std::move(le));
  }
  return out;
}

std::string EmissionReport::str() const {
  std::ostringstream os;
  if (!ran) {
    os << "emission did not run: " << error;
    return os.str();
  }
  os << "emission";
  if (!deck.empty()) os << " [" << deck << "]";
  os << ": " << loopsEmitted << " emitted, " << loopsRefused << " refused of "
     << loopsConsidered << " PARALLEL loop(s)";
  if (roundTripChecked) {
    os << "; round-trip " << (roundTripOk ? "OK" : "FAILED") << " at";
    for (int t : roundTripThreads) os << " " << t;
    os << " thread(s)";
    if (!roundTripOk) os << ": " << roundTripDetail;
  }
  if (!clauseHistogram.empty()) {
    os << "; clauses:";
    for (const auto& [k, n] : clauseHistogram) os << " " << k << "=" << n;
  }
  for (const LoopEmission& le : loops) {
    os << "\n  " << le.procedure << " stmt" << le.loop << " [" << le.headline
       << "]: ";
    if (le.emitted) {
      os << "!$OMP " << le.payload;
      if (le.relativeChecked) {
        os << (le.relativeDiverged ? " [DIVERGED]" : " [validated]");
      }
    } else {
      os << "REFUSED: " << le.refusal;
    }
  }
  return os.str();
}

}  // namespace ps::emit
