#ifndef PS_EMIT_EMIT_H
#define PS_EMIT_EMIT_H

// OpenMP emission: the output side of the ParaScope loop — the paper's
// sessions end with loops *marked* PARALLEL, and this subsystem turns those
// marks into an OpenMP-annotated Fortran deck a real compiler could take.
//
// Emission is gated, never best-effort:
//  - a PARALLEL-marked loop with surviving loop-carried dependences (other
//    than a recognized sum reduction confined to its accumulator) REFUSES
//    to emit, with a structured report naming the blocking edges;
//  - clause derivation (PRIVATE / FIRSTPRIVATE / LASTPRIVATE / REDUCTION /
//    SHARED, under DEFAULT(NONE)) comes from the same privatization
//    analysis and user classifications the variable pane shows;
//  - each emitted loop is relative-executed (PR 7 machinery): shuffled
//    parallel schedules with the directive's data-sharing clauses applied
//    must match the serial run, or the loop is demoted to refused;
//  - the emitted deck must round-trip: re-lex to the exact directives that
//    were written, and re-analyze — at 1/2/4/8 threads — to a dependence
//    graph byte-identical to the directive-stripped source.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataflow/privatize.h"
#include "fortran/ast.h"
#include "interp/machine.h"
#include "ir/model.h"
#include "validate/validate.h"

namespace ps::dep {
class DependenceGraph;
}

namespace ps::emit {

enum class ClauseKind {
  Private,
  FirstPrivate,
  LastPrivate,
  Reduction,  // sum reductions only: REDUCTION(+:acc)
  Shared,
};

const char* clauseKindName(ClauseKind k);

struct Clause {
  ClauseKind kind = ClauseKind::Shared;
  std::string variable;
};

/// One dependence edge that blocks emission of a loop.
struct BlockingEdge {
  std::uint32_t depId = 0;
  std::string type;      // dep::depTypeName
  std::string variable;  // empty for control deps
  int level = 0;
  fortran::StmtId srcStmt = fortran::kInvalidStmt;
  fortran::StmtId dstStmt = fortran::kInvalidStmt;
  std::string mark;  // dep::depMarkName

  [[nodiscard]] std::string str() const;
};

/// Emission outcome for one PARALLEL-marked loop: either a directive with
/// derived clauses, or a refusal naming the blocking edges. Never silent.
struct LoopEmission {
  std::string procedure;
  fortran::StmtId loop = fortran::kInvalidStmt;
  std::string headline;

  bool emitted = false;
  /// Directive payload without the "!$OMP " sentinel, e.g.
  /// "PARALLEL DO DEFAULT(NONE) PRIVATE(I) SHARED(A,N)".
  std::string payload;
  std::vector<Clause> clauses;

  /// Why the loop was refused (empty when emitted).
  std::string refusal;
  std::vector<BlockingEdge> blocking;

  /// Relative-execution validation (when it ran for this loop).
  bool relativeChecked = false;
  bool relativeDiverged = false;
  long long serialExecutions = 0;
  std::string evidence;

  /// The clause set mapped onto interpreter semantics for validation.
  interp::LoopClauses interpClauses;
};

struct EmitOptions {
  /// Base interpreter options for the serial baseline and the shuffled
  /// schedules (input values etc.). parallelClauses is ignored — emission
  /// installs its own derived clause sets.
  interp::RunOptions run;
  int schedules = 3;
  bool relativeValidation = true;
  bool roundTrip = true;
  std::vector<int> roundTripThreads = {1, 2, 4, 8};
  long long maxSteps = 20'000'000;
};

/// Result of one Session::emitOpenMP pass.
struct EmissionReport {
  bool ran = false;
  std::string error;
  std::string deck;

  int loopsConsidered = 0;
  int loopsEmitted = 0;
  int loopsRefused = 0;
  std::vector<LoopEmission> loops;

  /// The emitted deck: pretty-printed program (no PARALLEL DO markers, the
  /// directives carry the parallelism) with "!$OMP" lines ahead of each
  /// emitted loop, wrapped at 72 columns.
  std::string deckText;

  bool roundTripChecked = false;
  bool roundTripOk = false;
  std::string roundTripDetail;
  std::vector<int> roundTripThreads;

  /// Clause-kind name -> count across every emitted loop.
  std::map<std::string, int> clauseHistogram;

  double emitSeconds = 0.0;
  double validateSeconds = 0.0;
  double roundTripSeconds = 0.0;

  [[nodiscard]] std::string str() const;
};

/// Everything clause derivation reads for one procedure. The overrides map
/// mirrors the session's user classifications: loop DO-stmt id -> variable
/// -> asPrivate.
struct ProcedureContext {
  const fortran::Procedure* proc = nullptr;
  const ir::ProcedureModel* model = nullptr;
  const dep::DependenceGraph* graph = nullptr;
  const std::map<fortran::StmtId, std::map<std::string, bool>>* overrides =
      nullptr;
};

/// Derive clauses or a refusal for every PARALLEL-marked loop of one
/// procedure, in program order. Pure analysis: nothing is modified.
[[nodiscard]] std::vector<LoopEmission> planProcedure(
    const ProcedureContext& ctx);

/// Render the directive payload ("PARALLEL DO DEFAULT(NONE) ...") from a
/// clause set. Variables are listed sorted within each clause.
[[nodiscard]] std::string renderPayload(const std::vector<Clause>& clauses);

}  // namespace ps::emit

#endif  // PS_EMIT_EMIT_H
