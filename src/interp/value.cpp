#include "interp/value.h"

#include <sstream>

namespace ps::interp {

std::string Value::str() const {
  switch (kind) {
    case Kind::Int: return std::to_string(i);
    case Kind::Logical: return b ? ".TRUE." : ".FALSE.";
    case Kind::Real: {
      std::ostringstream os;
      os << r;
      return os.str();
    }
  }
  return "?";
}

}  // namespace ps::interp
