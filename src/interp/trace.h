#ifndef PS_INTERP_TRACE_H
#define PS_INTERP_TRACE_H

// Memory-access trace recording for dynamic dependence validation.
//
// The trace is the interpreter-side half of the validation engine
// (src/validate): a serial execution records, for every named read and
// write, the executing statement, the touched storage element and the
// iteration context (which DO loops were active and at which normalized
// iteration). The validator replays these events against the dependence
// graph to confirm or refute pending and user-deleted dependences with
// evidence from a real execution rather than static conservatism.
//
// Iteration contexts are interned in a trie: one node per *iteration
// advance* (not per event), each holding (parent, loop DO-stmt id,
// normalized iteration index). An event stores only the node id of the
// innermost active loop iteration, so a million-event trace costs one
// 32-byte record per event, not a vector of loop counters each.
//
// Budgets: recording stops growing past `limits.maxEvents` events or
// `limits.maxElements` distinct storage elements. Overflow is never
// silent — the flags below flip, dropped work is counted, and the
// validator degrades every no-witness answer to an explicit
// `Unvalidated` verdict (a witness found before the overflow still
// refutes soundly).

#include <cstdint>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::interp {

/// Caps on trace growth; exceeded caps degrade, never abort the run.
struct TraceLimits {
  long long maxEvents = 1'000'000;
  long long maxElements = 1 << 18;
};

/// One iteration-context trie node: `loop` is the DO statement, `iter`
/// the normalized iteration index (0-based trip count, not the IV value —
/// comparable across schedules regardless of step sign).
struct IterNode {
  std::int32_t parent = -1;  // -1 = outside any loop
  fortran::StmtId loop = fortran::kInvalidStmt;
  long long iter = 0;
};

/// One recorded access. Events appear in execution order, so the vector
/// index doubles as the serial sequence number.
struct TraceEvent {
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::uint32_t element = 0;  // dense element id (see Trace::elementVar)
  std::int32_t ctx = -1;      // iteration-context node, -1 = no loop
  bool isWrite = false;
};

/// A read of a storage element no write (or READ statement) has touched
/// yet: likely an uninitialized use. Tallied with the originating
/// statement so reports map back to source lines.
struct UninitRead {
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::string variable;
};

/// The recorded trace of one serial execution.
struct Trace {
  TraceLimits limits;
  std::vector<TraceEvent> events;
  std::vector<IterNode> nodes;
  /// Element id -> variable name of the first access (aliased formals may
  /// reach the same element under several names; the first one wins, which
  /// is deterministic for a deterministic execution).
  std::vector<std::string> elementVar;
  /// First few suspected uninitialized reads (capped; `uninitReadCount`
  /// keeps the true total).
  std::vector<UninitRead> uninitReads;
  long long uninitReadCount = 0;

  bool eventsOverflowed = false;
  bool elementsSaturated = false;
  long long eventsDropped = 0;

  /// True when every access of the run was recorded: only then can the
  /// absence of a witness confirm a deletion as safe.
  [[nodiscard]] bool complete() const {
    return !eventsOverflowed && !elementsSaturated;
  }

  /// Normalized iteration of `loop` in context `ctx`; -1 when the context
  /// is not (transitively) inside an iteration of that loop.
  [[nodiscard]] long long iterOf(std::int32_t ctx,
                                 fortran::StmtId loop) const {
    while (ctx >= 0) {
      const IterNode& n = nodes[static_cast<std::size_t>(ctx)];
      if (n.loop == loop) return n.iter;
      ctx = n.parent;
    }
    return -1;
  }
};

}  // namespace ps::interp

#endif  // PS_INTERP_TRACE_H
