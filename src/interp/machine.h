#ifndef PS_INTERP_MACHINE_H
#define PS_INTERP_MACHINE_H

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fortran/ast.h"
#include "interp/trace.h"
#include "interp/value.h"

namespace ps::interp {

/// A data race observed while executing a PARALLEL DO loop: two different
/// iterations touched the same storage cell and at least one access was a
/// write that conflicts (flow/anti: one iteration's exposed read against
/// another's write; output: two writes).
struct Race {
  fortran::StmtId loop = fortran::kInvalidStmt;
  std::string variable;
  long long iterationA = 0;
  long long iterationB = 0;
  bool outputOnly = false;  // write-write only (no exposed read involved)
};

/// Result of executing a program.
struct RunResult {
  bool ok = false;
  std::string error;
  ps::SourceLoc errorLoc;
  /// Statement executing when the error fired (kInvalidStmt when the
  /// failure preceded any statement). Lets runtime diagnostics — step
  /// limits, out-of-bounds subscripts, division by zero — name the source
  /// line in trace and validation reports.
  fortran::StmtId errorStmt = fortran::kInvalidStmt;
  /// The STOP statement that ended the run, when one did.
  fortran::StmtId stopStmt = fortran::kInvalidStmt;
  /// Values printed by WRITE/PRINT statements, in order.
  std::vector<double> output;
  /// Total statements executed.
  long long steps = 0;
  /// Execution count per statement id — the "program execution profile"
  /// workshop users relied on to find hot loops.
  std::map<fortran::StmtId, long long> stmtCounts;
  /// Races detected in PARALLEL DO loops (empty when none or when race
  /// checking is off).
  std::vector<Race> races;

  [[nodiscard]] bool outputEquals(const RunResult& other,
                                  double tol = 1e-9) const;
};

/// OpenMP-style data-sharing clauses for one PARALLEL DO, supplied by an
/// emission client so shuffled-schedule execution models what the emitted
/// directive promises. `privatized` variables (PRIVATE / FIRSTPRIVATE /
/// LASTPRIVATE / REDUCTION) get per-thread copies under the directive, so
/// cross-iteration conflicts on them are resolved by the clause and are
/// not reported as races; the shared-cell values still flow in program
/// order within each (atomically executed) iteration, so a variable that
/// genuinely carries a value between iterations still diverges the output
/// diff. `lastPrivate` variables additionally receive the value from the
/// sequentially-last iteration after the loop, whatever order the shuffle
/// executed iterations in — exactly OpenMP LASTPRIVATE copy-out.
struct LoopClauses {
  std::set<std::string> privatized;
  std::set<std::string> lastPrivate;
};

/// Options controlling one execution.
struct RunOptions {
  /// Values served to READ statements, in order (recycled when exhausted).
  std::vector<double> input;
  /// Abort after this many executed statements (runaway guard).
  long long maxSteps = 100'000'000;
  /// Execute PARALLEL DO loops with a shuffled iteration order and the
  /// cross-iteration conflict detector armed.
  bool checkParallel = true;
  /// Deterministic seed for the iteration shuffle.
  unsigned shuffleSeed = 12345;
  /// When set, every named read/write is recorded here with its statement
  /// and iteration context (dynamic dependence validation). The caller
  /// owns the trace and its limits; recording degrades per TraceLimits.
  Trace* trace = nullptr;
  /// Data-sharing clauses per PARALLEL DO statement id. Loops without an
  /// entry keep the default conservative semantics (only the induction
  /// variable is implicitly private).
  std::map<fortran::StmtId, LoopClauses> parallelClauses;
};

/// A tree-walking interpreter for the supported Fortran dialect: the
/// execution substrate that stands in for the paper's Cray/Sun runs. It
/// validates transformation safety (original vs transformed must agree) and
/// provides the execution profiles PED's work model starts from.
class Machine {
 public:
  explicit Machine(const fortran::Program& program);

  /// Execute the main program unit.
  [[nodiscard]] RunResult run(const RunOptions& opts = {});

 private:
  struct Impl;
  const fortran::Program& program_;
};

}  // namespace ps::interp

#endif  // PS_INTERP_MACHINE_H
