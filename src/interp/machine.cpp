#include "interp/machine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>
#include <set>

#include "fortran/pretty.h"
#include "ir/refs.h"

namespace ps::interp {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Procedure;
using fortran::Program;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::TypeKind;
using fortran::UnOp;

namespace {

bool Value_isTrue(const Value& v) { return v.asLogical(); }

/// A flattened instruction.
struct Op {
  enum class K {
    Exec,     // assign / call / read / write / continue / assertion
    Branch,   // if cond is FALSE jump to a
    Jump,     // jump to a
    DoInit,   // initialize loop slot c; on zero trip jump to a (exit)
    DoStep,   // advance loop slot c; if more iterations jump to a (body)
    ArithIf,  // three-way branch to a/b/c on sign of cond
    Ret,      // return from procedure
    Stop,     // stop the whole program
  };
  K k = K::Exec;
  const Stmt* stmt = nullptr;
  const Expr* cond = nullptr;
  int a = 0, b = 0, c = 0;
};

struct Compiled {
  std::vector<Op> ops;
  std::map<int, int> labelPc;  // label -> pc
  int loopSlots = 0;
};

class Compiler {
 public:
  Compiled compile(const Procedure& proc) {
    for (const auto& s : proc.body) compileStmt(*s);
    Op ret;
    ret.k = Op::K::Ret;
    out_.ops.push_back(ret);
    // Resolve label jumps.
    for (Op& op : out_.ops) {
      if (op.k == Op::K::Jump && op.b != 0) {
        op.a = pcOfLabel(op.b);
        op.b = 0;
      } else if (op.k == Op::K::ArithIf) {
        op.a = pcOfLabel(op.a, /*isLabel=*/true);
        op.b = pcOfLabel(op.b, true);
        op.c = pcOfLabel(op.c, true);
      }
    }
    return std::move(out_);
  }

 private:
  int pcOfLabel(int label, bool = false) {
    auto it = out_.labelPc.find(label);
    if (it != out_.labelPc.end()) return it->second;
    return static_cast<int>(out_.ops.size()) - 1;  // fall to Ret
  }

  void compileStmt(const Stmt& s) {
    if (s.label != 0) {
      out_.labelPc[s.label] = static_cast<int>(out_.ops.size());
    }
    switch (s.kind) {
      case StmtKind::Assign:
      case StmtKind::Call:
      case StmtKind::Read:
      case StmtKind::Write:
      case StmtKind::Continue:
      case StmtKind::Assertion: {
        Op op;
        op.k = Op::K::Exec;
        op.stmt = &s;
        out_.ops.push_back(op);
        return;
      }
      case StmtKind::Return: {
        Op op;
        op.k = Op::K::Ret;
        op.stmt = &s;
        out_.ops.push_back(op);
        return;
      }
      case StmtKind::Stop: {
        Op op;
        op.k = Op::K::Stop;
        op.stmt = &s;
        out_.ops.push_back(op);
        return;
      }
      case StmtKind::Goto: {
        Op op;
        op.k = Op::K::Jump;
        op.stmt = &s;
        op.b = s.gotoTarget;  // resolved later
        out_.ops.push_back(op);
        return;
      }
      case StmtKind::ArithmeticIf: {
        Op op;
        op.k = Op::K::ArithIf;
        op.stmt = &s;
        op.cond = s.condExpr.get();
        op.a = s.aifLabels[0];
        op.b = s.aifLabels[1];
        op.c = s.aifLabels[2];
        out_.ops.push_back(op);
        return;
      }
      case StmtKind::If: {
        std::vector<int> endJumps;
        for (std::size_t i = 0; i < s.arms.size(); ++i) {
          const auto& arm = s.arms[i];
          int branchPc = -1;
          if (arm.condition) {
            Op br;
            br.k = Op::K::Branch;
            br.stmt = &s;
            br.cond = arm.condition.get();
            branchPc = static_cast<int>(out_.ops.size());
            out_.ops.push_back(br);
          }
          for (const auto& b : arm.body) compileStmt(*b);
          if (i + 1 < s.arms.size()) {
            Op jmp;
            jmp.k = Op::K::Jump;
            endJumps.push_back(static_cast<int>(out_.ops.size()));
            out_.ops.push_back(jmp);
          }
          if (branchPc >= 0) {
            out_.ops[static_cast<std::size_t>(branchPc)].a =
                static_cast<int>(out_.ops.size());
          }
        }
        for (int pc : endJumps) {
          out_.ops[static_cast<std::size_t>(pc)].a =
              static_cast<int>(out_.ops.size());
        }
        return;
      }
      case StmtKind::Do: {
        int slot = out_.loopSlots++;
        Op init;
        init.k = Op::K::DoInit;
        init.stmt = &s;
        init.c = slot;
        int initPc = static_cast<int>(out_.ops.size());
        out_.ops.push_back(init);
        int bodyPc = static_cast<int>(out_.ops.size());
        for (const auto& b : s.body) compileStmt(*b);
        Op step;
        step.k = Op::K::DoStep;
        step.stmt = &s;
        step.c = slot;
        step.a = bodyPc;
        out_.ops.push_back(step);
        out_.ops[static_cast<std::size_t>(initPc)].a =
            static_cast<int>(out_.ops.size());
        return;
      }
    }
  }

  Compiled out_;
};

struct RuntimeError {
  std::string message;
  ps::SourceLoc loc;
};

/// Normal termination via STOP: unwinds the frame stack to run(). Distinct
/// from RuntimeError so a genuinely empty error message can never be
/// mistaken for a clean stop. Carries the STOP statement's id so reports
/// can say which STOP ended the run.
struct StopSignal {
  fortran::StmtId stmt = fortran::kInvalidStmt;
};

}  // namespace

// ---------------------------------------------------------------------------
// The execution engine
// ---------------------------------------------------------------------------

struct Machine::Impl {
  const Program& program;
  const RunOptions& opts;
  RunResult result;
  std::size_t inputPos = 0;
  std::mt19937 rng;
  std::map<const Procedure*, Compiled> compiled;
  std::map<std::string, Storage> commons;  // key: block|name
  /// Next Storage::serial; stamped at every storage creation so cell
  /// identities survive heap address reuse across call frames.
  std::uint64_t nextStorageSerial = 1;

  struct ArrayShape {
    std::vector<long long> extents;      // -1 = assumed size
    std::vector<long long> lowerBounds;
  };

  struct Frame {
    const Procedure* proc = nullptr;
    std::map<std::string, Storage> locals;
    std::map<std::string, CellRef> bindings;      // formals bound by ref
    std::map<std::string, ArrayShape> shapes;     // evaluated array shapes
    std::deque<Storage> temps;  // deque: stable addresses for bindings
  };

  /// Cross-iteration access tracking for one active PARALLEL DO.
  struct ParallelCtx {
    const Stmt* loop = nullptr;
    /// Directive clauses supplied for this loop (null = none): conflicts on
    /// clause-privatized variables are resolved by the directive, like the
    /// induction variable's.
    const LoopClauses* clauses = nullptr;
    long long iteration = 0;
    std::map<CellRef::Address, std::pair<long long, std::string>>
        firstWriter;  // address -> (iteration, variable)
    std::map<CellRef::Address, long long> secondWriter;
    std::map<CellRef::Address, long long> exposedReader;
    std::set<CellRef::Address> writtenThisIter;
    std::set<CellRef::Address> ivAddresses;

    void beginIteration(long long iter) {
      iteration = iter;
      writtenThisIter.clear();
    }
    void onRead(const CellRef::Address& a) {
      if (!writtenThisIter.count(a) && !exposedReader.count(a)) {
        exposedReader[a] = iteration;
      }
    }
    void onWrite(const CellRef::Address& a, const std::string& var) {
      writtenThisIter.insert(a);
      auto it = firstWriter.find(a);
      if (it == firstWriter.end()) {
        firstWriter[a] = {iteration, var};
      } else if (it->second.first != iteration && !secondWriter.count(a)) {
        secondWriter[a] = iteration;
      }
    }
    void finish(std::vector<Race>& races) const {
      std::set<std::string> reported;
      for (const auto& [addr, wr] : firstWriter) {
        if (ivAddresses.count(addr)) continue;  // implicitly private
        if (clauses && clauses->privatized.count(wr.second)) continue;
        auto er = exposedReader.find(addr);
        if (er != exposedReader.end() && er->second != wr.first) {
          if (reported.insert(wr.second).second) {
            races.push_back(
                {loop->id, wr.second, wr.first, er->second, false});
          }
          continue;
        }
        auto sw = secondWriter.find(addr);
        if (sw != secondWriter.end()) {
          if (reported.insert(wr.second).second) {
            races.push_back(
                {loop->id, wr.second, wr.first, sw->second, true});
          }
        }
      }
    }
  };
  std::vector<ParallelCtx> parallelStack;

  /// Statement currently executing (runtime diagnostics and trace events
  /// are attributed to it).
  const Stmt* curStmt = nullptr;

  // --- Trace recording (dynamic dependence validation) -----------------
  Trace* trace = nullptr;
  /// Innermost active iteration-context node (-1 = outside any loop).
  std::int32_t curCtx = -1;
  /// Recording stopped because the node budget tripped: no further events
  /// may be attributed (their contexts would be missing or stale).
  bool traceDead = false;
  std::map<CellRef::Address, std::uint32_t> elemIds;
  std::set<std::uint32_t> writtenElems;
  std::set<std::uint32_t> uninitReported;

  Impl(const Program& p, const RunOptions& o) : program(p), opts(o) {
    rng.seed(o.shuffleSeed);
    trace = o.trace;
  }

  /// Intern a fresh iteration node; kills the trace (degrade, don't lie)
  /// when the node budget is exhausted.
  std::int32_t traceNode(std::int32_t parent, fortran::StmtId loop,
                         long long iter) {
    if (!trace || traceDead) return parent;
    if (static_cast<long long>(trace->nodes.size()) >=
        2 * trace->limits.maxEvents) {
      trace->eventsOverflowed = true;
      traceDead = true;
      return parent;
    }
    trace->nodes.push_back({parent, loop, iter});
    return static_cast<std::int32_t>(trace->nodes.size()) - 1;
  }

  void traceAccess(Frame& f, const Expr& ref, const CellRef& c,
                   bool isWrite) {
    if (!trace || traceDead) return;
    auto it = elemIds.find(c.address());
    if (it == elemIds.end()) {
      if (static_cast<long long>(trace->elementVar.size()) >=
          trace->limits.maxElements) {
        trace->elementsSaturated = true;
        ++trace->eventsDropped;
        return;
      }
      it = elemIds
               .emplace(c.address(),
                        static_cast<std::uint32_t>(trace->elementVar.size()))
               .first;
      trace->elementVar.push_back(ref.name);
    }
    const std::uint32_t elem = it->second;
    if (isWrite) {
      writtenElems.insert(elem);
    } else if (!writtenElems.count(elem)) {
      // First read of a never-written element: suspected uninitialized use
      // (PARAMETER constants materialize with their value and are exempt).
      const fortran::VarDecl* d = f.proc->findDecl(ref.name);
      if ((!d || !d->isParameter) && uninitReported.insert(elem).second) {
        ++trace->uninitReadCount;
        if (trace->uninitReads.size() < 64) {
          trace->uninitReads.push_back(
              {curStmt ? curStmt->id : fortran::kInvalidStmt, ref.name});
        }
      }
    }
    if (static_cast<long long>(trace->events.size()) >=
        trace->limits.maxEvents) {
      trace->eventsOverflowed = true;
      ++trace->eventsDropped;
      return;
    }
    trace->events.push_back({curStmt ? curStmt->id : fortran::kInvalidStmt,
                             elem, curCtx, isWrite});
  }

  const Compiled& compiledFor(const Procedure& proc) {
    auto it = compiled.find(&proc);
    if (it != compiled.end()) return it->second;
    Compiler c;
    return compiled.emplace(&proc, c.compile(proc)).first->second;
  }

  // -------------------------------------------------------------------
  // Storage resolution
  // -------------------------------------------------------------------

  long long evalIntExpr(Frame& f, const Expr& e) {
    return eval(f, e).asInt();
  }

  ArrayShape shapeFor(Frame& f, const fortran::VarDecl& decl) {
    ArrayShape shape;
    for (const auto& d : decl.dims) {
      long long lb = d.lower ? evalIntExpr(f, *d.lower) : 1;
      long long ext = -1;
      if (d.upper) {
        ext = evalIntExpr(f, *d.upper) - lb + 1;
        if (ext < 0) ext = 0;
      }
      shape.lowerBounds.push_back(lb);
      shape.extents.push_back(ext);
    }
    return shape;
  }

  /// Resolve the base cell and shape of a variable in a frame.
  CellRef baseOf(Frame& f, const std::string& name, ArrayShape** shapeOut) {
    auto itB = f.bindings.find(name);
    if (itB != f.bindings.end()) {
      if (shapeOut) {
        auto itS = f.shapes.find(name);
        *shapeOut = (itS != f.shapes.end()) ? &itS->second : nullptr;
      }
      return itB->second;
    }
    const fortran::VarDecl* decl = f.proc->findDecl(name);
    if (decl && !decl->commonBlock.empty()) {
      std::string key = decl->commonBlock + "|" + name;
      auto itC = commons.find(key);
      if (itC == commons.end()) {
        Storage st;
        st.serial = nextStorageSerial++;
        st.type = decl->type == TypeKind::DoublePrecision ? TypeKind::Real
                                                          : decl->type;
        ArrayShape shape = shapeFor(f, *decl);
        std::size_t total = 1;
        for (long long e : shape.extents) {
          total *= static_cast<std::size_t>(e < 0 ? 1 : e);
        }
        st.extents = shape.extents;
        st.lowerBounds = shape.lowerBounds;
        st.resize(total);
        itC = commons.emplace(key, std::move(st)).first;
        f.shapes[name] = shape;
      } else if (!f.shapes.count(name)) {
        ArrayShape shape;
        shape.extents = itC->second.extents;
        shape.lowerBounds = itC->second.lowerBounds;
        f.shapes[name] = shape;
      }
      if (shapeOut) *shapeOut = &f.shapes[name];
      return {&itC->second, 0};
    }
    // Local (created lazily).
    auto itL = f.locals.find(name);
    if (itL == f.locals.end()) {
      Storage st;
      st.serial = nextStorageSerial++;
      TypeKind t = decl ? decl->type : fortran::implicitType(name);
      st.type = (t == TypeKind::DoublePrecision) ? TypeKind::Real : t;
      ArrayShape shape;
      if (decl && decl->isArray()) shape = shapeFor(f, *decl);
      std::size_t total = 1;
      for (long long e : shape.extents) {
        if (e < 0) {
          throw RuntimeError{"local array " + name + " has unknown extent",
                             decl ? decl->loc : ps::SourceLoc{}};
        }
        total *= static_cast<std::size_t>(e);
      }
      st.extents = shape.extents;
      st.lowerBounds = shape.lowerBounds;
      st.resize(total);
      itL = f.locals.emplace(name, std::move(st)).first;
      f.shapes[name] = shape;
      // PARAMETER constants materialize with their value.
      if (decl && decl->isParameter && decl->parameterValue) {
        itL->second.store(0, eval(f, *decl->parameterValue));
      }
    }
    if (shapeOut) *shapeOut = &f.shapes[name];
    return {&itL->second, 0};
  }

  CellRef cellOf(Frame& f, const Expr& ref) {
    ArrayShape* shape = nullptr;
    CellRef base = baseOf(f, ref.name, &shape);
    if (ref.kind == ExprKind::VarRef) return base;
    // Column-major linearization.
    std::size_t flat = 0;
    std::size_t mult = 1;
    for (std::size_t d = 0; d < ref.args.size(); ++d) {
      long long idx = evalIntExpr(f, *ref.args[d]);
      long long lb = 1, ext = -1;
      if (shape && d < shape->lowerBounds.size()) {
        lb = shape->lowerBounds[d];
        ext = shape->extents[d];
      }
      long long rel = idx - lb;
      if (rel < 0 || (ext >= 0 && rel >= ext)) {
        throw RuntimeError{"subscript out of range for " + ref.name + ": " +
                               std::to_string(idx),
                           ref.loc};
      }
      flat += static_cast<std::size_t>(rel) * mult;
      if (ext >= 0) mult *= static_cast<std::size_t>(ext);
    }
    std::size_t off = base.offset + flat;
    if (off >= base.storage->size()) {
      // Assumed-size overrun of the underlying slab.
      throw RuntimeError{"subscript beyond storage of " + ref.name, ref.loc};
    }
    return {base.storage, off};
  }

  Value load(Frame& f, const Expr& ref) {
    CellRef c = cellOf(f, ref);
    for (auto& ctx : parallelStack) ctx.onRead(c.address());
    if (trace) traceAccess(f, ref, c, /*isWrite=*/false);
    return c.storage->load(c.offset);
  }

  void store(Frame& f, const Expr& ref, const Value& v) {
    CellRef c = cellOf(f, ref);
    for (auto& ctx : parallelStack) ctx.onWrite(c.address(), ref.name);
    if (trace) traceAccess(f, ref, c, /*isWrite=*/true);
    c.storage->store(c.offset, v);
  }

  // -------------------------------------------------------------------
  // Expression evaluation
  // -------------------------------------------------------------------

  Value intrinsic(Frame& f, const Expr& call) {
    const std::string& n = call.name;
    auto arg = [&](std::size_t i) { return eval(f, *call.args[i]); };
    auto real1 = [&](double (*fn)(double)) {
      return Value::ofReal(fn(arg(0).asReal()));
    };
    if (n == "ABS" || n == "DABS") {
      Value v = arg(0);
      return v.kind == Value::Kind::Int ? Value::ofInt(std::llabs(v.i))
                                        : Value::ofReal(std::fabs(v.asReal()));
    }
    if (n == "IABS") return Value::ofInt(std::llabs(arg(0).asInt()));
    if (n == "SQRT" || n == "DSQRT") return real1(std::sqrt);
    if (n == "SIN") return real1(std::sin);
    if (n == "COS") return real1(std::cos);
    if (n == "TAN") return real1(std::tan);
    if (n == "ATAN") return real1(std::atan);
    if (n == "EXP" || n == "DEXP") return real1(std::exp);
    if (n == "LOG" || n == "ALOG" || n == "DLOG") return real1(std::log);
    if (n == "LOG10") return real1(std::log10);
    if (n == "ATAN2") {
      return Value::ofReal(std::atan2(arg(0).asReal(), arg(1).asReal()));
    }
    if (n == "MAX" || n == "AMAX1" || n == "MAX0") {
      Value acc = arg(0);
      bool isInt = acc.kind == Value::Kind::Int && n != "AMAX1";
      double best = acc.asReal();
      for (std::size_t i = 1; i < call.args.size(); ++i) {
        Value v = arg(i);
        if (v.kind != Value::Kind::Int) isInt = false;
        best = std::max(best, v.asReal());
      }
      return isInt ? Value::ofInt(static_cast<long long>(best))
                   : Value::ofReal(best);
    }
    if (n == "MIN" || n == "AMIN1" || n == "MIN0") {
      Value acc = arg(0);
      bool isInt = acc.kind == Value::Kind::Int && n != "AMIN1";
      double best = acc.asReal();
      for (std::size_t i = 1; i < call.args.size(); ++i) {
        Value v = arg(i);
        if (v.kind != Value::Kind::Int) isInt = false;
        best = std::min(best, v.asReal());
      }
      return isInt ? Value::ofInt(static_cast<long long>(best))
                   : Value::ofReal(best);
    }
    if (n == "MOD" || n == "AMOD") {
      Value a = arg(0), b = arg(1);
      if (a.kind == Value::Kind::Int && b.kind == Value::Kind::Int) {
        if (b.i == 0) throw RuntimeError{"MOD by zero", call.loc};
        return Value::ofInt(a.i % b.i);
      }
      return Value::ofReal(std::fmod(a.asReal(), b.asReal()));
    }
    if (n == "FLOAT" || n == "REAL" || n == "DBLE" || n == "SNGL" ||
        n == "DFLOAT") {
      return Value::ofReal(arg(0).asReal());
    }
    if (n == "INT" || n == "IFIX") return Value::ofInt(arg(0).asInt());
    if (n == "NINT") {
      return Value::ofInt(static_cast<long long>(std::llround(
          arg(0).asReal())));
    }
    if (n == "SIGN" || n == "ISIGN") {
      Value a = arg(0), b = arg(1);
      double m = std::fabs(a.asReal());
      double v = b.asReal() >= 0 ? m : -m;
      return n == "ISIGN" ? Value::ofInt(static_cast<long long>(v))
                          : Value::ofReal(v);
    }
    if (n == "DIM" || n == "IDIM") {
      double v = std::max(0.0, arg(0).asReal() - arg(1).asReal());
      return n == "IDIM" ? Value::ofInt(static_cast<long long>(v))
                         : Value::ofReal(v);
    }
    throw RuntimeError{"unknown intrinsic " + n, call.loc};
  }

  Value eval(Frame& f, const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntConst: return Value::ofInt(e.intValue);
      case ExprKind::RealConst: return Value::ofReal(e.realValue);
      case ExprKind::LogicalConst: return Value::ofLogical(e.logicalValue);
      case ExprKind::StringConst: return Value::ofReal(0.0);
      case ExprKind::VarRef:
      case ExprKind::ArrayRef:
        return load(f, e);
      case ExprKind::FuncCall: {
        if (ir::isIntrinsic(e.name)) return intrinsic(f, e);
        const Procedure* callee = findUnit(e.name);
        if (!callee) {
          throw RuntimeError{"call to undefined function " + e.name, e.loc};
        }
        return callProcedure(f, *callee, e.args, &e);
      }
      case ExprKind::Unary: {
        Value v = eval(f, *e.lhs);
        switch (e.unOp) {
          case UnOp::Plus: return v;
          case UnOp::Neg:
            return v.kind == Value::Kind::Int ? Value::ofInt(-v.i)
                                              : Value::ofReal(-v.asReal());
          case UnOp::Not: return Value::ofLogical(!v.asLogical());
        }
        return v;
      }
      case ExprKind::Binary: {
        // Short-circuit-free Fortran semantics; evaluate both sides.
        Value l = eval(f, *e.lhs);
        Value r = eval(f, *e.rhs);
        const bool bothInt =
            l.kind == Value::Kind::Int && r.kind == Value::Kind::Int;
        switch (e.binOp) {
          case BinOp::Add:
            return bothInt ? Value::ofInt(l.i + r.i)
                           : Value::ofReal(l.asReal() + r.asReal());
          case BinOp::Sub:
            return bothInt ? Value::ofInt(l.i - r.i)
                           : Value::ofReal(l.asReal() - r.asReal());
          case BinOp::Mul:
            return bothInt ? Value::ofInt(l.i * r.i)
                           : Value::ofReal(l.asReal() * r.asReal());
          case BinOp::Div:
            if (bothInt) {
              if (r.i == 0) throw RuntimeError{"integer division by zero",
                                               e.loc};
              return Value::ofInt(l.i / r.i);
            }
            return Value::ofReal(l.asReal() / r.asReal());
          case BinOp::Pow:
            if (bothInt && r.i >= 0) {
              long long acc = 1;
              for (long long k = 0; k < r.i; ++k) acc *= l.i;
              return Value::ofInt(acc);
            }
            return Value::ofReal(std::pow(l.asReal(), r.asReal()));
          case BinOp::Lt: return Value::ofLogical(l.asReal() < r.asReal());
          case BinOp::Le: return Value::ofLogical(l.asReal() <= r.asReal());
          case BinOp::Gt: return Value::ofLogical(l.asReal() > r.asReal());
          case BinOp::Ge: return Value::ofLogical(l.asReal() >= r.asReal());
          case BinOp::Eq: return Value::ofLogical(l.asReal() == r.asReal());
          case BinOp::Ne: return Value::ofLogical(l.asReal() != r.asReal());
          case BinOp::And:
            return Value::ofLogical(l.asLogical() && r.asLogical());
          case BinOp::Or:
            return Value::ofLogical(l.asLogical() || r.asLogical());
          case BinOp::Eqv:
            return Value::ofLogical(l.asLogical() == r.asLogical());
          case BinOp::Neqv:
            return Value::ofLogical(l.asLogical() != r.asLogical());
        }
        return l;
      }
    }
    return Value::ofReal(0.0);
  }

  const Procedure* findUnit(const std::string& name) {
    for (const auto& u : program.units) {
      if (u->name == name) return u.get();
    }
    return nullptr;
  }

  // -------------------------------------------------------------------
  // Calls
  // -------------------------------------------------------------------

  Value callProcedure(Frame& caller, const Procedure& callee,
                      const std::vector<fortran::ExprPtr>& args,
                      const Expr* funcExpr) {
    Frame f;
    f.proc = &callee;
    // Bind formals.
    for (std::size_t i = 0; i < callee.params.size() && i < args.size();
         ++i) {
      const Expr& actual = *args[i];
      const std::string& formal = callee.params[i];
      if (actual.kind == ExprKind::VarRef ||
          actual.kind == ExprKind::ArrayRef) {
        CellRef cell = (actual.kind == ExprKind::VarRef)
                           ? baseOf(caller, actual.name, nullptr)
                           : cellOf(caller, actual);
        f.bindings[formal] = cell;
      } else {
        // Value actual: a fresh temp cell.
        Value v = eval(caller, actual);
        f.temps.emplace_back();
        Storage& st = f.temps.back();
        st.serial = nextStorageSerial++;
        st.type = (v.kind == Value::Kind::Int) ? TypeKind::Integer
                                               : TypeKind::Real;
        st.resize(1);
        st.store(0, v);
        f.bindings[formal] = {&st, 0};
      }
    }
    // Evaluate formal array shapes (dims may reference other formals).
    for (const auto& formal : callee.params) {
      const fortran::VarDecl* d = callee.findDecl(formal);
      if (d && d->isArray() && f.bindings.count(formal)) {
        f.shapes[formal] = shapeFor(f, *d);
      }
    }
    execute(f);
    if (funcExpr) {
      // Function result lives in the variable named after the function.
      ArrayShape* shape = nullptr;
      CellRef cell = baseOf(f, callee.name, &shape);
      return cell.storage->load(cell.offset);
    }
    return Value::ofReal(0.0);
  }

  // -------------------------------------------------------------------
  // Statement execution
  // -------------------------------------------------------------------

  Value nextInput() {
    if (opts.input.empty()) {
      double v = static_cast<double>((inputPos % 97) + 1);
      ++inputPos;
      return Value::ofReal(v);
    }
    double v = opts.input[inputPos % opts.input.size()];
    ++inputPos;
    return Value::ofReal(v);
  }

  void execSimple(Frame& f, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        Value v = eval(f, *s.rhs);
        store(f, *s.lhs, v);
        return;
      }
      case StmtKind::Call: {
        const Procedure* callee = findUnit(s.callee);
        if (!callee) {
          throw RuntimeError{"call to undefined subroutine " + s.callee,
                             s.loc};
        }
        callProcedure(f, *callee, s.args, nullptr);
        return;
      }
      case StmtKind::Read: {
        for (const auto& item : s.args) {
          Value v = nextInput();
          store(f, *item, v);
        }
        return;
      }
      case StmtKind::Write: {
        for (const auto& item : s.args) {
          if (item->kind == ExprKind::StringConst) continue;
          result.output.push_back(eval(f, *item).asReal());
        }
        return;
      }
      default:
        return;  // Continue / Assertion: no-op
    }
  }

  struct LoopState {
    long long trip = 0;
    long long k = 0;
    long long lo = 0;
    long long step = 1;
    bool parallel = false;
    std::vector<long long> perm;
    bool realIv = false;
    double rlo = 0.0, rstep = 1.0;
    /// Iteration-context node enclosing this loop (trace mode).
    std::int32_t ctxParent = -1;
    /// Directive clauses for this activation (null = none supplied).
    const LoopClauses* clauses = nullptr;
    /// LASTPRIVATE staging: values captured at the end of the sequentially
    /// last iteration, copied out when the loop exhausts.
    std::map<std::string, Value> lastVals;
  };

  /// Snapshot the LASTPRIVATE variables' cells. Called right after the
  /// sequentially-last iteration finishes executing (whenever the shuffle
  /// scheduled it); raw cell access so the runtime bookkeeping itself never
  /// feeds the race detector or the trace.
  void captureLastPrivate(Frame& f, LoopState& ls) {
    if (!ls.clauses || ls.clauses->lastPrivate.empty()) return;
    for (const std::string& name : ls.clauses->lastPrivate) {
      fortran::Expr var;
      var.kind = ExprKind::VarRef;
      var.name = name;
      CellRef c = cellOf(f, var);
      ls.lastVals[name] = c.storage->load(c.offset);
    }
  }

  void setLoopVar(Frame& f, const Stmt& s, LoopState& ls, long long k) {
    long long idx = ls.perm.empty() ? k : ls.perm[static_cast<std::size_t>(k)];
    if (ls.parallel && !parallelStack.empty() &&
        parallelStack.back().loop == &s) {
      parallelStack.back().beginIteration(idx);
    }
    fortran::Expr var;
    var.kind = ExprKind::VarRef;
    var.name = s.doVar;
    // Register the induction variable's cell as implicitly private in
    // every active parallel context (a parallel DO privatizes its own IV;
    // inner sequential IVs are killed every iteration, so their write-write
    // conflicts are benign).
    {
      CellRef c = cellOf(f, var);
      for (auto& ctx : parallelStack) ctx.ivAddresses.insert(c.address());
    }
    if (ls.realIv) {
      store(f, var, Value::ofReal(ls.rlo + static_cast<double>(idx) *
                                               ls.rstep));
    } else {
      store(f, var, Value::ofInt(ls.lo + idx * ls.step));
    }
  }

  void execute(Frame& f) {
    const Compiled& code = compiledFor(*f.proc);
    std::vector<LoopState> slots(
        static_cast<std::size_t>(code.loopSlots));
    // A RETURN inside a DO must not leak the callee's iteration contexts
    // into the caller's subsequent events.
    const std::int32_t entryCtx = curCtx;
    std::size_t pc = 0;
    while (pc < code.ops.size()) {
      const Op& op = code.ops[pc];
      if (op.stmt) curStmt = op.stmt;
      if (++result.steps > opts.maxSteps) {
        throw RuntimeError{"step limit exceeded",
                           op.stmt ? op.stmt->loc : ps::SourceLoc{}};
      }
      if (op.stmt) ++result.stmtCounts[op.stmt->id];
      switch (op.k) {
        case Op::K::Exec:
          execSimple(f, *op.stmt);
          ++pc;
          break;
        case Op::K::Branch: {
          Value v = eval(f, *op.cond);
          if (!Value_isTrue(v)) {
            pc = static_cast<std::size_t>(op.a);
          } else {
            ++pc;
          }
          break;
        }
        case Op::K::Jump:
          pc = static_cast<std::size_t>(op.a);
          break;
        case Op::K::ArithIf: {
          double v = eval(f, *op.cond).asReal();
          pc = static_cast<std::size_t>(v < 0 ? op.a : (v == 0 ? op.b
                                                               : op.c));
          break;
        }
        case Op::K::DoInit: {
          LoopState& ls = slots[static_cast<std::size_t>(op.c)];
          const Stmt& s = *op.stmt;
          Value lo = eval(f, *s.doLo);
          Value hi = eval(f, *s.doHi);
          Value st = s.doStep ? eval(f, *s.doStep) : Value::ofInt(1);
          ls.realIv = (lo.kind != Value::Kind::Int ||
                       hi.kind != Value::Kind::Int ||
                       st.kind != Value::Kind::Int);
          if (ls.realIv) {
            ls.rlo = lo.asReal();
            ls.rstep = st.asReal();
            if (ls.rstep == 0.0) {
              throw RuntimeError{"zero DO step", s.loc};
            }
            ls.trip = static_cast<long long>(
                std::floor((hi.asReal() - ls.rlo + ls.rstep) / ls.rstep));
          } else {
            ls.lo = lo.asInt();
            ls.step = st.asInt();
            if (ls.step == 0) throw RuntimeError{"zero DO step", s.loc};
            ls.trip = (hi.asInt() - ls.lo + ls.step) / ls.step;
          }
          if (ls.trip < 0) ls.trip = 0;
          ls.k = 0;
          ls.parallel = s.isParallel && opts.checkParallel;
          ls.perm.clear();
          ls.clauses = nullptr;
          ls.lastVals.clear();
          if (ls.parallel && ls.trip > 1) {
            ls.perm.resize(static_cast<std::size_t>(ls.trip));
            for (long long i = 0; i < ls.trip; ++i) {
              ls.perm[static_cast<std::size_t>(i)] = i;
            }
            std::shuffle(ls.perm.begin(), ls.perm.end(), rng);
          }
          if (ls.parallel) {
            // Drop a stale context for the same loop (GOTO exits).
            while (!parallelStack.empty() &&
                   parallelStack.back().loop == &s) {
              parallelStack.pop_back();
            }
            ParallelCtx ctx;
            ctx.loop = &s;
            auto itC = opts.parallelClauses.find(s.id);
            if (itC != opts.parallelClauses.end()) ctx.clauses = &itC->second;
            ls.clauses = ctx.clauses;
            ls.lastVals.clear();
            parallelStack.push_back(std::move(ctx));
          }
          if (trace) {
            // A GOTO may have exited an earlier activation of this loop
            // without popping its context; re-entry resets to that stale
            // activation's parent so contexts cannot nest spuriously.
            for (std::int32_t n = curCtx; n >= 0;) {
              const IterNode& node = trace->nodes[static_cast<std::size_t>(n)];
              if (node.loop == s.id) {
                curCtx = node.parent;
                break;
              }
              n = node.parent;
            }
            ls.ctxParent = curCtx;
          }
          if (ls.trip == 0) {
            if (ls.parallel) parallelStack.pop_back();
            pc = static_cast<std::size_t>(op.a);
          } else {
            if (trace) curCtx = traceNode(ls.ctxParent, s.id, 0);
            setLoopVar(f, s, ls, 0);
            ++pc;
          }
          break;
        }
        case Op::K::DoStep: {
          LoopState& ls = slots[static_cast<std::size_t>(op.c)];
          // The iteration indexed by the current ls.k just finished; if it
          // was the sequentially-last one, stage the LASTPRIVATE values now.
          if (ls.parallel && ls.clauses && ls.k < ls.trip) {
            const long long idx =
                ls.perm.empty() ? ls.k
                                : ls.perm[static_cast<std::size_t>(ls.k)];
            if (idx == ls.trip - 1) captureLastPrivate(f, ls);
          }
          ++ls.k;
          if (ls.k < ls.trip) {
            if (trace) curCtx = traceNode(ls.ctxParent, op.stmt->id, ls.k);
            setLoopVar(f, *op.stmt, ls, ls.k);
            pc = static_cast<std::size_t>(op.a);
          } else {
            // Loop exhausted: subsequent events are outside its iterations.
            if (trace) curCtx = ls.ctxParent;
            // Final induction value (Fortran leaves lo + trip*step).
            fortran::Expr var;
            var.kind = ExprKind::VarRef;
            var.name = op.stmt->doVar;
            if (ls.realIv) {
              store(f, var,
                    Value::ofReal(ls.rlo + static_cast<double>(ls.trip) *
                                               ls.rstep));
            } else {
              store(f, var, Value::ofInt(ls.lo + ls.trip * ls.step));
            }
            if (ls.parallel && !parallelStack.empty() &&
                parallelStack.back().loop == op.stmt) {
              parallelStack.back().finish(result.races);
              parallelStack.pop_back();
            }
            // LASTPRIVATE copy-out: the sequentially-last iteration's
            // values win, whatever order the shuffle executed.
            if (!ls.lastVals.empty()) {
              for (const auto& [name, v] : ls.lastVals) {
                fortran::Expr var;
                var.kind = ExprKind::VarRef;
                var.name = name;
                CellRef c = cellOf(f, var);
                c.storage->store(c.offset, v);
              }
              ls.lastVals.clear();
            }
            ++pc;
          }
          break;
        }
        case Op::K::Ret:
          curCtx = entryCtx;
          return;
        case Op::K::Stop:
          // unwinds to run()
          throw StopSignal{op.stmt ? op.stmt->id : fortran::kInvalidStmt};
      }
    }
  }
};

bool RunResult::outputEquals(const RunResult& other, double tol) const {
  if (output.size() != other.output.size()) return false;
  for (std::size_t i = 0; i < output.size(); ++i) {
    double a = output[i], b = other.output[i];
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    if (std::fabs(a - b) > tol * scale) return false;
  }
  return true;
}

Machine::Machine(const Program& program) : program_(program) {}

RunResult Machine::run(const RunOptions& opts) {
  Impl impl(program_, opts);
  const Procedure* main = nullptr;
  for (const auto& u : program_.units) {
    if (u->kind == fortran::ProcKind::Program) main = u.get();
  }
  if (!main) {
    impl.result.error = "no PROGRAM unit";
    return std::move(impl.result);
  }
  Impl::Frame frame;
  frame.proc = main;
  try {
    impl.execute(frame);
    impl.result.ok = true;
  } catch (const StopSignal& s) {
    impl.result.ok = true;  // STOP
    impl.result.stopStmt = s.stmt;
  } catch (const RuntimeError& e) {
    impl.result.ok = false;
    impl.result.error = e.message;
    impl.result.errorLoc = e.loc;
    impl.result.errorStmt =
        impl.curStmt ? impl.curStmt->id : fortran::kInvalidStmt;
  }
  return std::move(impl.result);
}

}  // namespace ps::interp
