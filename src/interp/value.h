#ifndef PS_INTERP_VALUE_H
#define PS_INTERP_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::interp {

/// A scalar runtime value. INTEGER is kept exact; REAL and DOUBLE PRECISION
/// share the double representation (the distinction never matters for the
/// analyses this interpreter validates).
struct Value {
  enum class Kind { Int, Real, Logical };
  Kind kind = Kind::Real;
  long long i = 0;
  double r = 0.0;
  bool b = false;

  static Value ofInt(long long v) { return {Kind::Int, v, 0.0, false}; }
  static Value ofReal(double v) { return {Kind::Real, 0, v, false}; }
  static Value ofLogical(bool v) { return {Kind::Logical, 0, 0.0, v}; }

  [[nodiscard]] double asReal() const {
    return kind == Kind::Int ? static_cast<double>(i) : r;
  }
  [[nodiscard]] long long asInt() const {
    return kind == Kind::Int ? i : static_cast<long long>(r);
  }
  [[nodiscard]] bool asLogical() const { return b; }

  [[nodiscard]] std::string str() const;
};

/// Backing storage for one variable (scalar = extent 1). Cells live in
/// stable-addressed slabs so pass-by-reference aliasing and the race
/// detector can use raw cell addresses as identities.
struct Storage {
  fortran::TypeKind type = fortran::TypeKind::Real;
  /// Creation order within one machine run; distinguishes storage
  /// lifetimes whose heap addresses the allocator happens to reuse.
  std::uint64_t serial = 0;
  std::vector<double> realCells;
  std::vector<long long> intCells;
  std::vector<char> logicalCells;
  /// Column-major extents and lower bounds per dimension (empty = scalar).
  std::vector<long long> extents;
  std::vector<long long> lowerBounds;

  [[nodiscard]] bool isInt() const {
    return type == fortran::TypeKind::Integer;
  }
  [[nodiscard]] bool isLogical() const {
    return type == fortran::TypeKind::Logical;
  }
  [[nodiscard]] std::size_t size() const {
    return isInt() ? intCells.size()
                   : (isLogical() ? logicalCells.size() : realCells.size());
  }
  void resize(std::size_t n) {
    if (isInt()) {
      intCells.assign(n, 0);
    } else if (isLogical()) {
      logicalCells.assign(n, 0);
    } else {
      realCells.assign(n, 0.0);
    }
  }
  [[nodiscard]] Value load(std::size_t at) const {
    if (isInt()) return Value::ofInt(intCells[at]);
    if (isLogical()) return Value::ofLogical(logicalCells[at] != 0);
    return Value::ofReal(realCells[at]);
  }
  void store(std::size_t at, const Value& v) {
    if (isInt()) {
      intCells[at] = v.asInt();
    } else if (isLogical()) {
      logicalCells[at] = v.asLogical() ? 1 : 0;
    } else {
      realCells[at] = v.asReal();
    }
  }
};

/// A reference into storage: the storage object plus a flat element offset.
/// Formal parameters bind to (caller storage, offset) — Fortran
/// pass-by-reference, including array-element actuals like CALL F(A(1,J)).
struct CellRef {
  Storage* storage = nullptr;
  std::size_t offset = 0;

  /// A stable, comparable identity for the race detector and the trace
  /// recorder. Keyed by the storage's creation serial, not its heap
  /// address: the allocator may hand a freed local's address to a later
  /// call frame, and a pointer key would silently alias the two lifetimes
  /// (making trace element ids depend on heap history).
  using Address = std::pair<std::uint64_t, std::size_t>;
  [[nodiscard]] Address address() const { return {storage->serial, offset}; }
};

}  // namespace ps::interp

#endif  // PS_INTERP_VALUE_H
