#include "ir/stable_id.h"

namespace ps::ir {

std::vector<const fortran::Stmt*> preorderStatements(
    const fortran::Procedure& proc) {
  std::vector<const fortran::Stmt*> out;
  proc.forEachStmt([&](const fortran::Stmt& s) { out.push_back(&s); });
  return out;
}

std::map<fortran::StmtId, std::uint32_t> stableOrdinals(
    const fortran::Procedure& proc) {
  std::map<fortran::StmtId, std::uint32_t> out;
  std::uint32_t next = 0;
  proc.forEachStmt([&](const fortran::Stmt& s) { out[s.id] = next++; });
  return out;
}

int exprIndexIn(const fortran::Stmt& s, const fortran::Expr& target) {
  int found = -1;
  int index = 0;
  s.forEachExpr([&](const fortran::Expr& e) {
    if (&e == &target && found < 0) found = index;
    ++index;
  });
  return found;
}

const fortran::Expr* exprAtIndex(const fortran::Stmt& s,
                                 std::uint32_t index) {
  const fortran::Expr* found = nullptr;
  std::uint32_t i = 0;
  s.forEachExpr([&](const fortran::Expr& e) {
    if (i == index && !found) found = &e;
    ++i;
  });
  return found;
}

}  // namespace ps::ir
