#include "ir/refs.h"

#include <algorithm>

namespace ps::ir {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

bool isIntrinsic(const std::string& name) {
  static const char* kIntrinsics[] = {
      "ABS",   "IABS",  "DABS", "MAX",   "AMAX1", "MAX0",  "MIN",   "AMIN1",
      "MIN0",  "MOD",   "AMOD", "SQRT",  "DSQRT", "SIN",   "COS",   "TAN",
      "ATAN",  "ATAN2", "EXP",  "DEXP",  "LOG",   "ALOG",  "DLOG",  "LOG10",
      "FLOAT", "REAL",  "INT",  "IFIX",  "NINT",  "DBLE",  "SNGL",  "SIGN",
      "ISIGN", "DIM",   "IDIM", "DFLOAT",
  };
  return std::find_if(std::begin(kIntrinsics), std::end(kIntrinsics),
                      [&](const char* k) { return name == k; }) !=
         std::end(kIntrinsics);
}

namespace {

/// Walk an expression tree collecting reads. An ArrayRef contributes a read
/// of the array plus reads inside its subscripts; a FuncCall contributes
/// reads of its arguments (we conservatively treat user-function actuals as
/// reads only here; CALL statements use CallActual — Fortran functions with
/// side effects through arguments are refined by interprocedural analysis at
/// the call-graph layer).
void collectReads(const Expr& e, const Stmt& stmt, std::vector<Ref>& out) {
  switch (e.kind) {
    case ExprKind::VarRef:
      out.push_back({&e, &stmt, e.name, RefKind::Read});
      return;
    case ExprKind::ArrayRef:
      out.push_back({&e, &stmt, e.name, RefKind::Read});
      for (const auto& sub : e.args) collectReads(*sub, stmt, out);
      return;
    case ExprKind::FuncCall:
      for (const auto& a : e.args) collectReads(*a, stmt, out);
      return;
    case ExprKind::Binary:
      collectReads(*e.lhs, stmt, out);
      collectReads(*e.rhs, stmt, out);
      return;
    case ExprKind::Unary:
      collectReads(*e.lhs, stmt, out);
      return;
    default:
      return;  // literals
  }
}

void collectWriteTarget(const Expr& e, const Stmt& stmt,
                        std::vector<Ref>& out) {
  // LHS of an assignment: the variable/array is written; subscripts are read.
  out.push_back({&e, &stmt, e.name, RefKind::Write});
  if (e.kind == ExprKind::ArrayRef) {
    for (const auto& sub : e.args) collectReads(*sub, stmt, out);
  }
}

}  // namespace

std::vector<Ref> collectRefs(const Stmt& stmt) {
  std::vector<Ref> out;
  switch (stmt.kind) {
    case StmtKind::Assign:
      collectWriteTarget(*stmt.lhs, stmt, out);
      collectReads(*stmt.rhs, stmt, out);
      break;
    case StmtKind::Do:
      out.push_back({nullptr, &stmt, stmt.doVar, RefKind::DoVarDef});
      collectReads(*stmt.doLo, stmt, out);
      collectReads(*stmt.doHi, stmt, out);
      if (stmt.doStep) collectReads(*stmt.doStep, stmt, out);
      break;
    case StmtKind::If:
      for (const auto& arm : stmt.arms) {
        if (arm.condition) collectReads(*arm.condition, stmt, out);
      }
      break;
    case StmtKind::ArithmeticIf:
      collectReads(*stmt.condExpr, stmt, out);
      break;
    case StmtKind::Call:
      for (const auto& a : stmt.args) {
        // A whole variable or array passed by reference may be read and/or
        // written by the callee.
        if (a->kind == ExprKind::VarRef || a->kind == ExprKind::ArrayRef) {
          out.push_back({a.get(), &stmt, a->name, RefKind::CallActual});
          if (a->kind == ExprKind::ArrayRef) {
            for (const auto& sub : a->args) collectReads(*sub, stmt, out);
          }
        } else {
          collectReads(*a, stmt, out);
        }
      }
      break;
    case StmtKind::Read:
      for (const auto& item : stmt.args) {
        collectWriteTarget(*item, stmt, out);
      }
      break;
    case StmtKind::Write:
      for (const auto& item : stmt.args) collectReads(*item, stmt, out);
      break;
    default:
      break;  // Goto, Continue, Return, Stop, Assertion: no refs
  }
  return out;
}

std::vector<Ref> collectRefsRecursive(const std::vector<Stmt*>& stmts) {
  std::vector<Ref> out;
  for (const Stmt* s : stmts) {
    auto refs = collectRefs(*s);
    out.insert(out.end(), refs.begin(), refs.end());
  }
  return out;
}

std::vector<std::string> calledFunctions(const Stmt& stmt) {
  std::vector<std::string> out;
  stmt.forEachExpr([&](const Expr& e) {
    if (e.kind == ExprKind::FuncCall && !isIntrinsic(e.name)) {
      if (std::find(out.begin(), out.end(), e.name) == out.end()) {
        out.push_back(e.name);
      }
    }
  });
  if (stmt.kind == StmtKind::Call) {
    if (std::find(out.begin(), out.end(), stmt.callee) == out.end()) {
      out.push_back(stmt.callee);
    }
  }
  return out;
}

}  // namespace ps::ir
