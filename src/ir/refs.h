#ifndef PS_IR_REFS_H
#define PS_IR_REFS_H

#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::ir {

enum class RefKind {
  Read,
  Write,
  /// An actual argument at a call site. Whether it is read, written, or both
  /// depends on the callee; interprocedural MOD/REF analysis refines it.
  /// Without that refinement, analyses must treat it as a read+write.
  CallActual,
  /// The implicit definition of a DO variable by its loop header.
  DoVarDef,
};

/// One variable occurrence inside a statement. `expr` is the VarRef or
/// ArrayRef node (null for DoVarDef). Subscript expressions of an ArrayRef
/// are reported as separate Read refs of their own variables.
struct Ref {
  const fortran::Expr* expr = nullptr;
  const fortran::Stmt* stmt = nullptr;
  std::string name;
  RefKind kind = RefKind::Read;

  [[nodiscard]] bool isWrite() const {
    return kind == RefKind::Write || kind == RefKind::DoVarDef ||
           kind == RefKind::CallActual;
  }
  [[nodiscard]] bool isRead() const {
    return kind == RefKind::Read || kind == RefKind::CallActual;
  }
  [[nodiscard]] bool isArrayRef() const {
    return expr && expr->kind == fortran::ExprKind::ArrayRef;
  }
};

/// Collect every variable occurrence in one statement (not descending into
/// nested statements of DO bodies / IF arms — their occurrences belong to
/// those statements). DO statements report their bound/step reads and the
/// induction-variable definition; CALL statements report actuals as
/// CallActual; READ reports its items as writes.
[[nodiscard]] std::vector<Ref> collectRefs(const fortran::Stmt& stmt);

/// Collect refs for every statement in a list of statements, recursively.
[[nodiscard]] std::vector<Ref> collectRefsRecursive(
    const std::vector<fortran::Stmt*>& stmts);

/// Names of user functions invoked in the statement's expressions (FuncCall
/// nodes whose name is not a Fortran intrinsic).
[[nodiscard]] std::vector<std::string> calledFunctions(
    const fortran::Stmt& stmt);

/// True for names of Fortran intrinsics we understand (SQRT, MAX, MOD, ...).
[[nodiscard]] bool isIntrinsic(const std::string& name);

}  // namespace ps::ir

#endif  // PS_IR_REFS_H
