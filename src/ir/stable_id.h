#ifndef PS_IR_STABLE_ID_H
#define PS_IR_STABLE_ID_H

// Stable statement identity across a save/reparse cycle. StmtIds are
// assigned by parse order and grow monotonically under editing, so the ids
// inside a saved session never match a fresh parse of the same text. The
// persistent program database instead names a statement by its PRE-ORDER
// ORDINAL within its procedure, and an expression by its pre-order index
// within its statement's own expressions (Stmt::forEachExpr order). Two
// ASTs whose pretty-printed text is identical — the property the store's
// content-hash key already enforces before any rebinding happens —
// enumerate identical sequences, so ordinal k denotes "the same" statement
// in both.

#include <cstdint>
#include <map>
#include <vector>

#include "fortran/ast.h"

namespace ps::ir {

/// The procedure's statements in pre-order (Procedure::forEachStmt order).
[[nodiscard]] std::vector<const fortran::Stmt*> preorderStatements(
    const fortran::Procedure& proc);

/// StmtId -> pre-order ordinal for every statement in the procedure.
[[nodiscard]] std::map<fortran::StmtId, std::uint32_t> stableOrdinals(
    const fortran::Procedure& proc);

/// Pre-order index of `target` among the statement's own expressions
/// (sub-statements excluded); -1 when the node is not reachable from `s`.
[[nodiscard]] int exprIndexIn(const fortran::Stmt& s,
                              const fortran::Expr& target);

/// Inverse of exprIndexIn: the statement's index-th expression, or null
/// when out of range.
[[nodiscard]] const fortran::Expr* exprAtIndex(const fortran::Stmt& s,
                                               std::uint32_t index);

}  // namespace ps::ir

#endif  // PS_IR_STABLE_ID_H
