#ifndef PS_IR_MODEL_H
#define PS_IR_MODEL_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::ir {

/// One loop in a procedure's loop tree.
struct Loop {
  fortran::Stmt* stmt = nullptr;  // the DO statement
  Loop* parent = nullptr;
  std::vector<Loop*> children;
  int level = 1;  // nesting depth, 1 = outermost

  /// Every statement lexically inside the loop body, including statements of
  /// nested loops, in program order. Excludes the DO statement itself.
  std::vector<fortran::Stmt*> bodyStmts;

  [[nodiscard]] const std::string& inductionVar() const {
    return stmt->doVar;
  }
  /// True if `id` is the DO statement or any statement in the body.
  [[nodiscard]] bool contains(fortran::StmtId id) const;
  /// The chain of loops from the outermost ancestor down to this loop.
  [[nodiscard]] std::vector<const Loop*> nestPath() const;
};

/// A navigable model of one procedure: loop tree, statement index, parent
/// links and label map. The model holds raw pointers into the procedure's
/// AST; rebuild it after any structural edit (PED re-analyzes the enclosing
/// procedure after each edit, so models are short-lived by design).
class ProcedureModel {
 public:
  explicit ProcedureModel(fortran::Procedure& proc);

  [[nodiscard]] fortran::Procedure& procedure() const { return proc_; }

  /// All loops, in program (pre-)order.
  [[nodiscard]] const std::vector<std::unique_ptr<Loop>>& loops() const {
    return loops_;
  }
  [[nodiscard]] std::vector<Loop*> topLevelLoops() const;

  /// The loop whose DO statement has this id, or null.
  [[nodiscard]] Loop* loopByDoStmt(fortran::StmtId id) const;
  /// The innermost loop containing this statement (the statement may be a DO
  /// statement, in which case the *enclosing* loop is returned), or null.
  [[nodiscard]] Loop* enclosingLoop(fortran::StmtId id) const;

  [[nodiscard]] fortran::Stmt* stmt(fortran::StmtId id) const;
  [[nodiscard]] fortran::Stmt* parentStmt(fortran::StmtId id) const;
  [[nodiscard]] fortran::Stmt* labelTarget(int label) const;

  /// The list of sibling statements that contains `id` (the procedure body,
  /// a DO body, or an IF arm), plus the index within it. Returns nullptr if
  /// the id is unknown.
  std::vector<fortran::StmtPtr>* containerOf(fortran::StmtId id,
                                             std::size_t* indexOut) const;

  /// All statements in the procedure, pre-order.
  [[nodiscard]] const std::vector<fortran::Stmt*>& allStmts() const {
    return allStmts_;
  }

  /// Count of executable statements (used for Table 1's "lines" flavor of
  /// accounting in tests).
  [[nodiscard]] std::size_t stmtCount() const { return allStmts_.size(); }

 private:
  void index(std::vector<fortran::StmtPtr>& stmts, fortran::Stmt* parent,
             Loop* loop);

  fortran::Procedure& proc_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::map<fortran::StmtId, fortran::Stmt*> byId_;
  std::map<fortran::StmtId, fortran::Stmt*> parent_;
  std::map<fortran::StmtId, Loop*> enclosing_;
  std::map<fortran::StmtId, std::pair<std::vector<fortran::StmtPtr>*,
                                      std::size_t>>
      container_;
  std::map<int, fortran::Stmt*> labels_;
  std::vector<fortran::Stmt*> allStmts_;
};

}  // namespace ps::ir

#endif  // PS_IR_MODEL_H
