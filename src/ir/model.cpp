#include "ir/model.h"

#include <algorithm>

namespace ps::ir {

using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using fortran::StmtPtr;

bool Loop::contains(StmtId id) const {
  if (stmt->id == id) return true;
  for (const Stmt* s : bodyStmts) {
    if (s->id == id) return true;
  }
  return false;
}

std::vector<const Loop*> Loop::nestPath() const {
  std::vector<const Loop*> path;
  for (const Loop* l = this; l; l = l->parent) path.push_back(l);
  std::reverse(path.begin(), path.end());
  return path;
}

ProcedureModel::ProcedureModel(fortran::Procedure& proc) : proc_(proc) {
  index(proc.body, nullptr, nullptr);
}

void ProcedureModel::index(std::vector<StmtPtr>& stmts, Stmt* parent,
                           Loop* loop) {
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    Stmt* s = stmts[i].get();
    byId_[s->id] = s;
    if (parent) parent_[s->id] = parent;
    enclosing_[s->id] = loop;
    container_[s->id] = {&stmts, i};
    if (s->label != 0) labels_[s->label] = s;
    allStmts_.push_back(s);
    // Register this statement in every enclosing loop body.
    for (Loop* l = loop; l; l = l->parent) l->bodyStmts.push_back(s);

    if (s->kind == StmtKind::Do) {
      auto newLoop = std::make_unique<Loop>();
      newLoop->stmt = s;
      newLoop->parent = loop;
      newLoop->level = loop ? loop->level + 1 : 1;
      Loop* lp = newLoop.get();
      if (loop) loop->children.push_back(lp);
      loops_.push_back(std::move(newLoop));
      index(s->body, s, lp);
    } else if (s->kind == StmtKind::If) {
      for (auto& arm : s->arms) index(arm.body, s, loop);
    }
  }
}

std::vector<Loop*> ProcedureModel::topLevelLoops() const {
  std::vector<Loop*> out;
  for (const auto& l : loops_) {
    if (!l->parent) out.push_back(l.get());
  }
  return out;
}

Loop* ProcedureModel::loopByDoStmt(StmtId id) const {
  for (const auto& l : loops_) {
    if (l->stmt->id == id) return l.get();
  }
  return nullptr;
}

Loop* ProcedureModel::enclosingLoop(StmtId id) const {
  auto it = enclosing_.find(id);
  return it == enclosing_.end() ? nullptr : it->second;
}

Stmt* ProcedureModel::stmt(StmtId id) const {
  auto it = byId_.find(id);
  return it == byId_.end() ? nullptr : it->second;
}

Stmt* ProcedureModel::parentStmt(StmtId id) const {
  auto it = parent_.find(id);
  return it == parent_.end() ? nullptr : it->second;
}

Stmt* ProcedureModel::labelTarget(int label) const {
  auto it = labels_.find(label);
  return it == labels_.end() ? nullptr : it->second;
}

std::vector<StmtPtr>* ProcedureModel::containerOf(StmtId id,
                                                  std::size_t* indexOut) const {
  auto it = container_.find(id);
  if (it == container_.end()) return nullptr;
  if (indexOut) *indexOut = it->second.second;
  return it->second.first;
}

}  // namespace ps::ir
