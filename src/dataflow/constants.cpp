#include "dataflow/constants.h"

#include <cmath>

#include "ir/refs.h"

namespace ps::dataflow {

using cfg::FlowGraph;
using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using fortran::UnOp;

ConstVal ConstVal::meet(const ConstVal& o) const {
  if (kind == Kind::Top) return o;
  if (o.kind == Kind::Top) return *this;
  if (*this == o) return *this;
  return bottom();
}

namespace {

std::optional<double> asReal(const ConstVal& v) {
  switch (v.kind) {
    case ConstVal::Kind::IntConst: return static_cast<double>(v.i);
    case ConstVal::Kind::RealConst: return v.r;
    default: return std::nullopt;
  }
}

std::optional<ConstVal> evalBinary(BinOp op, const ConstVal& l,
                                   const ConstVal& r) {
  const bool bothInt = l.kind == ConstVal::Kind::IntConst &&
                       r.kind == ConstVal::Kind::IntConst;
  // Logical operators.
  if (op == BinOp::And || op == BinOp::Or || op == BinOp::Eqv ||
      op == BinOp::Neqv) {
    if (l.kind != ConstVal::Kind::LogicalConst ||
        r.kind != ConstVal::Kind::LogicalConst) {
      return std::nullopt;
    }
    switch (op) {
      case BinOp::And: return ConstVal::ofLogical(l.b && r.b);
      case BinOp::Or: return ConstVal::ofLogical(l.b || r.b);
      case BinOp::Eqv: return ConstVal::ofLogical(l.b == r.b);
      default: return ConstVal::ofLogical(l.b != r.b);
    }
  }
  auto lr = asReal(l), rr = asReal(r);
  if (!lr || !rr) return std::nullopt;
  // Relational operators.
  switch (op) {
    case BinOp::Lt: return ConstVal::ofLogical(*lr < *rr);
    case BinOp::Le: return ConstVal::ofLogical(*lr <= *rr);
    case BinOp::Gt: return ConstVal::ofLogical(*lr > *rr);
    case BinOp::Ge: return ConstVal::ofLogical(*lr >= *rr);
    case BinOp::Eq: return ConstVal::ofLogical(*lr == *rr);
    case BinOp::Ne: return ConstVal::ofLogical(*lr != *rr);
    default: break;
  }
  // Arithmetic.
  if (bothInt) {
    switch (op) {
      case BinOp::Add: return ConstVal::ofInt(l.i + r.i);
      case BinOp::Sub: return ConstVal::ofInt(l.i - r.i);
      case BinOp::Mul: return ConstVal::ofInt(l.i * r.i);
      case BinOp::Div:
        if (r.i == 0) return std::nullopt;
        return ConstVal::ofInt(l.i / r.i);
      case BinOp::Pow: {
        if (r.i < 0) return std::nullopt;
        long long acc = 1;
        for (long long k = 0; k < r.i; ++k) acc *= l.i;
        return ConstVal::ofInt(acc);
      }
      default: return std::nullopt;
    }
  }
  switch (op) {
    case BinOp::Add: return ConstVal::ofReal(*lr + *rr);
    case BinOp::Sub: return ConstVal::ofReal(*lr - *rr);
    case BinOp::Mul: return ConstVal::ofReal(*lr * *rr);
    case BinOp::Div:
      if (*rr == 0.0) return std::nullopt;
      return ConstVal::ofReal(*lr / *rr);
    case BinOp::Pow: return ConstVal::ofReal(std::pow(*lr, *rr));
    default: return std::nullopt;
  }
}

}  // namespace

std::optional<ConstVal> ConstantAnalysis::evaluate(const Expr& e,
                                                   const ConstEnv& env) {
  switch (e.kind) {
    case ExprKind::IntConst: return ConstVal::ofInt(e.intValue);
    case ExprKind::RealConst: return ConstVal::ofReal(e.realValue);
    case ExprKind::LogicalConst: return ConstVal::ofLogical(e.logicalValue);
    case ExprKind::VarRef: {
      auto it = env.find(e.name);
      if (it != env.end() && it->second.isConst()) return it->second;
      return std::nullopt;
    }
    case ExprKind::Binary: {
      auto l = evaluate(*e.lhs, env);
      auto r = evaluate(*e.rhs, env);
      if (!l || !r) return std::nullopt;
      return evalBinary(e.binOp, *l, *r);
    }
    case ExprKind::Unary: {
      auto v = evaluate(*e.lhs, env);
      if (!v) return std::nullopt;
      switch (e.unOp) {
        case UnOp::Plus: return v;
        case UnOp::Neg:
          if (v->kind == ConstVal::Kind::IntConst)
            return ConstVal::ofInt(-v->i);
          if (v->kind == ConstVal::Kind::RealConst)
            return ConstVal::ofReal(-v->r);
          return std::nullopt;
        case UnOp::Not:
          if (v->kind == ConstVal::Kind::LogicalConst)
            return ConstVal::ofLogical(!v->b);
          return std::nullopt;
      }
      return std::nullopt;
    }
    default:
      // Array references, function calls, strings: not tracked.
      return std::nullopt;
  }
}

ConstantAnalysis ConstantAnalysis::build(const FlowGraph& g,
                                         const ir::ProcedureModel& model,
                                         const ConstEnv& inherited) {
  ConstantAnalysis ca;
  ca.graph_ = &g;
  const int n = g.numNodes();
  ca.in_.assign(static_cast<std::size_t>(n), {});

  // Entry environment: PARAMETER constants plus inherited interprocedural
  // constants.
  ConstEnv entry = inherited;
  const fortran::Procedure& proc = model.procedure();
  for (const auto& d : proc.decls) {
    if (d.isParameter && d.parameterValue) {
      if (auto v = evaluate(*d.parameterValue, entry)) entry[d.name] = *v;
    }
  }
  ca.in_[FlowGraph::kEntry] = entry;

  // Transfer function for one statement.
  auto transfer = [&](const Stmt* s, ConstEnv env) -> ConstEnv {
    if (!s) return env;
    switch (s->kind) {
      case StmtKind::Assign:
        if (s->lhs->kind == ExprKind::VarRef) {
          auto v = evaluate(*s->rhs, env);
          env[s->lhs->name] = v ? *v : ConstVal::bottom();
        }
        break;
      case StmtKind::Do:
        // The DO variable varies across iterations.
        env[s->doVar] = ConstVal::bottom();
        break;
      case StmtKind::Read:
        for (const auto& item : s->args) {
          if (item->kind == ExprKind::VarRef) {
            env[item->name] = ConstVal::bottom();
          }
        }
        break;
      case StmtKind::Call:
        // Without MOD information, any variable passed to a call (or in
        // COMMON) may change.
        for (const auto& a : s->args) {
          if (a->kind == ExprKind::VarRef) env[a->name] = ConstVal::bottom();
        }
        for (const auto& d : proc.decls) {
          if (!d.commonBlock.empty()) env[d.name] = ConstVal::bottom();
        }
        break;
      default:
        break;
    }
    return env;
  };

  auto meetInto = [](ConstEnv& into, const ConstEnv& from) -> bool {
    bool changed = false;
    // Variables only in `into`: meet with Top = unchanged. Variables in
    // both: meet. Variables only in `from`: adopt.
    for (const auto& [name, val] : from) {
      auto it = into.find(name);
      if (it == into.end()) {
        into[name] = val;
        changed = true;
      } else {
        ConstVal m = it->second.meet(val);
        if (!(m == it->second)) {
          it->second = m;
          changed = true;
        }
      }
    }
    return changed;
  };

  auto order = g.reversePostOrder();
  std::vector<ConstEnv> out(static_cast<std::size_t>(n));
  out[FlowGraph::kEntry] = entry;
  bool changed = true;
  int iterations = 0;
  while (changed && iterations < 100) {
    changed = false;
    ++iterations;
    for (int node : order) {
      if (node == FlowGraph::kEntry) continue;
      auto un = static_cast<std::size_t>(node);
      ConstEnv newIn;
      bool first = true;
      for (int p : g.predecessors(node)) {
        const ConstEnv& po = out[static_cast<std::size_t>(p)];
        if (first) {
          newIn = po;
          first = false;
        } else {
          // Meet: drop vars absent from either side to Top-equivalent
          // (absent == Top), so intersection by meet.
          meetInto(newIn, po);
          // Additionally, vars in newIn but not in po stay (Top meet).
        }
      }
      if (newIn != ca.in_[un]) {
        ca.in_[un] = newIn;
        changed = true;
      }
      ConstEnv newOut = transfer(g.stmtOf(node), ca.in_[un]);
      if (newOut != out[un]) {
        out[un] = std::move(newOut);
        changed = true;
      }
    }
  }
  return ca;
}

const ConstEnv& ConstantAnalysis::envAt(StmtId stmt) const {
  int node = graph_->nodeOf(stmt);
  if (node < 0) return empty_;
  return in_[static_cast<std::size_t>(node)];
}

std::optional<ConstVal> ConstantAnalysis::evaluateAt(StmtId stmt,
                                                     const Expr& e) const {
  return evaluate(e, envAt(stmt));
}

}  // namespace ps::dataflow
