#include "dataflow/privatize.h"

#include <deque>
#include <set>

#include "ir/refs.h"

namespace ps::dataflow {

using cfg::FlowGraph;
using fortran::Stmt;
using fortran::StmtKind;
using ir::Loop;
using ir::Ref;
using ir::RefKind;

const char* privatizationStatusName(PrivatizationStatus s) {
  switch (s) {
    case PrivatizationStatus::Unused: return "unused";
    case PrivatizationStatus::Shared: return "shared";
    case PrivatizationStatus::Private: return "private";
    case PrivatizationStatus::PrivateNeedsLastValue: return "private(last)";
  }
  return "?";
}

namespace {

/// Does this statement read `name` before any killing write it performs?
/// (Fortran evaluates the RHS and subscripts before storing the LHS.)
bool readsFirst(const Stmt& s, const std::string& name) {
  for (const Ref& r : ir::collectRefs(s)) {
    if (r.name != name) continue;
    if (r.kind == RefKind::Read || r.kind == RefKind::CallActual) return true;
  }
  return false;
}

bool killsScalar(const Stmt& s, const std::string& name) {
  for (const Ref& r : ir::collectRefs(s)) {
    if (r.name != name) continue;
    if (r.kind == RefKind::Write || r.kind == RefKind::DoVarDef) return true;
  }
  return false;
}

}  // namespace

PrivatizationAnalysis PrivatizationAnalysis::build(
    const ir::ProcedureModel& model, const FlowGraph& g,
    const Liveness& liveness) {
  PrivatizationAnalysis pa;
  const fortran::Procedure& proc = model.procedure();

  for (const auto& loopPtr : model.loops()) {
    const Loop* loop = loopPtr.get();
    std::vector<VariableClassification>& classes = pa.classes_[loop];

    // Scalars accessed in the loop body.
    std::set<std::string> names;
    std::map<std::string, VariableClassification> info;
    for (const Stmt* s : loop->bodyStmts) {
      for (const Ref& r : ir::collectRefs(*s)) {
        const fortran::VarDecl* d = proc.findDecl(r.name);
        if (d && d->isArray()) continue;  // arrays handled elsewhere
        names.insert(r.name);
        auto& vc = info[r.name];
        vc.name = r.name;
        if (r.isWrite()) vc.writtenInLoop = true;
        if (r.isRead()) vc.readInLoop = true;
      }
    }
    // The loop's own induction variable is implicitly private.
    names.erase(loop->inductionVar());
    info.erase(loop->inductionVar());

    // Body-entry nodes: successors of the DO header that are in the body.
    int doNode = g.nodeOf(loop->stmt->id);
    std::set<int> bodyNodes;
    for (const Stmt* s : loop->bodyStmts) {
      int n = g.nodeOf(s->id);
      if (n >= 0) bodyNodes.insert(n);
    }
    std::vector<int> entries;
    for (int s : g.successors(doNode)) {
      if (bodyNodes.count(s)) entries.push_back(s);
    }

    for (const std::string& name : names) {
      VariableClassification& vc = info[name];

      // Forward walk from body entry: does a read of `name` occur before a
      // killing write on some path within one iteration?
      std::deque<int> work(entries.begin(), entries.end());
      std::set<int> seen;
      bool exposed = false;
      while (!work.empty() && !exposed) {
        int node = work.front();
        work.pop_front();
        if (seen.count(node)) continue;
        seen.insert(node);
        const Stmt* s = g.stmtOf(node);
        if (!s) continue;
        if (readsFirst(*s, name)) {
          exposed = true;
          break;
        }
        if (killsScalar(*s, name)) continue;  // path killed here
        // A call may read the scalar if it is in COMMON.
        if ((s->kind == StmtKind::Call || !ir::calledFunctions(*s).empty())) {
          const fortran::VarDecl* d = proc.findDecl(name);
          if (d && !d->commonBlock.empty()) {
            exposed = true;
            break;
          }
        }
        for (int succ : g.successors(node)) {
          if (succ == doNode) continue;  // iteration boundary
          if (bodyNodes.count(succ) && !seen.count(succ)) {
            work.push_back(succ);
          }
        }
      }
      vc.upwardExposedRead = exposed;

      if (!vc.readInLoop && !vc.writtenInLoop) {
        vc.status = PrivatizationStatus::Unused;
      } else if (!vc.writtenInLoop) {
        // Read-only: shared is safe (no dependence arises).
        vc.status = PrivatizationStatus::Shared;
      } else if (exposed) {
        vc.status = PrivatizationStatus::Shared;
      } else if (liveness.liveAfterLoop(*loop, name)) {
        vc.status = PrivatizationStatus::PrivateNeedsLastValue;
      } else {
        vc.status = PrivatizationStatus::Private;
      }
    }

    for (auto& [name, vc] : info) {
      (void)name;
      classes.push_back(vc);
    }
  }
  return pa;
}

const std::vector<VariableClassification>& PrivatizationAnalysis::classesFor(
    const Loop& loop) const {
  auto it = classes_.find(&loop);
  return it == classes_.end() ? empty_ : it->second;
}

PrivatizationStatus PrivatizationAnalysis::statusOf(
    const Loop& loop, const std::string& name) const {
  for (const auto& vc : classesFor(loop)) {
    if (vc.name == name) return vc.status;
  }
  return PrivatizationStatus::Unused;
}

}  // namespace ps::dataflow
