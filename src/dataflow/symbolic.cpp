#include "dataflow/symbolic.h"

#include <algorithm>

#include "ir/refs.h"

namespace ps::dataflow {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using ir::Loop;
using ir::Ref;
using ir::RefKind;

namespace {

/// Match V = V + c  or  V = V - c  or  V = c + V; returns the stride.
bool matchIncrement(const Stmt& s, std::string* name, long long* stride) {
  if (s.kind != StmtKind::Assign || s.lhs->kind != ExprKind::VarRef) {
    return false;
  }
  const Expr& rhs = *s.rhs;
  if (rhs.kind != ExprKind::Binary) return false;
  if (rhs.binOp != BinOp::Add && rhs.binOp != BinOp::Sub) return false;
  const std::string& v = s.lhs->name;
  const Expr *varSide = nullptr, *constSide = nullptr;
  if (rhs.lhs->kind == ExprKind::VarRef && rhs.lhs->name == v) {
    varSide = rhs.lhs.get();
    constSide = rhs.rhs.get();
  } else if (rhs.binOp == BinOp::Add && rhs.rhs->kind == ExprKind::VarRef &&
             rhs.rhs->name == v) {
    varSide = rhs.rhs.get();
    constSide = rhs.lhs.get();
  }
  if (!varSide || constSide->kind != ExprKind::IntConst) return false;
  *name = v;
  *stride = (rhs.binOp == BinOp::Sub) ? -constSide->intValue
                                      : constSide->intValue;
  return true;
}

}  // namespace

SymbolicAnalysis SymbolicAnalysis::build(
    const ir::ProcedureModel& model, const cfg::FlowGraph& g,
    const ReachingDefs& reaching, const ConstantAnalysis& constants,
    const cfg::ControlDependence& cdeps,
    const std::vector<Relation>& inherited, std::size_t maxRelations) {
  SymbolicAnalysis sa;
  sa.model_ = &model;
  sa.graph_ = &g;
  sa.reaching_ = &reaching;
  sa.constants_ = &constants;

  const fortran::Procedure& proc = model.procedure();

  // Budget on relations kept across the whole procedure; dropping one loses
  // a sharpening fact (conservative) but bounds downstream test work.
  std::size_t relationsKept = 0;
  auto keep = [&](std::vector<Relation>& rels, Relation r) {
    if (maxRelations != 0 && relationsKept >= maxRelations) {
      ++sa.truncated_;
      return;
    }
    ++relationsKept;
    rels.push_back(std::move(r));
  };

  for (const auto& loopPtr : model.loops()) {
    const Loop* loop = loopPtr.get();
    std::set<std::string>& defined = sa.definedIn_[loop];
    std::set<std::string>& arrays = sa.arraysWritten_[loop];
    defined.insert(loop->inductionVar());

    for (const Stmt* s : loop->bodyStmts) {
      for (const Ref& r : ir::collectRefs(*s)) {
        if (!r.isWrite()) continue;
        const fortran::VarDecl* d = proc.findDecl(r.name);
        if (d && d->isArray()) {
          arrays.insert(r.name);
          // A whole array passed at a call site may be rewritten.
          if (r.kind == RefKind::CallActual) defined.insert(r.name);
        } else {
          defined.insert(r.name);
        }
      }
      // A call may modify any COMMON variable.
      if (s->kind == StmtKind::Call || !ir::calledFunctions(*s).empty()) {
        for (const auto& d : proc.decls) {
          if (!d.commonBlock.empty()) {
            defined.insert(d.name);
            if (d.isArray()) arrays.insert(d.name);
          }
        }
      }
    }

    // Auxiliary induction variables: scalar with exactly one defining
    // statement in the loop, of increment shape, executed unconditionally
    // (controlled only by enclosing DO headers).
    std::map<std::string, std::vector<const Stmt*>> defsOf;
    for (const Stmt* s : loop->bodyStmts) {
      for (const Ref& r : ir::collectRefs(*s)) {
        if (r.isWrite()) defsOf[r.name].push_back(s);
      }
    }
    for (const auto& [name, defs] : defsOf) {
      if (defs.size() != 1) continue;
      std::string v;
      long long stride = 0;
      if (!matchIncrement(*defs[0], &v, &stride)) continue;
      if (cdeps.hasNonLoopController(defs[0]->id, model)) continue;
      // The update must be directly in this loop's body (not a nested
      // loop's): otherwise it advances more than once per iteration.
      const Loop* encl = model.enclosingLoop(defs[0]->id);
      if (encl != loop) continue;
      sa.auxIvs_[loop].push_back({v, stride, defs[0]});
    }

    // Relations: symbolic equalities valid throughout the loop. Inherited
    // (interprocedural) relations only survive if nothing in the loop
    // redefines the variable or its operands.
    std::vector<Relation> rels;
    for (const Relation& r : inherited) {
      if (defined.count(r.name)) continue;
      bool stable = true;
      for (const auto& [v, c] : r.value.coef) {
        (void)c;
        if (defined.count(v)) stable = false;
      }
      if (stable) keep(rels, r);
    }
    // Names read inside the loop but never defined in it, with a unique
    // reaching killing assignment of an affine value whose operands are
    // also loop-invariant.
    std::set<std::string> readNames;
    for (const Stmt* s : loop->bodyStmts) {
      for (const Ref& r : ir::collectRefs(*s)) {
        if (r.isRead()) readNames.insert(r.name);
      }
    }
    for (const std::string& name : readNames) {
      if (defined.count(name)) continue;
      const Stmt* def = nullptr;
      if (!reaching.uniqueReachingAssignment(loop->stmt->id, name, &def)) {
        continue;
      }
      LinearExpr form = linearize(*def->rhs);
      if (!form.affine) continue;
      bool operandsStable = true;
      for (const auto& [v, c] : form.coef) {
        (void)c;
        if (defined.count(v)) operandsStable = false;
      }
      if (!operandsStable) continue;
      // Avoid the degenerate self relation V = V.
      if (form.coef.size() == 1 && form.constant == 0 &&
          form.coefOf(name) == 1) {
        continue;
      }
      keep(rels, {name, std::move(form)});
    }
    sa.relations_[loop] = std::move(rels);
  }
  return sa;
}

const std::set<std::string>& SymbolicAnalysis::definedIn(
    const Loop& loop) const {
  auto it = definedIn_.find(&loop);
  return it == definedIn_.end() ? empty_ : it->second;
}

bool SymbolicAnalysis::isLoopInvariant(const Expr& e, const Loop& loop) const {
  const auto& defined = definedIn(loop);
  auto itArr = arraysWritten_.find(&loop);
  const std::set<std::string>& arrays =
      itArr == arraysWritten_.end() ? empty_ : itArr->second;

  bool invariant = true;
  e.forEach([&](const Expr& sub) {
    switch (sub.kind) {
      case ExprKind::VarRef:
        if (defined.count(sub.name)) invariant = false;
        break;
      case ExprKind::ArrayRef:
        if (arrays.count(sub.name)) invariant = false;
        break;
      case ExprKind::FuncCall:
        if (!ir::isIntrinsic(sub.name)) invariant = false;
        break;
      default:
        break;
    }
  });
  return invariant;
}

std::vector<AuxInduction> SymbolicAnalysis::auxInductionsOf(
    const Loop& loop) const {
  auto it = auxIvs_.find(&loop);
  return it == auxIvs_.end() ? std::vector<AuxInduction>{} : it->second;
}

std::vector<Relation> SymbolicAnalysis::relationsAt(const Loop& loop) const {
  auto it = relations_.find(&loop);
  return it == relations_.end() ? std::vector<Relation>{} : it->second;
}

std::map<std::string, LinearExpr> SymbolicAnalysis::substitutionFor(
    const Loop& loop, const Stmt& atStmt) const {
  std::map<std::string, LinearExpr> sub;

  // 1. Constants at the loop header.
  const ConstEnv& env = constants_->envAt(loop.stmt->id);
  for (const auto& [name, val] : env) {
    if (val.kind == ConstVal::Kind::IntConst) {
      LinearExpr c;
      c.constant = val.i;
      sub[name] = c;
    }
  }

  // 2. Symbolic relations (may reference other symbolics; resolve one level
  //    through the constant map).
  for (const Relation& r : relationsAt(loop)) {
    LinearExpr resolved;
    resolved.constant = r.value.constant;
    resolved.affine = r.value.affine;
    for (const auto& [v, c] : r.value.coef) {
      auto it = sub.find(v);
      if (it != sub.end()) {
        resolved.add(it->second, c);
      } else {
        resolved.coef[v] += c;
        if (resolved.coef[v] == 0) resolved.coef.erase(v);
      }
    }
    sub[r.name] = std::move(resolved);
  }

  // 3. Auxiliary induction variables for this loop and all enclosing loops:
  //    V -> stride*IV + (V@preheader symbolic) + adjustment, where the
  //    symbolic pre-loop value cancels between any two refs in the loop.
  for (const Loop* l = &loop; l; l = l->parent) {
    for (const AuxInduction& aux : auxInductionsOf(*l)) {
      // Normalized iteration number: (IV - lo)/step — only handle step 1
      // (or absent), the overwhelmingly common case; otherwise skip.
      const Stmt* doStmt = l->stmt;
      if (doStmt->doStep && !doStmt->doStep->isIntConst(1)) continue;
      LinearExpr lo = linearize(*doStmt->doLo, sub);
      if (!lo.affine) continue;
      LinearExpr form;
      form.coef[l->inductionVar()] = aux.stride;
      form.add(lo, -aux.stride);
      form.coef["@pre:" + aux.name] = 1;  // opaque pre-loop value
      // Position adjustment: refs at statements after the update in body
      // order have advanced one extra stride.
      int posUpdate = -1, posAt = -1, idx = 0;
      for (const Stmt* s : l->bodyStmts) {
        if (s == aux.update) posUpdate = idx;
        if (s->id == atStmt.id) posAt = idx;
        ++idx;
      }
      bool after = (posAt >= 0 && posUpdate >= 0 && posAt > posUpdate);
      if (after) form.constant += aux.stride;
      sub[aux.name] = std::move(form);
    }
  }
  return sub;
}

}  // namespace ps::dataflow
