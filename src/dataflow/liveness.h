#ifndef PS_DATAFLOW_LIVENESS_H
#define PS_DATAFLOW_LIVENESS_H

#include <set>
#include <string>
#include <vector>

#include "cfg/flow_graph.h"
#include "ir/model.h"

namespace ps::dataflow {

/// Backward live-variable analysis over the statement CFG. Privatization
/// uses liveness to decide whether a privatized scalar/array needs its last
/// value copied out of the loop.
class Liveness {
 public:
  static Liveness build(const cfg::FlowGraph& g,
                        const ir::ProcedureModel& model);

  /// Variables live on entry to the statement's node.
  [[nodiscard]] std::set<std::string> liveIn(fortran::StmtId stmt) const;
  /// Variables live on exit from the statement's node.
  [[nodiscard]] std::set<std::string> liveOut(fortran::StmtId stmt) const;

  /// True if `name` may be read after the loop completes (live at the
  /// loop's exit edges or at procedure exit if the variable escapes — a
  /// parameter or COMMON member is conservatively live at exit).
  [[nodiscard]] bool liveAfterLoop(const ir::Loop& loop,
                                   const std::string& name) const;

 private:
  const cfg::FlowGraph* graph_ = nullptr;
  const ir::ProcedureModel* model_ = nullptr;
  std::vector<std::set<std::string>> liveIn_;   // per node
  std::vector<std::set<std::string>> liveOut_;  // per node
};

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_LIVENESS_H
