#ifndef PS_DATAFLOW_CONSTANTS_H
#define PS_DATAFLOW_CONSTANTS_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cfg/flow_graph.h"
#include "ir/model.h"

namespace ps::dataflow {

/// Lattice value for constant propagation.
struct ConstVal {
  enum class Kind { Top, IntConst, RealConst, LogicalConst, Bottom };
  Kind kind = Kind::Top;
  long long i = 0;
  double r = 0.0;
  bool b = false;

  static ConstVal top() { return {}; }
  static ConstVal bottom() { return {Kind::Bottom, 0, 0.0, false}; }
  static ConstVal ofInt(long long v) { return {Kind::IntConst, v, 0.0, false}; }
  static ConstVal ofReal(double v) { return {Kind::RealConst, 0, v, false}; }
  static ConstVal ofLogical(bool v) {
    return {Kind::LogicalConst, 0, 0.0, v};
  }

  [[nodiscard]] bool isConst() const {
    return kind == Kind::IntConst || kind == Kind::RealConst ||
           kind == Kind::LogicalConst;
  }
  [[nodiscard]] bool operator==(const ConstVal& o) const {
    if (kind != o.kind) return false;
    switch (kind) {
      case Kind::IntConst: return i == o.i;
      case Kind::RealConst: return r == o.r;
      case Kind::LogicalConst: return b == o.b;
      default: return true;
    }
  }

  /// Lattice meet: Top meets anything = anything; unequal constants = Bottom.
  [[nodiscard]] ConstVal meet(const ConstVal& o) const;
};

using ConstEnv = std::map<std::string, ConstVal>;

/// Flow-sensitive scalar constant propagation over the statement CFG.
/// PARAMETER declarations and (optionally) interprocedurally inherited
/// constants seed the entry environment — the paper's "interprocedural
/// constants are inherited from a procedure's callers and directly
/// incorporated into the intraprocedural constants".
class ConstantAnalysis {
 public:
  static ConstantAnalysis build(const cfg::FlowGraph& g,
                                const ir::ProcedureModel& model,
                                const ConstEnv& inherited = {});

  /// Constant environment at the entry of a statement.
  [[nodiscard]] const ConstEnv& envAt(fortran::StmtId stmt) const;

  /// Evaluate an expression in the environment at `stmt`; nullopt when not
  /// a compile-time constant there.
  [[nodiscard]] std::optional<ConstVal> evaluateAt(
      fortran::StmtId stmt, const fortran::Expr& e) const;

  /// Evaluate with an explicit environment (also used by the interpreter's
  /// partial evaluation mode and by the assertion engine).
  static std::optional<ConstVal> evaluate(const fortran::Expr& e,
                                          const ConstEnv& env);

 private:
  const cfg::FlowGraph* graph_ = nullptr;
  std::vector<ConstEnv> in_;  // per node
  ConstEnv empty_;
};

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_CONSTANTS_H
