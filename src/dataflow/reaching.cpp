#include "dataflow/reaching.h"

#include <algorithm>

namespace ps::dataflow {

using cfg::FlowGraph;
using fortran::Stmt;
using fortran::StmtId;
using ir::Ref;
using ir::RefKind;

ReachingDefs ReachingDefs::build(const FlowGraph& g,
                                 const ir::ProcedureModel& model) {
  ReachingDefs r;
  r.graph_ = &g;
  const int n = g.numNodes();

  // Gather all definitions and uses, node by node.
  std::vector<std::vector<int>> gen(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> nodeUses(static_cast<std::size_t>(n));
  const fortran::Procedure& proc = model.procedure();

  for (const Stmt* s : model.allStmts()) {
    int node = g.nodeOf(s->id);
    if (node < 0) continue;
    r.nodeOf_[s->id] = node;
    for (const Ref& ref : ir::collectRefs(*s)) {
      const fortran::VarDecl* decl = proc.findDecl(ref.name);
      bool isScalar = !decl || !decl->isArray();
      if (ref.isWrite()) {
        Definition d;
        d.stmt = s;
        d.name = ref.name;
        d.kind = ref.kind;
        d.killing = isScalar && (ref.kind == RefKind::Write ||
                                 ref.kind == RefKind::DoVarDef);
        gen[static_cast<std::size_t>(node)].push_back(
            static_cast<int>(r.defs_.size()));
        r.defs_.push_back(std::move(d));
      }
      if (ref.isRead()) {
        UseSite u;
        u.stmt = s;
        u.expr = ref.expr;
        u.name = ref.name;
        nodeUses[static_cast<std::size_t>(node)].push_back(
            static_cast<int>(r.uses_.size()));
        r.uses_.push_back(std::move(u));
      }
    }
  }

  const std::size_t nd = r.defs_.size();
  // KILL sets per node: all killing-compatible defs of names this node
  // scalar-writes.
  std::vector<DenseBitSet> genBits(static_cast<std::size_t>(n),
                                   DenseBitSet(nd));
  std::vector<DenseBitSet> killBits(static_cast<std::size_t>(n),
                                    DenseBitSet(nd));
  for (int node = 0; node < n; ++node) {
    for (int di : gen[static_cast<std::size_t>(node)]) {
      genBits[static_cast<std::size_t>(node)].set(
          static_cast<std::size_t>(di));
      const Definition& d = r.defs_[static_cast<std::size_t>(di)];
      if (!d.killing) continue;
      for (std::size_t o = 0; o < nd; ++o) {
        if (static_cast<int>(o) != di && r.defs_[o].name == d.name) {
          killBits[static_cast<std::size_t>(node)].set(o);
        }
      }
    }
  }

  // Iterate to fixpoint over reverse post-order.
  r.in_.assign(static_cast<std::size_t>(n), DenseBitSet(nd));
  std::vector<DenseBitSet> out(static_cast<std::size_t>(n), DenseBitSet(nd));
  auto order = g.reversePostOrder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      auto un = static_cast<std::size_t>(node);
      DenseBitSet newIn(nd);
      for (int p : g.predecessors(node)) {
        newIn.unionWith(out[static_cast<std::size_t>(p)]);
      }
      r.in_[un] = newIn;
      DenseBitSet newOut = newIn;
      newOut.subtract(killBits[un]);
      newOut.unionWith(genBits[un]);
      if (!(newOut == out[un])) {
        out[un] = std::move(newOut);
        changed = true;
      }
    }
  }

  // Build def-use / use-def chains. A use in a node sees IN defs, plus any
  // def generated *earlier in the same statement* — at statement
  // granularity we approximate: LHS writes of the same statement do not
  // reach the RHS read (Fortran evaluates RHS first), so IN suffices.
  r.defUse_.assign(nd, {});
  r.useDef_.assign(r.uses_.size(), {});
  for (int node = 0; node < n; ++node) {
    auto un = static_cast<std::size_t>(node);
    for (int ui : nodeUses[un]) {
      const UseSite& u = r.uses_[static_cast<std::size_t>(ui)];
      r.in_[un].forEach([&](std::size_t di) {
        if (r.defs_[di].name == u.name) {
          r.defUse_[di].push_back(ui);
          r.useDef_[static_cast<std::size_t>(ui)].push_back(
              static_cast<int>(di));
        }
      });
    }
  }
  return r;
}

std::vector<int> ReachingDefs::reachingAt(StmtId stmt,
                                          const std::string& name) const {
  std::vector<int> result;
  auto it = nodeOf_.find(stmt);
  if (it == nodeOf_.end()) return result;
  const DenseBitSet& in = in_[static_cast<std::size_t>(it->second)];
  in.forEach([&](std::size_t di) {
    if (defs_[di].name == name) result.push_back(static_cast<int>(di));
  });
  return result;
}

bool ReachingDefs::uniqueReachingAssignment(StmtId stmt,
                                            const std::string& name,
                                            const Stmt** out) const {
  auto defs = reachingAt(stmt, name);
  if (defs.size() != 1) return false;
  const Definition& d = defs_[static_cast<std::size_t>(defs[0])];
  if (!d.killing || d.stmt->kind != fortran::StmtKind::Assign) return false;
  if (out) *out = d.stmt;
  return true;
}

}  // namespace ps::dataflow
