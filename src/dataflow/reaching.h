#ifndef PS_DATAFLOW_REACHING_H
#define PS_DATAFLOW_REACHING_H

#include <map>
#include <string>
#include <vector>

#include "cfg/flow_graph.h"
#include "ir/model.h"
#include "ir/refs.h"
#include "support/bitset.h"

namespace ps::dataflow {

/// One definition point of a variable: a scalar assignment, an array element
/// store, a READ item, a DO-variable update, or a call-site may-def.
struct Definition {
  const fortran::Stmt* stmt = nullptr;
  std::string name;
  ir::RefKind kind = ir::RefKind::Write;
  /// Scalar writes kill other definitions of the same name; array element
  /// stores and call may-defs do not.
  bool killing = false;
};

/// A use site: one read occurrence.
struct UseSite {
  const fortran::Stmt* stmt = nullptr;
  const fortran::Expr* expr = nullptr;  // may be null for call actuals
  std::string name;
};

/// Classic reaching definitions over the statement-level CFG, with def-use
/// and use-def chains. This powers PED's variable pane (DEF</USE> columns),
/// scalar dependence edges, and the symbolic analyzer's "which assignment
/// reaches this loop" queries.
class ReachingDefs {
 public:
  static ReachingDefs build(const cfg::FlowGraph& g,
                            const ir::ProcedureModel& model);

  [[nodiscard]] const std::vector<Definition>& definitions() const {
    return defs_;
  }

  /// Indices into definitions() for defs of `name` reaching the *entry* of
  /// the statement's node.
  [[nodiscard]] std::vector<int> reachingAt(fortran::StmtId stmt,
                                            const std::string& name) const;

  /// All use sites in the procedure.
  [[nodiscard]] const std::vector<UseSite>& uses() const { return uses_; }

  /// Def-use chains: defIndex -> use indices.
  [[nodiscard]] const std::vector<std::vector<int>>& defUse() const {
    return defUse_;
  }
  /// Use-def chains: useIndex -> def indices.
  [[nodiscard]] const std::vector<std::vector<int>>& useDef() const {
    return useDef_;
  }

  /// True when exactly one definition of `name` reaches the statement and it
  /// is a killing (scalar) assignment; returns it via `out`.
  bool uniqueReachingAssignment(fortran::StmtId stmt, const std::string& name,
                                const fortran::Stmt** out) const;

 private:
  const cfg::FlowGraph* graph_ = nullptr;
  std::vector<Definition> defs_;
  std::vector<UseSite> uses_;
  std::vector<DenseBitSet> in_;  // per CFG node
  std::vector<std::vector<int>> defUse_;
  std::vector<std::vector<int>> useDef_;
  std::map<fortran::StmtId, int> nodeOf_;
};

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_REACHING_H
