#include "dataflow/linear.h"

#include <algorithm>

#include "ir/refs.h"

namespace ps::dataflow {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::UnOp;

LinearExpr& LinearExpr::add(const LinearExpr& o, long long scale) {
  affine = affine && o.affine;
  hasIndexArray = hasIndexArray || o.hasIndexArray;
  hasCall = hasCall || o.hasCall;
  degraded = degraded || o.degraded;
  constant += scale * o.constant;
  for (const auto& [v, c] : o.coef) {
    long long nc = coefOf(v) + scale * c;
    if (nc == 0) {
      coef.erase(v);
    } else {
      coef[v] = nc;
    }
  }
  return *this;
}

bool LinearExpr::hasSymbolicsBesides(
    const std::vector<std::string>& ivs) const {
  for (const auto& [v, c] : coef) {
    (void)c;
    if (std::find(ivs.begin(), ivs.end(), v) == ivs.end()) return true;
  }
  return false;
}

std::string LinearExpr::str() const {
  if (!affine) return "<nonlinear>";
  std::string out;
  for (const auto& [v, c] : coef) {
    if (!out.empty()) out += " + ";
    if (c == 1) {
      out += v;
    } else {
      out += std::to_string(c) + "*" + v;
    }
  }
  if (constant != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += std::to_string(constant);
  }
  return out;
}

LinearExpr linearize(const Expr& e,
                     const std::map<std::string, LinearExpr>& substitute) {
  LinearExpr out;
  switch (e.kind) {
    case ExprKind::IntConst:
      out.constant = e.intValue;
      return out;
    case ExprKind::RealConst:
      // Real-valued subscripts do not occur in valid Fortran; treat a whole
      // real constant as non-affine so tests stay conservative.
      out.affine = false;
      return out;
    case ExprKind::VarRef: {
      auto it = substitute.find(e.name);
      if (it != substitute.end()) return it->second;
      out.coef[e.name] = 1;
      return out;
    }
    case ExprKind::ArrayRef:
      out.affine = false;
      out.hasIndexArray = true;
      return out;
    case ExprKind::FuncCall:
      out.affine = false;
      out.hasCall = true;
      // A non-intrinsic name with arguments in a subscript is
      // indistinguishable from an index array without a declaration; flag it
      // as one so Table 3's index-array detection stays robust.
      if (!ir::isIntrinsic(e.name)) out.hasIndexArray = true;
      return out;
    case ExprKind::Unary: {
      LinearExpr v = linearize(*e.lhs, substitute);
      if (e.unOp == UnOp::Neg) {
        LinearExpr neg;
        neg.add(v, -1);
        return neg;
      }
      if (e.unOp == UnOp::Plus) return v;
      v.affine = false;  // .NOT. in a subscript — nonsense, stay safe
      return v;
    }
    case ExprKind::Binary: {
      LinearExpr l = linearize(*e.lhs, substitute);
      LinearExpr r = linearize(*e.rhs, substitute);
      switch (e.binOp) {
        case BinOp::Add:
          return l.add(r, 1);
        case BinOp::Sub:
          return l.add(r, -1);
        case BinOp::Mul: {
          // Linear only when one side is a pure constant.
          if (l.affine && l.isConstant()) {
            LinearExpr scaled;
            scaled.add(r, l.constant);
            scaled.hasIndexArray |= l.hasIndexArray;
            scaled.hasCall |= l.hasCall;
            return scaled;
          }
          if (r.affine && r.isConstant()) {
            LinearExpr scaled;
            scaled.add(l, r.constant);
            scaled.hasIndexArray |= r.hasIndexArray;
            scaled.hasCall |= r.hasCall;
            return scaled;
          }
          LinearExpr bad;
          bad.affine = false;
          bad.hasIndexArray = l.hasIndexArray || r.hasIndexArray;
          bad.hasCall = l.hasCall || r.hasCall;
          return bad;
        }
        case BinOp::Div: {
          // Exact division of a constant-only form by a constant.
          if (l.affine && r.affine && r.isConstant() && r.constant != 0 &&
              l.isConstant() && l.constant % r.constant == 0) {
            LinearExpr q;
            q.constant = l.constant / r.constant;
            return q;
          }
          LinearExpr bad;
          bad.affine = false;
          bad.hasIndexArray = l.hasIndexArray || r.hasIndexArray;
          bad.hasCall = l.hasCall || r.hasCall;
          return bad;
        }
        default: {
          LinearExpr bad;
          bad.affine = false;
          bad.hasIndexArray = l.hasIndexArray || r.hasIndexArray;
          bad.hasCall = l.hasCall || r.hasCall;
          return bad;
        }
      }
    }
    default:
      out.affine = false;
      return out;
  }
}

LinearExpr subtract(const LinearExpr& a, const LinearExpr& b) {
  LinearExpr out = a;
  out.add(b, -1);
  return out;
}

}  // namespace ps::dataflow
