#ifndef PS_DATAFLOW_LINEAR_H
#define PS_DATAFLOW_LINEAR_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fortran/ast.h"

namespace ps::dataflow {

/// A linear (affine) form: sum of coef*var terms plus a constant. Variables
/// include loop induction variables *and* symbolic terms (loop-invariant
/// scalars like MCN or JMAX). Dependence tests treat induction variables
/// specially and cancel identical symbolic terms across a subscript pair —
/// the Goff–Kennedy–Tseng treatment of symbolics.
struct LinearExpr {
  std::map<std::string, long long> coef;  // var -> coefficient (non-zero)
  long long constant = 0;

  /// Set when the expression could not be fully linearized.
  bool affine = true;
  /// An array reference appears inside the expression (index array — the
  /// dpmin IT(N)/JT(N)/KT(N) pattern the paper calls out).
  bool hasIndexArray = false;
  /// A function call appears inside the expression.
  bool hasCall = false;
  /// An analysis budget was exhausted while building this form (e.g. the
  /// linearizer's node cap); the form is still sound but deliberately
  /// coarser than the source warranted.
  bool degraded = false;

  [[nodiscard]] long long coefOf(const std::string& v) const {
    auto it = coef.find(v);
    return it == coef.end() ? 0 : it->second;
  }

  LinearExpr& add(const LinearExpr& o, long long scale = 1);
  [[nodiscard]] bool isConstant() const { return affine && coef.empty(); }
  /// All terms other than the given induction variables are symbolic.
  [[nodiscard]] bool hasSymbolicsBesides(
      const std::vector<std::string>& ivs) const;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool operator==(const LinearExpr& o) const {
    return affine == o.affine && coef == o.coef && constant == o.constant;
  }
};

/// Linearize an expression. `substitute` maps auxiliary variables to their
/// own linear forms (auxiliary induction variables, propagated symbolic
/// relations like JM = JMAX - 1, and constants from constant propagation);
/// it is applied transitively by the caller building the map.
[[nodiscard]] LinearExpr linearize(
    const fortran::Expr& e,
    const std::map<std::string, LinearExpr>& substitute = {});

/// Difference a - b with symbolic cancellation.
[[nodiscard]] LinearExpr subtract(const LinearExpr& a, const LinearExpr& b);

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_LINEAR_H
