#include "dataflow/liveness.h"

#include "ir/refs.h"

namespace ps::dataflow {

using cfg::FlowGraph;
using fortran::Stmt;
using fortran::StmtId;
using ir::Ref;
using ir::RefKind;

Liveness Liveness::build(const FlowGraph& g, const ir::ProcedureModel& model) {
  Liveness lv;
  lv.graph_ = &g;
  lv.model_ = &model;
  const int n = g.numNodes();
  lv.liveIn_.assign(static_cast<std::size_t>(n), {});
  lv.liveOut_.assign(static_cast<std::size_t>(n), {});

  const fortran::Procedure& proc = model.procedure();

  // use/def per node. Array element stores do not fully define the array, so
  // arrays are never in DEF (conservative for backward liveness).
  std::vector<std::set<std::string>> use(static_cast<std::size_t>(n));
  std::vector<std::set<std::string>> def(static_cast<std::size_t>(n));
  for (const Stmt* s : model.allStmts()) {
    int node = g.nodeOf(s->id);
    if (node < 0) continue;
    auto un = static_cast<std::size_t>(node);
    for (const Ref& r : ir::collectRefs(*s)) {
      const fortran::VarDecl* d = proc.findDecl(r.name);
      bool isScalar = !d || !d->isArray();
      if (r.isRead() && !def[un].count(r.name)) use[un].insert(r.name);
      if (r.isWrite() && isScalar && r.kind != RefKind::CallActual &&
          !use[un].count(r.name)) {
        def[un].insert(r.name);
      }
    }
  }

  // Everything that escapes the procedure is live at exit: parameters and
  // COMMON members (callers may observe them).
  std::set<std::string> exitLive;
  for (const auto& d : proc.decls) {
    if (proc.isParam(d.name) || !d.commonBlock.empty()) {
      exitLive.insert(d.name);
    }
  }
  if (proc.kind == fortran::ProcKind::Function) exitLive.insert(proc.name);
  lv.liveIn_[FlowGraph::kExit] = exitLive;

  auto order = g.reversePostOrderOfReverse();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      if (node == FlowGraph::kExit) continue;
      auto un = static_cast<std::size_t>(node);
      std::set<std::string> out;
      for (int s : g.successors(node)) {
        const auto& si = lv.liveIn_[static_cast<std::size_t>(s)];
        out.insert(si.begin(), si.end());
      }
      std::set<std::string> in = use[un];
      for (const auto& v : out) {
        if (!def[un].count(v)) in.insert(v);
      }
      if (out != lv.liveOut_[un] || in != lv.liveIn_[un]) {
        lv.liveOut_[un] = std::move(out);
        lv.liveIn_[un] = std::move(in);
        changed = true;
      }
    }
  }
  return lv;
}

std::set<std::string> Liveness::liveIn(StmtId stmt) const {
  int node = graph_->nodeOf(stmt);
  if (node < 0) return {};
  return liveIn_[static_cast<std::size_t>(node)];
}

std::set<std::string> Liveness::liveOut(StmtId stmt) const {
  int node = graph_->nodeOf(stmt);
  if (node < 0) return {};
  return liveOut_[static_cast<std::size_t>(node)];
}

bool Liveness::liveAfterLoop(const ir::Loop& loop,
                             const std::string& name) const {
  // The DO node's non-body successors are the loop exits; `name` is live
  // after the loop if it is live-in at any of them. GOTO exits out of the
  // body are covered because their targets are those nodes' successors.
  int doNode = graph_->nodeOf(loop.stmt->id);
  if (doNode < 0) return true;  // be conservative
  for (int s : graph_->successors(doNode)) {
    const Stmt* st = graph_->stmtOf(s);
    bool inBody = false;
    if (st) {
      for (const Stmt* b : loop.bodyStmts) {
        if (b == st) {
          inBody = true;
          break;
        }
      }
    }
    if (!inBody) {
      if (s == FlowGraph::kExit) {
        // Procedure exit: use the exit node's live-in (escaping variables).
        if (liveIn_[FlowGraph::kExit].count(name)) return true;
      } else if (liveIn_[static_cast<std::size_t>(s)].count(name)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace ps::dataflow
