#ifndef PS_DATAFLOW_SYMBOLIC_H
#define PS_DATAFLOW_SYMBOLIC_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg/control_dep.h"
#include "cfg/flow_graph.h"
#include "dataflow/constants.h"
#include "dataflow/linear.h"
#include "dataflow/reaching.h"
#include "ir/model.h"

namespace ps::dataflow {

/// An auxiliary induction variable: a scalar updated exactly once per loop
/// iteration by V = V + stride (stride loop-invariant constant). Its value
/// at any statement is  V@entry + stride*(iteration count)  [+ stride if the
/// statement follows the update in the body].
struct AuxInduction {
  std::string name;
  long long stride = 0;
  const fortran::Stmt* update = nullptr;
};

/// A symbolic relation V = <linear form> valid throughout a loop (e.g. the
/// paper's arc3d fact JM = JMAX - 1). Sources: unique reaching assignments,
/// interprocedural propagation, and user assertions.
struct Relation {
  std::string name;
  LinearExpr value;
};

/// Per-procedure symbolic analysis: auxiliary induction variables,
/// loop-invariance, and equality relations that sharpen dependence testing.
class SymbolicAnalysis {
 public:
  /// `maxRelations` bounds the total number of relations kept across the
  /// whole procedure (0 = unlimited). When the cap is hit, further relations
  /// are dropped — dependence tests lose sharpening facts but stay sound —
  /// and `truncated()` reports it.
  static SymbolicAnalysis build(const ir::ProcedureModel& model,
                                const cfg::FlowGraph& g,
                                const ReachingDefs& reaching,
                                const ConstantAnalysis& constants,
                                const cfg::ControlDependence& cdeps,
                                const std::vector<Relation>& inherited = {},
                                std::size_t maxRelations = 0);

  /// Number of relations dropped by the `maxRelations` cap.
  [[nodiscard]] long long truncated() const { return truncated_; }

  /// Scalars defined anywhere inside the loop body (including call
  /// may-defs).
  [[nodiscard]] const std::set<std::string>& definedIn(
      const ir::Loop& loop) const;

  /// True when the expression's value cannot change during any iteration of
  /// the loop: no variable in it is defined in the loop, no user-function
  /// calls, and any array read is of an array not written in the loop.
  [[nodiscard]] bool isLoopInvariant(const fortran::Expr& e,
                                     const ir::Loop& loop) const;

  /// Auxiliary induction variables of the loop.
  [[nodiscard]] std::vector<AuxInduction> auxInductionsOf(
      const ir::Loop& loop) const;

  /// Equality relations valid at (every iteration of) the loop.
  [[nodiscard]] std::vector<Relation> relationsAt(const ir::Loop& loop) const;

  /// Build the substitution map used to linearize subscripts inside `loop`:
  /// constants fold to literals, related symbolics rewrite to their linear
  /// forms, auxiliary induction variables rewrite in terms of enclosing
  /// loop induction variables (`atStmt` decides before/after-update).
  [[nodiscard]] std::map<std::string, LinearExpr> substitutionFor(
      const ir::Loop& loop, const fortran::Stmt& atStmt) const;

 private:
  const ir::ProcedureModel* model_ = nullptr;
  const cfg::FlowGraph* graph_ = nullptr;
  const ReachingDefs* reaching_ = nullptr;
  const ConstantAnalysis* constants_ = nullptr;
  std::map<const ir::Loop*, std::set<std::string>> definedIn_;
  std::map<const ir::Loop*, std::set<std::string>> arraysWritten_;
  std::map<const ir::Loop*, std::vector<AuxInduction>> auxIvs_;
  std::map<const ir::Loop*, std::vector<Relation>> relations_;
  std::set<std::string> empty_;
  long long truncated_ = 0;
};

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_SYMBOLIC_H
