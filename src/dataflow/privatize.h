#ifndef PS_DATAFLOW_PRIVATIZE_H
#define PS_DATAFLOW_PRIVATIZE_H

#include <map>
#include <string>
#include <vector>

#include "cfg/flow_graph.h"
#include "dataflow/liveness.h"
#include "ir/model.h"

namespace ps::dataflow {

/// How a variable relates to one loop, from the privatization (scalar kill)
/// analysis the paper credits with making "almost all of the programs"
/// parallelizable: "recognizing scalars that are killed ... on every
/// iteration of a loop and may be made private, thus eliminating
/// dependences."
enum class PrivatizationStatus {
  /// Not accessed in the loop.
  Unused,
  /// Read before any write on some iteration path: must stay shared.
  Shared,
  /// Killed (written before any read) on every path through an iteration
  /// and dead after the loop: freely privatizable.
  Private,
  /// Killed on every path but live after the loop: privatizable with a
  /// last-value copy-out.
  PrivateNeedsLastValue,
};

const char* privatizationStatusName(PrivatizationStatus s);

struct VariableClassification {
  std::string name;
  PrivatizationStatus status = PrivatizationStatus::Unused;
  bool writtenInLoop = false;
  bool readInLoop = false;
  /// True when the first access on some path reads the value from before
  /// the loop / a previous iteration (the upward-exposed read).
  bool upwardExposedRead = false;
};

/// Scalar privatization analysis for every loop in a procedure. Arrays are
/// always classified Shared here — array kill analysis lives in
/// interproc/array_kill.h (the paper lists it under *needed* analyses).
class PrivatizationAnalysis {
 public:
  static PrivatizationAnalysis build(const ir::ProcedureModel& model,
                                     const cfg::FlowGraph& g,
                                     const Liveness& liveness);

  [[nodiscard]] const std::vector<VariableClassification>& classesFor(
      const ir::Loop& loop) const;

  [[nodiscard]] PrivatizationStatus statusOf(const ir::Loop& loop,
                                             const std::string& name) const;

 private:
  std::map<const ir::Loop*, std::vector<VariableClassification>> classes_;
  std::vector<VariableClassification> empty_;
};

}  // namespace ps::dataflow

#endif  // PS_DATAFLOW_PRIVATIZE_H
