#include <set>

#include "transform/catalog.h"

namespace ps::transform {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtPtr;
using ir::Loop;

namespace {

bool unitStep(const Stmt& s) {
  return !s.doStep || s.doStep->isIntConst(1);
}

void normalizeLoopForm(Stmt& loopStmt) {
  if (loopStmt.doEndLabel == 0) return;
  if (!loopStmt.body.empty() &&
      loopStmt.body.back()->kind == StmtKind::Continue &&
      loopStmt.body.back()->label == loopStmt.doEndLabel) {
    loopStmt.body.pop_back();
  }
  loopStmt.doEndLabel = 0;
}

// ===========================================================================
// Strip Mining
// ===========================================================================

class StripMining : public Transformation {
 public:
  std::string name() const override { return "Strip Mining"; }
  Category category() const override { return Category::MemoryOptimizing; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (!unitStep(*loop->stmt)) {
      return Advice::no("only unit-step loops are strip mined");
    }
    if (t.factor < 2) return Advice::no("strip size must be at least 2");
    return Advice::ok(false, "always legal (iteration order preserved)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    normalizeLoopForm(s);
    std::string stripIv = freshName(ws.proc, s.doVar + "$S");
    fortran::VarDecl d;
    d.name = stripIv;
    d.type = fortran::TypeKind::Integer;
    ws.proc.decls.push_back(std::move(d));

    // DO s = lo, hi, B / DO iv = s, MIN(s + B - 1, hi).
    auto inner = fortran::makeStmt(StmtKind::Do, s.loc);
    inner->doVar = s.doVar;
    inner->doLo = fortran::makeVarRef(stripIv);
    std::vector<fortran::ExprPtr> minArgs;
    minArgs.push_back(fortran::makeBinary(
        fortran::BinOp::Sub,
        fortran::makeBinary(fortran::BinOp::Add,
                            fortran::makeVarRef(stripIv),
                            fortran::makeIntConst(t.factor)),
        fortran::makeIntConst(1)));
    minArgs.push_back(s.doHi->clone());
    inner->doLo = fortran::makeVarRef(stripIv);
    inner->doHi = fortran::makeFuncCall("MIN0", std::move(minArgs));
    inner->body = std::move(s.body);

    s.doVar = stripIv;
    s.doStep = fortran::makeIntConst(t.factor);
    s.body.clear();
    s.body.push_back(std::move(inner));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Unrolling
// ===========================================================================

class LoopUnrolling : public Transformation {
 public:
  std::string name() const override { return "Loop Unrolling"; }
  Category category() const override { return Category::MemoryOptimizing; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (!unitStep(*loop->stmt)) {
      return Advice::no("only unit-step loops are unrolled");
    }
    if (t.factor < 2) return Advice::no("unroll factor must be at least 2");
    bool hasGoto = false;
    for (const auto& b : loop->stmt->body) {
      b->forEach([&](const Stmt& inner) {
        if (inner.kind == StmtKind::Goto ||
            inner.kind == StmtKind::ArithmeticIf) {
          hasGoto = true;
        }
      });
    }
    if (hasGoto) return Advice::unsafe("body has unstructured control flow");
    return Advice::ok(false, "always legal (plus a remainder loop)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    normalizeLoopForm(s);
    long long u = t.factor;
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);

    // Remainder loop runs the tail iterations with the original body:
    //   DO iv = lo + ((hi - lo + 1)/u)*u, hi.
    auto remainder = fortran::makeStmt(StmtKind::Do, s.loc);
    remainder->doVar = s.doVar;
    remainder->doHi = s.doHi->clone();
    remainder->doLo = fortran::makeBinary(
        fortran::BinOp::Add, s.doLo->clone(),
        fortran::makeBinary(
            fortran::BinOp::Mul,
            fortran::makeBinary(
                fortran::BinOp::Div,
                fortran::makeBinary(
                    fortran::BinOp::Add,
                    fortran::makeBinary(fortran::BinOp::Sub, s.doHi->clone(),
                                        s.doLo->clone()),
                    fortran::makeIntConst(1)),
                fortran::makeIntConst(u)),
            fortran::makeIntConst(u)));
    for (const auto& b : s.body) remainder->body.push_back(b->clone());

    // Main loop: step u, body replicated with iv, iv+1, ..., iv+u-1.
    std::vector<StmtPtr> original = std::move(s.body);
    s.body.clear();
    for (long long k = 0; k < u; ++k) {
      for (const auto& b : original) {
        StmtPtr copy = b->clone();
        if (k > 0) {
          auto repl = fortran::makeBinary(fortran::BinOp::Add,
                                          fortran::makeVarRef(s.doVar),
                                          fortran::makeIntConst(k));
          substituteVar(*copy, s.doVar, *repl);
        }
        s.body.push_back(std::move(copy));
      }
    }
    // hi of main loop: lo + (trip/u)*u - 1; easier: remainderLo - 1.
    s.doHi = fortran::makeBinary(fortran::BinOp::Sub,
                                 remainder->doLo->clone(),
                                 fortran::makeIntConst(1));
    s.doStep = fortran::makeIntConst(u);
    container->insert(container->begin() + static_cast<long>(index + 1),
                      std::move(remainder));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Unroll and Jam
// ===========================================================================

class UnrollAndJam : public Transformation {
 public:
  std::string name() const override { return "Unroll and Jam"; }
  Category category() const override { return Category::MemoryOptimizing; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* outer = ws.loopOf(t.loop);
    if (!outer) return Advice::no("target is not a loop");
    if (!unitStep(*outer->stmt)) {
      return Advice::no("only unit-step outer loops");
    }
    if (outer->stmt->body.size() != 1 ||
        outer->stmt->body[0]->kind != StmtKind::Do) {
      return Advice::no("not a perfect two-level nest");
    }
    // Legality matches interchange: jamming moves outer iterations inside.
    const Transformation* interchange =
        Registry::instance().byName("Loop Interchange");
    Advice ia = interchange->advise(ws, t);
    if (!ia.safe) {
      return Advice::unsafe("jamming unsafe: " + ia.explanation);
    }
    return Advice::ok(false, "improves register reuse across outer "
                             "iterations");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* outer = ws.loopOf(t.loop);
    Stmt& o = *outer->stmt;
    Stmt& inner = *o.body[0];
    long long u = t.factor;
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);

    // Remainder outer loop with the original nest.
    auto remainder = o.clone();
    remainder->doLo = fortran::makeBinary(
        fortran::BinOp::Add, o.doLo->clone(),
        fortran::makeBinary(
            fortran::BinOp::Mul,
            fortran::makeBinary(
                fortran::BinOp::Div,
                fortran::makeBinary(
                    fortran::BinOp::Add,
                    fortran::makeBinary(fortran::BinOp::Sub, o.doHi->clone(),
                                        o.doLo->clone()),
                    fortran::makeIntConst(1)),
                fortran::makeIntConst(u)),
            fortran::makeIntConst(u)));

    // Jam: replicate the inner body for iv, iv+1, ... inside one inner
    // loop.
    std::vector<StmtPtr> jammed;
    for (long long k = 0; k < u; ++k) {
      for (const auto& b : inner.body) {
        StmtPtr copy = b->clone();
        if (k > 0) {
          auto repl = fortran::makeBinary(fortran::BinOp::Add,
                                          fortran::makeVarRef(o.doVar),
                                          fortran::makeIntConst(k));
          substituteVar(*copy, o.doVar, *repl);
        }
        jammed.push_back(std::move(copy));
      }
    }
    inner.body = std::move(jammed);
    o.doHi = fortran::makeBinary(fortran::BinOp::Sub,
                                 remainder->doLo->clone(),
                                 fortran::makeIntConst(1));
    o.doStep = fortran::makeIntConst(u);
    container->insert(container->begin() + static_cast<long>(index + 1),
                      std::move(remainder));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Scalar Replacement
// ===========================================================================

class ScalarReplacement : public Transformation {
 public:
  std::string name() const override { return "Scalar Replacement"; }
  Category category() const override { return Category::MemoryOptimizing; }

  /// Find a loop-invariant array reference of the named array in the loop.
  static const Expr* invariantRef(Workspace&, Loop* loop,
                                  const std::string& var, bool* written) {
    const Expr* found = nullptr;
    *written = false;
    for (const Stmt* s : loop->bodyStmts) {
      s->forEachExpr([&](const Expr& e) {
        if (e.kind == ExprKind::ArrayRef && e.name == var) {
          if (!found) found = &e;
        }
      });
      if (s->kind == StmtKind::Assign &&
          s->lhs->kind == ExprKind::ArrayRef && s->lhs->name == var) {
        *written = true;
      }
    }
    if (!found) return nullptr;
    // All refs must be structurally identical and subscripts must not use
    // any variable assigned in the loop.
    bool uniform = true;
    for (const Stmt* s : loop->bodyStmts) {
      s->forEachExpr([&](const Expr& e) {
        if (e.kind == ExprKind::ArrayRef && e.name == var &&
            !e.structurallyEquals(*found)) {
          uniform = false;
        }
      });
    }
    if (!uniform) return nullptr;
    std::set<std::string> defined;
    defined.insert(loop->inductionVar());
    for (const Stmt* s : loop->bodyStmts) {
      if (s->kind == StmtKind::Do) defined.insert(s->doVar);
      if (s->kind == StmtKind::Assign &&
          s->lhs->kind == ExprKind::VarRef) {
        defined.insert(s->lhs->name);
      }
    }
    bool invariant = true;
    for (const auto& sub : found->args) {
      sub->forEach([&](const Expr& e) {
        if (e.kind == ExprKind::VarRef && defined.count(e.name)) {
          invariant = false;
        }
      });
    }
    return invariant ? found : nullptr;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    bool written = false;
    const Expr* ref = invariantRef(ws, loop, t.variable, &written);
    if (!ref) {
      return Advice::no(
          "no single loop-invariant reference of the array in the loop");
    }
    return Advice::ok(false, written
                                 ? "load before, store after the loop"
                                 : "load once before the loop");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    bool written = false;
    const Expr* ref = invariantRef(ws, loop, t.variable, &written);
    fortran::ExprPtr refCopy = ref->clone();

    std::string scalar = freshName(ws.proc, t.variable + "$R");
    fortran::VarDecl d;
    d.name = scalar;
    const fortran::VarDecl* orig = ws.proc.findDecl(t.variable);
    d.type = orig ? orig->type : fortran::TypeKind::Real;
    ws.proc.decls.push_back(std::move(d));

    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);
    // Load before the loop.
    auto load = fortran::makeStmt(StmtKind::Assign, s.loc);
    load->lhs = fortran::makeVarRef(scalar);
    load->rhs = refCopy->clone();
    container->insert(container->begin() + static_cast<long>(index),
                      std::move(load));
    // Store after (if written).
    if (written) {
      auto storeBack = fortran::makeStmt(StmtKind::Assign, s.loc);
      storeBack->lhs = refCopy->clone();
      storeBack->rhs = fortran::makeVarRef(scalar);
      container->insert(container->begin() + static_cast<long>(index + 2),
                        std::move(storeBack));
    }
    // Replace refs in the body.
    auto scalarRef = fortran::makeVarRef(scalar);
    for (auto& b : s.body) {
      b->forEachMutable([&](Stmt& st) {
        st.forEachExprMutable([&](Expr& e) {
          if (e.kind == ExprKind::ArrayRef && e.name == t.variable &&
              e.structurallyEquals(*refCopy)) {
            e = std::move(*scalarRef->clone());
          }
        });
        if (st.kind == StmtKind::Assign &&
            st.lhs->kind == ExprKind::ArrayRef &&
            st.lhs->structurallyEquals(*refCopy)) {
          st.lhs = scalarRef->clone();
        }
      });
    }
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addMemoryTransforms(std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<StripMining>());
  out.push_back(std::make_unique<LoopUnrolling>());
  out.push_back(std::make_unique<UnrollAndJam>());
  out.push_back(std::make_unique<ScalarReplacement>());
}

}  // namespace ps::transform
