#include <set>

#include "ir/refs.h"
#include "transform/catalog.h"

namespace ps::transform {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtPtr;
using fortran::UnOp;

namespace {

/// How many GOTO / arithmetic-IF references target this label in the
/// procedure?
int labelRefCount(const fortran::Procedure& proc, int label) {
  int n = 0;
  proc.forEachStmt([&](const Stmt& s) {
    if (s.kind == StmtKind::Goto && s.gotoTarget == label) ++n;
    if (s.kind == StmtKind::ArithmeticIf) {
      for (int l : s.aifLabels) {
        if (l == label) ++n;
      }
    }
  });
  return n;
}

bool exprHasCall(const Expr& e) {
  bool found = false;
  e.forEach([&](const Expr& sub) {
    if (sub.kind == ExprKind::FuncCall && !ir::isIntrinsic(sub.name)) {
      found = true;
    }
  });
  return found;
}

StmtPtr makeGoto(int label) {
  auto g = fortran::makeStmt(StmtKind::Goto);
  g->gotoTarget = label;
  return g;
}

StmtPtr makeLogicalIfGoto(fortran::ExprPtr cond, int label) {
  auto s = fortran::makeStmt(StmtKind::If);
  s->isLogicalIf = true;
  fortran::IfArm arm;
  arm.condition = std::move(cond);
  arm.body.push_back(makeGoto(label));
  s->arms.push_back(std::move(arm));
  return s;
}

// ===========================================================================
// Arithmetic IF Removal: IF (e) l1, l2, l3 becomes logical IFs + GOTOs,
// the first step of the control-flow simplification §5.3 calls for.
// ===========================================================================

class ArithmeticIfRemoval : public Transformation {
 public:
  std::string name() const override { return "Arithmetic IF Removal"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    const Stmt* s = ws.model->stmt(t.stmt);
    if (!s || s->kind != StmtKind::ArithmeticIf) {
      return Advice::no("statement is not an arithmetic IF");
    }
    return Advice::ok(true, "replaces three-way branch with logical IFs");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    std::size_t index = 0;
    auto* container = containerOf(ws, t.stmt, &index);
    Stmt& s = *(*container)[index];
    int l1 = s.aifLabels[0], l2 = s.aifLabels[1], l3 = s.aifLabels[2];

    std::vector<StmtPtr> replacement;
    fortran::ExprPtr expr = std::move(s.condExpr);
    // If the selector has side effects, evaluate it once into a temp.
    if (exprHasCall(*expr)) {
      std::string tmp = freshName(ws.proc, "AIF$");
      fortran::VarDecl d;
      d.name = tmp;
      d.type = fortran::TypeKind::Real;
      ws.proc.decls.push_back(std::move(d));
      auto assign = fortran::makeStmt(StmtKind::Assign, s.loc);
      assign->lhs = fortran::makeVarRef(tmp);
      assign->rhs = std::move(expr);
      replacement.push_back(std::move(assign));
      expr = fortran::makeVarRef(tmp);
    }
    auto zero = [] { return fortran::makeIntConst(0); };

    // Does the given label land on the statement right after this one?
    auto fallsThrough = [&](int label) {
      return index + 1 < container->size() &&
             (*container)[index + 1]->label == label;
    };

    if (l1 == l2 && l2 == l3) {
      replacement.push_back(makeGoto(l1));
    } else if (l2 == l3) {
      replacement.push_back(makeLogicalIfGoto(
          fortran::makeBinary(BinOp::Lt, expr->clone(), zero()), l1));
      if (!fallsThrough(l2)) replacement.push_back(makeGoto(l2));
    } else if (l1 == l2) {
      replacement.push_back(makeLogicalIfGoto(
          fortran::makeBinary(BinOp::Le, expr->clone(), zero()), l1));
      if (!fallsThrough(l3)) replacement.push_back(makeGoto(l3));
    } else if (l1 == l3) {
      replacement.push_back(makeLogicalIfGoto(
          fortran::makeBinary(BinOp::Ne, expr->clone(), zero()), l1));
      if (!fallsThrough(l2)) replacement.push_back(makeGoto(l2));
    } else {
      replacement.push_back(makeLogicalIfGoto(
          fortran::makeBinary(BinOp::Lt, expr->clone(), zero()), l1));
      replacement.push_back(makeLogicalIfGoto(
          fortran::makeBinary(BinOp::Eq, expr->clone(), zero()), l2));
      if (!fallsThrough(l3)) replacement.push_back(makeGoto(l3));
    }
    // Preserve the original statement's label on the first replacement.
    if (!replacement.empty()) replacement.front()->label = s.label;
    container->erase(container->begin() + static_cast<long>(index));
    for (std::size_t i = 0; i < replacement.size(); ++i) {
      container->insert(container->begin() + static_cast<long>(index + i),
                        std::move(replacement[i]));
    }
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Control Flow Structuring: GOTO-built conditionals become IF-THEN-ELSE
// (the neoss example from §5.3).
// ===========================================================================

class ControlFlowStructuring : public Transformation {
 public:
  std::string name() const override { return "Control Flow Structuring"; }
  Category category() const override { return Category::Miscellaneous; }

  struct Match {
    std::size_t ifIdx = 0;       // the IF (c) GOTO L1
    std::size_t thenEnd = 0;     // exclusive end of the then-block
    std::size_t elseBegin = 0;   // L1-labeled statement (else form only)
    std::size_t elseEnd = 0;     // exclusive end of the else-block
    int l1 = 0;
    int l2 = 0;                  // 0 for the if-then form
    bool hasElse = false;
  };

  static bool isIfGoto(const Stmt& s, int* label,
                       const Expr** cond) {
    if (s.kind != StmtKind::If || !s.isLogicalIf || s.arms.size() != 1 ||
        s.arms[0].body.size() != 1 ||
        s.arms[0].body[0]->kind != StmtKind::Goto) {
      return false;
    }
    *label = s.arms[0].body[0]->gotoTarget;
    *cond = s.arms[0].condition.get();
    return true;
  }

  /// No referenced labels and no GOTOs in a statement range (labels with a
  /// zero reference count — e.g. leftovers of a removed arithmetic IF — are
  /// harmless and allowed).
  static bool rangeIsClean(Workspace& ws, const std::vector<StmtPtr>& list,
                           std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      bool bad = false;
      list[i]->forEach([&](const Stmt& s) {
        if (s.label != 0 && labelRefCount(ws.proc, s.label) > 0) bad = true;
        if (s.kind == StmtKind::Goto || s.kind == StmtKind::ArithmeticIf) {
          bad = true;
        }
      });
      if (bad) return false;
    }
    return true;
  }

  static bool match(Workspace& ws, const std::vector<StmtPtr>& list,
                    std::size_t ifIdx, Match* m) {
    int l1 = 0;
    const Expr* cond = nullptr;
    if (!isIfGoto(*list[ifIdx], &l1, &cond)) return false;
    if (labelRefCount(ws.proc, l1) != 1) return false;
    // Find the L1-labeled statement later in the same list.
    std::size_t target = 0;
    bool found = false;
    for (std::size_t i = ifIdx + 1; i < list.size(); ++i) {
      if (list[i]->label == l1) {
        target = i;
        found = true;
        break;
      }
    }
    if (!found || target == ifIdx + 1) return false;

    m->ifIdx = ifIdx;
    m->l1 = l1;

    // If-then-else form: the statement before L1 is GOTO L2 and L2 labels
    // a later statement in the same list.
    const Stmt& beforeTarget = *list[target - 1];
    if (beforeTarget.kind == StmtKind::Goto) {
      int l2 = beforeTarget.gotoTarget;
      std::size_t join = 0;
      bool foundJoin = false;
      for (std::size_t i = target + 1; i < list.size(); ++i) {
        if (list[i]->label == l2) {
          join = i;
          foundJoin = true;
          break;
        }
      }
      if (foundJoin && labelRefCount(ws.proc, l2) == 1 &&
          rangeIsClean(ws, list, ifIdx + 1, target - 1) &&
          rangeIsClean(ws, list, target + 1, join)) {
        m->hasElse = true;
        m->thenEnd = target - 1;  // excludes the GOTO L2
        m->elseBegin = target;
        m->elseEnd = join;
        m->l2 = l2;
        return true;
      }
      return false;
    }
    // If-then form: everything between the IF and the label is clean.
    if (!rangeIsClean(ws, list, ifIdx + 1, target)) return false;
    m->hasElse = false;
    m->thenEnd = target;
    return true;
  }

  static bool findAnywhere(Workspace& ws, const Target& t, Match* m,
                           std::vector<StmtPtr>** listOut) {
    std::size_t idx = 0;
    auto* list = containerOf(ws, t.stmt, &idx);
    if (!list) return false;
    *listOut = list;
    return match(ws, *list, idx, m);
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Match m;
    std::vector<StmtPtr>* list = nullptr;
    if (!findAnywhere(ws, t, &m, &list)) {
      return Advice::no("no IF-GOTO conditional pattern at this statement");
    }
    return Advice::ok(true, m.hasElse
                                ? "structures into IF-THEN-ELSE"
                                : "structures into IF-THEN");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Match m;
    std::vector<StmtPtr>* listPtr = nullptr;
    if (!findAnywhere(ws, t, &m, &listPtr)) {
      if (error) *error = "pattern not found";
      return false;
    }
    std::vector<StmtPtr>& list = *listPtr;
    Stmt& ifStmt = *list[m.ifIdx];
    fortran::ExprPtr cond = std::move(ifStmt.arms[0].condition);
    auto notCond = fortran::makeUnary(UnOp::Not, std::move(cond));

    auto block = fortran::makeStmt(StmtKind::If, ifStmt.loc);
    block->label = ifStmt.label;
    fortran::IfArm thenArm;
    thenArm.condition = std::move(notCond);
    for (std::size_t i = m.ifIdx + 1; i < m.thenEnd; ++i) {
      thenArm.body.push_back(std::move(list[i]));
    }
    block->arms.push_back(std::move(thenArm));
    std::size_t eraseEnd;
    if (m.hasElse) {
      fortran::IfArm elseArm;  // null condition
      for (std::size_t i = m.elseBegin; i < m.elseEnd; ++i) {
        StmtPtr s = std::move(list[i]);
        if (i == m.elseBegin) s->label = 0;  // L1 now unreferenced
        elseArm.body.push_back(std::move(s));
      }
      block->arms.push_back(std::move(elseArm));
      eraseEnd = m.elseEnd;
      // The join statement keeps running after the block; its L2 label is
      // now unreferenced.
      if (m.elseEnd < list.size() && list[m.elseEnd]->label == m.l2) {
        list[m.elseEnd]->label = 0;
      }
    } else {
      eraseEnd = m.thenEnd;
      if (m.thenEnd < list.size() && list[m.thenEnd]->label == m.l1) {
        list[m.thenEnd]->label = 0;
      }
    }
    list.erase(list.begin() + static_cast<long>(m.ifIdx),
               list.begin() + static_cast<long>(eraseEnd));
    list.insert(list.begin() + static_cast<long>(m.ifIdx),
                std::move(block));
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addControlFlowTransforms(
    std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<ArithmeticIfRemoval>());
  out.push_back(std::make_unique<ControlFlowStructuring>());
}

}  // namespace ps::transform
