#include "transform/catalog.h"

namespace ps::transform {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Procedure;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtPtr;
using ir::Loop;

namespace {

/// The callee's single outermost loop, or null. Tolerates leading
/// declarations-only shape (procedure body = one DO, possibly followed by
/// RETURN).
Stmt* soleOuterLoop(Procedure& callee) {
  Stmt* loop = nullptr;
  for (auto& s : callee.body) {
    switch (s->kind) {
      case StmtKind::Do:
        if (loop) return nullptr;  // more than one top-level loop
        loop = s.get();
        break;
      case StmtKind::Return:
      case StmtKind::Continue:
        break;
      default:
        return nullptr;  // other executable work outside the loop
    }
  }
  return loop;
}

// ===========================================================================
// Loop Extraction (§5.3): move the callee's outer loop out into the caller,
// so its (many) iterations become the caller's parallel work. The paper's
// spec77/gloop request; "embedding and extraction are not currently
// implemented in PED" — they are here.
// ===========================================================================

class LoopExtraction : public Transformation {
 public:
  std::string name() const override { return "Loop Extraction"; }
  Category category() const override { return Category::Miscellaneous; }

  static Procedure* findCallee(Workspace& ws, const Target& t,
                               Stmt** callSite) {
    Stmt* s = ws.model->stmt(t.stmt);
    if (!s || s->kind != StmtKind::Call) return nullptr;
    *callSite = s;
    return ws.program.findUnit(s->callee);
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Stmt* callSite = nullptr;
    Procedure* callee = findCallee(ws, t, &callSite);
    if (!callee) return Advice::no("target is not a CALL to a known unit");
    Stmt* loop = soleOuterLoop(*callee);
    if (!loop) {
      return Advice::no("callee body is not a single outer loop");
    }
    // The loop bounds must be expressible in the caller: they may only use
    // the callee's formals (translated to actuals) or constants.
    bool expressible = true;
    auto check = [&](const Expr& e) {
      e.forEach([&](const Expr& sub) {
        if (sub.kind == ExprKind::VarRef && !callee->isParam(sub.name)) {
          expressible = false;
        }
        if (sub.kind == ExprKind::ArrayRef || sub.kind == ExprKind::FuncCall) {
          expressible = false;
        }
      });
    };
    check(*loop->doLo);
    check(*loop->doHi);
    if (loop->doStep) check(*loop->doStep);
    if (!expressible) {
      return Advice::no("callee loop bounds not expressible at the call "
                        "site");
    }
    // Every actual must be a plain variable or array name (so the new
    // call's arguments stay well-defined across iterations).
    for (const auto& arg : callSite->args) {
      if (arg->kind != ExprKind::VarRef && arg->kind != ExprKind::ArrayRef &&
          arg->kind != ExprKind::IntConst && arg->kind != ExprKind::RealConst) {
        return Advice::no("call arguments must be simple variables");
      }
    }
    return Advice::ok(true,
                      "exposes the callee's iterations at the call site "
                      "(interchange/fusion across the boundary becomes "
                      "possible)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Stmt* callSite = nullptr;
    Procedure* callee = findCallee(ws, t, &callSite);
    Stmt* loop = soleOuterLoop(*callee);

    // 1. Create the extracted-body procedure <NAME>$B with the loop
    //    variable as an extra formal.
    std::string bodyName = callee->name + "$B";
    if (!ws.program.findUnit(bodyName)) {
      auto bodyProc = std::make_unique<Procedure>();
      bodyProc->kind = fortran::ProcKind::Subroutine;
      bodyProc->name = bodyName;
      bodyProc->params = callee->params;
      bodyProc->params.push_back(loop->doVar);
      for (const auto& d : callee->decls) {
        bodyProc->decls.push_back(d.clone());
      }
      for (const auto& b : loop->body) {
        bodyProc->body.push_back(b->clone());
      }
      ws.program.units.push_back(std::move(bodyProc));
    }

    // 2. Replace the call with: DO iv$ = lo', hi' ; CALL NAME$B(args, iv$).
    //    Bounds are the callee's, with formals replaced by actuals.
    std::map<std::string, const Expr*> formalToActual;
    for (std::size_t i = 0;
         i < callee->params.size() && i < callSite->args.size(); ++i) {
      formalToActual[callee->params[i]] = callSite->args[i].get();
    }
    auto translate = [&](const Expr& e) -> fortran::ExprPtr {
      fortran::ExprPtr out = e.clone();
      // Substitute formal names with actual expressions.
      out->forEachMutable([&](Expr& sub) {
        if (sub.kind == ExprKind::VarRef) {
          auto it = formalToActual.find(sub.name);
          if (it != formalToActual.end()) {
            fortran::ExprPtr repl = it->second->clone();
            sub = std::move(*repl);
          }
        }
      });
      return out;
    };

    std::string iv = freshName(ws.proc, loop->doVar + "$");
    fortran::VarDecl ivDecl;
    ivDecl.name = iv;
    ivDecl.type = fortran::TypeKind::Integer;
    ws.proc.decls.push_back(std::move(ivDecl));

    auto newLoop = fortran::makeStmt(StmtKind::Do, callSite->loc);
    newLoop->label = callSite->label;
    newLoop->doVar = iv;
    newLoop->doLo = translate(*loop->doLo);
    newLoop->doHi = translate(*loop->doHi);
    if (loop->doStep) newLoop->doStep = translate(*loop->doStep);

    auto newCall = fortran::makeStmt(StmtKind::Call, callSite->loc);
    newCall->callee = bodyName;
    for (const auto& arg : callSite->args) {
      newCall->args.push_back(arg->clone());
    }
    newCall->args.push_back(fortran::makeVarRef(iv));
    newLoop->body.push_back(std::move(newCall));

    std::size_t index = 0;
    auto* container = containerOf(ws, t.stmt, &index);
    (*container)[index] = std::move(newLoop);
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Embedding: the converse — move the caller's loop into the callee.
// ===========================================================================

class LoopEmbedding : public Transformation {
 public:
  std::string name() const override { return "Loop Embedding"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    Stmt& s = *loop->stmt;
    // The loop body must be exactly one CALL (plus optional terminator).
    Stmt* call = nullptr;
    for (const auto& b : s.body) {
      if (b->kind == StmtKind::Continue && b->label == s.doEndLabel) {
        continue;
      }
      if (b->kind == StmtKind::Call && !call) {
        call = b.get();
        continue;
      }
      return Advice::no("loop body is not a single CALL");
    }
    if (!call) return Advice::no("loop body is not a single CALL");
    Procedure* callee = ws.program.findUnit(call->callee);
    if (!callee) return Advice::no("callee source not available");
    // The induction variable must be passed so the callee can iterate; we
    // require it to appear as a plain actual.
    bool ivPassed = false;
    for (const auto& argExpr : call->args) {
      if (argExpr->kind == ExprKind::VarRef && argExpr->name == s.doVar) {
        ivPassed = true;
      }
    }
    if (!ivPassed) {
      return Advice::no("induction variable is not an argument");
    }
    // Bounds must be simple variables/constants passable to the callee.
    auto simple = [](const Expr& e) {
      return e.kind == ExprKind::VarRef || e.kind == ExprKind::IntConst;
    };
    if (!simple(*s.doLo) || !simple(*s.doHi) ||
        (s.doStep && !s.doStep->isIntConst(1))) {
      return Advice::no("loop bounds too complex to pass");
    }
    return Advice::ok(true, "amortizes call overhead; enables fusion "
                            "inside the callee");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    Stmt* call = nullptr;
    for (const auto& b : s.body) {
      if (b->kind == StmtKind::Call) call = b.get();
    }
    Procedure* callee = ws.program.findUnit(call->callee);

    // Create <NAME>$E taking (formals..., lo, hi); its body wraps the
    // original callee body in DO iv = lo, hi where iv is the formal bound
    // to the caller's induction variable.
    std::string emName = callee->name + "$E";
    // Which formal receives the induction variable?
    std::string ivFormal;
    for (std::size_t i = 0;
         i < call->args.size() && i < callee->params.size(); ++i) {
      if (call->args[i]->kind == ExprKind::VarRef &&
          call->args[i]->name == s.doVar) {
        ivFormal = callee->params[i];
      }
    }
    if (!ws.program.findUnit(emName)) {
      auto em = std::make_unique<Procedure>();
      em->kind = fortran::ProcKind::Subroutine;
      em->name = emName;
      em->params = callee->params;
      em->params.push_back("LO$");
      em->params.push_back("HI$");
      for (const auto& d : callee->decls) em->decls.push_back(d.clone());
      fortran::VarDecl lod;
      lod.name = "LO$";
      lod.type = fortran::TypeKind::Integer;
      em->decls.push_back(std::move(lod));
      fortran::VarDecl hid;
      hid.name = "HI$";
      hid.type = fortran::TypeKind::Integer;
      em->decls.push_back(std::move(hid));
      auto inner = fortran::makeStmt(StmtKind::Do, s.loc);
      inner->doVar = ivFormal;
      inner->doLo = fortran::makeVarRef("LO$");
      inner->doHi = fortran::makeVarRef("HI$");
      for (const auto& b : callee->body) inner->body.push_back(b->clone());
      em->body.push_back(std::move(inner));
      ws.program.units.push_back(std::move(em));
    }

    // Replace the loop with CALL NAME$E(args..., lo, hi).
    auto newCall = fortran::makeStmt(StmtKind::Call, s.loc);
    newCall->label = s.label;
    newCall->callee = emName;
    for (const auto& argExpr : call->args) {
      newCall->args.push_back(argExpr->clone());
    }
    newCall->args.push_back(s.doLo->clone());
    newCall->args.push_back(s.doHi->clone());

    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);
    (*container)[index] = std::move(newCall);
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addInterproceduralTransforms(
    std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<LoopExtraction>());
  out.push_back(std::make_unique<LoopEmbedding>());
}

}  // namespace ps::transform
