#ifndef PS_TRANSFORM_CATALOG_H
#define PS_TRANSFORM_CATALOG_H

#include <memory>
#include <vector>

#include "transform/transform.h"

namespace ps::transform {

// Each catalog section registers its transformations (internal linkage
// between registry.cpp and the per-category implementation files).
void addReorderingTransforms(
    std::vector<std::unique_ptr<Transformation>>& out);
void addDependenceBreakingTransforms(
    std::vector<std::unique_ptr<Transformation>>& out);
void addMemoryTransforms(std::vector<std::unique_ptr<Transformation>>& out);
void addMiscTransforms(std::vector<std::unique_ptr<Transformation>>& out);
void addControlFlowTransforms(
    std::vector<std::unique_ptr<Transformation>>& out);
void addReductionTransforms(
    std::vector<std::unique_ptr<Transformation>>& out);
void addInterproceduralTransforms(
    std::vector<std::unique_ptr<Transformation>>& out);

}  // namespace ps::transform

#endif  // PS_TRANSFORM_CATALOG_H
