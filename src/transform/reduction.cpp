#include "transform/catalog.h"

namespace ps::transform {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtPtr;
using ir::Loop;

namespace {

/// A recognized sum reduction: S = S + <term> (or S = <term> + S, or
/// S = S - <term>), where S is a scalar not otherwise assigned in the loop.
struct ReductionMatch {
  Stmt* update = nullptr;
  std::string accumulator;
  const Expr* term = nullptr;  // points into the update's RHS
  bool subtract = false;
};

bool matchSumUpdate(Stmt& s, ReductionMatch* m) {
  if (s.kind != StmtKind::Assign || s.lhs->kind != ExprKind::VarRef) {
    return false;
  }
  const std::string& acc = s.lhs->name;
  Expr& rhs = *s.rhs;
  if (rhs.kind != ExprKind::Binary) return false;
  if (rhs.binOp != BinOp::Add && rhs.binOp != BinOp::Sub) return false;
  if (rhs.lhs->kind == ExprKind::VarRef && rhs.lhs->name == acc) {
    m->update = &s;
    m->accumulator = acc;
    m->term = rhs.rhs.get();
    m->subtract = (rhs.binOp == BinOp::Sub);
    return true;
  }
  if (rhs.binOp == BinOp::Add && rhs.rhs->kind == ExprKind::VarRef &&
      rhs.rhs->name == acc) {
    m->update = &s;
    m->accumulator = acc;
    m->term = rhs.lhs.get();
    m->subtract = false;
    return true;
  }
  return false;
}

bool findReduction(Loop* loop, ReductionMatch* m) {
  // Exactly one statement in the loop body (possibly with a terminating
  // CONTINUE) updating the accumulator, and the accumulator appears nowhere
  // else in the loop.
  Stmt& ls = *loop->stmt;
  ReductionMatch found;
  int updates = 0;
  for (const auto& b : ls.body) {
    Stmt* raw = b.get();
    ReductionMatch candidate;
    if (matchSumUpdate(*raw, &candidate)) {
      ++updates;
      found = candidate;
    }
  }
  if (updates != 1) return false;
  // The accumulator must not occur in any other statement of the loop, nor
  // in the reduction term itself.
  bool clean = true;
  for (const Stmt* s : loop->bodyStmts) {
    if (s == found.update) continue;
    s->forEachExpr([&](const Expr& e) {
      if (e.kind == ExprKind::VarRef && e.name == found.accumulator) {
        clean = false;
      }
    });
  }
  found.term->forEach([&](const Expr& e) {
    if (e.kind == ExprKind::VarRef && e.name == found.accumulator) {
      clean = false;
    }
  });
  if (!clean) return false;
  *m = found;
  return true;
}

/// Reduction Recognition — "five of the programs contain sum reductions
/// which go unrecognized by PED" (§4.3). Recognizes S = S + term and
/// restructures the accumulation into a per-iteration partial array plus a
/// separate sum loop, making the main loop parallelizable. (Floating-point
/// reassociation caveat documented in DESIGN.md.)
class ReductionRecognition : public Transformation {
 public:
  std::string name() const override { return "Reduction Recognition"; }
  Category category() const override {
    return Category::DependenceBreaking;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    const Stmt& s = *loop->stmt;
    if (s.doStep && !s.doStep->isIntConst(1)) {
      return Advice::no("only unit-step loops");
    }
    ReductionMatch m;
    if (!findReduction(loop, &m)) {
      return Advice::no("no sum-reduction update in the loop body");
    }
    // Check the rest of the loop is otherwise parallel: reductions are
    // profitable when they are the only impediment.
    bool onlyImpediment = true;
    for (const auto* d : ws.graph->parallelismInhibitors(*loop)) {
      if (d->variable != m.accumulator) onlyImpediment = false;
    }
    return Advice::ok(onlyImpediment,
                      "accumulation of " + m.accumulator +
                          " is reorderable (associative +)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    ReductionMatch m;
    findReduction(loop, &m);

    // Partial array P(lo:hi); update becomes P(iv) = [-]term; a sum loop
    // follows the main loop.
    std::string part = freshName(ws.proc, m.accumulator + "$P");
    fortran::VarDecl decl;
    decl.name = part;
    const fortran::VarDecl* orig = ws.proc.findDecl(m.accumulator);
    decl.type = orig ? orig->type : fortran::TypeKind::Real;
    fortran::Dimension dim;
    dim.lower = s.doLo->clone();
    dim.upper = s.doHi->clone();
    decl.dims.push_back(std::move(dim));
    ws.proc.decls.push_back(std::move(decl));

    auto partRef = [&]() {
      std::vector<fortran::ExprPtr> subs;
      subs.push_back(fortran::makeVarRef(s.doVar));
      return fortran::makeArrayRef(part, std::move(subs));
    };

    // Rewrite the update statement.
    fortran::ExprPtr term = m.term->clone();
    if (m.subtract) {
      term = fortran::makeUnary(fortran::UnOp::Neg, std::move(term));
    }
    m.update->lhs = partRef();
    m.update->rhs = std::move(term);

    // Sum loop after the main loop:  DO iv = lo, hi ; ACC = ACC + P(iv).
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);
    auto sumLoop = fortran::makeStmt(StmtKind::Do, s.loc);
    sumLoop->doVar = s.doVar;
    sumLoop->doLo = s.doLo->clone();
    sumLoop->doHi = s.doHi->clone();
    auto add = fortran::makeStmt(StmtKind::Assign, s.loc);
    add->lhs = fortran::makeVarRef(m.accumulator);
    add->rhs = fortran::makeBinary(
        BinOp::Add, fortran::makeVarRef(m.accumulator), partRef());
    sumLoop->body.push_back(std::move(add));
    container->insert(container->begin() + static_cast<long>(index + 1),
                      std::move(sumLoop));
    ws.reanalyze();
    return true;
  }
};

}  // namespace

bool findSumReduction(const ir::Loop& loop, SumReduction* out) {
  // findReduction takes a mutable loop because apply() reuses the match to
  // rewrite; the search itself never mutates.
  ReductionMatch m;
  if (!findReduction(const_cast<Loop*>(&loop), &m)) return false;
  out->update = m.update->id;
  out->accumulator = m.accumulator;
  out->subtract = m.subtract;
  return true;
}

void addReductionTransforms(
    std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<ReductionRecognition>());
}

}  // namespace ps::transform
