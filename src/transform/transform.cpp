#include "transform/transform.h"

namespace ps::transform {

const char* categoryName(Category c) {
  switch (c) {
    case Category::Reordering: return "Reordering";
    case Category::DependenceBreaking: return "Dependence Breaking";
    case Category::MemoryOptimizing: return "Memory Optimizing";
    case Category::Miscellaneous: return "Miscellaneous";
  }
  return "?";
}

Workspace::Workspace(fortran::Program& programIn, fortran::Procedure& procIn,
                     dep::AnalysisContext actxIn)
    : program(programIn), proc(procIn), actx(std::move(actxIn)) {
  reanalyze();
}

Workspace::Workspace(fortran::Program& programIn, fortran::Procedure& procIn,
                     dep::AnalysisContext actxIn,
                     std::unique_ptr<ir::ProcedureModel> modelIn,
                     std::unique_ptr<dep::DependenceGraph> graphIn)
    : program(programIn),
      proc(procIn),
      actx(std::move(actxIn)),
      model(std::move(modelIn)),
      graph(std::move(graphIn)) {
  // Count as one (re)analysis so restored workspaces report like freshly
  // built ones without inflating the session's incremental-reanalysis tally.
  reanalyses = 1;
}

void Workspace::reanalyze() {
  // The parallel driver assigns ids once before fanning out per-procedure
  // tasks (the Program is shared across them); everywhere else the
  // assignment is idempotent and cheap.
  if (!actx.idsPreassigned) program.assignIds();
  model = std::make_unique<ir::ProcedureModel>(proc);
  if (actx.incrementalUpdates && graph) {
    // Incremental path: splice the previous graph's edges for every
    // reference pair whose test inputs are unchanged; only the edited
    // nest's pairs are re-tested.
    graph = std::make_unique<dep::DependenceGraph>(
        dep::DependenceGraph::update(*model, actx, *graph));
  } else {
    graph = std::make_unique<dep::DependenceGraph>(
        dep::DependenceGraph::build(*model, actx));
  }
  ++reanalyses;
}

namespace {

/// Replace VarRef(name) nodes without descending into the replacement (a
/// replacement like I -> I + 1 must not be rewritten again).
void substExpr(fortran::ExprPtr& e, const std::string& name,
               const fortran::Expr& replacement) {
  if (!e) return;
  if (e->kind == fortran::ExprKind::VarRef && e->name == name) {
    e = replacement.clone();
    return;
  }
  for (auto& a : e->args) substExpr(a, name, replacement);
  substExpr(e->lhs, name, replacement);
  substExpr(e->rhs, name, replacement);
}

}  // namespace

void substituteVar(fortran::Stmt& stmt, const std::string& name,
                   const fortran::Expr& replacement) {
  stmt.forEachMutable([&](fortran::Stmt& s) {
    substExpr(s.lhs, name, replacement);
    substExpr(s.rhs, name, replacement);
    substExpr(s.doLo, name, replacement);
    substExpr(s.doHi, name, replacement);
    substExpr(s.doStep, name, replacement);
    for (auto& arm : s.arms) substExpr(arm.condition, name, replacement);
    substExpr(s.condExpr, name, replacement);
    for (auto& a : s.args) substExpr(a, name, replacement);
    if (s.kind == fortran::StmtKind::Do && s.doVar == name &&
        replacement.kind == fortran::ExprKind::VarRef) {
      s.doVar = replacement.name;
    }
  });
}

std::vector<fortran::StmtPtr>* containerOf(Workspace& ws, fortran::StmtId id,
                                           std::size_t* index) {
  return ws.model->containerOf(id, index);
}

std::string freshName(const fortran::Procedure& proc,
                      const std::string& base) {
  for (int i = 0; i < 1000; ++i) {
    std::string candidate = base + (i == 0 ? "X" : std::to_string(i));
    if (!proc.findDecl(candidate) && !proc.isParam(candidate)) {
      return candidate;
    }
  }
  return base + "XX";
}

Trial::Trial(const Workspace& ws) {
  auto clone = std::make_unique<fortran::Procedure>();
  clone->kind = ws.proc.kind;
  clone->name = ws.proc.name;
  clone->params = ws.proc.params;
  clone->returnType = ws.proc.returnType;
  for (const auto& d : ws.proc.decls) clone->decls.push_back(d.clone());
  for (const auto& s : ws.proc.body) clone->body.push_back(s->clone());
  fortran::Procedure* raw = clone.get();
  program_.units.push_back(std::move(clone));
  program_.assignIds();
  // Map ids by parallel pre-order traversal (clone preserves shape).
  std::vector<fortran::StmtId> originalIds, cloneIds;
  ws.proc.forEachStmt(
      [&](const fortran::Stmt& s) { originalIds.push_back(s.id); });
  raw->forEachStmt(
      [&](const fortran::Stmt& s) { cloneIds.push_back(s.id); });
  for (std::size_t i = 0; i < originalIds.size() && i < cloneIds.size();
       ++i) {
    idMap_[originalIds[i]] = cloneIds[i];
  }
  // The sandbox sees the same user context but no interprocedural oracle
  // (it owns only this one unit).
  dep::AnalysisContext actx = ws.actx;
  actx.oracle = nullptr;
  // Translate classification overrides to sandbox ids.
  actx.classificationOverrides.clear();
  for (const auto& [loopId, overrides] : ws.actx.classificationOverrides) {
    auto it = idMap_.find(loopId);
    if (it != idMap_.end()) {
      actx.classificationOverrides[it->second] = overrides;
    }
  }
  ws_ = std::make_unique<Workspace>(program_, *raw, std::move(actx));
}

fortran::StmtId Trial::mapped(fortran::StmtId original) const {
  auto it = idMap_.find(original);
  return it == idMap_.end() ? fortran::kInvalidStmt : it->second;
}

}  // namespace ps::transform
