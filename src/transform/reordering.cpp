#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "transform/catalog.h"

namespace ps::transform {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtId;
using fortran::StmtKind;
using fortran::StmtPtr;
using ir::Loop;

namespace {

/// Map every statement inside `loop` to its top-level ancestor in the
/// loop's immediate body.
std::map<StmtId, const Stmt*> topLevelAncestors(const Stmt& loopStmt) {
  std::map<StmtId, const Stmt*> anc;
  for (const auto& top : loopStmt.body) {
    top->forEach([&](const Stmt& s) { anc[s.id] = top.get(); });
  }
  return anc;
}

bool bodyHasUnstructuredFlow(const Stmt& loopStmt) {
  bool found = false;
  for (const auto& s : loopStmt.body) {
    s->forEach([&](const Stmt& inner) {
      if (inner.kind == StmtKind::Goto ||
          inner.kind == StmtKind::ArithmeticIf ||
          inner.kind == StmtKind::Return || inner.kind == StmtKind::Stop) {
        found = true;
      }
    });
  }
  return found;
}

/// Drop a trailing labeled CONTINUE terminator and convert to ENDDO form
/// (needed before restructuring labeled loops).
void normalizeLoopForm(Stmt& loopStmt) {
  if (loopStmt.doEndLabel == 0) return;
  if (!loopStmt.body.empty() &&
      loopStmt.body.back()->kind == StmtKind::Continue &&
      loopStmt.body.back()->label == loopStmt.doEndLabel) {
    loopStmt.body.pop_back();
  }
  loopStmt.doEndLabel = 0;
}

/// Clone a DO header (bounds, var, step) onto a fresh statement.
StmtPtr cloneHeader(const Stmt& loopStmt) {
  auto fresh = fortran::makeStmt(StmtKind::Do, loopStmt.loc);
  fresh->doVar = loopStmt.doVar;
  fresh->doLo = loopStmt.doLo->clone();
  fresh->doHi = loopStmt.doHi->clone();
  if (loopStmt.doStep) fresh->doStep = loopStmt.doStep->clone();
  fresh->isParallel = loopStmt.isParallel;
  return fresh;
}

/// The single nested DO of a perfect 2-nest, or null. Tolerates a trailing
/// shared-label CONTINUE.
Stmt* innerOfPerfectNest(Stmt& outer) {
  if (outer.body.empty()) return nullptr;
  if (outer.body[0]->kind != StmtKind::Do) return nullptr;
  if (outer.body.size() == 1) return outer.body[0].get();
  if (outer.body.size() == 2 &&
      outer.body[1]->kind == StmtKind::Continue) {
    return outer.body[0].get();
  }
  return nullptr;
}

bool usesVariable(const Expr& e, const std::string& name) {
  bool found = false;
  e.forEach([&](const Expr& sub) {
    if (sub.kind == ExprKind::VarRef && sub.name == name) found = true;
  });
  return found;
}

// ===========================================================================
// Loop Distribution
// ===========================================================================

class LoopDistribution : public Transformation {
 public:
  std::string name() const override { return "Loop Distribution"; }
  Category category() const override { return Category::Reordering; }

  /// Compute the partition of the loop's immediate body into strongly
  /// connected groups of the dependence graph, in a topological order
  /// compatible with the original statement order. Empty result = not
  /// distributable.
  std::vector<std::vector<const Stmt*>> partition(Workspace& ws,
                                                  const Loop& loop) const {
    const Stmt& loopStmt = *loop.stmt;
    auto anc = topLevelAncestors(loopStmt);
    std::vector<const Stmt*> tops;
    for (const auto& s : loopStmt.body) {
      if (s->kind == StmtKind::Continue &&
          s->label == loopStmt.doEndLabel) {
        continue;  // the terminator travels with the new loops implicitly
      }
      tops.push_back(s.get());
    }
    if (tops.size() < 2) return {};

    // Edges between top-level groups, from loop-carried and independent
    // dependences inside the loop.
    std::map<const Stmt*, std::set<const Stmt*>> succ;
    for (const auto* d : ws.graph->forLoop(loop)) {
      if (!d->active() || d->type == dep::DepType::Input) continue;
      auto is = anc.find(d->srcStmt);
      auto it = anc.find(d->dstStmt);
      if (is == anc.end() || it == anc.end()) continue;
      if (is->second == it->second) continue;
      succ[is->second].insert(it->second);
    }

    // Tarjan SCC over `tops`.
    std::map<const Stmt*, int> index, low, comp;
    std::vector<const Stmt*> stack;
    std::set<const Stmt*> onStack;
    int counter = 0, comps = 0;
    std::function<void(const Stmt*)> strongconnect = [&](const Stmt* v) {
      index[v] = low[v] = counter++;
      stack.push_back(v);
      onStack.insert(v);
      for (const Stmt* w : succ[v]) {
        if (!index.count(w)) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (onStack.count(w)) {
          low[v] = std::min(low[v], index[w]);
        }
      }
      if (low[v] == index[v]) {
        int c = comps++;
        while (true) {
          const Stmt* w = stack.back();
          stack.pop_back();
          onStack.erase(w);
          comp[w] = c;
          if (w == v) break;
        }
      }
    };
    for (const Stmt* s : tops) {
      if (!index.count(s)) strongconnect(s);
    }
    if (comps < 2) return {};

    // Group statements by component, emitting groups in an order that
    // respects both the dependence edges and (for determinism) the original
    // statement order. Kahn's algorithm over components.
    std::map<int, std::set<int>> compSucc;
    std::map<int, int> indeg;
    for (const Stmt* s : tops) indeg[comp[s]];
    for (const auto& [from, tos] : succ) {
      for (const Stmt* to : tos) {
        int a = comp[from], b = comp[to];
        if (a != b && compSucc[a].insert(b).second) ++indeg[b];
      }
    }
    // Original order of first appearance per component.
    std::map<int, std::size_t> firstPos;
    for (std::size_t i = 0; i < tops.size(); ++i) {
      if (!firstPos.count(comp[tops[i]])) firstPos[comp[tops[i]]] = i;
    }
    std::vector<int> order;
    std::set<int> emitted;
    while (static_cast<int>(order.size()) < comps) {
      int best = -1;
      for (const auto& [c, d] : indeg) {
        if (emitted.count(c) || d != 0) continue;
        if (best < 0 || firstPos[c] < firstPos[best]) best = c;
      }
      if (best < 0) return {};  // cycle between components: impossible
      order.push_back(best);
      emitted.insert(best);
      for (int nxt : compSucc[best]) --indeg[nxt];
    }

    std::vector<std::vector<const Stmt*>> groups;
    for (int c : order) {
      std::vector<const Stmt*> g;
      for (const Stmt* s : tops) {
        if (comp[s] == c) g.push_back(s);
      }
      groups.push_back(std::move(g));
    }
    return groups;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (bodyHasUnstructuredFlow(*loop->stmt)) {
      return Advice::unsafe("loop body has unstructured control flow");
    }
    auto groups = partition(ws, *loop);
    if (groups.size() < 2) {
      return Advice::no("body forms a single dependence region");
    }
    // Profitable when some group would run parallel while the whole loop
    // does not.
    bool anySerial = !ws.graph->parallelizable(*loop);
    return Advice::ok(anySerial,
                      std::to_string(groups.size()) + " distributed loops");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.applicable || !a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    auto groups = partition(ws, *loop);
    Stmt& loopStmt = *loop->stmt;
    normalizeLoopForm(loopStmt);

    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);
    if (!container) {
      if (error) *error = "loop container not found";
      return false;
    }

    // Move each group's statements into a fresh loop.
    std::vector<StmtPtr> newLoops;
    for (const auto& group : groups) {
      StmtPtr fresh = cloneHeader(loopStmt);
      std::set<const Stmt*> wanted(group.begin(), group.end());
      for (auto& s : loopStmt.body) {
        if (s && wanted.count(s.get())) fresh->body.push_back(std::move(s));
      }
      newLoops.push_back(std::move(fresh));
    }
    container->erase(container->begin() + static_cast<long>(index));
    for (std::size_t g = 0; g < newLoops.size(); ++g) {
      container->insert(container->begin() + static_cast<long>(index + g),
                        std::move(newLoops[g]));
    }
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Interchange
// ===========================================================================

class LoopInterchange : public Transformation {
 public:
  std::string name() const override { return "Loop Interchange"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* outer = ws.loopOf(t.loop);
    if (!outer) return Advice::no("target is not a loop");
    Stmt* inner = innerOfPerfectNest(*outer->stmt);
    if (!inner) return Advice::no("loop nest is not perfectly nested");
    // Rectangularity: bounds must not reference the other loop's variable.
    auto dependsOn = [&](const Stmt& s, const std::string& v) {
      return usesVariable(*s.doLo, v) || usesVariable(*s.doHi, v) ||
             (s.doStep && usesVariable(*s.doStep, v));
    };
    if (dependsOn(*inner, outer->stmt->doVar) ||
        dependsOn(*outer->stmt, inner->doVar)) {
      return Advice::unsafe("triangular bounds");
    }
    // Direction-vector legality: no dependence with ('<','>') at the two
    // levels (an unknown inner direction is conservatively unsafe).
    int outerLevel = outer->level;
    for (const auto& d : ws.graph->all()) {
      if (!d.active() || d.type == dep::DepType::Input ||
          d.type == dep::DepType::Control) {
        continue;
      }
      if (d.carrierLoop != outer->stmt->id) continue;
      std::size_t innerIdx = static_cast<std::size_t>(outerLevel);
      if (d.vector.dirs.size() <= innerIdx) continue;
      dep::Direction id = d.vector.dirs[innerIdx];
      if (id == dep::Direction::Gt || id == dep::Direction::Ge) {
        return Advice::unsafe("dependence with (<,>) direction vector");
      }
      if (id == dep::Direction::Star) {
        return Advice::unsafe(
            "dependence with unknown inner direction (conservative)");
      }
    }
    // Profitable when the inner loop is parallel and the outer is not:
    // interchange moves parallelism outward for granularity.
    Loop* innerLoop = ws.loopOf(inner->id);
    bool prof = innerLoop && ws.graph->parallelizable(*innerLoop) &&
                !ws.graph->parallelizable(*outer);
    return Advice::ok(prof, prof ? "moves parallel loop outward" : "");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* outer = ws.loopOf(t.loop);
    Stmt* inner = innerOfPerfectNest(*outer->stmt);
    Stmt& o = *outer->stmt;
    std::swap(o.doVar, inner->doVar);
    std::swap(o.doLo, inner->doLo);
    std::swap(o.doHi, inner->doHi);
    std::swap(o.doStep, inner->doStep);
    std::swap(o.isParallel, inner->isParallel);
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Fusion
// ===========================================================================

class LoopFusion : public Transformation {
 public:
  std::string name() const override { return "Loop Fusion"; }
  Category category() const override { return Category::Reordering; }

  /// Check adjacency and header compatibility; fills positions.
  static bool compatible(Workspace& ws, const Target& t, std::size_t* idx1,
                         std::vector<StmtPtr>** container,
                         std::string* why) {
    Loop* l1 = ws.loopOf(t.loop);
    Loop* l2 = ws.loopOf(t.secondLoop);
    if (!l1 || !l2) {
      *why = "targets are not loops";
      return false;
    }
    std::size_t i1 = 0, i2 = 0;
    auto* c1 = containerOf(ws, t.loop, &i1);
    auto* c2 = containerOf(ws, t.secondLoop, &i2);
    if (!c1 || c1 != c2 || i2 != i1 + 1) {
      *why = "loops are not adjacent";
      return false;
    }
    const Stmt& s1 = *l1->stmt;
    const Stmt& s2 = *l2->stmt;
    auto sameExpr = [](const fortran::ExprPtr& a, const fortran::ExprPtr& b) {
      if (!a && !b) return true;
      if (!a || !b) return false;
      return a->structurallyEquals(*b);
    };
    if (!sameExpr(s1.doLo, s2.doLo) || !sameExpr(s1.doHi, s2.doHi) ||
        !sameExpr(s1.doStep, s2.doStep)) {
      *why = "loop headers differ";
      return false;
    }
    *idx1 = i1;
    *container = c1;
    return true;
  }

  /// Perform the mechanics on whatever workspace is given (sandbox or
  /// real): returns the fused loop's statement.
  static Stmt* fuse(Workspace& ws, const Target& t) {
    std::size_t idx1 = 0;
    std::vector<StmtPtr>* container = nullptr;
    std::string why;
    if (!compatible(ws, t, &idx1, &container, &why)) return nullptr;
    Stmt& s1 = *(*container)[idx1];
    Stmt& s2 = *(*container)[idx1 + 1];
    normalizeLoopForm(s1);
    normalizeLoopForm(s2);
    // Rename the second loop's induction variable if it differs.
    if (s1.doVar != s2.doVar) {
      auto repl = fortran::makeVarRef(s1.doVar);
      for (auto& b : s2.body) substituteVar(*b, s2.doVar, *repl);
    }
    for (auto& b : s2.body) s1.body.push_back(std::move(b));
    container->erase(container->begin() + static_cast<long>(idx1 + 1));
    ws.reanalyze();
    return ws.model->stmt(t.loop);
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    std::size_t idx = 0;
    std::vector<StmtPtr>* container = nullptr;
    std::string why;
    if (!compatible(ws, t, &idx, &container, &why)) return Advice::no(why);

    // Trial-fuse in a sandbox; fusion is illegal when a statement that came
    // from the second loop becomes the *source* of a dependence carried by
    // the fused loop into a statement of the first loop (a forward
    // loop-independent dependence turned backward-carried).
    Trial trial(ws);
    Target tt = t;
    tt.loop = trial.mapped(t.loop);
    tt.secondLoop = trial.mapped(t.secondLoop);
    Loop* l2 = ws.loopOf(t.secondLoop);
    std::set<StmtId> fromSecond;
    for (const Stmt* s : l2->bodyStmts) {
      fromSecond.insert(trial.mapped(s->id));
    }
    Workspace& sandbox = trial.workspace();
    Stmt* fused = fuse(sandbox, tt);
    if (!fused) return Advice::no("fusion mechanics failed");
    Loop* fusedLoop = sandbox.loopOf(fused->id);
    bool hadParallel1 = ws.graph->parallelizable(*ws.loopOf(t.loop));
    bool hadParallel2 = ws.graph->parallelizable(*ws.loopOf(t.secondLoop));
    for (const auto& d : sandbox.graph->all()) {
      if (!d.active() || !d.loopCarried()) continue;
      if (d.carrierLoop != fused->id) continue;
      if (fromSecond.count(d.srcStmt) && !fromSecond.count(d.dstStmt)) {
        return Advice::unsafe(
            "fusing would reverse a dependence (backward-carried)");
      }
    }
    bool stillParallel =
        fusedLoop && sandbox.graph->parallelizable(*fusedLoop);
    bool prof = hadParallel1 && hadParallel2 && stillParallel;
    return Advice::ok(prof, prof ? "fused loop stays parallel (granularity)"
                                 : "fusion legal");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    return fuse(ws, t) != nullptr;
  }
};

// ===========================================================================
// Loop Reversal
// ===========================================================================

class LoopReversal : public Transformation {
 public:
  std::string name() const override { return "Loop Reversal"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    for (const auto* d : ws.graph->parallelismInhibitors(*loop)) {
      (void)d;
      return Advice::unsafe("loop carries a dependence; reversal flips it");
    }
    return Advice::ok(false, "legal (no carried dependences)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Stmt& s = *ws.loopOf(t.loop)->stmt;
    std::swap(s.doLo, s.doHi);
    fortran::ExprPtr step =
        s.doStep ? std::move(s.doStep) : fortran::makeIntConst(1);
    s.doStep = fortran::makeUnary(fortran::UnOp::Neg, std::move(step));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Statement Interchange
// ===========================================================================

class StatementInterchange : public Transformation {
 public:
  std::string name() const override { return "Statement Interchange"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    std::size_t i1 = 0, i2 = 0;
    auto* c1 = containerOf(ws, t.stmt, &i1);
    auto* c2 = containerOf(ws, t.secondLoop != fortran::kInvalidStmt
                                   ? t.secondLoop
                                   : t.stmt,
                           &i2);
    (void)c2;
    if (!c1) return Advice::no("statement not found");
    if (i1 + 1 >= c1->size()) return Advice::no("no following statement");
    StmtId a = (*c1)[i1]->id;
    StmtId b = (*c1)[i1 + 1]->id;
    for (const auto& d : ws.graph->all()) {
      if (!d.active() || d.type == dep::DepType::Input) continue;
      bool touches = (d.srcStmt == a && d.dstStmt == b) ||
                     (d.srcStmt == b && d.dstStmt == a);
      if (touches && !d.loopCarried()) {
        return Advice::unsafe("dependence between the two statements");
      }
    }
    return Advice::ok(false, "statements are independent");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    std::size_t i = 0;
    auto* c = containerOf(ws, t.stmt, &i);
    std::swap((*c)[i], (*c)[i + 1]);
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Peeling
// ===========================================================================

class LoopPeeling : public Transformation {
 public:
  std::string name() const override { return "Loop Peeling"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    const Stmt& s = *loop->stmt;
    if (s.doStep && !s.doStep->isIntConst(1)) {
      return Advice::no("only unit-step loops are peeled");
    }
    if (bodyHasUnstructuredFlow(s)) {
      return Advice::unsafe("loop body has unstructured control flow");
    }
    return Advice::ok(false, "peels the first iteration under a guard");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    normalizeLoopForm(s);
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);

    // Guard: IF (lo .LE. hi) THEN  iv = lo ; <body copy> ENDIF
    auto guard = fortran::makeStmt(StmtKind::If, s.loc);
    fortran::IfArm arm;
    arm.condition = fortran::makeBinary(fortran::BinOp::Le, s.doLo->clone(),
                                        s.doHi->clone());
    auto setIv = fortran::makeStmt(StmtKind::Assign, s.loc);
    setIv->lhs = fortran::makeVarRef(s.doVar);
    setIv->rhs = s.doLo->clone();
    arm.body.push_back(std::move(setIv));
    for (const auto& b : s.body) arm.body.push_back(b->clone());
    guard->arms.push_back(std::move(arm));

    // Loop now starts at lo + 1.
    s.doLo = fortran::makeBinary(fortran::BinOp::Add, std::move(s.doLo),
                                 fortran::makeIntConst(1));
    container->insert(container->begin() + static_cast<long>(index),
                      std::move(guard));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Splitting (index-set splitting)
// ===========================================================================

class LoopSplitting : public Transformation {
 public:
  std::string name() const override { return "Loop Splitting"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (loop->stmt->doStep && !loop->stmt->doStep->isIntConst(1)) {
      return Advice::no("only unit-step loops are split");
    }
    return Advice::ok(false, "always legal");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    normalizeLoopForm(s);
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);

    // Second half: DO iv = MAX(p + 1, lo), hi.
    StmtPtr second = cloneHeader(s);
    for (const auto& b : s.body) second->body.push_back(b->clone());
    std::vector<fortran::ExprPtr> maxArgs;
    maxArgs.push_back(fortran::makeBinary(
        fortran::BinOp::Add, fortran::makeIntConst(t.splitPoint),
        fortran::makeIntConst(1)));
    maxArgs.push_back(s.doLo->clone());
    second->doLo = fortran::makeFuncCall("MAX0", std::move(maxArgs));
    // First half: hi = MIN(p, hi).
    std::vector<fortran::ExprPtr> minArgs;
    minArgs.push_back(fortran::makeIntConst(t.splitPoint));
    minArgs.push_back(std::move(s.doHi));
    s.doHi = fortran::makeFuncCall("MIN0", std::move(minArgs));
    container->insert(container->begin() + static_cast<long>(index + 1),
                      std::move(second));
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Skewing
// ===========================================================================

class LoopSkewing : public Transformation {
 public:
  std::string name() const override { return "Loop Skewing"; }
  Category category() const override { return Category::Reordering; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* outer = ws.loopOf(t.loop);
    if (!outer) return Advice::no("target is not a loop");
    Stmt* inner = innerOfPerfectNest(*outer->stmt);
    if (!inner) return Advice::no("loop nest is not perfectly nested");
    if ((inner->doStep && !inner->doStep->isIntConst(1)) ||
        (outer->stmt->doStep && !outer->stmt->doStep->isIntConst(1))) {
      return Advice::no("only unit-step nests are skewed");
    }
    return Advice::ok(false,
                      "re-indexing; enables interchange on wavefronts");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* outer = ws.loopOf(t.loop);
    Stmt* inner = innerOfPerfectNest(*outer->stmt);
    long long f = t.factor;
    const std::string& ov = outer->stmt->doVar;
    // inner bounds += f*outer.
    auto skewTerm = [&]() {
      return fortran::makeBinary(fortran::BinOp::Mul,
                                 fortran::makeIntConst(f),
                                 fortran::makeVarRef(ov));
    };
    inner->doLo = fortran::makeBinary(fortran::BinOp::Add,
                                      std::move(inner->doLo), skewTerm());
    inner->doHi = fortran::makeBinary(fortran::BinOp::Add,
                                      std::move(inner->doHi), skewTerm());
    // Body: innerIV -> innerIV - f*outerIV.
    auto replacement = fortran::makeBinary(
        fortran::BinOp::Sub, fortran::makeVarRef(inner->doVar), skewTerm());
    for (auto& b : inner->body) {
      substituteVar(*b, inner->doVar, *replacement);
    }
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Alignment
// ===========================================================================

class LoopAlignment : public Transformation {
 public:
  std::string name() const override { return "Loop Alignment"; }
  Category category() const override { return Category::Reordering; }

  struct Pattern {
    const Stmt* s1 = nullptr;
    const Stmt* s2 = nullptr;
    long long distance = 0;
  };

  /// Recognize: body of exactly two statements with all carried deps being
  /// S1 -> S2 true deps of one constant distance.
  static bool match(Workspace& ws, Loop* loop, Pattern* p) {
    Stmt& ls = *loop->stmt;
    std::vector<const Stmt*> tops;
    for (const auto& b : ls.body) {
      if (b->kind == StmtKind::Continue && b->label == ls.doEndLabel) {
        continue;
      }
      tops.push_back(b.get());
    }
    if (tops.size() != 2) return false;
    if (tops[0]->kind != StmtKind::Assign ||
        tops[1]->kind != StmtKind::Assign) {
      return false;
    }
    long long dist = 0;
    for (const auto* d : ws.graph->parallelismInhibitors(*loop)) {
      if (d->type != dep::DepType::True) return false;
      if (d->srcStmt != tops[0]->id || d->dstStmt != tops[1]->id) {
        return false;
      }
      std::size_t lvl = static_cast<std::size_t>(d->level - 1);
      if (d->vector.dists.size() <= lvl || !d->vector.dists[lvl]) {
        return false;
      }
      long long dd = *d->vector.dists[lvl];
      if (dist != 0 && dd != dist) return false;
      dist = dd;
    }
    if (dist <= 0) return false;
    p->s1 = tops[0];
    p->s2 = tops[1];
    p->distance = dist;
    return true;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (loop->stmt->doStep && !loop->stmt->doStep->isIntConst(1)) {
      return Advice::no("only unit-step loops are aligned");
    }
    Pattern p;
    if (!match(ws, loop, &p)) {
      return Advice::no(
          "body is not a two-statement single-distance recurrence");
    }
    return Advice::ok(true, "converts the carried dependence to "
                            "loop-independent");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Pattern p;
    match(ws, loop, &p);
    Stmt& s = *loop->stmt;
    normalizeLoopForm(s);
    const std::string iv = s.doVar;
    long long d = p.distance;

    // New loop J = lo - d .. hi with guarded, shifted statements:
    //   IF (J .GE. lo)     S1[iv := J]
    //   IF (J .LE. hi - d) S2[iv := J + d]
    fortran::ExprPtr lo = s.doLo->clone();
    fortran::ExprPtr hi = s.doHi->clone();

    StmtPtr g1 = fortran::makeStmt(StmtKind::If, s.loc);
    g1->isLogicalIf = true;
    {
      fortran::IfArm arm;
      arm.condition = fortran::makeBinary(
          fortran::BinOp::Ge, fortran::makeVarRef(iv), lo->clone());
      arm.body.push_back(p.s1->clone());
      g1->arms.push_back(std::move(arm));
    }
    StmtPtr g2 = fortran::makeStmt(StmtKind::If, s.loc);
    g2->isLogicalIf = true;
    {
      fortran::IfArm arm;
      arm.condition = fortran::makeBinary(
          fortran::BinOp::Le, fortran::makeVarRef(iv),
          fortran::makeBinary(fortran::BinOp::Sub, hi->clone(),
                              fortran::makeIntConst(d)));
      StmtPtr shifted = p.s2->clone();
      auto repl = fortran::makeBinary(fortran::BinOp::Add,
                                      fortran::makeVarRef(iv),
                                      fortran::makeIntConst(d));
      substituteVar(*shifted, iv, *repl);
      arm.body.push_back(std::move(shifted));
      g2->arms.push_back(std::move(arm));
    }

    s.doLo = fortran::makeBinary(fortran::BinOp::Sub, std::move(s.doLo),
                                 fortran::makeIntConst(d));
    s.body.clear();
    s.body.push_back(std::move(g1));
    s.body.push_back(std::move(g2));
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addReorderingTransforms(
    std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<LoopDistribution>());
  out.push_back(std::make_unique<LoopInterchange>());
  out.push_back(std::make_unique<LoopFusion>());
  out.push_back(std::make_unique<LoopReversal>());
  out.push_back(std::make_unique<StatementInterchange>());
  out.push_back(std::make_unique<LoopPeeling>());
  out.push_back(std::make_unique<LoopSplitting>());
  out.push_back(std::make_unique<LoopSkewing>());
  out.push_back(std::make_unique<LoopAlignment>());
}

}  // namespace ps::transform
