#include "transform/catalog.h"

namespace ps::transform {

using fortran::Stmt;
using fortran::StmtKind;
using ir::Loop;

namespace {

// ===========================================================================
// Sequential <-> Parallel
// ===========================================================================

class SequentialToParallel : public Transformation {
 public:
  std::string name() const override { return "Sequential to Parallel"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (loop->stmt->isParallel) return Advice::no("loop already parallel");
    auto inhibitors = ws.graph->parallelismInhibitors(*loop);
    if (!inhibitors.empty()) {
      std::string why = "loop-carried dependences remain:";
      for (const auto* d : inhibitors) {
        why += " " + std::string(dep::depTypeName(d->type)) + "(" +
               d->variable + ")";
        if (why.size() > 120) {
          why += " ...";
          break;
        }
      }
      return Advice::unsafe(why);
    }
    return Advice::ok(true, "no active loop-carried dependences");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    ws.loopOf(t.loop)->stmt->isParallel = true;
    ws.reanalyze();
    return true;
  }
};

class ParallelToSequential : public Transformation {
 public:
  std::string name() const override { return "Parallel to Sequential"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (!loop->stmt->isParallel) return Advice::no("loop is sequential");
    return Advice::ok(false, "always safe");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    ws.loopOf(t.loop)->stmt->isParallel = false;
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Loop Bounds Adjusting
// ===========================================================================

class LoopBoundsAdjusting : public Transformation {
 public:
  std::string name() const override { return "Loop Bounds Adjusting"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    // Editing bounds changes the iteration space; the system cannot prove
    // it safe — the user asserts it (power steering leaves the user in
    // control).
    return Advice::unsafe(
        "changes the iteration space; requires user confirmation");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) {
      if (error) *error = "target is not a loop";
      return false;
    }
    // t.factor / t.splitPoint supply the new constant bounds.
    Stmt& s = *loop->stmt;
    s.doLo = fortran::makeIntConst(t.splitPoint);
    s.doHi = fortran::makeIntConst(t.factor);
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Statement Addition / Deletion
// ===========================================================================

class StatementDeletion : public Transformation {
 public:
  std::string name() const override { return "Statement Deletion"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    const Stmt* s = ws.model->stmt(t.stmt);
    if (!s) return Advice::no("statement not found");
    // Deletion is safe when nothing depends on the statement's results.
    for (const auto& d : ws.graph->all()) {
      if (!d.active() || d.type == dep::DepType::Input) continue;
      if (d.srcStmt == t.stmt && d.type == dep::DepType::True) {
        return Advice::unsafe("statement's value is used elsewhere");
      }
    }
    return Advice::ok(false, "no flow dependences leave the statement");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    std::size_t index = 0;
    auto* container = containerOf(ws, t.stmt, &index);
    if (!container) {
      if (error) *error = "statement container not found";
      return false;
    }
    container->erase(container->begin() + static_cast<long>(index));
    ws.reanalyze();
    return true;
  }
};

class StatementAddition : public Transformation {
 public:
  std::string name() const override { return "Statement Addition"; }
  Category category() const override { return Category::Miscellaneous; }

  Advice advise(Workspace& ws, const Target& t) const override {
    if (!ws.model->stmt(t.stmt)) return Advice::no("anchor not found");
    return Advice::ok(false, "inserts a CONTINUE after the anchor "
                             "(editing hook)");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    std::size_t index = 0;
    auto* container = containerOf(ws, t.stmt, &index);
    if (!container) {
      if (error) *error = "anchor not found";
      return false;
    }
    auto fresh = fortran::makeStmt(StmtKind::Continue);
    container->insert(container->begin() + static_cast<long>(index + 1),
                      std::move(fresh));
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addMiscTransforms(std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<SequentialToParallel>());
  out.push_back(std::make_unique<ParallelToSequential>());
  out.push_back(std::make_unique<LoopBoundsAdjusting>());
  out.push_back(std::make_unique<StatementDeletion>());
  out.push_back(std::make_unique<StatementAddition>());
}

}  // namespace ps::transform
