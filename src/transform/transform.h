#ifndef PS_TRANSFORM_TRANSFORM_H
#define PS_TRANSFORM_TRANSFORM_H

#include <memory>
#include <string>
#include <vector>

#include "dependence/graph.h"
#include "fortran/ast.h"
#include "ir/model.h"

namespace ps::transform {

/// The power-steering verdict triple (§5.1): "the system advises whether
/// the transformation is applicable (is syntactically correct), safe
/// (preserves the semantics of the program) and profitable (contributes to
/// parallelization)."
struct Advice {
  bool applicable = false;
  bool safe = false;
  bool profitable = false;
  std::string explanation;

  static Advice no(std::string why) {
    return {false, false, false, std::move(why)};
  }
  static Advice unsafe(std::string why) {
    return {true, false, false, std::move(why)};
  }
  static Advice ok(bool profitable, std::string why = {}) {
    return {true, true, profitable, std::move(why)};
  }
};

/// Figure 2's taxonomy.
enum class Category {
  Reordering,
  DependenceBreaking,
  MemoryOptimizing,
  Miscellaneous,
};

const char* categoryName(Category c);

/// What a transformation operates on. Loop transforms name the DO
/// statement; fusion names two; statement transforms name a statement;
/// variable transforms carry a name; parameterized transforms carry a
/// factor / split point.
struct Target {
  fortran::StmtId loop = fortran::kInvalidStmt;
  fortran::StmtId secondLoop = fortran::kInvalidStmt;
  fortran::StmtId stmt = fortran::kInvalidStmt;
  std::string variable;
  long long factor = 2;
  long long splitPoint = 0;
  std::string callee;  // interprocedural transforms
};

/// The per-procedure analysis workspace a transformation runs against.
/// After a successful apply, `reanalyze()` re-derives the model and the
/// dependence graph for this procedure only — PED's incremental update.
struct Workspace {
  Workspace(fortran::Program& program, fortran::Procedure& proc,
            dep::AnalysisContext actx = {});

  /// Adopt analysis results restored from the persistent program database:
  /// no analysis runs. The caller guarantees `model`/`graph` were derived
  /// from this exact procedure under this exact context (the store's
  /// content-hash key enforces it before restore is attempted).
  Workspace(fortran::Program& program, fortran::Procedure& proc,
            dep::AnalysisContext actx,
            std::unique_ptr<ir::ProcedureModel> model,
            std::unique_ptr<dep::DependenceGraph> graph);

  fortran::Program& program;
  fortran::Procedure& proc;
  dep::AnalysisContext actx;
  std::unique_ptr<ir::ProcedureModel> model;
  std::unique_ptr<dep::DependenceGraph> graph;
  /// Number of reanalyses performed (the A2 ablation counts these).
  int reanalyses = 0;

  void reanalyze();
  [[nodiscard]] ir::Loop* loopOf(fortran::StmtId id) const {
    return model->loopByDoStmt(id);
  }
};

/// Base class for every transformation in the catalog.
class Transformation {
 public:
  virtual ~Transformation() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Category category() const = 0;
  /// Evaluate the power-steering triple without modifying anything.
  [[nodiscard]] virtual Advice advise(Workspace& ws,
                                      const Target& t) const = 0;
  /// Perform the mechanics. Returns false (with `error`) when the
  /// precondition checks fail; on success the workspace is reanalyzed.
  virtual bool apply(Workspace& ws, const Target& t,
                     std::string* error) const = 0;
};

/// The transformation catalog (Figure 2). Lookup is by the display name
/// used throughout the paper ("Loop Distribution", "Scalar Expansion", ...).
class Registry {
 public:
  static const Registry& instance();

  [[nodiscard]] const Transformation* byName(const std::string& name) const;
  [[nodiscard]] std::vector<const Transformation*> all() const;
  [[nodiscard]] std::vector<const Transformation*> inCategory(
      Category c) const;

  /// Render Figure 2's taxonomy listing.
  [[nodiscard]] std::string taxonomy() const;

 private:
  Registry();
  std::vector<std::unique_ptr<Transformation>> transforms_;
};

// -------------------------------------------------------------------------
// Shared helpers for transformation implementations.
// -------------------------------------------------------------------------

/// Replace every occurrence of variable `name` in the statement subtree by a
/// clone of `replacement`.
void substituteVar(fortran::Stmt& stmt, const std::string& name,
                   const fortran::Expr& replacement);

/// Find the statement list containing `id` plus its index; null when absent.
std::vector<fortran::StmtPtr>* containerOf(Workspace& ws, fortran::StmtId id,
                                           std::size_t* index);

/// A fresh variable name derived from `base` that is unused in the
/// procedure.
std::string freshName(const fortran::Procedure& proc,
                      const std::string& base);

/// A recognized sum reduction in a loop body: exactly one update of the
/// form S = S + term / S = term + S / S = S - term, with the scalar
/// accumulator S appearing nowhere else in the loop. Exposed for clients
/// (the OpenMP emitter) that classify the accumulator as REDUCTION(+:S)
/// instead of restructuring the loop.
struct SumReduction {
  fortran::StmtId update = fortran::kInvalidStmt;
  std::string accumulator;
  bool subtract = false;
};

/// True when `loop` contains a recognizable sum reduction; fills `out`.
/// Read-only: the loop is not modified.
[[nodiscard]] bool findSumReduction(const ir::Loop& loop, SumReduction* out);

/// A scratch clone of the workspace's procedure for trial application:
/// fusion safety, for instance, is decided by fusing in the sandbox and
/// inspecting the resulting dependence graph.
class Trial {
 public:
  explicit Trial(const Workspace& ws);
  [[nodiscard]] Workspace& workspace() { return *ws_; }
  /// The sandbox id corresponding to an original statement id.
  [[nodiscard]] fortran::StmtId mapped(fortran::StmtId original) const;

 private:
  fortran::Program program_;
  std::unique_ptr<Workspace> ws_;
  std::map<fortran::StmtId, fortran::StmtId> idMap_;
};

}  // namespace ps::transform

#endif  // PS_TRANSFORM_TRANSFORM_H
