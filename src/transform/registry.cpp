#include "transform/catalog.h"

namespace ps::transform {

Registry::Registry() {
  addReorderingTransforms(transforms_);
  addDependenceBreakingTransforms(transforms_);
  addMemoryTransforms(transforms_);
  addMiscTransforms(transforms_);
  addControlFlowTransforms(transforms_);
  addReductionTransforms(transforms_);
  addInterproceduralTransforms(transforms_);
}

const Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

const Transformation* Registry::byName(const std::string& name) const {
  for (const auto& t : transforms_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

std::vector<const Transformation*> Registry::all() const {
  std::vector<const Transformation*> out;
  for (const auto& t : transforms_) out.push_back(t.get());
  return out;
}

std::vector<const Transformation*> Registry::inCategory(Category c) const {
  std::vector<const Transformation*> out;
  for (const auto& t : transforms_) {
    if (t->category() == c) out.push_back(t.get());
  }
  return out;
}

std::string Registry::taxonomy() const {
  std::string out;
  for (Category c : {Category::Reordering, Category::DependenceBreaking,
                     Category::MemoryOptimizing, Category::Miscellaneous}) {
    out += categoryName(c);
    out += "\n";
    for (const auto* t : inCategory(c)) {
      out += "  ";
      out += t->name();
      out += "\n";
    }
  }
  return out;
}

}  // namespace ps::transform
