#include <set>

#include "cfg/flow_graph.h"
#include "dataflow/liveness.h"
#include "dataflow/privatize.h"
#include "transform/catalog.h"

namespace ps::transform {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtPtr;
using ir::Loop;

namespace {

dataflow::PrivatizationAnalysis privAnalysis(Workspace& ws) {
  cfg::FlowGraph fg = cfg::FlowGraph::build(*ws.model);
  auto lv = dataflow::Liveness::build(fg, *ws.model);
  return dataflow::PrivatizationAnalysis::build(*ws.model, fg, lv);
}

// ===========================================================================
// Privatization — realized as PED's variable classification edit: the
// variable is recorded private for the loop and the dependence graph is
// rebuilt without its edges.
// ===========================================================================

class Privatization : public Transformation {
 public:
  std::string name() const override { return "Privatization"; }
  Category category() const override {
    return Category::DependenceBreaking;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (t.variable.empty()) return Advice::no("no variable named");
    const fortran::VarDecl* d = ws.proc.findDecl(t.variable);
    if (d && d->isArray()) {
      return Advice::no(
          "array privatization requires array kill analysis (see "
          "interproc/array_kill)");
    }
    auto priv = privAnalysis(ws);
    auto status = priv.statusOf(*loop, t.variable);
    switch (status) {
      case dataflow::PrivatizationStatus::Private:
      case dataflow::PrivatizationStatus::PrivateNeedsLastValue:
        return Advice::ok(true, "scalar is killed on every iteration");
      case dataflow::PrivatizationStatus::Shared:
        return Advice::unsafe(
            "scalar has an upward-exposed read (value crosses iterations)");
      case dataflow::PrivatizationStatus::Unused:
        return Advice::no("variable not accessed in the loop");
    }
    return Advice::no("unknown status");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    ws.actx.classificationOverrides[t.loop][t.variable] = true;
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Scalar Expansion — S becomes S$(iv) inside the loop, eliminating the
// anti/output dependences a reused temporary creates. The most-used
// transformation in the workshop (Table 4).
// ===========================================================================

class ScalarExpansion : public Transformation {
 public:
  std::string name() const override { return "Scalar Expansion"; }
  Category category() const override {
    return Category::DependenceBreaking;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    if (t.variable.empty()) return Advice::no("no variable named");
    const fortran::VarDecl* d = ws.proc.findDecl(t.variable);
    if (d && d->isArray()) return Advice::no("variable is already an array");
    const Stmt& s = *loop->stmt;
    if (s.doStep && !s.doStep->isIntConst(1)) {
      return Advice::no("only unit-step loops are expanded");
    }
    auto priv = privAnalysis(ws);
    bool exposed = false, written = false, accessed = false;
    for (const auto& vc : priv.classesFor(*loop)) {
      if (vc.name != t.variable) continue;
      accessed = vc.readInLoop || vc.writtenInLoop;
      exposed = vc.upwardExposedRead;
      written = vc.writtenInLoop;
    }
    if (!accessed) return Advice::no("variable not accessed in the loop");
    if (!written) return Advice::no("variable never assigned in the loop");
    if (exposed) {
      return Advice::unsafe(
          "value flows across iterations (expansion would change it)");
    }
    bool prof = !ws.graph->parallelizable(*loop);
    return Advice::ok(prof, "expansion removes the scalar's anti/output "
                            "dependences");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    std::string expanded = freshName(ws.proc, t.variable + "$");

    // Declare the expansion array with the loop's upper bound as extent
    // (lower bound = the loop's lower bound).
    fortran::VarDecl decl;
    decl.name = expanded;
    const fortran::VarDecl* orig = ws.proc.findDecl(t.variable);
    decl.type = orig ? orig->type : fortran::implicitType(t.variable);
    fortran::Dimension dim;
    dim.lower = s.doLo->clone();
    dim.upper = s.doHi->clone();
    decl.dims.push_back(std::move(dim));
    ws.proc.decls.push_back(std::move(decl));

    // Rewrite S -> S$(iv) inside the loop body.
    auto replacement = fortran::makeArrayRef(
        expanded, [&] {
          std::vector<fortran::ExprPtr> subs;
          subs.push_back(fortran::makeVarRef(s.doVar));
          return subs;
        }());
    for (auto& b : s.body) substituteVar(*b, t.variable, *replacement);

    // Last-value copy-out when the scalar is live after the loop.
    cfg::FlowGraph fg = cfg::FlowGraph::build(*ws.model);
    auto lv = dataflow::Liveness::build(fg, *ws.model);
    if (lv.liveAfterLoop(*loop, t.variable)) {
      std::size_t index = 0;
      auto* container = containerOf(ws, t.loop, &index);
      auto copy = fortran::makeStmt(StmtKind::Assign, s.loc);
      copy->lhs = fortran::makeVarRef(t.variable);
      std::vector<fortran::ExprPtr> subs;
      subs.push_back(s.doHi->clone());
      copy->rhs = fortran::makeArrayRef(expanded, std::move(subs));
      container->insert(container->begin() + static_cast<long>(index + 1),
                        std::move(copy));
    }
    ws.reanalyze();
    return true;
  }
};

// ===========================================================================
// Array Renaming (node splitting) — breaks loop-carried anti dependences by
// reading from a pre-loop copy of the array.
// ===========================================================================

class ArrayRenaming : public Transformation {
 public:
  std::string name() const override { return "Array Renaming"; }
  Category category() const override {
    return Category::DependenceBreaking;
  }

  /// The transformation applies when every carried dependence on the array
  /// within the loop is an anti dependence (reads of old values).
  static bool antiOnly(Workspace& ws, Loop* loop, const std::string& var,
                       bool* anyCarried) {
    *anyCarried = false;
    for (const auto* d : ws.graph->parallelismInhibitors(*loop)) {
      if (d->variable != var) continue;
      *anyCarried = true;
      if (d->type != dep::DepType::Anti) return false;
    }
    return true;
  }

  Advice advise(Workspace& ws, const Target& t) const override {
    Loop* loop = ws.loopOf(t.loop);
    if (!loop) return Advice::no("target is not a loop");
    const fortran::VarDecl* d = ws.proc.findDecl(t.variable);
    if (!d || !d->isArray()) return Advice::no("variable is not an array");
    for (const auto& dim : d->dims) {
      if (!dim.upper) return Advice::no("array extent unknown");
    }
    bool anyCarried = false;
    if (!antiOnly(ws, loop, t.variable, &anyCarried)) {
      return Advice::unsafe(
          "array has carried flow/output dependences; copying stale values "
          "would change semantics");
    }
    if (!anyCarried) return Advice::no("no carried anti dependences");
    return Advice::ok(true, "reads redirect to a pre-loop copy");
  }

  bool apply(Workspace& ws, const Target& t,
             std::string* error) const override {
    Advice a = advise(ws, t);
    if (!a.safe) {
      if (error) *error = a.explanation;
      return false;
    }
    Loop* loop = ws.loopOf(t.loop);
    Stmt& s = *loop->stmt;
    // Copy the declaration first: push_back below may reallocate decls and
    // invalidate any pointer into it.
    fortran::VarDecl origDecl = ws.proc.findDecl(t.variable)->clone();
    const fortran::VarDecl* orig = &origDecl;
    std::string copyName = freshName(ws.proc, t.variable + "$");

    fortran::VarDecl decl = origDecl.clone();
    decl.name = copyName;
    decl.commonBlock.clear();
    ws.proc.decls.push_back(std::move(decl));

    // Pre-loop copy nest: one loop per dimension.
    std::size_t index = 0;
    auto* container = containerOf(ws, t.loop, &index);
    std::vector<std::string> ivs;
    StmtPtr innermost = fortran::makeStmt(StmtKind::Assign, s.loc);
    std::vector<fortran::ExprPtr> lhsSubs, rhsSubs;
    for (std::size_t dmn = 0; dmn < orig->dims.size(); ++dmn) {
      std::string iv = freshName(ws.proc, "I$" + std::to_string(dmn));
      fortran::VarDecl ivDecl;
      ivDecl.name = iv;
      ivDecl.type = fortran::TypeKind::Integer;
      ws.proc.decls.push_back(std::move(ivDecl));
      ivs.push_back(iv);
      lhsSubs.push_back(fortran::makeVarRef(iv));
      rhsSubs.push_back(fortran::makeVarRef(iv));
    }
    innermost->lhs = fortran::makeArrayRef(copyName, std::move(lhsSubs));
    innermost->rhs = fortran::makeArrayRef(t.variable, std::move(rhsSubs));
    StmtPtr nest = std::move(innermost);
    for (std::size_t dmn = orig->dims.size(); dmn-- > 0;) {
      auto loopStmt = fortran::makeStmt(StmtKind::Do, s.loc);
      loopStmt->doVar = ivs[dmn];
      loopStmt->doLo = orig->dims[dmn].lower
                           ? orig->dims[dmn].lower->clone()
                           : fortran::makeIntConst(1);
      loopStmt->doHi = orig->dims[dmn].upper->clone();
      loopStmt->body.push_back(std::move(nest));
      nest = std::move(loopStmt);
    }
    container->insert(container->begin() + static_cast<long>(index),
                      std::move(nest));

    // Redirect reads inside the target loop to the copy (writes stay).
    for (auto& b : s.body) {
      b->forEachMutable([&](Stmt& st) {
        auto rewriteReads = [&](fortran::ExprPtr& e) {
          if (!e) return;
          e->forEachMutable([&](Expr& sub) {
            if (sub.kind == ExprKind::ArrayRef && sub.name == t.variable) {
              sub.name = copyName;
            }
          });
        };
        // Everything except the assignment target is a read position.
        if (st.kind == StmtKind::Assign) {
          // Subscripts of the LHS are reads; the base array is a write.
          if (st.lhs->kind == ExprKind::ArrayRef) {
            for (auto& subExpr : st.lhs->args) rewriteReads(subExpr);
          }
          rewriteReads(st.rhs);
        } else {
          st.forEachExprMutable([&](Expr& sub) {
            if (sub.kind == ExprKind::ArrayRef && sub.name == t.variable) {
              sub.name = copyName;
            }
          });
        }
      });
    }
    ws.reanalyze();
    return true;
  }
};

}  // namespace

void addDependenceBreakingTransforms(
    std::vector<std::unique_ptr<Transformation>>& out) {
  out.push_back(std::make_unique<Privatization>());
  out.push_back(std::make_unique<ScalarExpansion>());
  out.push_back(std::make_unique<ArrayRenaming>());
}

}  // namespace ps::transform
