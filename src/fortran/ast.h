#ifndef PS_FORTRAN_AST_H
#define PS_FORTRAN_AST_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source_loc.h"

namespace ps::fortran {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TypeKind {
  Integer,
  Real,
  DoublePrecision,
  Logical,
  Character,
  Unknown,  // implicitly typed before resolution
};

const char* typeName(TypeKind t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntConst,
  RealConst,
  LogicalConst,
  StringConst,
  VarRef,    // scalar variable reference
  ArrayRef,  // subscripted reference A(i, j, ...)
  Binary,
  Unary,
  FuncCall,  // intrinsic or user function call F(args)
};

enum class BinOp {
  Add, Sub, Mul, Div, Pow,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or, Eqv, Neqv,
};

enum class UnOp { Neg, Plus, Not };

const char* binOpName(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node. A single struct with a kind tag rather than a class
/// hierarchy: analyses and transformations pattern-match on `kind` and the
/// flat fields, which keeps clone/equality/traversal simple and fast.
struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // Literals.
  long long intValue = 0;
  double realValue = 0.0;
  bool logicalValue = false;
  std::string stringValue;

  // VarRef / ArrayRef / FuncCall.
  std::string name;

  // ArrayRef subscripts or FuncCall arguments.
  std::vector<ExprPtr> args;

  // Binary / Unary.
  BinOp binOp = BinOp::Add;
  UnOp unOp = UnOp::Neg;
  ExprPtr lhs;  // also the single operand of Unary
  ExprPtr rhs;

  [[nodiscard]] ExprPtr clone() const;
  [[nodiscard]] bool structurallyEquals(const Expr& other) const;

  /// Visit this expression and all sub-expressions, pre-order.
  void forEach(const std::function<void(const Expr&)>& fn) const;
  void forEachMutable(const std::function<void(Expr&)>& fn);

  [[nodiscard]] bool isIntConst(long long v) const {
    return kind == ExprKind::IntConst && intValue == v;
  }
};

// Factory helpers. These are used pervasively by the parser, the
// transformations (which synthesize code), and tests.
ExprPtr makeIntConst(long long v, SourceLoc loc = {});
ExprPtr makeRealConst(double v, SourceLoc loc = {});
ExprPtr makeLogicalConst(bool v, SourceLoc loc = {});
ExprPtr makeStringConst(std::string s, SourceLoc loc = {});
ExprPtr makeVarRef(std::string name, SourceLoc loc = {});
ExprPtr makeArrayRef(std::string name, std::vector<ExprPtr> subs,
                     SourceLoc loc = {});
ExprPtr makeFuncCall(std::string name, std::vector<ExprPtr> args,
                     SourceLoc loc = {});
ExprPtr makeBinary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc = {});
ExprPtr makeUnary(UnOp op, ExprPtr operand, SourceLoc loc = {});

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Assign,
  Do,
  If,            // block IF with arms; logical IF is a one-arm, one-stmt IF
  ArithmeticIf,  // IF (e) l1, l2, l3
  Goto,
  Call,
  Continue,
  Return,
  Stop,
  Read,
  Write,
  Assertion,     // a PED$ ASSERT directive attached at a program point
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Stable statement identity. Assigned once at parse (or synthesis) time and
/// preserved by transformations that move statements; cloned statements get
/// fresh ids. Dependences, def-use chains and pane rows all key on StmtId.
using StmtId = std::uint32_t;
inline constexpr StmtId kInvalidStmt = 0;

/// One arm of a block IF: condition + body. The final ELSE arm has a null
/// condition.
struct IfArm {
  ExprPtr condition;  // null for ELSE
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  StmtId id = kInvalidStmt;
  int label = 0;  // 0 = unlabeled
  SourceLoc loc;

  // Assign.
  ExprPtr lhs;  // VarRef or ArrayRef
  ExprPtr rhs;

  // Do.
  std::string doVar;
  ExprPtr doLo, doHi, doStep;  // doStep null => 1
  std::vector<StmtPtr> body;
  int doEndLabel = 0;     // label of the terminating statement, 0 for ENDDO
  bool isParallel = false;  // sequential<->parallel marking (PARALLEL DO)

  // If.
  std::vector<IfArm> arms;   // first arms have conditions; optional ELSE last
  bool isLogicalIf = false;  // printed as one-line IF (cond) stmt

  // ArithmeticIf.
  ExprPtr condExpr;
  int aifLabels[3] = {0, 0, 0};

  // Goto.
  int gotoTarget = 0;

  // Call / Read / Write: name + items.
  std::string callee;
  std::vector<ExprPtr> args;  // CALL args, or I/O list items

  // Assertion: raw directive text (parsed further by ped::AssertionParser).
  std::string assertionText;

  [[nodiscard]] StmtPtr clone() const;  // deep copy; ids are NOT copied

  /// Visit this statement and all nested statements, pre-order.
  void forEach(const std::function<void(const Stmt&)>& fn) const;
  void forEachMutable(const std::function<void(Stmt&)>& fn);

  /// Visit every expression in this one statement (not nested statements).
  void forEachExpr(const std::function<void(const Expr&)>& fn) const;
  void forEachExprMutable(const std::function<void(Expr&)>& fn);
  /// Visit the top-level expression slots of this statement (lhs, rhs,
  /// bounds, conditions, args) without descending into sub-expressions.
  void forEachTopExpr(const std::function<void(const ExprPtr&)>& fn) const;
};

StmtPtr makeStmt(StmtKind kind, SourceLoc loc = {});

// ---------------------------------------------------------------------------
// Declarations & program units
// ---------------------------------------------------------------------------

/// One dimension of an array declaration: lower defaults to 1.
struct Dimension {
  ExprPtr lower;  // null => 1
  ExprPtr upper;  // null => assumed size '*'
  [[nodiscard]] Dimension clone() const;
};

struct VarDecl {
  std::string name;
  TypeKind type = TypeKind::Unknown;
  std::vector<Dimension> dims;  // empty => scalar
  std::string commonBlock;      // "" => local
  bool isParameter = false;
  ExprPtr parameterValue;       // for PARAMETER (NAME = expr)
  SourceLoc loc;

  [[nodiscard]] bool isArray() const { return !dims.empty(); }
  [[nodiscard]] VarDecl clone() const;
};

enum class ProcKind { Program, Subroutine, Function };

struct Procedure {
  ProcKind kind = ProcKind::Subroutine;
  std::string name;
  std::vector<std::string> params;
  TypeKind returnType = TypeKind::Unknown;  // functions only
  std::vector<VarDecl> decls;
  std::vector<StmtPtr> body;
  SourceLoc loc;

  [[nodiscard]] const VarDecl* findDecl(const std::string& name) const;
  [[nodiscard]] VarDecl* findDecl(const std::string& name);
  [[nodiscard]] bool isParam(const std::string& name) const;

  /// Visit every statement in the body, pre-order, including nested ones.
  void forEachStmt(const std::function<void(const Stmt&)>& fn) const;
  void forEachStmtMutable(const std::function<void(Stmt&)>& fn);
};

using ProcedurePtr = std::unique_ptr<Procedure>;

/// A whole Fortran program: one or more program units plus the next free
/// statement id (the counter travels with the program so transformations can
/// mint fresh ids).
struct Program {
  std::vector<ProcedurePtr> units;
  StmtId nextStmtId = 1;

  [[nodiscard]] StmtId freshId() { return nextStmtId++; }
  [[nodiscard]] Procedure* findUnit(const std::string& name);
  [[nodiscard]] const Procedure* findUnit(const std::string& name) const;

  /// Assign fresh ids to any statement with an invalid id (after cloning or
  /// synthesizing statements).
  void assignIds();
};

/// Implicit Fortran typing: I-N => INTEGER, else REAL.
TypeKind implicitType(const std::string& name);

}  // namespace ps::fortran

#endif  // PS_FORTRAN_AST_H
