#include "fortran/pretty.h"

#include <cmath>
#include <sstream>

#include "support/text.h"

namespace ps::fortran {

namespace {

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Eqv:
    case BinOp::Neqv: return 1;
    case BinOp::Or: return 2;
    case BinOp::And: return 3;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne: return 5;
    case BinOp::Add:
    case BinOp::Sub: return 6;
    case BinOp::Mul:
    case BinOp::Div: return 7;
    case BinOp::Pow: return 9;
  }
  return 0;
}

void printExprPrec(const Expr& e, int parentPrec, std::string& out);

void printArgs(const std::vector<ExprPtr>& args, std::string& out) {
  out += '(';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ", ";
    printExprPrec(*args[i], 0, out);
  }
  out += ')';
}

std::string realToString(double v) {
  std::ostringstream os;
  os << v;
  std::string s = os.str();
  // Ensure it reads back as a real, not an integer.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find('E') == std::string::npos && s.find("inf") == std::string::npos &&
      s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

void printExprPrec(const Expr& e, int parentPrec, std::string& out) {
  switch (e.kind) {
    case ExprKind::IntConst:
      out += std::to_string(e.intValue);
      return;
    case ExprKind::RealConst:
      out += realToString(e.realValue);
      return;
    case ExprKind::LogicalConst:
      out += e.logicalValue ? ".TRUE." : ".FALSE.";
      return;
    case ExprKind::StringConst:
      out += '\'';
      for (char c : e.stringValue) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += '\'';
      return;
    case ExprKind::VarRef:
      out += e.name;
      return;
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall:
      out += e.name;
      printArgs(e.args, out);
      return;
    case ExprKind::Unary: {
      const int prec = (e.unOp == UnOp::Not) ? 4 : 8;
      bool paren = prec < parentPrec;
      if (paren) out += '(';
      out += (e.unOp == UnOp::Neg) ? "-" : (e.unOp == UnOp::Plus ? "+"
                                                                  : ".NOT. ");
      printExprPrec(*e.lhs, prec + 1, out);
      if (paren) out += ')';
      return;
    }
    case ExprKind::Binary: {
      int prec = precedence(e.binOp);
      bool paren = prec < parentPrec;
      if (paren) out += '(';
      printExprPrec(*e.lhs, prec, out);
      const char* opName = binOpName(e.binOp);
      if (e.binOp == BinOp::Pow || e.binOp == BinOp::Mul ||
          e.binOp == BinOp::Div) {
        out += opName;
      } else {
        out += ' ';
        out += opName;
        out += ' ';
      }
      // Right operand needs one more level for left-assoc ops; Pow is
      // right-assoc so the left side needs it instead — we conservatively
      // parenthesize the right side of - and / at equal precedence.
      int rhsPrec = prec;
      if (e.binOp == BinOp::Sub || e.binOp == BinOp::Div) rhsPrec = prec + 1;
      printExprPrec(*e.rhs, rhsPrec, out);
      if (paren) out += ')';
      return;
    }
  }
}

class StmtPrinter {
 public:
  StmtPrinter(const PrettyOptions& opts) : opts_(opts) {}

  void print(const Stmt& s, int indent, std::string& out) {
    switch (s.kind) {
      case StmtKind::Assign: {
        line(s, indent, printExpr(*s.lhs) + " = " + printExpr(*s.rhs), out);
        return;
      }
      case StmtKind::Do: {
        if (opts_.ompDirectives) {
          auto it = opts_.ompDirectives->find(s.id);
          if (it != opts_.ompDirectives->end()) {
            out += wrapOmpDirective(it->second);
          }
        }
        std::string head =
            (s.isParallel && opts_.emitParallelMarkers) ? "PARALLEL DO "
                                                        : "DO ";
        if (s.doEndLabel != 0) head += std::to_string(s.doEndLabel) + " ";
        head += s.doVar + " = " + printExpr(*s.doLo) + ", " +
                printExpr(*s.doHi);
        if (s.doStep) head += ", " + printExpr(*s.doStep);
        line(s, indent, head, out);
        for (const auto& b : s.body) print(*b, indent + 1, b.get() == nullptr ? out : out);
        if (s.doEndLabel == 0) {
          Stmt endDo;  // synthetic, unlabeled
          endDo.kind = StmtKind::Continue;
          line(endDo, indent, "ENDDO", out);
        }
        return;
      }
      case StmtKind::If: {
        if (s.isLogicalIf && s.arms.size() == 1 &&
            s.arms[0].body.size() == 1) {
          std::string bodyText;
          // Render the nested simple statement inline.
          std::string sub = printStmt(*s.arms[0].body[0], 0, opts_);
          // Strip the 6-column label gutter and trailing newline.
          if (sub.size() > 6) bodyText = sub.substr(6);
          while (!bodyText.empty() &&
                 (bodyText.back() == '\n' || bodyText.back() == ' ')) {
            bodyText.pop_back();
          }
          line(s, indent,
               "IF (" + printExpr(*s.arms[0].condition) + ") " + bodyText,
               out);
          return;
        }
        for (std::size_t i = 0; i < s.arms.size(); ++i) {
          const IfArm& arm = s.arms[i];
          if (i == 0) {
            line(s, indent, "IF (" + printExpr(*arm.condition) + ") THEN",
                 out);
          } else if (arm.condition) {
            Stmt noLabel;
            noLabel.kind = StmtKind::Continue;
            line(noLabel, indent,
                 "ELSE IF (" + printExpr(*arm.condition) + ") THEN", out);
          } else {
            Stmt noLabel;
            noLabel.kind = StmtKind::Continue;
            line(noLabel, indent, "ELSE", out);
          }
          for (const auto& b : arm.body) print(*b, indent + 1, out);
        }
        Stmt noLabel;
        noLabel.kind = StmtKind::Continue;
        line(noLabel, indent, "ENDIF", out);
        return;
      }
      case StmtKind::ArithmeticIf: {
        line(s, indent,
             "IF (" + printExpr(*s.condExpr) + ") " +
                 std::to_string(s.aifLabels[0]) + ", " +
                 std::to_string(s.aifLabels[1]) + ", " +
                 std::to_string(s.aifLabels[2]),
             out);
        return;
      }
      case StmtKind::Goto:
        line(s, indent, "GOTO " + std::to_string(s.gotoTarget), out);
        return;
      case StmtKind::Call: {
        std::string text = "CALL " + s.callee;
        if (!s.args.empty()) {
          text += '(';
          for (std::size_t i = 0; i < s.args.size(); ++i) {
            if (i) text += ", ";
            text += printExpr(*s.args[i]);
          }
          text += ')';
        }
        line(s, indent, text, out);
        return;
      }
      case StmtKind::Continue:
        line(s, indent, "CONTINUE", out);
        return;
      case StmtKind::Return:
        line(s, indent, "RETURN", out);
        return;
      case StmtKind::Stop:
        line(s, indent, "STOP", out);
        return;
      case StmtKind::Read:
      case StmtKind::Write: {
        std::string text =
            (s.kind == StmtKind::Read) ? "READ *, " : "WRITE(6, *) ";
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          if (i) text += ", ";
          text += printExpr(*s.args[i]);
        }
        line(s, indent, text, out);
        return;
      }
      case StmtKind::Assertion:
        // Re-emit as a directive comment so round trips preserve it.
        out += "CPED$ " + s.assertionText + "\n";
        return;
    }
  }

 private:
  void line(const Stmt& s, int indent, const std::string& text,
            std::string& out) {
    std::string gutter;
    if (s.label != 0) {
      gutter = ps::text::padLeft(std::to_string(s.label), 5) + " ";
    } else {
      gutter = "      ";
    }
    out += gutter;
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(opts_.indentWidth),
               ' ');
    out += text;
    out += '\n';
  }

  const PrettyOptions& opts_;
};

}  // namespace

std::string printExpr(const Expr& e) {
  std::string out;
  printExprPrec(e, 0, out);
  return out;
}

std::string wrapOmpDirective(const std::string& payload) {
  constexpr std::size_t kLimit = 72;
  const std::string first = "!$OMP ";
  const std::string cont = "!$OMP& ";
  std::string out;
  std::string line = first;
  bool lineHasWord = false;
  std::size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() && payload[i] == ' ') ++i;
    if (i >= payload.size()) break;
    std::size_t b = i;
    while (i < payload.size() && payload[i] != ' ') ++i;
    const std::size_t wordLen = i - b;
    std::size_t need = line.size() + wordLen + (lineHasWord ? 1 : 0);
    if (lineHasWord && need > kLimit) {
      out += line;
      out += '\n';
      line = cont;
      lineHasWord = false;
    }
    if (lineHasWord) line += ' ';
    line.append(payload, b, wordLen);
    lineHasWord = true;
  }
  if (lineHasWord) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string printStmt(const Stmt& s, int indent, const PrettyOptions& opts) {
  std::string out;
  StmtPrinter p(opts);
  p.print(s, indent, out);
  return out;
}

std::string stmtHeadline(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Do: {
      std::string head = s.isParallel ? "PARALLEL DO " : "DO ";
      if (s.doEndLabel != 0) head += std::to_string(s.doEndLabel) + " ";
      head += s.doVar + " = " + printExpr(*s.doLo) + ", " +
              printExpr(*s.doHi);
      if (s.doStep) head += ", " + printExpr(*s.doStep);
      return head;
    }
    case StmtKind::If:
      if (!s.arms.empty() && s.arms[0].condition) {
        return "IF (" + printExpr(*s.arms[0].condition) + ")" +
               (s.isLogicalIf ? " ..." : " THEN");
      }
      return "IF ...";
    default: {
      std::string text = printStmt(s, 0);
      if (text.size() > 6) text = text.substr(6);
      while (!text.empty() && (text.back() == '\n' || text.back() == ' ')) {
        text.pop_back();
      }
      return text;
    }
  }
}

std::string printProcedure(const Procedure& proc, const PrettyOptions& opts) {
  std::string out;
  switch (proc.kind) {
    case ProcKind::Program:
      out += "      PROGRAM " + proc.name + "\n";
      break;
    case ProcKind::Subroutine:
    case ProcKind::Function: {
      if (proc.kind == ProcKind::Function &&
          proc.returnType != TypeKind::Unknown) {
        out += "      ";
        out += typeName(proc.returnType);
        out += " FUNCTION " + proc.name;
      } else {
        out += (proc.kind == ProcKind::Function) ? "      FUNCTION "
                                                 : "      SUBROUTINE ";
        out += proc.name;
      }
      out += '(';
      for (std::size_t i = 0; i < proc.params.size(); ++i) {
        if (i) out += ", ";
        out += proc.params[i];
      }
      out += ")\n";
      break;
    }
  }
  if (opts.emitDeclarations) {
    for (const auto& d : proc.decls) {
      if (d.isParameter) continue;  // printed below
      out += "      ";
      out += typeName(d.type);
      out += ' ';
      out += d.name;
      if (d.isArray()) {
        out += '(';
        for (std::size_t i = 0; i < d.dims.size(); ++i) {
          if (i) out += ", ";
          const Dimension& dim = d.dims[i];
          if (dim.lower) {
            out += printExpr(*dim.lower) + ":";
          }
          out += dim.upper ? printExpr(*dim.upper) : "*";
        }
        out += ')';
      }
      out += '\n';
    }
    // COMMON blocks, grouped.
    std::vector<std::string> seen;
    for (const auto& d : proc.decls) {
      if (d.commonBlock.empty()) continue;
      bool done = false;
      for (const auto& s : seen) {
        if (s == d.commonBlock) done = true;
      }
      if (done) continue;
      seen.push_back(d.commonBlock);
      out += "      COMMON /" +
             (d.commonBlock == "//" ? std::string() : d.commonBlock) + "/ ";
      bool first = true;
      for (const auto& d2 : proc.decls) {
        if (d2.commonBlock != d.commonBlock) continue;
        if (!first) out += ", ";
        first = false;
        out += d2.name;
      }
      out += '\n';
    }
    for (const auto& d : proc.decls) {
      if (!d.isParameter) continue;
      out += "      PARAMETER (" + d.name + " = " +
             printExpr(*d.parameterValue) + ")\n";
    }
  }
  StmtPrinter p(opts);
  for (const auto& s : proc.body) p.print(*s, 0, out);
  out += "      END\n";
  return out;
}

std::string printProgram(const Program& prog, const PrettyOptions& opts) {
  std::string out;
  for (const auto& u : prog.units) {
    out += printProcedure(*u, opts);
  }
  return out;
}

}  // namespace ps::fortran
