#ifndef PS_FORTRAN_PARSER_H
#define PS_FORTRAN_PARSER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fortran/ast.h"
#include "fortran/lexer.h"
#include "fortran/token.h"
#include "support/diagnostics.h"

namespace ps::fortran {

/// Recursive-descent parser for the relaxed Fortran-77 dialect described in
/// DESIGN.md. Error recovery is per-statement: a malformed statement is
/// reported and skipped, so one bad line never hides the rest of the file
/// (PED parses incrementally and keeps editing possible with errors present).
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::vector<Lexer::Directive> directives,
         DiagnosticEngine& diags);

  /// Parse a whole source file into a Program.
  [[nodiscard]] std::unique_ptr<Program> parseProgram();

 private:
  // Token cursor.
  [[nodiscard]] const Token& peek(int ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(Tok k) const { return peek().is(k); }
  [[nodiscard]] bool checkKeyword(const char* kw) const {
    return peek().isKeyword(kw);
  }
  bool match(Tok k);
  bool matchKeyword(const char* kw);
  bool expect(Tok k, const char* context);
  void skipToNewline();
  void expectNewline(const char* context);

  // Units.
  ProcedurePtr parseUnit();
  void parseUnitBody(Procedure& proc);
  bool parseDeclaration(Procedure& proc);  // true if the line was a decl
  void parseTypeDeclLine(Procedure& proc, TypeKind type);
  void parseDimensionLine(Procedure& proc);
  void parseCommonLine(Procedure& proc);
  void parseParameterLine(Procedure& proc);
  std::vector<Dimension> parseDimList();

  // Statements. Returns null at END / ENDDO / ELSE boundaries.
  StmtPtr parseStatement();
  StmtPtr parseStatementAfterLabel(int label, SourceLoc loc);
  StmtPtr parseDo(int label, SourceLoc loc);
  StmtPtr parseIf(int label, SourceLoc loc);
  StmtPtr parseSimpleStatement(int label, SourceLoc loc);
  StmtPtr parseAssignment(int label, SourceLoc loc);
  StmtPtr parseCall(int label, SourceLoc loc);
  StmtPtr parseIo(StmtKind kind, int label, SourceLoc loc);

  /// Parse statements until `stop()` says to halt; used for DO bodies and IF
  /// arms. The terminating token(s) are left for the caller.
  void parseBody(std::vector<StmtPtr>& into, int doEndLabel);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseEquivalence();
  ExprPtr parseDisjunction();
  ExprPtr parseConjunction();
  ExprPtr parseNegation();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePower();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgList();

  /// Emit Assertion statements for directives that lexically precede the
  /// current token's line.
  void flushDirectives(std::vector<StmtPtr>& into);

  [[nodiscard]] bool declaredArray(const std::string& name) const;

  StmtId freshId() { return program_->freshId(); }

  std::vector<Token> tokens_;
  std::vector<Lexer::Directive> directives_;
  std::size_t directiveIdx_ = 0;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
  std::unique_ptr<Program> program_;
  Procedure* current_ = nullptr;
  /// When a DO body is terminated by a shared labeled statement (two DOs
  /// ending on the same label), the inner parse consumes the statement and
  /// records its label here so enclosing DOs waiting on it also terminate.
  int lastClosedLabel_ = 0;
};

/// Convenience: lex + parse in one step.
std::unique_ptr<Program> parseSource(std::string_view source,
                                     DiagnosticEngine& diags);

}  // namespace ps::fortran

#endif  // PS_FORTRAN_PARSER_H
