#ifndef PS_FORTRAN_PRETTY_H
#define PS_FORTRAN_PRETTY_H

#include <map>
#include <string>

#include "fortran/ast.h"

namespace ps::fortran {

/// Pretty-printing options. PED displays source "in pretty-printed form";
/// the same printer also produces parseable text for round-trip tests and
/// for re-parsing after transformations.
struct PrettyOptions {
  int indentWidth = 2;
  bool emitDeclarations = true;
  /// Emit "PARALLEL DO" for loops marked parallel (PED's sequential<->
  /// parallel display); when false, parallel loops print as plain DO.
  bool emitParallelMarkers = true;
  /// OpenMP directive payload per DO statement id ("PARALLEL DO ..."
  /// without the "!$OMP " sentinel). Emitted immediately before the DO
  /// line, wrapped at the fixed-form 72-column limit with "!$OMP&"
  /// continuation lines. Not owned; may be null.
  const std::map<StmtId, std::string>* ompDirectives = nullptr;
};

[[nodiscard]] std::string printExpr(const Expr& e);
[[nodiscard]] std::string printStmt(const Stmt& s, int indent = 0,
                                    const PrettyOptions& opts = {});
[[nodiscard]] std::string printProcedure(const Procedure& proc,
                                         const PrettyOptions& opts = {});
[[nodiscard]] std::string printProgram(const Program& prog,
                                       const PrettyOptions& opts = {});

/// A single-line rendering of a statement header (DO/IF show only their
/// header, not the body) — used by the source pane.
[[nodiscard]] std::string stmtHeadline(const Stmt& s);

/// Render an OpenMP directive payload as fixed-form comment lines: the
/// first line is "!$OMP <payload...>", overflow beyond column 72 breaks at
/// clause/word boundaries onto "!$OMP& " continuation lines. Every
/// returned line ends with '\n' and fits in 72 columns (a single word too
/// long to fit is emitted whole rather than truncated).
[[nodiscard]] std::string wrapOmpDirective(const std::string& payload);

}  // namespace ps::fortran

#endif  // PS_FORTRAN_PRETTY_H
