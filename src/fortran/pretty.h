#ifndef PS_FORTRAN_PRETTY_H
#define PS_FORTRAN_PRETTY_H

#include <string>

#include "fortran/ast.h"

namespace ps::fortran {

/// Pretty-printing options. PED displays source "in pretty-printed form";
/// the same printer also produces parseable text for round-trip tests and
/// for re-parsing after transformations.
struct PrettyOptions {
  int indentWidth = 2;
  bool emitDeclarations = true;
  /// Emit "PARALLEL DO" for loops marked parallel (PED's sequential<->
  /// parallel display); when false, parallel loops print as plain DO.
  bool emitParallelMarkers = true;
};

[[nodiscard]] std::string printExpr(const Expr& e);
[[nodiscard]] std::string printStmt(const Stmt& s, int indent = 0,
                                    const PrettyOptions& opts = {});
[[nodiscard]] std::string printProcedure(const Procedure& proc,
                                         const PrettyOptions& opts = {});
[[nodiscard]] std::string printProgram(const Program& prog,
                                       const PrettyOptions& opts = {});

/// A single-line rendering of a statement header (DO/IF show only their
/// header, not the body) — used by the source pane.
[[nodiscard]] std::string stmtHeadline(const Stmt& s);

}  // namespace ps::fortran

#endif  // PS_FORTRAN_PRETTY_H
