#include "fortran/parser.h"

#include <cassert>

namespace ps::fortran {

namespace {

/// Statement keywords that begin a non-assignment statement. Fortran has no
/// reserved words, so these only apply when the following token is not '='.
bool isStatementKeyword(const std::string& w) {
  static const char* kws[] = {
      "DO",      "IF",        "ELSE",   "ELSEIF", "ENDIF",    "END",
      "ENDDO",   "GOTO",      "GO",     "CALL",   "CONTINUE", "RETURN",
      "STOP",    "READ",      "WRITE",  "PRINT",  "FORMAT",   "PROGRAM",
      "SUBROUTINE", "FUNCTION", "DATA",
  };
  for (const char* k : kws) {
    if (w == k) return true;
  }
  return false;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens,
               std::vector<Lexer::Directive> directives,
               DiagnosticEngine& diags)
    : tokens_(std::move(tokens)),
      directives_(std::move(directives)),
      diags_(diags) {}

const Token& Parser::peek(int ahead) const {
  std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::matchKeyword(const char* kw) {
  if (checkKeyword(kw)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(Tok k, const char* context) {
  if (match(k)) return true;
  diags_.error(peek().loc, std::string("expected ") + tokName(k) + " in " +
                               context + ", found " + tokName(peek().kind));
  return false;
}

void Parser::skipToNewline() {
  while (!check(Tok::Newline) && !check(Tok::EndOfFile)) advance();
  match(Tok::Newline);
}

void Parser::expectNewline(const char* context) {
  if (!match(Tok::Newline) && !check(Tok::EndOfFile)) {
    diags_.error(peek().loc,
                 std::string("unexpected tokens after ") + context);
    skipToNewline();
  }
}

// ---------------------------------------------------------------------------
// Program structure
// ---------------------------------------------------------------------------

std::unique_ptr<Program> Parser::parseProgram() {
  program_ = std::make_unique<Program>();
  while (!check(Tok::EndOfFile)) {
    if (match(Tok::Newline)) continue;
    auto unit = parseUnit();
    if (unit) {
      program_->units.push_back(std::move(unit));
    } else {
      skipToNewline();
    }
  }
  return std::move(program_);
}

ProcedurePtr Parser::parseUnit() {
  auto proc = std::make_unique<Procedure>();
  proc->loc = peek().loc;
  current_ = proc.get();

  // Optional typed FUNCTION header: REAL FUNCTION F(X) etc.
  TypeKind fnType = TypeKind::Unknown;
  std::size_t save = pos_;
  if (checkKeyword("INTEGER") || checkKeyword("REAL") ||
      checkKeyword("LOGICAL") || checkKeyword("DOUBLE")) {
    if (peek().isKeyword("DOUBLE") && peek(1).isKeyword("PRECISION") &&
        peek(2).isKeyword("FUNCTION")) {
      fnType = TypeKind::DoublePrecision;
      advance();
      advance();
    } else if (peek(1).isKeyword("FUNCTION")) {
      if (peek().isKeyword("INTEGER")) fnType = TypeKind::Integer;
      else if (peek().isKeyword("REAL")) fnType = TypeKind::Real;
      else if (peek().isKeyword("LOGICAL")) fnType = TypeKind::Logical;
      advance();
    } else {
      pos_ = save;
    }
  }

  if (matchKeyword("PROGRAM")) {
    proc->kind = ProcKind::Program;
    proc->name = peek().text;
    if (!expect(Tok::Identifier, "PROGRAM header")) return nullptr;
    expectNewline("PROGRAM header");
  } else if (matchKeyword("SUBROUTINE") || checkKeyword("FUNCTION")) {
    bool isFunction = matchKeyword("FUNCTION");
    proc->kind = isFunction ? ProcKind::Function : ProcKind::Subroutine;
    proc->returnType = fnType;
    proc->name = peek().text;
    if (!expect(Tok::Identifier, "procedure header")) return nullptr;
    if (match(Tok::LParen)) {
      if (!check(Tok::RParen)) {
        do {
          if (!check(Tok::Identifier)) {
            diags_.error(peek().loc, "expected parameter name");
            break;
          }
          proc->params.push_back(advance().text);
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, "parameter list");
    }
    expectNewline("procedure header");
  } else {
    // Implicit main program: a file that begins with statements.
    proc->kind = ProcKind::Program;
    proc->name = "MAIN";
  }

  parseUnitBody(*proc);
  current_ = nullptr;
  return proc;
}

void Parser::parseUnitBody(Procedure& proc) {
  // Declarations come first; the first non-declaration line starts the
  // executable part.
  while (!check(Tok::EndOfFile)) {
    if (match(Tok::Newline)) continue;
    if (!parseDeclaration(proc)) break;
  }
  // Executable statements until END.
  while (!check(Tok::EndOfFile)) {
    if (match(Tok::Newline)) continue;
    flushDirectives(proc.body);
    if (checkKeyword("END") && !peek(1).is(Tok::Assign)) {
      advance();
      expectNewline("END");
      break;
    }
    auto stmt = parseStatement();
    if (stmt) proc.body.push_back(std::move(stmt));
  }
  // Resolve implicit types for anything referenced but not declared.
  proc.forEachStmtMutable([&](Stmt& s) {
    s.forEachExprMutable([&](Expr& e) {
      if (e.kind == ExprKind::VarRef || e.kind == ExprKind::ArrayRef) {
        if (!proc.findDecl(e.name)) {
          VarDecl d;
          d.name = e.name;
          d.type = implicitType(e.name);
          d.loc = e.loc;
          if (e.kind == ExprKind::ArrayRef) {
            // Referenced as an array without a declaration: synthesize an
            // assumed-size declaration so analyses have a shape to work with.
            for (std::size_t i = 0; i < e.args.size(); ++i) {
              d.dims.emplace_back();
            }
          }
          proc.decls.push_back(std::move(d));
        }
      }
    });
  });
  for (auto& d : proc.decls) {
    if (d.type == TypeKind::Unknown) d.type = implicitType(d.name);
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

bool Parser::parseDeclaration(Procedure& proc) {
  if (check(Tok::Label)) return false;  // labeled statements are executable
  if (!check(Tok::Identifier)) return false;
  const std::string& w = peek().text;
  if (peek(1).is(Tok::Assign)) return false;  // assignment, not a decl

  if (w == "IMPLICIT") {
    skipToNewline();  // IMPLICIT NONE etc.; we use standard implicit rules
    return true;
  }
  if (w == "INTEGER" || w == "REAL" || w == "LOGICAL" || w == "CHARACTER") {
    TypeKind t = TypeKind::Integer;
    if (w == "REAL") t = TypeKind::Real;
    else if (w == "LOGICAL") t = TypeKind::Logical;
    else if (w == "CHARACTER") t = TypeKind::Character;
    advance();
    // Optional size: REAL*8 => double precision.
    if (match(Tok::Star)) {
      long long size = 4;
      if (check(Tok::IntLiteral)) size = advance().intValue;
      if (t == TypeKind::Real && size >= 8) t = TypeKind::DoublePrecision;
    }
    parseTypeDeclLine(proc, t);
    return true;
  }
  if (w == "DOUBLE" && peek(1).isKeyword("PRECISION")) {
    advance();
    advance();
    parseTypeDeclLine(proc, TypeKind::DoublePrecision);
    return true;
  }
  if (w == "DIMENSION") {
    advance();
    parseDimensionLine(proc);
    return true;
  }
  if (w == "COMMON") {
    advance();
    parseCommonLine(proc);
    return true;
  }
  if (w == "PARAMETER") {
    advance();
    parseParameterLine(proc);
    return true;
  }
  if (w == "DATA" || w == "EXTERNAL" || w == "INTRINSIC" || w == "SAVE") {
    skipToNewline();
    return true;
  }
  return false;
}

void Parser::parseTypeDeclLine(Procedure& proc, TypeKind type) {
  do {
    if (!check(Tok::Identifier)) {
      diags_.error(peek().loc, "expected variable name in declaration");
      skipToNewline();
      return;
    }
    std::string name = advance().text;
    VarDecl* existing = proc.findDecl(name);
    VarDecl fresh;
    VarDecl& d = existing ? *existing : fresh;
    d.name = name;
    d.type = type;
    d.loc = peek().loc;
    if (check(Tok::LParen)) {
      d.dims = parseDimList();
    }
    if (!existing) proc.decls.push_back(std::move(fresh));
  } while (match(Tok::Comma));
  expectNewline("type declaration");
}

std::vector<Dimension> Parser::parseDimList() {
  std::vector<Dimension> dims;
  expect(Tok::LParen, "dimension list");
  do {
    Dimension dim;
    if (match(Tok::Star)) {
      // assumed size
    } else {
      ExprPtr first = parseExpr();
      if (match(Tok::Colon)) {
        dim.lower = std::move(first);
        if (match(Tok::Star)) {
          // A(lo:*)
        } else {
          dim.upper = parseExpr();
        }
      } else {
        dim.upper = std::move(first);
      }
    }
    dims.push_back(std::move(dim));
  } while (match(Tok::Comma));
  expect(Tok::RParen, "dimension list");
  return dims;
}

void Parser::parseDimensionLine(Procedure& proc) {
  do {
    if (!check(Tok::Identifier)) {
      diags_.error(peek().loc, "expected array name in DIMENSION");
      skipToNewline();
      return;
    }
    std::string name = advance().text;
    auto dims = parseDimList();
    if (VarDecl* d = proc.findDecl(name)) {
      d->dims = std::move(dims);
    } else {
      VarDecl fresh;
      fresh.name = name;
      fresh.type = implicitType(name);
      fresh.dims = std::move(dims);
      proc.decls.push_back(std::move(fresh));
    }
  } while (match(Tok::Comma));
  expectNewline("DIMENSION");
}

void Parser::parseCommonLine(Procedure& proc) {
  std::string block = "//";  // blank common
  if (match(Tok::Slash)) {
    if (check(Tok::Identifier)) block = advance().text;
    expect(Tok::Slash, "COMMON block name");
  }
  do {
    if (!check(Tok::Identifier)) {
      diags_.error(peek().loc, "expected variable name in COMMON");
      skipToNewline();
      return;
    }
    std::string name = advance().text;
    std::vector<Dimension> dims;
    if (check(Tok::LParen)) dims = parseDimList();
    if (VarDecl* d = proc.findDecl(name)) {
      d->commonBlock = block;
      if (!dims.empty()) d->dims = std::move(dims);
    } else {
      VarDecl fresh;
      fresh.name = name;
      fresh.type = implicitType(name);
      fresh.commonBlock = block;
      fresh.dims = std::move(dims);
      proc.decls.push_back(std::move(fresh));
    }
    // Another /BLOCK/ may follow mid-line.
    if (check(Tok::Slash)) {
      advance();
      if (check(Tok::Identifier)) block = advance().text;
      expect(Tok::Slash, "COMMON block name");
      continue;
    }
  } while (match(Tok::Comma));
  expectNewline("COMMON");
}

void Parser::parseParameterLine(Procedure& proc) {
  expect(Tok::LParen, "PARAMETER");
  do {
    if (!check(Tok::Identifier)) {
      diags_.error(peek().loc, "expected name in PARAMETER");
      break;
    }
    std::string name = advance().text;
    expect(Tok::Assign, "PARAMETER");
    ExprPtr value = parseExpr();
    if (VarDecl* d = proc.findDecl(name)) {
      d->isParameter = true;
      d->parameterValue = std::move(value);
    } else {
      VarDecl fresh;
      fresh.name = name;
      fresh.type = implicitType(name);
      fresh.isParameter = true;
      fresh.parameterValue = std::move(value);
      proc.decls.push_back(std::move(fresh));
    }
  } while (match(Tok::Comma));
  expect(Tok::RParen, "PARAMETER");
  expectNewline("PARAMETER");
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Parser::flushDirectives(std::vector<StmtPtr>& into) {
  int curLine = peek().loc.line;
  while (directiveIdx_ < directives_.size() &&
         directives_[directiveIdx_].line < curLine) {
    auto s = makeStmt(StmtKind::Assertion,
                      {directives_[directiveIdx_].line, 1});
    s->id = freshId();
    s->assertionText = directives_[directiveIdx_].text;
    into.push_back(std::move(s));
    ++directiveIdx_;
  }
}

StmtPtr Parser::parseStatement() {
  int label = 0;
  SourceLoc loc = peek().loc;
  if (check(Tok::Label)) {
    label = static_cast<int>(advance().intValue);
  }
  return parseStatementAfterLabel(label, loc);
}

StmtPtr Parser::parseStatementAfterLabel(int label, SourceLoc loc) {
  if (check(Tok::Identifier) && !peek(1).is(Tok::Assign)) {
    const std::string& w = peek().text;
    if (w == "DO" &&
        (peek(1).is(Tok::IntLiteral) ||
         (peek(1).is(Tok::Identifier) && peek(2).is(Tok::Assign)) ||
         peek(1).isKeyword("WHILE"))) {
      advance();
      return parseDo(label, loc);
    }
    if (w == "PARALLEL" && peek(1).isKeyword("DO")) {
      advance();
      advance();
      auto s = parseDo(label, loc);
      if (s) s->isParallel = true;
      return s;
    }
    if (w == "IF" && peek(1).is(Tok::LParen)) {
      advance();
      return parseIf(label, loc);
    }
    if (isStatementKeyword(w) && w != "DO" && w != "IF") {
      return parseSimpleStatement(label, loc);
    }
  }
  return parseAssignment(label, loc);
}

StmtPtr Parser::parseDo(int label, SourceLoc loc) {
  auto s = makeStmt(StmtKind::Do, loc);
  s->id = freshId();
  s->label = label;

  int endLabel = 0;
  if (check(Tok::IntLiteral)) {
    endLabel = static_cast<int>(advance().intValue);
    match(Tok::Comma);  // DO 10, I = ...
  }
  s->doEndLabel = endLabel;

  if (!check(Tok::Identifier)) {
    diags_.error(peek().loc, "expected DO variable");
    skipToNewline();
    return nullptr;
  }
  s->doVar = advance().text;
  expect(Tok::Assign, "DO statement");
  s->doLo = parseExpr();
  expect(Tok::Comma, "DO statement");
  s->doHi = parseExpr();
  if (match(Tok::Comma)) s->doStep = parseExpr();
  expectNewline("DO statement");

  parseBody(s->body, endLabel);

  // Error recovery: if the terminating label statement never materialized
  // (truncated deck, garbled label card), keep the loop but demote it to
  // structured form — the printer then closes it with a synthetic ENDDO and
  // the partial program stays round-trippable.
  if (endLabel != 0 && lastClosedLabel_ != endLabel) s->doEndLabel = 0;
  return s;
}

void Parser::parseBody(std::vector<StmtPtr>& into, int doEndLabel) {
  lastClosedLabel_ = 0;
  while (!check(Tok::EndOfFile)) {
    if (match(Tok::Newline)) continue;
    flushDirectives(into);

    if (doEndLabel == 0) {
      if (checkKeyword("ENDDO")) {
        advance();
        expectNewline("ENDDO");
        return;
      }
      if (checkKeyword("END") && peek(1).isKeyword("DO")) {
        advance();
        advance();
        expectNewline("END DO");
        return;
      }
    }
    if (checkKeyword("END") && !peek(1).is(Tok::Assign) &&
        !peek(1).isKeyword("DO")) {
      diags_.error(peek().loc, "unterminated DO body at END");
      return;  // leave END for the unit parser
    }

    int label = 0;
    SourceLoc loc = peek().loc;
    if (check(Tok::Label)) label = static_cast<int>(advance().intValue);

    auto stmt = parseStatementAfterLabel(label, loc);
    if (stmt) {
      bool closes = (doEndLabel != 0 && label == doEndLabel);
      into.push_back(std::move(stmt));
      if (closes) {
        lastClosedLabel_ = label;
        return;
      }
      // A nested DO that shares our terminating label closes us too.
      if (doEndLabel != 0 && lastClosedLabel_ == doEndLabel) {
        return;  // keep lastClosedLabel_ set for any further enclosing DO
      }
      lastClosedLabel_ = 0;
    }
  }
  if (doEndLabel != 0) {
    diags_.error(peek().loc, "DO body not terminated by label " +
                                 std::to_string(doEndLabel));
  }
}

StmtPtr Parser::parseIf(int label, SourceLoc loc) {
  expect(Tok::LParen, "IF");
  ExprPtr cond = parseExpr();
  expect(Tok::RParen, "IF");

  // Arithmetic IF: IF (e) l1, l2, l3
  if (check(Tok::IntLiteral)) {
    auto s = makeStmt(StmtKind::ArithmeticIf, loc);
    s->id = freshId();
    s->label = label;
    s->condExpr = std::move(cond);
    s->aifLabels[0] = static_cast<int>(advance().intValue);
    expect(Tok::Comma, "arithmetic IF");
    s->aifLabels[1] = static_cast<int>(advance().intValue);
    expect(Tok::Comma, "arithmetic IF");
    s->aifLabels[2] = static_cast<int>(advance().intValue);
    expectNewline("arithmetic IF");
    return s;
  }

  if (matchKeyword("THEN")) {
    // Block IF.
    expectNewline("IF ... THEN");
    auto s = makeStmt(StmtKind::If, loc);
    s->id = freshId();
    s->label = label;
    IfArm arm;
    arm.condition = std::move(cond);
    s->arms.push_back(std::move(arm));

    while (!check(Tok::EndOfFile)) {
      if (match(Tok::Newline)) continue;
      flushDirectives(s->arms.back().body.empty() && s->arms.size() == 1
                          ? s->arms.back().body
                          : s->arms.back().body);
      // ELSE IF / ELSEIF
      if (checkKeyword("ELSEIF") ||
          (checkKeyword("ELSE") && peek(1).isKeyword("IF"))) {
        if (matchKeyword("ELSEIF")) {
        } else {
          advance();
          advance();
        }
        expect(Tok::LParen, "ELSE IF");
        ExprPtr c = parseExpr();
        expect(Tok::RParen, "ELSE IF");
        matchKeyword("THEN");
        expectNewline("ELSE IF");
        IfArm next;
        next.condition = std::move(c);
        s->arms.push_back(std::move(next));
        continue;
      }
      if (checkKeyword("ELSE") && !peek(1).isKeyword("IF")) {
        advance();
        expectNewline("ELSE");
        IfArm elseArm;  // null condition
        s->arms.push_back(std::move(elseArm));
        continue;
      }
      if (checkKeyword("ENDIF") ||
          (checkKeyword("END") && peek(1).isKeyword("IF"))) {
        if (matchKeyword("ENDIF")) {
        } else {
          advance();
          advance();
        }
        expectNewline("ENDIF");
        break;
      }
      if (checkKeyword("END") && !peek(1).is(Tok::Assign)) {
        diags_.error(peek().loc, "unterminated IF at END");
        break;
      }
      int innerLabel = 0;
      SourceLoc innerLoc = peek().loc;
      if (check(Tok::Label)) innerLabel = static_cast<int>(advance().intValue);
      auto stmt = parseStatementAfterLabel(innerLabel, innerLoc);
      if (stmt) s->arms.back().body.push_back(std::move(stmt));
    }
    return s;
  }

  // Logical IF: IF (cond) simple-statement
  auto s = makeStmt(StmtKind::If, loc);
  s->id = freshId();
  s->label = label;
  s->isLogicalIf = true;
  IfArm arm;
  arm.condition = std::move(cond);
  auto body = parseStatementAfterLabel(0, peek().loc);
  if (body) arm.body.push_back(std::move(body));
  s->arms.push_back(std::move(arm));
  return s;
}

StmtPtr Parser::parseSimpleStatement(int label, SourceLoc loc) {
  const std::string w = peek().text;

  if (w == "GOTO" || (w == "GO" && peek(1).isKeyword("TO"))) {
    if (w == "GO") advance();
    advance();
    auto s = makeStmt(StmtKind::Goto, loc);
    s->id = freshId();
    s->label = label;
    if (check(Tok::IntLiteral)) {
      s->gotoTarget = static_cast<int>(advance().intValue);
    } else {
      diags_.error(peek().loc, "expected label after GOTO");
    }
    expectNewline("GOTO");
    return s;
  }
  if (w == "CALL") {
    advance();
    return parseCall(label, loc);
  }
  if (w == "CONTINUE") {
    advance();
    auto s = makeStmt(StmtKind::Continue, loc);
    s->id = freshId();
    s->label = label;
    expectNewline("CONTINUE");
    return s;
  }
  if (w == "RETURN") {
    advance();
    auto s = makeStmt(StmtKind::Return, loc);
    s->id = freshId();
    s->label = label;
    expectNewline("RETURN");
    return s;
  }
  if (w == "STOP") {
    advance();
    auto s = makeStmt(StmtKind::Stop, loc);
    s->id = freshId();
    s->label = label;
    skipToNewline();  // optional stop code
    return s;
  }
  if (w == "READ") {
    advance();
    return parseIo(StmtKind::Read, label, loc);
  }
  if (w == "WRITE") {
    advance();
    return parseIo(StmtKind::Write, label, loc);
  }
  if (w == "PRINT") {
    advance();
    // PRINT *, items  => WRITE
    match(Tok::Star);
    match(Tok::Comma);
    auto s = makeStmt(StmtKind::Write, loc);
    s->id = freshId();
    s->label = label;
    if (!check(Tok::Newline) && !check(Tok::EndOfFile)) {
      do {
        s->args.push_back(parseExpr());
      } while (match(Tok::Comma));
    }
    expectNewline("PRINT");
    return s;
  }
  if (w == "FORMAT" || w == "DATA") {
    // Keep the label alive as a CONTINUE; contents are irrelevant to the
    // analyses we perform.
    auto s = makeStmt(StmtKind::Continue, loc);
    s->id = freshId();
    s->label = label;
    skipToNewline();
    return s;
  }
  diags_.error(loc, "unrecognized statement '" + w + "'");
  skipToNewline();
  return nullptr;
}

StmtPtr Parser::parseCall(int label, SourceLoc loc) {
  auto s = makeStmt(StmtKind::Call, loc);
  s->id = freshId();
  s->label = label;
  if (!check(Tok::Identifier)) {
    diags_.error(peek().loc, "expected subroutine name after CALL");
    skipToNewline();
    return nullptr;
  }
  s->callee = advance().text;
  if (match(Tok::LParen)) {
    if (!check(Tok::RParen)) {
      do {
        s->args.push_back(parseExpr());
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "CALL argument list");
  }
  expectNewline("CALL");
  return s;
}

StmtPtr Parser::parseIo(StmtKind kind, int label, SourceLoc loc) {
  auto s = makeStmt(kind, loc);
  s->id = freshId();
  s->label = label;
  // Control list: (unit[, format]) — contents ignored — or '*, '.
  if (match(Tok::LParen)) {
    int depth = 1;
    while (depth > 0 && !check(Tok::Newline) && !check(Tok::EndOfFile)) {
      if (check(Tok::LParen)) ++depth;
      if (check(Tok::RParen)) --depth;
      advance();
    }
  } else if (match(Tok::Star)) {
    match(Tok::Comma);
  }
  if (!check(Tok::Newline) && !check(Tok::EndOfFile)) {
    do {
      s->args.push_back(parseExpr());
    } while (match(Tok::Comma));
  }
  expectNewline("I/O statement");
  return s;
}

StmtPtr Parser::parseAssignment(int label, SourceLoc loc) {
  if (!check(Tok::Identifier)) {
    diags_.error(peek().loc, std::string("expected statement, found ") +
                                 tokName(peek().kind));
    skipToNewline();
    return nullptr;
  }
  auto s = makeStmt(StmtKind::Assign, loc);
  s->id = freshId();
  s->label = label;

  std::string name = advance().text;
  if (check(Tok::LParen)) {
    auto subs = parseArgList();
    s->lhs = makeArrayRef(name, std::move(subs), loc);
  } else {
    s->lhs = makeVarRef(name, loc);
  }
  if (!expect(Tok::Assign, "assignment")) {
    skipToNewline();
    return nullptr;
  }
  s->rhs = parseExpr();
  expectNewline("assignment");
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseEquivalence(); }

ExprPtr Parser::parseEquivalence() {
  ExprPtr e = parseDisjunction();
  while (check(Tok::Eqv) || check(Tok::Neqv)) {
    BinOp op = check(Tok::Eqv) ? BinOp::Eqv : BinOp::Neqv;
    SourceLoc loc = advance().loc;
    e = makeBinary(op, std::move(e), parseDisjunction(), loc);
  }
  return e;
}

ExprPtr Parser::parseDisjunction() {
  ExprPtr e = parseConjunction();
  while (check(Tok::Or)) {
    SourceLoc loc = advance().loc;
    e = makeBinary(BinOp::Or, std::move(e), parseConjunction(), loc);
  }
  return e;
}

ExprPtr Parser::parseConjunction() {
  ExprPtr e = parseNegation();
  while (check(Tok::And)) {
    SourceLoc loc = advance().loc;
    e = makeBinary(BinOp::And, std::move(e), parseNegation(), loc);
  }
  return e;
}

ExprPtr Parser::parseNegation() {
  if (check(Tok::Not)) {
    SourceLoc loc = advance().loc;
    return makeUnary(UnOp::Not, parseNegation(), loc);
  }
  return parseRelational();
}

ExprPtr Parser::parseRelational() {
  ExprPtr e = parseAdditive();
  BinOp op;
  bool found = true;
  switch (peek().kind) {
    case Tok::Lt: op = BinOp::Lt; break;
    case Tok::Le: op = BinOp::Le; break;
    case Tok::Gt: op = BinOp::Gt; break;
    case Tok::Ge: op = BinOp::Ge; break;
    case Tok::Eq: op = BinOp::Eq; break;
    case Tok::Ne: op = BinOp::Ne; break;
    default: found = false; op = BinOp::Eq; break;
  }
  if (found) {
    SourceLoc loc = advance().loc;
    e = makeBinary(op, std::move(e), parseAdditive(), loc);
  }
  return e;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr e = parseMultiplicative();
  while (check(Tok::Plus) || check(Tok::Minus)) {
    BinOp op = check(Tok::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc loc = advance().loc;
    e = makeBinary(op, std::move(e), parseMultiplicative(), loc);
  }
  return e;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr e = parseUnary();
  while (check(Tok::Star) || check(Tok::Slash)) {
    BinOp op = check(Tok::Star) ? BinOp::Mul : BinOp::Div;
    SourceLoc loc = advance().loc;
    e = makeBinary(op, std::move(e), parseUnary(), loc);
  }
  return e;
}

ExprPtr Parser::parseUnary() {
  if (check(Tok::Minus)) {
    SourceLoc loc = advance().loc;
    return makeUnary(UnOp::Neg, parseUnary(), loc);
  }
  if (check(Tok::Plus)) {
    SourceLoc loc = advance().loc;
    return makeUnary(UnOp::Plus, parseUnary(), loc);
  }
  return parsePower();
}

ExprPtr Parser::parsePower() {
  ExprPtr base = parsePrimary();
  if (check(Tok::Power)) {
    SourceLoc loc = advance().loc;
    // '**' is right-associative.
    return makeBinary(BinOp::Pow, std::move(base), parseUnary(), loc);
  }
  return base;
}

std::vector<ExprPtr> Parser::parseArgList() {
  std::vector<ExprPtr> args;
  expect(Tok::LParen, "argument list");
  if (!check(Tok::RParen)) {
    do {
      args.push_back(parseExpr());
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "argument list");
  return args;
}

bool Parser::declaredArray(const std::string& name) const {
  if (!current_) return false;
  const VarDecl* d = current_->findDecl(name);
  return d && d->isArray();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc loc = peek().loc;
  if (check(Tok::IntLiteral)) {
    return makeIntConst(advance().intValue, loc);
  }
  if (check(Tok::RealLiteral)) {
    return makeRealConst(advance().realValue, loc);
  }
  if (check(Tok::TrueLit)) {
    advance();
    return makeLogicalConst(true, loc);
  }
  if (check(Tok::FalseLit)) {
    advance();
    return makeLogicalConst(false, loc);
  }
  if (check(Tok::StringLiteral)) {
    return makeStringConst(advance().text, loc);
  }
  if (match(Tok::LParen)) {
    ExprPtr e = parseExpr();
    expect(Tok::RParen, "parenthesized expression");
    return e;
  }
  if (check(Tok::Identifier)) {
    std::string name = advance().text;
    if (check(Tok::LParen)) {
      auto args = parseArgList();
      if (declaredArray(name)) {
        return makeArrayRef(std::move(name), std::move(args), loc);
      }
      return makeFuncCall(std::move(name), std::move(args), loc);
    }
    return makeVarRef(std::move(name), loc);
  }
  diags_.error(loc, std::string("expected expression, found ") +
                        tokName(peek().kind));
  advance();
  return makeIntConst(0, loc);
}

std::unique_ptr<Program> parseSource(std::string_view source,
                                     DiagnosticEngine& diags) {
  diags.setSourceText(source);
  Lexer lexer(source, diags);
  auto tokens = lexer.run();
  Parser parser(std::move(tokens), lexer.directives(), diags);
  return parser.parseProgram();
}

}  // namespace ps::fortran
