#include "fortran/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/text.h"

namespace ps::fortran {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True if the line is a comment line under fixed- or free-form rules.
bool isCommentLine(std::string_view line) {
  if (line.empty()) return true;
  char c0 = line[0];
  if (c0 == 'C' || c0 == 'c' || c0 == '*') return true;
  std::string_view t = ps::text::trim(line);
  return t.empty() || t[0] == '!';
}

/// Extract a PED directive payload from a comment line, if present.
/// Recognizes "CPED$ ..." / "cped$ ..." / "*PED$ ..." / "!PED$ ...".
bool directivePayload(std::string_view line, std::string& payload) {
  std::string_view t = ps::text::trim(line);
  if (t.size() < 5) return false;
  std::string head = ps::text::upper(t.substr(0, 5));
  if (head == "CPED$" || head == "*PED$" || head == "!PED$") {
    payload = ps::text::upper(ps::text::trim(t.substr(5)));
    return true;
  }
  return false;
}

/// Extract an OpenMP directive payload from a comment line, if present.
/// Recognizes "!$OMP ..." and the fixed-form continuation "!$OMP& ...";
/// `continuation` reports which form was seen.
bool ompPayload(std::string_view line, std::string& payload,
                bool* continuation) {
  std::string_view t = ps::text::trim(line);
  if (t.size() < 5) return false;
  if (ps::text::upper(t.substr(0, 5)) != "!$OMP") return false;
  std::string_view rest = t.substr(5);
  *continuation = !rest.empty() && rest[0] == '&';
  if (*continuation) rest = rest.substr(1);
  payload = ps::text::upper(ps::text::trim(rest));
  return true;
}

}  // namespace

bool Token::isKeyword(const char* kw) const {
  return kind == Tok::Identifier && text == kw;
}

const char* tokName(Tok t) {
  switch (t) {
    case Tok::Identifier: return "identifier";
    case Tok::IntLiteral: return "integer literal";
    case Tok::RealLiteral: return "real literal";
    case Tok::StringLiteral: return "string literal";
    case Tok::Label: return "label";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Comma: return "','";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Power: return "'**'";
    case Tok::Colon: return "':'";
    case Tok::Lt: return "'.LT.'";
    case Tok::Le: return "'.LE.'";
    case Tok::Gt: return "'.GT.'";
    case Tok::Ge: return "'.GE.'";
    case Tok::Eq: return "'.EQ.'";
    case Tok::Ne: return "'.NE.'";
    case Tok::And: return "'.AND.'";
    case Tok::Or: return "'.OR.'";
    case Tok::Not: return "'.NOT.'";
    case Tok::Eqv: return "'.EQV.'";
    case Tok::Neqv: return "'.NEQV.'";
    case Tok::TrueLit: return "'.TRUE.'";
    case Tok::FalseLit: return "'.FALSE.'";
    case Tok::Newline: return "end of statement";
    case Tok::EndOfFile: return "end of file";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

std::vector<Token> Lexer::run() {
  std::vector<Token> tokens;
  auto lines = ps::text::splitLines(source_);
  bool pendingContinuation = false;  // previous line ended with '&'
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const int lineNo = static_cast<int>(i) + 1;

    if (isCommentLine(line)) {
      std::string payload;
      bool ompCont = false;
      if (directivePayload(line, payload)) {
        directives_.push_back({lineNo, std::move(payload)});
      } else if (ompPayload(line, payload, &ompCont)) {
        if (ompCont && !ompDirectives_.empty()) {
          std::string& prev = ompDirectives_.back().text;
          if (!prev.empty() && !payload.empty()) prev += ' ';
          prev += payload;
        } else {
          ompDirectives_.push_back({lineNo, std::move(payload)});
        }
      }
      continue;
    }

    // Fixed-form continuation: blank label field, non-blank column 6.
    bool fixedCont = false;
    if (line.size() >= 6) {
      bool blankLabelField = true;
      for (int c = 0; c < 5 && c < static_cast<int>(line.size()); ++c) {
        if (!std::isspace(static_cast<unsigned char>(line[c]))) {
          blankLabelField = false;
          break;
        }
      }
      if (blankLabelField && line[5] != ' ' && line[5] != '\t' &&
          line[5] != '0') {
        fixedCont = true;
      }
    }

    bool continuation = pendingContinuation || fixedCont;
    pendingContinuation = false;

    if (continuation && !tokens.empty() && tokens.back().is(Tok::Newline)) {
      tokens.pop_back();  // splice onto the previous statement
    }

    std::string_view body = line;
    if (fixedCont) body = body.substr(6);

    lexLine(body, lineNo, continuation, tokens);

    // Free-form continuation: statement ends with '&'.
    if (!tokens.empty() && tokens.back().is(Tok::Newline) &&
        tokens.size() >= 2) {
      // lexLine strips the '&' itself and signals via pendingContinuation
      // by leaving a marker; handled below instead.
    }
    if (!tokens.empty() && tokens.back().is(Tok::Newline)) {
      // Check whether lexLine consumed a trailing '&' (it records this by
      // setting the Newline token's intValue to 1).
      if (tokens.back().intValue == 1) {
        tokens.pop_back();
        pendingContinuation = true;
      }
    }
  }
  Token eof;
  eof.kind = Tok::EndOfFile;
  eof.loc = {static_cast<int>(lines.size()) + 1, 1};
  tokens.push_back(eof);
  return tokens;
}

void Lexer::lexLine(std::string_view line, int lineNo, bool continuation,
                    std::vector<Token>& out) {
  std::size_t pos = 0;
  // Leading statement label (only when not a continuation line).
  if (!continuation) {
    std::size_t p = 0;
    while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p])))
      ++p;
    std::size_t digitsBegin = p;
    while (p < line.size() && std::isdigit(static_cast<unsigned char>(line[p])))
      ++p;
    if (p > digitsBegin && p < line.size() &&
        (std::isspace(static_cast<unsigned char>(line[p])))) {
      Token t;
      t.kind = Tok::Label;
      t.text = std::string(line.substr(digitsBegin, p - digitsBegin));
      t.intValue = std::atoll(t.text.c_str());
      t.loc = {lineNo, static_cast<int>(digitsBegin) + 1};
      out.push_back(t);
      pos = p;
    }
  }
  lexBody(line.substr(pos), lineNo, static_cast<int>(pos), out);

  Token nl;
  nl.kind = Tok::Newline;
  nl.loc = {lineNo, static_cast<int>(line.size()) + 1};
  // lexBody signals a trailing '&' by appending a Plus-with-text "&" marker;
  // instead we detect it here: if the last real token is an ampersand marker.
  if (!out.empty() && out.back().kind == Tok::Identifier &&
      out.back().text == "&") {
    out.pop_back();
    nl.intValue = 1;  // continuation flag consumed by run()
  }
  out.push_back(nl);
}

void Lexer::lexBody(std::string_view body, int lineNo, int colBase,
                    std::vector<Token>& out) {
  std::size_t i = 0;
  auto loc = [&](std::size_t at) {
    return SourceLoc{lineNo, colBase + static_cast<int>(at) + 1};
  };
  while (i < body.size()) {
    char c = body[i];
    if (c == '!') break;  // trailing comment
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.loc = loc(i);
    if (c == '&') {
      // A continuation marker only counts when nothing but blanks or a
      // trailing comment follows; a mid-line '&' is a stray character and
      // must not swallow the statement boundary.
      std::size_t rest = i + 1;
      while (rest < body.size() &&
             std::isspace(static_cast<unsigned char>(body[rest]))) {
        ++rest;
      }
      if (rest >= body.size() || body[rest] == '!') {
        t.kind = Tok::Identifier;
        t.text = "&";
        out.push_back(t);
        break;
      }
      diags_.error(loc(i), "unexpected character '&'");
      ++i;
      continue;
    }
    if (isIdentStart(c)) {
      std::size_t b = i;
      while (i < body.size() && isIdentChar(body[i])) ++i;
      t.kind = Tok::Identifier;
      t.text = ps::text::upper(body.substr(b, i - b));
      out.push_back(t);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < body.size() &&
         std::isdigit(static_cast<unsigned char>(body[i + 1])))) {
      std::size_t b = i;
      bool isReal = false;
      while (i < body.size() &&
             std::isdigit(static_cast<unsigned char>(body[i])))
        ++i;
      // A '.' begins a fractional part only if not the start of an operator
      // like ".EQ." — i.e. if the next char is a digit, 'D'/'E' exponent, or
      // end/non-letter.
      if (i < body.size() && body[i] == '.') {
        bool opLike = false;
        if (i + 1 < body.size() &&
            std::isalpha(static_cast<unsigned char>(body[i + 1]))) {
          // Could be ".EQ." etc. or "1.E5". Exponent letters are D/E followed
          // by digit/sign; operator letters are followed by more letters.
          char l1 = static_cast<char>(
              std::toupper(static_cast<unsigned char>(body[i + 1])));
          if ((l1 == 'D' || l1 == 'E') && i + 2 < body.size() &&
              (std::isdigit(static_cast<unsigned char>(body[i + 2])) ||
               body[i + 2] == '+' || body[i + 2] == '-')) {
            opLike = false;
          } else {
            opLike = true;
          }
        }
        if (!opLike) {
          isReal = true;
          ++i;
          while (i < body.size() &&
                 std::isdigit(static_cast<unsigned char>(body[i])))
            ++i;
        }
      }
      if (i < body.size()) {
        char e = static_cast<char>(
            std::toupper(static_cast<unsigned char>(body[i])));
        if (e == 'E' || e == 'D') {
          std::size_t save = i;
          ++i;
          if (i < body.size() && (body[i] == '+' || body[i] == '-')) ++i;
          if (i < body.size() &&
              std::isdigit(static_cast<unsigned char>(body[i]))) {
            isReal = true;
            while (i < body.size() &&
                   std::isdigit(static_cast<unsigned char>(body[i])))
              ++i;
          } else {
            i = save;  // not an exponent (e.g. "100END" won't occur, but be safe)
          }
        }
      }
      std::string spelling(body.substr(b, i - b));
      if (isReal) {
        t.kind = Tok::RealLiteral;
        std::string canon = spelling;
        for (char& ch : canon) {
          if (ch == 'd' || ch == 'D') ch = 'E';
        }
        t.realValue = std::strtod(canon.c_str(), nullptr);
      } else {
        t.kind = Tok::IntLiteral;
        t.intValue = std::atoll(spelling.c_str());
      }
      t.text = spelling;
      out.push_back(t);
      continue;
    }
    if (c == '.') {
      // Dot operator: .LT. .LE. .GT. .GE. .EQ. .NE. .AND. .OR. .NOT.
      // .TRUE. .FALSE. .EQV. .NEQV.
      std::size_t close = body.find('.', i + 1);
      if (close != std::string_view::npos) {
        std::string word =
            ps::text::upper(body.substr(i + 1, close - i - 1));
        Tok k = Tok::EndOfFile;
        if (word == "LT") k = Tok::Lt;
        else if (word == "LE") k = Tok::Le;
        else if (word == "GT") k = Tok::Gt;
        else if (word == "GE") k = Tok::Ge;
        else if (word == "EQ") k = Tok::Eq;
        else if (word == "NE") k = Tok::Ne;
        else if (word == "AND") k = Tok::And;
        else if (word == "OR") k = Tok::Or;
        else if (word == "NOT") k = Tok::Not;
        else if (word == "EQV") k = Tok::Eqv;
        else if (word == "NEQV") k = Tok::Neqv;
        else if (word == "TRUE") k = Tok::TrueLit;
        else if (word == "FALSE") k = Tok::FalseLit;
        if (k != Tok::EndOfFile) {
          t.kind = k;
          t.text = "." + word + ".";
          out.push_back(t);
          i = close + 1;
          continue;
        }
      }
      diags_.error(loc(i), "unexpected '.'");
      ++i;
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      std::size_t b = ++i;
      std::string value;
      while (i < body.size()) {
        if (body[i] == quote) {
          if (i + 1 < body.size() && body[i + 1] == quote) {
            value += quote;
            i += 2;
            continue;
          }
          break;
        }
        value += body[i++];
      }
      if (i >= body.size()) {
        diags_.error(loc(b - 1), "unterminated string literal");
      } else {
        ++i;  // closing quote
      }
      t.kind = Tok::StringLiteral;
      t.text = std::move(value);
      out.push_back(t);
      continue;
    }
    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case ',': t.kind = Tok::Comma; break;
      case '+': t.kind = Tok::Plus; break;
      case '-': t.kind = Tok::Minus; break;
      case ':': t.kind = Tok::Colon; break;
      case '*':
        if (i + 1 < body.size() && body[i + 1] == '*') {
          t.kind = Tok::Power;
          ++i;
        } else {
          t.kind = Tok::Star;
        }
        break;
      case '/':
        if (i + 1 < body.size() && body[i + 1] == '=') {
          t.kind = Tok::Ne;
          ++i;
        } else {
          t.kind = Tok::Slash;
        }
        break;
      case '=':
        if (i + 1 < body.size() && body[i + 1] == '=') {
          t.kind = Tok::Eq;
          ++i;
        } else {
          t.kind = Tok::Assign;
        }
        break;
      case '<':
        if (i + 1 < body.size() && body[i + 1] == '=') {
          t.kind = Tok::Le;
          ++i;
        } else {
          t.kind = Tok::Lt;
        }
        break;
      case '>':
        if (i + 1 < body.size() && body[i + 1] == '=') {
          t.kind = Tok::Ge;
          ++i;
        } else {
          t.kind = Tok::Gt;
        }
        break;
      default:
        diags_.error(loc(i), std::string("unexpected character '") + c + "'");
        ++i;
        continue;
    }
    t.text = std::string(body.substr(i, 1));
    ++i;
    out.push_back(t);
  }
}

}  // namespace ps::fortran
