#include "fortran/ast.h"

namespace ps::fortran {

const char* typeName(TypeKind t) {
  switch (t) {
    case TypeKind::Integer: return "INTEGER";
    case TypeKind::Real: return "REAL";
    case TypeKind::DoublePrecision: return "DOUBLE PRECISION";
    case TypeKind::Logical: return "LOGICAL";
    case TypeKind::Character: return "CHARACTER";
    case TypeKind::Unknown: return "UNKNOWN";
  }
  return "?";
}

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "**";
    case BinOp::Lt: return ".LT.";
    case BinOp::Le: return ".LE.";
    case BinOp::Gt: return ".GT.";
    case BinOp::Ge: return ".GE.";
    case BinOp::Eq: return ".EQ.";
    case BinOp::Ne: return ".NE.";
    case BinOp::And: return ".AND.";
    case BinOp::Or: return ".OR.";
    case BinOp::Eqv: return ".EQV.";
    case BinOp::Neqv: return ".NEQV.";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->intValue = intValue;
  e->realValue = realValue;
  e->logicalValue = logicalValue;
  e->stringValue = stringValue;
  e->name = name;
  e->binOp = binOp;
  e->unOp = unOp;
  for (const auto& a : args) e->args.push_back(a->clone());
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  return e;
}

bool Expr::structurallyEquals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::IntConst:
      return intValue == other.intValue;
    case ExprKind::RealConst:
      return realValue == other.realValue;
    case ExprKind::LogicalConst:
      return logicalValue == other.logicalValue;
    case ExprKind::StringConst:
      return stringValue == other.stringValue;
    case ExprKind::VarRef:
      return name == other.name;
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall: {
      if (name != other.name || args.size() != other.args.size()) return false;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (!args[i]->structurallyEquals(*other.args[i])) return false;
      }
      return true;
    }
    case ExprKind::Binary:
      return binOp == other.binOp && lhs->structurallyEquals(*other.lhs) &&
             rhs->structurallyEquals(*other.rhs);
    case ExprKind::Unary:
      return unOp == other.unOp && lhs->structurallyEquals(*other.lhs);
  }
  return false;
}

void Expr::forEach(const std::function<void(const Expr&)>& fn) const {
  fn(*this);
  for (const auto& a : args) a->forEach(fn);
  if (lhs) lhs->forEach(fn);
  if (rhs) rhs->forEach(fn);
}

void Expr::forEachMutable(const std::function<void(Expr&)>& fn) {
  fn(*this);
  for (auto& a : args) a->forEachMutable(fn);
  if (lhs) lhs->forEachMutable(fn);
  if (rhs) rhs->forEachMutable(fn);
}

ExprPtr makeIntConst(long long v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntConst;
  e->intValue = v;
  e->loc = loc;
  return e;
}

ExprPtr makeRealConst(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::RealConst;
  e->realValue = v;
  e->loc = loc;
  return e;
}

ExprPtr makeLogicalConst(bool v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::LogicalConst;
  e->logicalValue = v;
  e->loc = loc;
  return e;
}

ExprPtr makeStringConst(std::string s, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::StringConst;
  e->stringValue = std::move(s);
  e->loc = loc;
  return e;
}

ExprPtr makeVarRef(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr makeArrayRef(std::string name, std::vector<ExprPtr> subs,
                     SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ArrayRef;
  e->name = std::move(name);
  e->args = std::move(subs);
  e->loc = loc;
  return e;
}

ExprPtr makeFuncCall(std::string name, std::vector<ExprPtr> args,
                     SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::FuncCall;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

ExprPtr makeBinary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->binOp = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  e->loc = loc;
  return e;
}

ExprPtr makeUnary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->unOp = op;
  e->lhs = std::move(operand);
  e->loc = loc;
  return e;
}

// ---------------------------------------------------------------------------
// Stmt
// ---------------------------------------------------------------------------

StmtPtr makeStmt(StmtKind kind, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->id = kInvalidStmt;  // clones get fresh ids via Program::assignIds
  s->label = label;
  s->loc = loc;
  if (lhs) s->lhs = lhs->clone();
  if (rhs) s->rhs = rhs->clone();
  s->doVar = doVar;
  if (doLo) s->doLo = doLo->clone();
  if (doHi) s->doHi = doHi->clone();
  if (doStep) s->doStep = doStep->clone();
  for (const auto& b : body) s->body.push_back(b->clone());
  s->doEndLabel = doEndLabel;
  s->isParallel = isParallel;
  for (const auto& arm : arms) {
    IfArm a;
    if (arm.condition) a.condition = arm.condition->clone();
    for (const auto& b : arm.body) a.body.push_back(b->clone());
    s->arms.push_back(std::move(a));
  }
  s->isLogicalIf = isLogicalIf;
  if (condExpr) s->condExpr = condExpr->clone();
  s->aifLabels[0] = aifLabels[0];
  s->aifLabels[1] = aifLabels[1];
  s->aifLabels[2] = aifLabels[2];
  s->gotoTarget = gotoTarget;
  s->callee = callee;
  for (const auto& a : args) s->args.push_back(a->clone());
  s->assertionText = assertionText;
  return s;
}

void Stmt::forEach(const std::function<void(const Stmt&)>& fn) const {
  fn(*this);
  for (const auto& b : body) b->forEach(fn);
  for (const auto& arm : arms) {
    for (const auto& b : arm.body) b->forEach(fn);
  }
}

void Stmt::forEachMutable(const std::function<void(Stmt&)>& fn) {
  fn(*this);
  for (auto& b : body) b->forEachMutable(fn);
  for (auto& arm : arms) {
    for (auto& b : arm.body) b->forEachMutable(fn);
  }
}

void Stmt::forEachTopExpr(
    const std::function<void(const ExprPtr&)>& fn) const {
  if (lhs) fn(lhs);
  if (rhs) fn(rhs);
  if (doLo) fn(doLo);
  if (doHi) fn(doHi);
  if (doStep) fn(doStep);
  for (const auto& arm : arms) {
    if (arm.condition) fn(arm.condition);
  }
  if (condExpr) fn(condExpr);
  for (const auto& a : args) fn(a);
}

void Stmt::forEachExpr(const std::function<void(const Expr&)>& fn) const {
  forEachTopExpr([&](const ExprPtr& e) { e->forEach(fn); });
}

void Stmt::forEachExprMutable(const std::function<void(Expr&)>& fn) {
  if (lhs) lhs->forEachMutable(fn);
  if (rhs) rhs->forEachMutable(fn);
  if (doLo) doLo->forEachMutable(fn);
  if (doHi) doHi->forEachMutable(fn);
  if (doStep) doStep->forEachMutable(fn);
  for (auto& arm : arms) {
    if (arm.condition) arm.condition->forEachMutable(fn);
  }
  if (condExpr) condExpr->forEachMutable(fn);
  for (auto& a : args) a->forEachMutable(fn);
}

// ---------------------------------------------------------------------------
// Declarations & units
// ---------------------------------------------------------------------------

Dimension Dimension::clone() const {
  Dimension d;
  if (lower) d.lower = lower->clone();
  if (upper) d.upper = upper->clone();
  return d;
}

VarDecl VarDecl::clone() const {
  VarDecl v;
  v.name = name;
  v.type = type;
  for (const auto& d : dims) v.dims.push_back(d.clone());
  v.commonBlock = commonBlock;
  v.isParameter = isParameter;
  if (parameterValue) v.parameterValue = parameterValue->clone();
  v.loc = loc;
  return v;
}

const VarDecl* Procedure::findDecl(const std::string& name) const {
  for (const auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

VarDecl* Procedure::findDecl(const std::string& name) {
  for (auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

bool Procedure::isParam(const std::string& name) const {
  for (const auto& p : params) {
    if (p == name) return true;
  }
  return false;
}

void Procedure::forEachStmt(const std::function<void(const Stmt&)>& fn) const {
  for (const auto& s : body) s->forEach(fn);
}

void Procedure::forEachStmtMutable(const std::function<void(Stmt&)>& fn) {
  for (auto& s : body) s->forEachMutable(fn);
}

Procedure* Program::findUnit(const std::string& name) {
  for (auto& u : units) {
    if (u->name == name) return u.get();
  }
  return nullptr;
}

const Procedure* Program::findUnit(const std::string& name) const {
  for (const auto& u : units) {
    if (u->name == name) return u.get();
  }
  return nullptr;
}

void Program::assignIds() {
  for (auto& u : units) {
    u->forEachStmtMutable([&](Stmt& s) {
      if (s.id == kInvalidStmt) s.id = freshId();
    });
  }
}

TypeKind implicitType(const std::string& name) {
  if (name.empty()) return TypeKind::Real;
  char c = name[0];
  return (c >= 'I' && c <= 'N') ? TypeKind::Integer : TypeKind::Real;
}

}  // namespace ps::fortran
