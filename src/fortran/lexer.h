#ifndef PS_FORTRAN_LEXER_H
#define PS_FORTRAN_LEXER_H

#include <string>
#include <string_view>
#include <vector>

#include "fortran/token.h"
#include "support/diagnostics.h"

namespace ps::fortran {

/// Lexes a relaxed Fortran-77 dialect:
///  - comment lines: 'C', 'c' or '*' in column 1, or '!' anywhere;
///  - statement labels: leading integer on a line;
///  - continuations: a non-blank character in column 6 of a line whose
///    columns 1-5 are blank (fixed form), or a trailing '&' (free form);
///  - keywords are not reserved; identifiers are upper-cased;
///  - directive comments beginning with 'CPED$' or '!PED$' are preserved
///    and surfaced to the parser as assertion lines.
///
/// The lexer emits a Newline token at every statement boundary so the parser
/// can stay line-oriented, as Fortran is.
class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Tokenize the whole source.
  [[nodiscard]] std::vector<Token> run();

  /// Directive comment payloads encountered, with the line each appeared on.
  /// The payload is everything after the 'PED$' sentinel, upper-cased.
  struct Directive {
    int line;
    std::string text;
  };
  [[nodiscard]] const std::vector<Directive>& directives() const {
    return directives_;
  }

  /// OpenMP directive comments ("!$OMP ..."), upper-cased, with "!$OMP&"
  /// continuation lines joined onto the preceding entry (single space).
  /// The parser ignores these — to it an OMP line is a plain comment — but
  /// emission round-trip checks use them to verify that a generated deck
  /// re-lexes to exactly the directives that were written out.
  [[nodiscard]] const std::vector<Directive>& ompDirectives() const {
    return ompDirectives_;
  }

 private:
  void lexLine(std::string_view line, int lineNo, bool continuation,
               std::vector<Token>& out);
  void lexBody(std::string_view body, int lineNo, int colBase,
               std::vector<Token>& out);

  std::string source_;
  DiagnosticEngine& diags_;
  std::vector<Directive> directives_;
  std::vector<Directive> ompDirectives_;
};

}  // namespace ps::fortran

#endif  // PS_FORTRAN_LEXER_H
