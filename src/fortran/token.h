#ifndef PS_FORTRAN_TOKEN_H
#define PS_FORTRAN_TOKEN_H

#include <string>

#include "support/source_loc.h"

namespace ps::fortran {

enum class Tok {
  // literals & names
  Identifier,
  IntLiteral,
  RealLiteral,
  StringLiteral,
  Label,        // statement label at start of a line
  // punctuation
  LParen,
  RParen,
  Comma,
  Assign,       // =
  Plus,
  Minus,
  Star,
  Slash,
  Power,        // **
  Colon,
  // relational / logical (both F77 dot-form and F90 symbol form)
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  Not,
  Eqv,
  Neqv,
  TrueLit,
  FalseLit,
  // structure
  Newline,      // end of statement
  EndOfFile,
};

/// One lexical token. `text` holds the canonical (upper-cased) spelling for
/// identifiers; literals keep their source spelling.
struct Token {
  Tok kind = Tok::EndOfFile;
  std::string text;
  long long intValue = 0;     // valid for IntLiteral and Label
  double realValue = 0.0;     // valid for RealLiteral
  SourceLoc loc;

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
  /// True when this token is the identifier `kw` (keywords are not reserved
  /// in Fortran; the parser recognizes them contextually).
  [[nodiscard]] bool isKeyword(const char* kw) const;
};

const char* tokName(Tok t);

}  // namespace ps::fortran

#endif  // PS_FORTRAN_TOKEN_H
