#ifndef PS_VALIDATE_VALIDATE_H
#define PS_VALIDATE_VALIDATE_H

// Dynamic dependence validation: trace-backed checking of pending and
// user-deleted dependences.
//
// The paper's central experience report is that PED *trusted* user
// dependence deletions — workshop users routinely deleted dependences
// that were actually carried, silently breaking the loops they then
// parallelized. This module closes that trust gap in two complementary
// ways (following Mora Cordero's dynamic parallelism-identification tools
// and Hood & Jost's relative debugging):
//
//  1. Trace replay. A serial interpreter run records every named memory
//     access with its statement and iteration context (interp/trace.h).
//     TraceIndex searches, for each questioned dependence edge, a
//     *witness pair*: two accesses of the same storage element, of the
//     right kinds for the edge's type, in serial order, and — for a
//     carried edge — in different iterations of the carrier loop (same
//     iteration of every common loop for a loop-independent edge). A
//     witness proves the dependence is real on this input: a user
//     deletion of that edge is unsound and must be restored.
//
//  2. Relative execution. A loop whose deletions claim it parallel is run
//     serially and under several shuffled "parallel" schedules; diffing
//     the observable output (plus the interpreter's cross-iteration race
//     detector) localizes any divergence to the loop and variable that
//     caused it — catching unsound deletions the trace matcher cannot
//     attribute (e.g. interprocedural summary edges).
//
// Soundness direction: a witness refutes a deletion unconditionally. The
// *absence* of a witness confirms a deletion only when the trace is
// complete (no budget overflow) — otherwise the verdict degrades to an
// explicit Unvalidated, never a silent pass.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dependence/dep.h"
#include "fortran/ast.h"
#include "interp/machine.h"
#include "interp/trace.h"

namespace ps::validate {

/// Work limits for one validation pass. Exhaustion degrades verdicts to
/// Unvalidated (surfaced via Session::degradationReport), never grows
/// memory unboundedly and never blocks the session.
struct ValidationBudget {
  long long maxEvents = 1'000'000;   // trace event cap
  long long maxElements = 1 << 18;   // distinct storage elements tracked
  int maxRelativeChecks = 8;         // loops relative-executed per pass
  int schedules = 3;                 // shuffled schedules per checked loop
  long long maxSteps = 20'000'000;   // interpreter step cap per run
};

enum class Verdict {
  RefutedDeletion,  // user-deleted edge with a trace witness: unsound
  ConfirmedSafe,    // user-deleted edge, complete trace, no witness
  WitnessFound,     // pending edge confirmed real on this input
  NoWitness,        // pending edge unobserved on this input
  Unvalidated,      // trace overflowed or edge shape unsupported
};

const char* verdictName(Verdict v);

/// Everything the matcher needs to know about one questioned edge,
/// decoupled from the live graph so validation can run against any
/// procedure's edges uniformly.
struct EdgeQuery {
  std::string procedure;
  std::uint32_t depId = 0;
  dep::DepType type = dep::DepType::True;
  fortran::StmtId srcStmt = fortran::kInvalidStmt;
  fortran::StmtId dstStmt = fortran::kInvalidStmt;
  std::string variable;
  int level = 0;  // 0 = loop-independent
  fortran::StmtId carrierLoop = fortran::kInvalidStmt;
  /// DO statements of every loop enclosing both endpoints, outermost
  /// first (empty for straight-line edges).
  std::vector<fortran::StmtId> commonLoops;
  dep::DepMark mark = dep::DepMark::Pending;
  /// False for edges the trace matcher cannot attribute to two concrete
  /// data accesses: control dependences and interprocedural summary
  /// edges. These always answer Unvalidated from the matcher (the
  /// relative checker may still refute their deletion).
  bool supported = true;
};

/// One validated edge with its verdict and human-readable evidence.
struct Finding {
  EdgeQuery edge;
  Verdict verdict = Verdict::Unvalidated;
  /// For witness verdicts: the element variable and iteration pair that
  /// proves the dependence. For Unvalidated: why.
  std::string evidence;
};

/// Statement-grouped, seq-ordered view of a recorded trace. Witness
/// search is a single linear sweep over the two endpoint statements'
/// events with per-element running state — O(events at endpoints), never
/// quadratic in the trace.
class TraceIndex {
 public:
  explicit TraceIndex(const interp::Trace& trace);

  /// True when the trace exhibits a witness pair for `q`; `evidence`
  /// receives a one-line description of the first witness found.
  [[nodiscard]] bool findWitness(const EdgeQuery& q,
                                 std::string* evidence) const;

  [[nodiscard]] const interp::Trace& trace() const { return *trace_; }

 private:
  const interp::Trace* trace_;
  /// Statement id -> indices into trace->events, ascending (= seq order).
  std::unordered_map<fortran::StmtId, std::vector<std::uint32_t>> byStmt_;
};

/// Outcome of relative execution of one claimed-parallel loop.
struct RelativeResult {
  fortran::StmtId loop = fortran::kInvalidStmt;
  bool ran = false;
  bool diverged = false;
  /// Times the serial baseline executed the DO statement (0 = the loop was
  /// never reached on this input, so agreement is vacuous — callers that
  /// treat "passed" as evidence should check this).
  long long serialExecutions = 0;
  /// First divergence localized: output position and values, race
  /// variables, or the runtime error the parallel schedule triggered.
  std::string detail;
  /// Variables the race detector implicated on this loop (drives which
  /// deleted edges get restored).
  std::vector<std::string> raceVariables;
};

/// Run `loopStmt` under `schedules` shuffled parallel schedules (every
/// other loop forced sequential so divergence localizes to THIS loop) and
/// diff each run against the serial baseline. The program's parallel
/// markings are restored before returning.
[[nodiscard]] RelativeResult relativeCheck(fortran::Program& program,
                                           fortran::StmtId loop,
                                           const interp::RunOptions& base,
                                           const interp::RunResult& serial,
                                           int schedules);

/// Aggregate result of one Session::validateDeletions pass.
struct ValidationReport {
  /// False when the serial trace run itself failed; `error`/`errorStmt`
  /// then carry the interpreter diagnostic and every questioned edge is
  /// Unvalidated.
  bool ran = false;
  std::string error;
  fortran::StmtId errorStmt = fortran::kInvalidStmt;

  long long events = 0;
  bool traceComplete = true;
  long long uninitReads = 0;

  int checked = 0;
  int refuted = 0;        // unsound deletions found (trace or relative)
  int restored = 0;       // edges auto-restored into the graph
  int confirmedSafe = 0;  // deletions with trace evidence of safety
  int witnessedPending = 0;
  int noWitness = 0;
  int unvalidated = 0;

  int relativeChecks = 0;
  int relativeDivergences = 0;

  std::vector<Finding> findings;
  std::vector<RelativeResult> relative;

  double traceSeconds = 0.0;
  double validateSeconds = 0.0;

  [[nodiscard]] std::string str() const;
};

}  // namespace ps::validate

#endif  // PS_VALIDATE_VALIDATE_H
